"""The texture unit (Figure 5).

One texture unit serves a whole core.  For every ``tex`` instruction the
unit receives the per-thread ``(u, v, lod)`` operands, runs the address
generator for each active thread, de-duplicates the texel addresses across
the wavefront (stage 2 of the figure), fetches the unique texels, and runs
the two-cycle bilinear sampler to produce one RGBA8 color per thread.

The functional result and the memory-access trace are computed together so
the cycle-level driver can charge the de-duplicated cache traffic and the
sampler latency to the same instruction the functional driver executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bitutils import bits_to_float
from repro.common.config import TextureConfig
from repro.common.perf import PerfCounters
from repro.texture.formats import pack_rgba8
from repro.texture.sampler import TextureSampler, TextureState, blend_quad


@dataclass
class TexWarpResult:
    """The outcome of one warp-level ``tex`` operation."""

    colors: List[int]
    unique_addresses: List[int]
    total_addresses: int

    @property
    def dedup_savings(self) -> int:
        """Memory accesses avoided by the de-duplication stage."""
        return self.total_addresses - len(self.unique_addresses)


class TextureUnit:
    """Per-core texture unit: address generation, dedup, sampling."""

    def __init__(self, memory, config: Optional[TextureConfig] = None):
        self.config = config or TextureConfig()
        self.sampler = TextureSampler(memory)
        self.perf = PerfCounters("tex_unit")

    def state_for(self, csr_file, stage: int) -> TextureState:
        """Snapshot the CSR-programmed state of ``stage``."""
        return TextureState.from_csrs(csr_file, stage)

    def sample_warp(
        self,
        csr_file,
        stage: int,
        operands: Sequence[Optional[Tuple[int, int, int]]],
    ) -> TexWarpResult:
        """Execute one warp-level ``tex`` instruction.

        ``operands`` holds, per thread, either ``None`` (inactive thread) or
        the raw register bits of ``(u, v, lod)``.
        """
        state = self.state_for(csr_file, stage)
        colors: List[int] = []
        unique: Dict[int, None] = {}
        total = 0
        for thread_operands in operands:
            if thread_operands is None:
                colors.append(0)
                continue
            u_bits, v_bits, lod_bits = thread_operands
            u = bits_to_float(u_bits)
            v = bits_to_float(v_bits)
            lod = _lod_from_bits(lod_bits, state.max_lod)
            quad = self.sampler.quad_for(state, u, v, lod)
            for address in quad.addresses:
                total += 1
                unique.setdefault(address, None)
            texels = [self.sampler.read_texel(state, address) for address in quad.addresses]
            colors.append(pack_rgba8(blend_quad(texels, quad.blend_u, quad.blend_v)))
        self.perf.incr("requests")
        self.perf.incr("texel_fetches", total)
        self.perf.incr("unique_fetches", len(unique))
        return TexWarpResult(
            colors=colors, unique_addresses=list(unique), total_addresses=total
        )

    def issue_latency(self, num_unique_addresses: int) -> int:
        """Fixed (non-cache) latency charged to one ``tex`` instruction.

        The cycle-level core adds the data-cache access time of the unique
        texel addresses on top of this value.
        """
        return self.config.address_latency + self.config.sampler_latency


def _lod_from_bits(lod_bits: int, max_lod: int) -> int:
    """Interpret the ``lod`` operand register.

    The operand is a float in register bits (the graphics kernels pass the
    level of detail as a float); integer levels are also tolerated for
    robustness since the kernel ABI stores small integers for mip levels.
    """
    value = bits_to_float(lod_bits)
    if not (value == value):  # NaN
        return 0
    if 0.0 <= value <= max_lod + 1 and (lod_bits >> 23) != 0:
        lod = int(value)
    else:
        # The bits do not look like a sensible float; treat them as an integer.
        lod = lod_bits if lod_bits <= max_lod else 0
    return min(max(lod, 0), max_lod)
