"""The texture unit (Figure 5).

One texture unit serves a whole core.  For every ``tex`` instruction the
unit receives the per-thread ``(u, v, lod)`` operands, runs the address
generator for each active thread, de-duplicates the texel addresses across
the wavefront (stage 2 of the figure), fetches the unique texels, and runs
the two-cycle bilinear sampler to produce one RGBA8 color per thread.

The functional result and the memory-access trace are computed together so
the cycle-level driver can charge the de-duplicated cache traffic and the
sampler latency to the same instruction the functional driver executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.common.bitutils import bits_to_float
from repro.common.config import TextureConfig
from repro.common.perf import PerfCounters
from repro.texture.formats import TexFilter, pack_rgba8
from repro.texture.sampler import TextureSampler, TextureState, blend_quad, lerp_color


@dataclass
class TexWarpResult:
    """The outcome of one warp-level ``tex`` operation."""

    colors: list[int]
    unique_addresses: list[int]
    total_addresses: int

    @property
    def dedup_savings(self) -> int:
        """Memory accesses avoided by the de-duplication stage."""
        return self.total_addresses - len(self.unique_addresses)


class TextureUnit:
    """Per-core texture unit: address generation, dedup, sampling."""

    def __init__(self, memory, config: TextureConfig | None = None):
        self.config = config or TextureConfig()
        self.sampler = TextureSampler(memory)
        self.perf = PerfCounters("tex_unit")
        # Per-stage snapshot cache, invalidated by the CSR file's texture
        # dirty counter: (csr_file, tex_epoch, state).
        self._state_cache: dict[int, tuple[object, int, TextureState]] = {}

    def state_for(self, csr_file, stage: int) -> TextureState:
        """Snapshot the CSR-programmed state of ``stage``.

        The snapshot (a dozen CSR reads per ``tex`` instruction) is cached
        against the CSR file's texture dirty counter
        (:attr:`~repro.arch.csr.CsrFile.tex_epoch`), so back-to-back ``tex``
        instructions re-read the block only after a texture CSR write.
        """
        epoch = getattr(csr_file, "tex_epoch", None)
        if epoch is None:
            return TextureState.from_csrs(csr_file, stage)
        cached = self._state_cache.get(stage)
        if cached is not None and cached[0] is csr_file and cached[1] == epoch:
            return cached[2]
        state = TextureState.from_csrs(csr_file, stage)
        self._state_cache[stage] = (csr_file, epoch, state)
        return state

    def invalidate_state_cache(self) -> None:
        """Drop the cached CSR snapshots.

        Needed after a checkpoint restore: the restored CSR file may carry
        the *same* ``tex_epoch`` value as the cached entries while holding
        different texture state, so the epoch check alone cannot see it.
        """
        self._state_cache.clear()

    def sample_warp(
        self,
        csr_file,
        stage: int,
        operands: Sequence[tuple[int, int, int] | None],
    ) -> TexWarpResult:
        """Execute one warp-level ``tex`` instruction.

        ``operands`` holds, per thread, either ``None`` (inactive thread) or
        the raw register bits of ``(u, v, lod)``.
        """
        state = self.state_for(csr_file, stage)
        trilinear = state.filter_mode == TexFilter.TRILINEAR
        colors: list[int] = []
        unique: dict[int, None] = {}
        total = 0

        def filter_level(u: float, v: float, lod: int):
            nonlocal total
            quad = self.sampler.quad_for(state, u, v, lod)
            for address in quad.addresses:
                total += 1
                unique.setdefault(address, None)
            texels = [self.sampler.read_texel(state, address) for address in quad.addresses]
            return blend_quad(texels, quad.blend_u, quad.blend_v)

        for thread_operands in operands:
            if thread_operands is None:
                colors.append(0)
                continue
            u_bits, v_bits, lod_bits = thread_operands
            u = bits_to_float(u_bits)
            v = bits_to_float(v_bits)
            if trilinear:
                lod_f = _float_lod_from_bits(lod_bits, state.max_lod)
                level0, level1, frac = state.trilinear_levels(lod_f)
                color = filter_level(u, v, level0)
                if level1 != level0:
                    color = lerp_color(color, filter_level(u, v, level1), frac)
            else:
                lod = state.clamp_lod(_lod_from_bits(lod_bits, state.max_lod))
                color = filter_level(u, v, lod)
            colors.append(pack_rgba8(color))
        self.perf.incr("requests")
        self.perf.incr("texel_fetches", total)
        self.perf.incr("unique_fetches", len(unique))
        return TexWarpResult(
            colors=colors, unique_addresses=list(unique), total_addresses=total
        )

    def sample_warp_vector(
        self,
        csr_file,
        stage: int,
        u_bits: np.ndarray,
        v_bits: np.ndarray,
        lod_bits: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`sample_warp` over the active lanes of a warp.

        The operands are uint32 arrays of raw register bits (one entry per
        active lane).  Returns one packed RGBA8 word per lane, bit-identical
        to the scalar warp path, and charges the same perf counters
        (requests, total and de-duplicated texel fetches).
        """
        state = self.state_for(csr_file, stage)
        self.perf.incr("requests")
        if int(u_bits.shape[0]) == 0:
            return np.empty(0, dtype=np.uint32)
        u, v, lods = self._warp_coordinates(state, u_bits, v_bits, lod_bits)
        colors, addresses = self.sampler.sample_many(
            state, u, v, lods, with_addresses=True
        )
        self.perf.incr("texel_fetches", int(addresses.shape[0]))
        self.perf.incr("unique_fetches", int(np.unique(addresses).shape[0]))
        return colors

    @staticmethod
    def _warp_coordinates(
        state: TextureState,
        u_bits: np.ndarray,
        v_bits: np.ndarray,
        lod_bits: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Convert raw register lane vectors into sampler operands.

        One place owns the bit-view/float64 conversion and the
        trilinear-vs-integer LOD interpretation so the plain warp sampler
        and the traced timing variant cannot drift apart.
        """
        u = np.ascontiguousarray(u_bits).view(np.float32).astype(np.float64)
        v = np.ascontiguousarray(v_bits).view(np.float32).astype(np.float64)
        if state.filter_mode == TexFilter.TRILINEAR:
            lods = _float_lods_from_bits_many(np.ascontiguousarray(lod_bits), state)
        else:
            lods = _lods_from_bits_many(np.ascontiguousarray(lod_bits), state)
        return u, v, lods

    def sample_warp_vector_trace(
        self,
        csr_file,
        stage: int,
        u_bits: np.ndarray,
        v_bits: np.ndarray,
        lod_bits: np.ndarray,
    ) -> tuple[np.ndarray, list[int]]:
        """:meth:`sample_warp_vector` plus the de-duplicated address trace.

        Returns ``(colors, unique_addresses)`` where ``unique_addresses``
        lists each distinct texel address in first-seen order under the
        scalar warp traversal (thread-major, fine level before coarse) —
        exactly the trace :meth:`sample_warp` hands the cycle-level core, so
        the vectorized timing path charges an identical cache request
        sequence.
        """
        state = self.state_for(csr_file, stage)
        self.perf.incr("requests")
        if int(u_bits.shape[0]) == 0:
            return np.empty(0, dtype=np.uint32), []
        u, v, lods = self._warp_coordinates(state, u_bits, v_bits, lod_bits)
        colors, lane_addresses = self.sampler.sample_many(
            state, u, v, lods, with_lane_addresses=True
        )
        flat = lane_addresses.ravel()
        flat = flat[flat >= 0]
        unique = list(dict.fromkeys(flat.tolist()))
        self.perf.incr("texel_fetches", int(flat.shape[0]))
        self.perf.incr("unique_fetches", len(unique))
        return colors, unique

    def issue_latency(self, num_unique_addresses: int) -> int:
        """Fixed (non-cache) latency charged to one ``tex`` instruction.

        The cycle-level core adds the data-cache access time of the unique
        texel addresses on top of this value.
        """
        return self.config.address_latency + self.config.sampler_latency


def _lod_from_bits(lod_bits: int, max_lod: int) -> int:
    """Interpret the ``lod`` operand register.

    The operand is a float in register bits (the graphics kernels pass the
    level of detail as a float); integer levels are also tolerated for
    robustness since the kernel ABI stores small integers for mip levels.
    """
    value = bits_to_float(lod_bits)
    if not (value == value):  # NaN
        return 0
    if value >= 0.0 and (lod_bits >> 23) != 0:
        # A non-zero exponent field means real float bits (small-integer
        # bit patterns all have a zero exponent); oversized levels clamp
        # to the coarsest mip, as the hardware does.
        lod = int(min(value, float(max_lod)))
    else:
        # The bits do not look like a sensible float; treat them as an integer.
        lod = lod_bits if lod_bits <= max_lod else 0
    return min(max(lod, 0), max_lod)


def _float_lod_from_bits(lod_bits: int, max_lod: int) -> float:
    """Interpret the ``lod`` operand register, keeping the fraction.

    The trilinear filter consumes fractional levels of detail, so the float
    interpretation preserves the mantissa instead of truncating; the
    integer-bits fallback of :func:`_lod_from_bits` is kept for kernels
    that store small integers.
    """
    value = bits_to_float(lod_bits)
    if not (value == value):  # NaN
        return 0.0
    if value >= 0.0 and (lod_bits >> 23) != 0:
        return value  # oversized/infinite levels clamp downstream
    return float(lod_bits) if lod_bits <= max_lod else 0.0


def _float_lods_from_bits_many(lod_bits: np.ndarray, state: TextureState) -> np.ndarray:
    """Vectorized ``clamp_lod_float(_float_lod_from_bits(bits))`` over a lane vector."""
    max_lod = state.max_lod
    value = lod_bits.view(np.float32).astype(np.float64)
    floatish = (value >= 0.0) & ((lod_bits >> np.uint32(23)) != 0)
    as_float = np.where(floatish, value, 0.0)
    # NaN lanes fail the >= comparison and fall through to the integer
    # branch, where every NaN bit pattern exceeds max_lod and resolves to
    # 0.0 — same as the scalar path.
    as_int = np.where(lod_bits <= max_lod, lod_bits.astype(np.float64), 0.0)
    lods = np.where(floatish, as_float, as_int)
    return np.clip(lods, 0.0, float(state.max_addressable_lod))


def _lods_from_bits_many(lod_bits: np.ndarray, state: TextureState) -> np.ndarray:
    """Vectorized ``clamp_lod(_lod_from_bits(bits, max_lod))`` over a lane vector."""
    max_lod = state.max_lod
    value = lod_bits.view(np.float32).astype(np.float64)
    floatish = (value >= 0.0) & ((lod_bits >> np.uint32(23)) != 0)
    capped = np.minimum(np.where(floatish, value, 0.0), float(max_lod))
    as_float = np.trunc(capped).astype(np.int64)
    # NaN lanes fall through to the integer branch, where every NaN bit
    # pattern exceeds max_lod and resolves to 0 — same as the scalar path.
    as_int = np.where(lod_bits <= max_lod, lod_bits.astype(np.int64), 0)
    lods = np.where(floatish, as_float, as_int)
    return np.clip(lods, 0, state.max_addressable_lod)
