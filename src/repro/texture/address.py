"""Texture address generation (stage 1 of the texture unit, Figure 5).

Given normalized ``(u, v)`` coordinates, the mipmap dimensions and the wrap
mode, the address generator produces the texel address(es) needed by the
selected filter — one for point sampling, a 2x2 quad plus the horizontal and
vertical blend factors for bilinear filtering.  Blend factors are quantized
to 8 bits exactly as the fixed-point hardware does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.texture.formats import TexFilter, TexFormat, TexWrap, texel_size

#: Number of fractional bits the hardware keeps for blend factors.
BLEND_FRAC_BITS = 8
BLEND_ONE = 1 << BLEND_FRAC_BITS

#: Mantissa width of an IEEE-754 double (used by the log2 approximation).
_F64_MANTISSA_BITS = 52
_F64_MANTISSA_MASK = (1 << _F64_MANTISSA_BITS) - 1
_F64_MANTISSA_SCALE = 2.0 ** -_F64_MANTISSA_BITS


def derivative_lod(
    duv_dx: np.ndarray,
    duv_dy: np.ndarray,
    width: int,
    height: int,
) -> np.ndarray:
    """Per-fragment level of detail from screen-space uv derivatives.

    ``duv_dx``/``duv_dy`` are ``(N, 2)`` float64 arrays holding the per-quad
    finite differences of the normalized texture coordinates along x and y.
    The result is ``lod = 0.5 * log2(max(rho_x^2, rho_y^2))`` where ``rho``
    is the texel-space footprint of the fragment, computed the way hardware
    does it: the log2 is the piecewise-linear exponent/mantissa
    approximation read straight from the float64 bit pattern, so the whole
    function is exact IEEE arithmetic and bit-identical no matter the batch
    size or lane count.  Degenerate footprints (zero, infinite or NaN
    derivatives) produce very small/large finite values the sampler's LOD
    clamp absorbs.
    """
    sx = duv_dx[:, 0] * float(width)
    tx = duv_dx[:, 1] * float(height)
    sy = duv_dy[:, 0] * float(width)
    ty = duv_dy[:, 1] * float(height)
    rho2 = np.maximum(sx * sx + tx * tx, sy * sy + ty * ty)
    bits = np.ascontiguousarray(rho2, dtype=np.float64).view(np.uint64)
    exponent = (bits >> np.uint64(_F64_MANTISSA_BITS)).astype(np.int64) - 1023
    mantissa = (bits & np.uint64(_F64_MANTISSA_MASK)).astype(np.float64)
    return 0.5 * (exponent.astype(np.float64) + mantissa * _F64_MANTISSA_SCALE)


def lod_fraction(lod: float, level: int) -> int:
    """Quantize the fractional part of a clamped LOD to the blend grid."""
    return int((lod - level) * BLEND_ONE) & (BLEND_ONE - 1)


@dataclass(frozen=True)
class TexelQuad:
    """The addresses and blend factors for one filtered sample."""

    addresses: tuple[int, ...]
    blend_u: int
    blend_v: int

    @property
    def unique_addresses(self) -> list[int]:
        """Addresses with duplicates removed (what the dedup stage forwards)."""
        seen = []
        for address in self.addresses:
            if address not in seen:
                seen.append(address)
        return seen


def mip_dimensions(width_log2: int, height_log2: int, lod: int) -> tuple[int, int]:
    """Return the (width, height) of mip level ``lod``, clamping at 1x1."""
    width = 1 << max(width_log2 - lod, 0)
    height = 1 << max(height_log2 - lod, 0)
    return width, height


def wrap_coordinate(coord: int, size: int, wrap: TexWrap) -> int:
    """Apply the wrap mode to an integer texel coordinate."""
    if wrap == TexWrap.CLAMP:
        return min(max(coord, 0), size - 1)
    if wrap == TexWrap.REPEAT:
        return coord & (size - 1) if size & (size - 1) == 0 else coord % size
    if wrap == TexWrap.MIRROR:
        period = 2 * size
        coord = coord % period
        if coord < 0:
            coord += period
        return coord if coord < size else period - 1 - coord
    raise ValueError(f"unknown wrap mode {wrap}")


def _texel_address(
    base: int, x: int, y: int, width: int, fmt: TexFormat
) -> int:
    return base + (y * width + x) * texel_size(fmt)


def generate_addresses(
    u: float,
    v: float,
    base: int,
    width_log2: int,
    height_log2: int,
    fmt: TexFormat,
    wrap: TexWrap,
    filter_mode: TexFilter,
    lod: int = 0,
) -> TexelQuad:
    """Generate texel addresses for one sample.

    ``base`` is the byte address of mip level ``lod`` (the caller adds the
    MIPOFF CSR value); ``u``/``v`` are the normalized coordinates.
    """
    width, height = mip_dimensions(width_log2, height_log2, lod)
    if not (math.isfinite(u) and math.isfinite(v)):
        u, v = 0.0, 0.0

    if filter_mode == TexFilter.POINT:
        x = wrap_coordinate(int(math.floor(u * width)), width, wrap)
        y = wrap_coordinate(int(math.floor(v * height)), height, wrap)
        address = _texel_address(base, x, y, width, fmt)
        return TexelQuad(addresses=(address,) * 4, blend_u=0, blend_v=0)

    if filter_mode in (TexFilter.BILINEAR, TexFilter.TRILINEAR):
        # Texel centers sit at half-integer coordinates.  A trilinear
        # sample is two of these quads (one per adjacent mip level); the
        # per-level address shape is plain bilinear.
        fx = u * width - 0.5
        fy = v * height - 0.5
        x0 = int(math.floor(fx))
        y0 = int(math.floor(fy))
        blend_u = int((fx - x0) * BLEND_ONE) & (BLEND_ONE - 1)
        blend_v = int((fy - y0) * BLEND_ONE) & (BLEND_ONE - 1)
        xs = (wrap_coordinate(x0, width, wrap), wrap_coordinate(x0 + 1, width, wrap))
        ys = (wrap_coordinate(y0, height, wrap), wrap_coordinate(y0 + 1, height, wrap))
        addresses = (
            _texel_address(base, xs[0], ys[0], width, fmt),
            _texel_address(base, xs[1], ys[0], width, fmt),
            _texel_address(base, xs[0], ys[1], width, fmt),
            _texel_address(base, xs[1], ys[1], width, fmt),
        )
        return TexelQuad(addresses=addresses, blend_u=blend_u, blend_v=blend_v)

    raise ValueError(f"unknown filter mode {filter_mode}")


def wrap_coordinates(coords: np.ndarray, size: int, wrap: TexWrap) -> np.ndarray:
    """Vectorized :func:`wrap_coordinate` over an int64 coordinate array."""
    if wrap == TexWrap.CLAMP:
        return np.clip(coords, 0, size - 1)
    if wrap == TexWrap.REPEAT:
        if size & (size - 1) == 0:
            return coords & (size - 1)
        return coords % size
    if wrap == TexWrap.MIRROR:
        period = 2 * size
        coords = coords % period  # numpy % is non-negative for a positive divisor
        return np.where(coords < size, coords, period - 1 - coords)
    raise ValueError(f"unknown wrap mode {wrap}")


def generate_addresses_many(
    u: np.ndarray,
    v: np.ndarray,
    base: int,
    width_log2: int,
    height_log2: int,
    fmt: TexFormat,
    wrap: TexWrap,
    filter_mode: TexFilter,
    lod: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched :func:`generate_addresses` over float64 coordinate arrays.

    Returns ``(addresses, blend_u, blend_v)`` where ``addresses`` is an
    ``(N, 4)`` int64 array holding each sample's texel quad in the same
    order the scalar path produces, and the blend factors are ``(N,)``
    int64 arrays.  Bit-identical to the scalar generator for every sample
    (coordinates whose texel index magnitude exceeds int64 are the only
    exception; the scalar path's arbitrary-precision ints have no such
    limit, but no real workload reaches 2^63 texels).
    """
    width, height = mip_dimensions(width_log2, height_log2, lod)
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    # Either coordinate being non-finite zeroes both, as in the scalar path.
    finite = np.isfinite(u) & np.isfinite(v)
    if not finite.all():
        u = np.where(finite, u, 0.0)
        v = np.where(finite, v, 0.0)
    tsize = texel_size(fmt)

    if filter_mode == TexFilter.POINT:
        x = wrap_coordinates(np.floor(u * width).astype(np.int64), width, wrap)
        y = wrap_coordinates(np.floor(v * height).astype(np.int64), height, wrap)
        address = base + (y * width + x) * tsize
        addresses = np.repeat(address[:, None], 4, axis=1)
        zeros = np.zeros(u.shape[0], dtype=np.int64)
        return addresses, zeros, zeros

    if filter_mode in (TexFilter.BILINEAR, TexFilter.TRILINEAR):
        fx = u * width - 0.5
        fy = v * height - 0.5
        x0 = np.floor(fx).astype(np.int64)
        y0 = np.floor(fy).astype(np.int64)
        # (fx - x0) is in [0, 1), so int() truncation == floor.
        blend_u = np.floor((fx - x0) * BLEND_ONE).astype(np.int64) & (BLEND_ONE - 1)
        blend_v = np.floor((fy - y0) * BLEND_ONE).astype(np.int64) & (BLEND_ONE - 1)
        xs0 = wrap_coordinates(x0, width, wrap)
        xs1 = wrap_coordinates(x0 + 1, width, wrap)
        ys0 = wrap_coordinates(y0, height, wrap)
        ys1 = wrap_coordinates(y0 + 1, height, wrap)
        row0 = ys0 * width
        row1 = ys1 * width
        addresses = np.empty((u.shape[0], 4), dtype=np.int64)
        addresses[:, 0] = base + (row0 + xs0) * tsize
        addresses[:, 1] = base + (row0 + xs1) * tsize
        addresses[:, 2] = base + (row1 + xs0) * tsize
        addresses[:, 3] = base + (row1 + xs1) * tsize
        return addresses, blend_u, blend_v

    raise ValueError(f"unknown filter mode {filter_mode}")
