"""The texel sampler (stage 5 of Figure 5) and the texture state block.

The sampler performs the format conversion and the bilinear interpolation
of the four fetched texels.  Point sampling is executed through the same
bilinear datapath with zero blend factors, exactly as the paper describes
(section 4.2.2) — the hardware saves the mux and variable-latency handling
a dedicated single-cycle point path would need.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.texture.address import (
    BLEND_FRAC_BITS,
    BLEND_ONE,
    TexelQuad,
    generate_addresses,
    generate_addresses_many,
    lod_fraction,
)
from repro.texture.formats import (
    RGBA,
    TexFilter,
    TexFormat,
    TexWrap,
    decode_texel,
    decode_texels,
    pack_rgba8,
    pack_rgba8_many,
    texel_size,
)
from repro.isa.csr import NUM_TEX_LODS, TexCSR, tex_csr


@dataclass
class TextureState:
    """The CSR-programmed state of one texture stage."""

    address: int = 0
    width_log2: int = 0
    height_log2: int = 0
    fmt: TexFormat = TexFormat.RGBA8
    wrap: TexWrap = TexWrap.CLAMP
    filter_mode: TexFilter = TexFilter.BILINEAR
    mip_offsets: Sequence[int] = ()

    @classmethod
    def from_csrs(cls, csr_file, stage: int) -> TextureState:
        """Build the state block for ``stage`` from a :class:`CsrFile`."""
        mip_offsets = [
            csr_file.raw(tex_csr(stage, TexCSR.MIPOFF, lod)) for lod in range(NUM_TEX_LODS)
        ]
        return cls(
            address=csr_file.raw(tex_csr(stage, TexCSR.ADDR)),
            width_log2=csr_file.raw(tex_csr(stage, TexCSR.WIDTH)),
            height_log2=csr_file.raw(tex_csr(stage, TexCSR.HEIGHT)),
            fmt=TexFormat(csr_file.raw(tex_csr(stage, TexCSR.FORMAT))),
            wrap=TexWrap(csr_file.raw(tex_csr(stage, TexCSR.WRAP))),
            filter_mode=TexFilter(csr_file.raw(tex_csr(stage, TexCSR.FILTER))),
            mip_offsets=mip_offsets,
        )

    def mip_base(self, lod: int) -> int:
        """Byte address of mip level ``lod``."""
        if 0 <= lod < len(self.mip_offsets):
            return self.address + self.mip_offsets[lod]
        return self.address

    @property
    def max_lod(self) -> int:
        """The coarsest mip level of the base dimensions."""
        return max(self.width_log2, self.height_log2)

    @property
    def max_addressable_lod(self) -> int:
        """The coarsest level with a valid MIPOFF entry.

        ``max_lod`` only bounds the geometric pyramid; the state block can
        describe at most ``NUM_TEX_LODS`` (and however many ``mip_offsets``
        were actually programmed) base addresses.  Sampling past that would
        pair mip-level dimensions with the level-0 base address.
        """
        return max(min(self.max_lod, NUM_TEX_LODS - 1, len(self.mip_offsets) - 1), 0)

    def clamp_lod(self, lod: int) -> int:
        """Clamp a requested level of detail to the addressable range."""
        if lod != lod:  # NaN floats select the base level
            lod = 0
        return min(max(int(lod), 0), self.max_addressable_lod)

    def clamp_lod_float(self, lod: float) -> float:
        """Clamp a fractional level of detail to the addressable range."""
        lod = float(lod)
        if lod != lod:  # NaN
            lod = 0.0
        return min(max(lod, 0.0), float(self.max_addressable_lod))

    def trilinear_levels(self, lod: float) -> tuple[int, int, int]:
        """Resolve a fractional LOD into ``(level0, level1, blend_frac)``.

        ``level0`` is the finer mip level, ``level1`` the adjacent coarser
        one (clamped so the pair never leaves the addressable range) and
        ``blend_frac`` the 8-bit fixed-point interpolation weight toward
        ``level1``.
        """
        lod_f = self.clamp_lod_float(lod)
        level0 = int(lod_f)
        level1 = min(level0 + 1, self.max_addressable_lod)
        return level0, level1, lod_fraction(lod_f, level0)


def _lerp(a: int, b: int, frac: int) -> int:
    """Fixed-point linear interpolation on one 8-bit channel."""
    return (a * (BLEND_ONE - frac) + b * frac) >> BLEND_FRAC_BITS


def lerp_color(fine: RGBA, coarse: RGBA, frac: int) -> RGBA:
    """Fixed-point lerp of two RGBA tuples (the trilinear mip blend)."""
    return tuple(_lerp(fine[c], coarse[c], frac) for c in range(4))


def blend_quad(texels: Sequence[RGBA], blend_u: int, blend_v: int) -> RGBA:
    """Bilinearly blend a 2x2 quad of RGBA texels."""
    top = tuple(_lerp(texels[0][c], texels[1][c], blend_u) for c in range(4))
    bottom = tuple(_lerp(texels[2][c], texels[3][c], blend_u) for c in range(4))
    return tuple(_lerp(top[c], bottom[c], blend_v) for c in range(4))


def blend_quads(texels: np.ndarray, blend_u: np.ndarray, blend_v: np.ndarray) -> np.ndarray:
    """Vectorized :func:`blend_quad` over ``(N, 4 texels, 4 channels)`` quads.

    Pure fixed-point integer arithmetic (the intermediate products peak at
    255 * 256, well inside uint32), so the result is bit-identical to the
    scalar blend.
    """
    bu = blend_u.astype(np.uint32)[:, None]
    bv = blend_v.astype(np.uint32)[:, None]
    one = np.uint32(BLEND_ONE)
    shift = np.uint32(BLEND_FRAC_BITS)
    top = (texels[:, 0] * (one - bu) + texels[:, 1] * bu) >> shift
    bottom = (texels[:, 2] * (one - bu) + texels[:, 3] * bu) >> shift
    return (top * (one - bv) + bottom * bv) >> shift


class TextureSampler:
    """Functional model of the texel sampler."""

    def __init__(self, memory):
        self.memory = memory

    def read_texel(self, state: TextureState, address: int) -> RGBA:
        """Fetch and format-convert one texel."""
        size = texel_size(state.fmt)
        raw_bytes = self.memory.read_bytes(address, size)
        raw = int.from_bytes(raw_bytes, "little")
        return decode_texel(state.fmt, raw)

    def sample(self, state: TextureState, u: float, v: float, lod: float = 0.0) -> int:
        """Sample the texture at normalized ``(u, v)`` at level of detail ``lod``.

        ``lod`` may be fractional; the point and bilinear filters truncate
        it to one mip level, the trilinear filter blends the two adjacent
        levels with the 8-bit fixed-point fraction.  Returns the packed
        RGBA8 word the ``tex`` instruction writes to its destination
        register.
        """
        if state.filter_mode == TexFilter.TRILINEAR:
            level0, level1, frac = state.trilinear_levels(lod)
            fine = self.level_color(state, u, v, level0)
            if level1 == level0:
                # LOD pinned at the coarsest level: the blend fraction is
                # provably zero, so the second fetch is skipped.
                return pack_rgba8(fine)
            coarse = self.level_color(state, u, v, level1)
            return pack_rgba8(lerp_color(fine, coarse, frac))
        color = self.level_color(state, u, v, state.clamp_lod(lod))
        return pack_rgba8(color)

    def level_color(self, state: TextureState, u: float, v: float, lod: int) -> RGBA:
        """Filter one mip level into an (r, g, b, a) byte tuple."""
        quad = self.quad_for(state, u, v, lod)
        texels = [self.read_texel(state, address) for address in quad.addresses]
        return blend_quad(texels, quad.blend_u, quad.blend_v)

    def quad_for(self, state: TextureState, u: float, v: float, lod: int) -> TexelQuad:
        """Generate the texel quad for one sample (shared with the timing unit)."""
        return generate_addresses(
            u=u,
            v=v,
            base=state.mip_base(lod),
            width_log2=state.width_log2,
            height_log2=state.height_log2,
            fmt=state.fmt,
            wrap=state.wrap,
            filter_mode=state.filter_mode,
            lod=lod,
        )

    # -- batched sampling (vectorized fast path) ---------------------------------------

    def sample_many(
        self,
        state: TextureState,
        u,
        v,
        lod=0,
        with_addresses: bool = False,
        with_lane_addresses: bool = False,
    ):
        """Batched :meth:`sample`: one packed RGBA8 word per ``(u, v, lod)``.

        ``u`` and ``v`` are float64 arrays; ``lod`` is a scalar or an int or
        float array broadcast against them (fractional LODs drive the
        trilinear filter).  The whole batch — address planes, texel gather,
        format decode, fixed-point blends — executes as numpy array
        operations, and every word is bit-identical to the scalar
        :meth:`sample` of the same coordinates.

        With ``with_addresses`` the return value is ``(colors, addresses)``
        where ``addresses`` is the flat int64 array of every generated texel
        address (4 per sample and mip level, duplicates included) — what
        the texture unit's de-duplication stage counts.

        With ``with_lane_addresses`` the return value is ``(colors, lanes)``
        where ``lanes`` is an int64 array of shape ``(N, 4)`` (point and
        bilinear) or ``(N, 8)`` (trilinear: the fine level's quad followed by
        the coarse level's quad, ``-1`` where the second fetch was skipped).
        Row ``i`` lists sample ``i``'s texel addresses in exactly the order
        the scalar warp path generates them, which is what the cycle-level
        texture timing path de-duplicates into its cache request trace.
        """
        if with_addresses and with_lane_addresses:
            raise ValueError("with_addresses and with_lane_addresses are mutually exclusive")
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        count = u.shape[0]
        out = np.empty(count, dtype=np.uint32)
        address_planes = [] if with_addresses else None
        lane_addresses = None
        if count:
            if state.filter_mode == TexFilter.TRILINEAR:
                lods = np.broadcast_to(np.asarray(lod, dtype=np.float64), (count,))
                lods = np.where(np.isnan(lods), 0.0, lods)
                lods = np.clip(lods, 0.0, float(state.max_addressable_lod))
                # lods >= 0, so astype truncation == int() == floor.
                level0 = lods.astype(np.int64)
                level1 = np.minimum(level0 + 1, state.max_addressable_lod)
                frac = ((lods - level0) * BLEND_ONE).astype(np.int64) & (BLEND_ONE - 1)
                fine_out = (
                    np.empty((count, 4), dtype=np.int64) if with_lane_addresses else None
                )
                fine = self.level_channels_many(
                    state, u, v, level0, address_planes, address_out=fine_out
                )
                # Lanes whose LOD is pinned at the coarsest level have a
                # zero blend fraction: skip their second fetch entirely
                # (same early-out, and the same fetch counts, as the
                # scalar path).
                blend = level1 != level0
                coarse_out = (
                    np.full((count, 4), -1, dtype=np.int64) if with_lane_addresses else None
                )
                if blend.any():
                    blend_addresses = (
                        np.empty((int(np.count_nonzero(blend)), 4), dtype=np.int64)
                        if with_lane_addresses
                        else None
                    )
                    coarse = self.level_channels_many(
                        state,
                        u[blend],
                        v[blend],
                        level1[blend],
                        address_planes,
                        address_out=blend_addresses,
                    )
                    if coarse_out is not None:
                        coarse_out[blend] = blend_addresses
                    weight = frac[blend].astype(np.uint32)[:, None]
                    one = np.uint32(BLEND_ONE)
                    shift = np.uint32(BLEND_FRAC_BITS)
                    fine[blend] = (fine[blend] * (one - weight) + coarse * weight) >> shift
                if with_lane_addresses:
                    lane_addresses = np.concatenate([fine_out, coarse_out], axis=1)
                out[:] = pack_rgba8_many(fine)
            else:
                lods = np.broadcast_to(np.asarray(lod), (count,))
                if lods.dtype.kind == "f":
                    lods = np.where(np.isnan(lods), 0.0, lods)
                    lods = np.clip(lods, 0.0, float(state.max_addressable_lod))
                    lods = lods.astype(np.int64)
                else:
                    lods = np.clip(lods.astype(np.int64), 0, state.max_addressable_lod)
                if with_lane_addresses:
                    lane_addresses = np.empty((count, 4), dtype=np.int64)
                channels = self.level_channels_many(
                    state, u, v, lods, address_planes, address_out=lane_addresses
                )
                out[:] = pack_rgba8_many(channels)
        if with_lane_addresses:
            if lane_addresses is None:
                lane_addresses = np.empty((0, 4), dtype=np.int64)
            return out, lane_addresses
        if with_addresses:
            flat = (
                np.concatenate(address_planes)
                if address_planes
                else np.empty(0, dtype=np.int64)
            )
            return out, flat
        return out

    def level_channels_many(
        self,
        state: TextureState,
        u: np.ndarray,
        v: np.ndarray,
        levels: np.ndarray,
        address_planes=None,
        address_out=None,
    ) -> np.ndarray:
        """Filter each sample's mip level into ``(N, 4)`` byte channels.

        ``levels`` is a clamped int64 level per sample; the batch is grouped
        by unique level so each level runs one vectorized address-gen /
        gather / decode / blend pass.  When ``address_planes`` is a list,
        every generated address plane is appended to it (flattened).  When
        ``address_out`` is an ``(N, 4)`` int64 array, each sample's quad
        addresses are scattered into its row (sample-major order).
        """
        out = np.empty((u.shape[0], 4), dtype=np.uint32)
        for level in np.unique(levels):
            selected = levels == level
            addresses, blend_u, blend_v = generate_addresses_many(
                u[selected],
                v[selected],
                base=state.mip_base(int(level)),
                width_log2=state.width_log2,
                height_log2=state.height_log2,
                fmt=state.fmt,
                wrap=state.wrap,
                filter_mode=state.filter_mode,
                lod=int(level),
            )
            texels = self.read_texels_many(state, addresses)
            out[selected] = blend_quads(texels, blend_u, blend_v)
            if address_planes is not None:
                address_planes.append(addresses.ravel())
            if address_out is not None:
                address_out[selected] = addresses
        return out

    def read_texels_many(self, state: TextureState, addresses: np.ndarray) -> np.ndarray:
        """Fetch and decode an ``(N, 4)`` quad-address plane into
        ``(N, 4 texels, 4 channels)`` byte channels."""
        size = texel_size(state.fmt)
        flat = (addresses & np.int64(0xFFFFFFFF)).astype(np.uint32).ravel()
        if size == 4 and not (int(np.bitwise_or.reduce(flat)) & 3):
            raw = self.memory.gather_words(flat)
        elif size == 2 and not (int(np.bitwise_or.reduce(flat)) & 1):
            raw = self.memory.gather_halves(flat)
        elif size == 1:
            raw = self.memory.gather_bytes(flat)
        else:
            # Unaligned texture base: byte-assemble like the scalar path.
            raw = np.empty(flat.shape[0], dtype=np.uint32)
            for index, address in enumerate(flat):
                raw_bytes = self.memory.read_bytes(int(address), size)
                raw[index] = int.from_bytes(raw_bytes, "little")
        return decode_texels(state.fmt, raw).reshape(addresses.shape[0], 4, 4)
