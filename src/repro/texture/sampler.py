"""The texel sampler (stage 5 of Figure 5) and the texture state block.

The sampler performs the format conversion and the bilinear interpolation
of the four fetched texels.  Point sampling is executed through the same
bilinear datapath with zero blend factors, exactly as the paper describes
(section 4.2.2) — the hardware saves the mux and variable-latency handling
a dedicated single-cycle point path would need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.texture.address import BLEND_ONE, TexelQuad, generate_addresses
from repro.texture.formats import (
    RGBA,
    TexFilter,
    TexFormat,
    TexWrap,
    decode_texel,
    pack_rgba8,
    texel_size,
)
from repro.isa.csr import NUM_TEX_LODS, TexCSR, tex_csr


@dataclass
class TextureState:
    """The CSR-programmed state of one texture stage."""

    address: int = 0
    width_log2: int = 0
    height_log2: int = 0
    fmt: TexFormat = TexFormat.RGBA8
    wrap: TexWrap = TexWrap.CLAMP
    filter_mode: TexFilter = TexFilter.BILINEAR
    mip_offsets: Sequence[int] = ()

    @classmethod
    def from_csrs(cls, csr_file, stage: int) -> "TextureState":
        """Build the state block for ``stage`` from a :class:`CsrFile`."""
        mip_offsets = [
            csr_file.raw(tex_csr(stage, TexCSR.MIPOFF, lod)) for lod in range(NUM_TEX_LODS)
        ]
        return cls(
            address=csr_file.raw(tex_csr(stage, TexCSR.ADDR)),
            width_log2=csr_file.raw(tex_csr(stage, TexCSR.WIDTH)),
            height_log2=csr_file.raw(tex_csr(stage, TexCSR.HEIGHT)),
            fmt=TexFormat(csr_file.raw(tex_csr(stage, TexCSR.FORMAT))),
            wrap=TexWrap(csr_file.raw(tex_csr(stage, TexCSR.WRAP))),
            filter_mode=TexFilter(csr_file.raw(tex_csr(stage, TexCSR.FILTER))),
            mip_offsets=mip_offsets,
        )

    def mip_base(self, lod: int) -> int:
        """Byte address of mip level ``lod``."""
        if 0 <= lod < len(self.mip_offsets):
            return self.address + self.mip_offsets[lod]
        return self.address

    @property
    def max_lod(self) -> int:
        """The coarsest addressable mip level."""
        return max(self.width_log2, self.height_log2)


def _lerp(a: int, b: int, frac: int) -> int:
    """Fixed-point linear interpolation on one 8-bit channel."""
    return (a * (BLEND_ONE - frac) + b * frac) >> 8


def blend_quad(texels: Sequence[RGBA], blend_u: int, blend_v: int) -> RGBA:
    """Bilinearly blend a 2x2 quad of RGBA texels."""
    top = tuple(_lerp(texels[0][c], texels[1][c], blend_u) for c in range(4))
    bottom = tuple(_lerp(texels[2][c], texels[3][c], blend_u) for c in range(4))
    return tuple(_lerp(top[c], bottom[c], blend_v) for c in range(4))


class TextureSampler:
    """Functional model of the texel sampler."""

    def __init__(self, memory):
        self.memory = memory

    def read_texel(self, state: TextureState, address: int) -> RGBA:
        """Fetch and format-convert one texel."""
        size = texel_size(state.fmt)
        raw_bytes = self.memory.read_bytes(address, size)
        raw = int.from_bytes(raw_bytes, "little")
        return decode_texel(state.fmt, raw)

    def sample(self, state: TextureState, u: float, v: float, lod: int) -> int:
        """Sample the texture at normalized ``(u, v)`` from mip level ``lod``.

        Returns the packed RGBA8 word the ``tex`` instruction writes to its
        destination register.
        """
        lod = min(max(int(lod), 0), state.max_lod)
        quad = self.quad_for(state, u, v, lod)
        texels = [self.read_texel(state, address) for address in quad.addresses]
        color = blend_quad(texels, quad.blend_u, quad.blend_v)
        return pack_rgba8(color)

    def quad_for(self, state: TextureState, u: float, v: float, lod: int) -> TexelQuad:
        """Generate the texel quad for one sample (shared with the timing unit)."""
        return generate_addresses(
            u=u,
            v=v,
            base=state.mip_base(lod),
            width_log2=state.width_log2,
            height_log2=state.height_log2,
            fmt=state.fmt,
            wrap=state.wrap,
            filter_mode=state.filter_mode,
            lod=lod,
        )
