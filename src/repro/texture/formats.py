"""Texture formats, wrap modes and filter modes.

The hardware sampler always produces an RGBA8888 color (one 32-bit word per
thread); source textures may be stored in any of the formats below and are
converted during sampling, which is the "format conversion" step of the
texel sampler in Figure 5.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

RGBA = tuple[int, int, int, int]


class TexFormat(IntEnum):
    """Source texel storage formats (a subset of the OpenGL-ES formats)."""

    RGBA8 = 0  # 4 bytes/texel, R in the low byte
    R8 = 1  # single channel replicated to RGB, alpha = 255
    RGB565 = 2  # 2 bytes/texel
    RGBA4 = 3  # 2 bytes/texel
    L8A8 = 4  # 2 bytes/texel, luminance + alpha


class TexWrap(IntEnum):
    """Texture coordinate wrap modes."""

    CLAMP = 0
    REPEAT = 1
    MIRROR = 2


class TexFilter(IntEnum):
    """Filtering modes selectable through the TEX_FILTER CSR."""

    POINT = 0
    BILINEAR = 1
    TRILINEAR = 2  # bilinear at two adjacent mip levels + fixed-point lerp


def texel_size(fmt: TexFormat) -> int:
    """Bytes per texel for ``fmt``."""
    if fmt == TexFormat.RGBA8:
        return 4
    if fmt == TexFormat.R8:
        return 1
    return 2


def _expand4(value: int) -> int:
    return (value << 4) | value


def _expand5(value: int) -> int:
    return (value << 3) | (value >> 2)


def _expand6(value: int) -> int:
    return (value << 2) | (value >> 4)


def decode_texel(fmt: TexFormat, raw: int) -> RGBA:
    """Convert a raw texel of format ``fmt`` to an (r, g, b, a) byte tuple."""
    if fmt == TexFormat.RGBA8:
        return (raw & 0xFF, (raw >> 8) & 0xFF, (raw >> 16) & 0xFF, (raw >> 24) & 0xFF)
    if fmt == TexFormat.R8:
        channel = raw & 0xFF
        return (channel, channel, channel, 0xFF)
    if fmt == TexFormat.RGB565:
        r = _expand5(raw & 0x1F)
        g = _expand6((raw >> 5) & 0x3F)
        b = _expand5((raw >> 11) & 0x1F)
        return (r, g, b, 0xFF)
    if fmt == TexFormat.RGBA4:
        return (
            _expand4(raw & 0xF),
            _expand4((raw >> 4) & 0xF),
            _expand4((raw >> 8) & 0xF),
            _expand4((raw >> 12) & 0xF),
        )
    if fmt == TexFormat.L8A8:
        luminance = raw & 0xFF
        alpha = (raw >> 8) & 0xFF
        return (luminance, luminance, luminance, alpha)
    raise ValueError(f"unknown texture format {fmt}")


def decode_texels(fmt: TexFormat, raw: np.ndarray) -> np.ndarray:
    """Vectorized :func:`decode_texel`: raw texel words -> ``(N, 4)`` channels.

    ``raw`` is a uint32 array of raw texel storage words; the result holds
    the (r, g, b, a) byte channels as uint32, matching the scalar decoder
    bit for bit.
    """
    raw = np.asarray(raw, dtype=np.uint32)
    out = np.empty((raw.shape[0], 4), dtype=np.uint32)
    if fmt == TexFormat.RGBA8:
        out[:, 0] = raw & np.uint32(0xFF)
        out[:, 1] = (raw >> np.uint32(8)) & np.uint32(0xFF)
        out[:, 2] = (raw >> np.uint32(16)) & np.uint32(0xFF)
        out[:, 3] = raw >> np.uint32(24)
        return out
    if fmt == TexFormat.R8:
        channel = raw & np.uint32(0xFF)
        out[:, 0] = channel
        out[:, 1] = channel
        out[:, 2] = channel
        out[:, 3] = 0xFF
        return out
    if fmt == TexFormat.RGB565:
        r5 = raw & np.uint32(0x1F)
        g6 = (raw >> np.uint32(5)) & np.uint32(0x3F)
        b5 = (raw >> np.uint32(11)) & np.uint32(0x1F)
        out[:, 0] = (r5 << np.uint32(3)) | (r5 >> np.uint32(2))
        out[:, 1] = (g6 << np.uint32(2)) | (g6 >> np.uint32(4))
        out[:, 2] = (b5 << np.uint32(3)) | (b5 >> np.uint32(2))
        out[:, 3] = 0xFF
        return out
    if fmt == TexFormat.RGBA4:
        for channel, shift in enumerate((0, 4, 8, 12)):
            nibble = (raw >> np.uint32(shift)) & np.uint32(0xF)
            out[:, channel] = (nibble << np.uint32(4)) | nibble
        return out
    if fmt == TexFormat.L8A8:
        luminance = raw & np.uint32(0xFF)
        out[:, 0] = luminance
        out[:, 1] = luminance
        out[:, 2] = luminance
        out[:, 3] = (raw >> np.uint32(8)) & np.uint32(0xFF)
        return out
    raise ValueError(f"unknown texture format {fmt}")


def pack_rgba8_many(channels: np.ndarray) -> np.ndarray:
    """Pack ``(N, 4)`` byte channels into packed RGBA8 uint32 words."""
    channels = channels.astype(np.uint32, copy=False)
    return (
        channels[:, 0]
        | (channels[:, 1] << np.uint32(8))
        | (channels[:, 2] << np.uint32(16))
        | (channels[:, 3] << np.uint32(24))
    )


def encode_texel(fmt: TexFormat, color: RGBA) -> int:
    """Convert an (r, g, b, a) byte tuple to the raw storage of ``fmt``."""
    r, g, b, a = (channel & 0xFF for channel in color)
    if fmt == TexFormat.RGBA8:
        return r | (g << 8) | (b << 16) | (a << 24)
    if fmt == TexFormat.R8:
        return r
    if fmt == TexFormat.RGB565:
        return (r >> 3) | ((g >> 2) << 5) | ((b >> 3) << 11)
    if fmt == TexFormat.RGBA4:
        return (r >> 4) | ((g >> 4) << 4) | ((b >> 4) << 8) | ((a >> 4) << 12)
    if fmt == TexFormat.L8A8:
        return r | (a << 8)
    raise ValueError(f"unknown texture format {fmt}")


def pack_rgba8(color: RGBA) -> int:
    """Pack an (r, g, b, a) tuple into the 32-bit RGBA8 word the sampler returns."""
    return encode_texel(TexFormat.RGBA8, color)


def unpack_rgba8(word: int) -> RGBA:
    """Unpack a 32-bit RGBA8 word."""
    return decode_texel(TexFormat.RGBA8, word)
