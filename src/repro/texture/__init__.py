"""Texture sampling: formats, address generation, filtering and the texture
unit microarchitecture (paper section 4.2).

The functional layer (:mod:`repro.texture.sampler`) computes what a ``tex``
instruction returns; the timing layer (:mod:`repro.texture.unit`) models the
three-stage texture unit of Figure 5 — address generation, the de-duplicating
texel memory scheduler in front of the data cache, and the two-cycle bilinear
sampler — and is what the Figure 20 experiment exercises.
"""

from repro.texture.formats import (
    TexFormat,
    TexWrap,
    TexFilter,
    texel_size,
    decode_texel,
    decode_texels,
    encode_texel,
)
from repro.texture.address import (
    TexelQuad,
    generate_addresses,
    generate_addresses_many,
    mip_dimensions,
)
from repro.texture.sampler import TextureSampler, TextureState
from repro.texture.unit import TextureUnit

__all__ = [
    "TexFormat",
    "TexWrap",
    "TexFilter",
    "texel_size",
    "decode_texel",
    "decode_texels",
    "encode_texel",
    "TexelQuad",
    "generate_addresses",
    "generate_addresses_many",
    "mip_dimensions",
    "TextureSampler",
    "TextureState",
    "TextureUnit",
]
