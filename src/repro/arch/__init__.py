"""Functional execution semantics for the Vortex ISA.

This package holds the *pure* parts of instruction execution: integer ALU
operations, IEEE-754 binary32 floating-point operations, and the CSR file
(including the texture-state CSRs).  The SIMT behaviour — thread masks,
IPDOM stacks, barriers, wavefront spawning — lives in :mod:`repro.core`,
which composes these primitives per warp.
"""

from repro.arch.alu import alu_op, mul_op, div_op
from repro.arch.fpu import fpu_op
from repro.arch.csr import CsrFile

__all__ = ["alu_op", "mul_op", "div_op", "fpu_op", "CsrFile"]
