"""Single-precision floating-point semantics (the RV32F subset Vortex uses).

Register values are stored as raw binary32 bit patterns (unsigned 32-bit
ints); every operation unpacks, computes in Python floats with a final
round-trip through binary32, and repacks.  This matches the behaviour of
the FPGA's DSP blocks closely enough for the paper's kernels, which only
rely on basic arithmetic, comparisons, conversions and fused multiply-add.
"""

from __future__ import annotations

import math

from repro.common.bitutils import bits_to_float, float_to_bits, to_int32, to_uint32

_F32_MAX_INT = (1 << 31) - 1
_F32_MIN_INT = -(1 << 31)


def _round32(value: float) -> int:
    """Round a Python float to the nearest binary32 and return its bits."""
    return float_to_bits(value)


def _is_nan_bits(word: int) -> bool:
    exponent = (word >> 23) & 0xFF
    mantissa = word & 0x7FFFFF
    return exponent == 0xFF and mantissa != 0


def _canonical_nan() -> int:
    return 0x7FC00000


def fpu_op(mnemonic: str, rs1: int, rs2: int = 0, rs3: int = 0) -> int:
    """Execute a floating-point operation on raw binary32 operands.

    Comparison and conversion results are returned as integer register
    values; everything else is returned as binary32 bits.
    """
    a = bits_to_float(rs1)
    b = bits_to_float(rs2)
    c = bits_to_float(rs3)

    if mnemonic == "fadd.s":
        return _round32(a + b)
    if mnemonic == "fsub.s":
        return _round32(a - b)
    if mnemonic == "fmul.s":
        return _round32(a * b)
    if mnemonic == "fdiv.s":
        if b == 0.0:
            if a == 0.0 or math.isnan(a):
                return _canonical_nan()
            return _round32(math.copysign(math.inf, a) * math.copysign(1.0, b))
        return _round32(a / b)
    if mnemonic == "fsqrt.s":
        if a < 0.0:
            return _canonical_nan()
        return _round32(math.sqrt(a))
    if mnemonic == "fmin.s":
        if math.isnan(a):
            return rs2 if not math.isnan(b) else _canonical_nan()
        if math.isnan(b):
            return rs1
        return _round32(min(a, b))
    if mnemonic == "fmax.s":
        if math.isnan(a):
            return rs2 if not math.isnan(b) else _canonical_nan()
        if math.isnan(b):
            return rs1
        return _round32(max(a, b))
    if mnemonic == "fsgnj.s":
        return (rs1 & 0x7FFFFFFF) | (rs2 & 0x80000000)
    if mnemonic == "fsgnjn.s":
        return (rs1 & 0x7FFFFFFF) | ((rs2 ^ 0x80000000) & 0x80000000)
    if mnemonic == "fsgnjx.s":
        return rs1 ^ (rs2 & 0x80000000)
    if mnemonic == "feq.s":
        if _is_nan_bits(rs1) or _is_nan_bits(rs2):
            return 0
        return 1 if a == b else 0
    if mnemonic == "flt.s":
        if _is_nan_bits(rs1) or _is_nan_bits(rs2):
            return 0
        return 1 if a < b else 0
    if mnemonic == "fle.s":
        if _is_nan_bits(rs1) or _is_nan_bits(rs2):
            return 0
        return 1 if a <= b else 0
    if mnemonic == "fcvt.w.s":
        return to_uint32(_float_to_int(a, signed=True))
    if mnemonic == "fcvt.wu.s":
        return to_uint32(_float_to_int(a, signed=False))
    if mnemonic == "fcvt.s.w":
        return _round32(float(to_int32(rs1)))
    if mnemonic == "fcvt.s.wu":
        return _round32(float(to_uint32(rs1)))
    if mnemonic == "fmv.x.w":
        return to_uint32(rs1)
    if mnemonic == "fmv.w.x":
        return to_uint32(rs1)
    if mnemonic == "fmadd.s":
        return _round32(a * b + c)
    if mnemonic == "fmsub.s":
        return _round32(a * b - c)
    if mnemonic == "fnmsub.s":
        return _round32(-(a * b) + c)
    if mnemonic == "fnmadd.s":
        return _round32(-(a * b) - c)
    raise ValueError(f"not a floating-point operation: {mnemonic}")


def _float_to_int(value: float, signed: bool) -> int:
    """Convert to integer with RISC-V saturation semantics (round toward zero)."""
    if math.isnan(value):
        return _F32_MAX_INT if signed else 0xFFFFFFFF
    truncated = math.trunc(value) if math.isfinite(value) else math.copysign(math.inf, value)
    if signed:
        if truncated >= _F32_MAX_INT:
            return _F32_MAX_INT
        if truncated <= _F32_MIN_INT:
            return _F32_MIN_INT
        return int(truncated)
    if truncated <= 0:
        return 0 if truncated > -1 else 0
    if truncated >= 0xFFFFFFFF:
        return 0xFFFFFFFF
    return int(truncated)
