"""Single-precision floating-point semantics (the RV32F subset Vortex uses).

Register values are stored as raw binary32 bit patterns (unsigned 32-bit
ints); every operation unpacks, computes in Python floats with a final
round-trip through binary32, and repacks.  This matches the behaviour of
the FPGA's DSP blocks closely enough for the paper's kernels, which only
rely on basic arithmetic, comparisons, conversions and fused multiply-add.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.common.bitutils import bits_to_float, float_to_bits, to_int32, to_uint32

_F32_MAX_INT = (1 << 31) - 1
_F32_MIN_INT = -(1 << 31)


def _round32(value: float) -> int:
    """Round a Python float to the nearest binary32 and return its bits.

    NaN results are canonicalized (0x7FC00000), as RISC-V mandates for
    every arithmetic operation producing NaN.
    """
    if value != value:  # NaN
        return _canonical_nan()
    return float_to_bits(value)


def _is_nan_bits(word: int) -> bool:
    exponent = (word >> 23) & 0xFF
    mantissa = word & 0x7FFFFF
    return exponent == 0xFF and mantissa != 0


def _canonical_nan() -> int:
    return 0x7FC00000


def fpu_op(mnemonic: str, rs1: int, rs2: int = 0, rs3: int = 0) -> int:
    """Execute a floating-point operation on raw binary32 operands.

    Comparison and conversion results are returned as integer register
    values; everything else is returned as binary32 bits.
    """
    a = bits_to_float(rs1)
    b = bits_to_float(rs2)
    c = bits_to_float(rs3)

    if mnemonic == "fadd.s":
        return _round32(a + b)
    if mnemonic == "fsub.s":
        return _round32(a - b)
    if mnemonic == "fmul.s":
        return _round32(a * b)
    if mnemonic == "fdiv.s":
        if b == 0.0:
            if a == 0.0 or math.isnan(a):
                return _canonical_nan()
            return _round32(math.copysign(math.inf, a) * math.copysign(1.0, b))
        return _round32(a / b)
    if mnemonic == "fsqrt.s":
        if a < 0.0:
            return _canonical_nan()
        return _round32(math.sqrt(a))
    if mnemonic == "fmin.s":
        if math.isnan(a):
            return rs2 if not math.isnan(b) else _canonical_nan()
        if math.isnan(b):
            return rs1
        return _round32(min(a, b))
    if mnemonic == "fmax.s":
        if math.isnan(a):
            return rs2 if not math.isnan(b) else _canonical_nan()
        if math.isnan(b):
            return rs1
        return _round32(max(a, b))
    if mnemonic == "fsgnj.s":
        return (rs1 & 0x7FFFFFFF) | (rs2 & 0x80000000)
    if mnemonic == "fsgnjn.s":
        return (rs1 & 0x7FFFFFFF) | ((rs2 ^ 0x80000000) & 0x80000000)
    if mnemonic == "fsgnjx.s":
        return rs1 ^ (rs2 & 0x80000000)
    if mnemonic == "feq.s":
        if _is_nan_bits(rs1) or _is_nan_bits(rs2):
            return 0
        return 1 if a == b else 0
    if mnemonic == "flt.s":
        if _is_nan_bits(rs1) or _is_nan_bits(rs2):
            return 0
        return 1 if a < b else 0
    if mnemonic == "fle.s":
        if _is_nan_bits(rs1) or _is_nan_bits(rs2):
            return 0
        return 1 if a <= b else 0
    if mnemonic == "fcvt.w.s":
        return to_uint32(_float_to_int(a, signed=True))
    if mnemonic == "fcvt.wu.s":
        return to_uint32(_float_to_int(a, signed=False))
    if mnemonic == "fcvt.s.w":
        return _round32(float(to_int32(rs1)))
    if mnemonic == "fcvt.s.wu":
        return _round32(float(to_uint32(rs1)))
    if mnemonic == "fmv.x.w":
        return to_uint32(rs1)
    if mnemonic == "fmv.w.x":
        return to_uint32(rs1)
    if mnemonic == "fmadd.s":
        return _round32(a * b + c)
    if mnemonic == "fmsub.s":
        return _round32(a * b - c)
    if mnemonic == "fnmsub.s":
        return _round32(-(a * b) + c)
    if mnemonic == "fnmadd.s":
        return _round32(-(a * b) - c)
    raise ValueError(f"not a floating-point operation: {mnemonic}")


def _float_to_int(value: float, signed: bool) -> int:
    """Convert to integer with RISC-V saturation semantics (round toward zero)."""
    if math.isnan(value):
        return _F32_MAX_INT if signed else 0xFFFFFFFF
    truncated = math.trunc(value) if math.isfinite(value) else math.copysign(math.inf, value)
    if signed:
        if truncated >= _F32_MAX_INT:
            return _F32_MAX_INT
        if truncated <= _F32_MIN_INT:
            return _F32_MIN_INT
        return int(truncated)
    if truncated <= 0:
        return 0 if truncated > -1 else 0
    if truncated >= 0xFFFFFFFF:
        return 0xFFFFFFFF
    return int(truncated)


# -- lane-vector forms -----------------------------------------------------------------
#
# Operands are numpy uint32 lane vectors holding raw binary32 bit patterns.
# Every operation mirrors the scalar path above bit for bit.  The scalar
# path computes in float64 (Python floats) and rounds once to binary32; for
# add/sub/mul the float64 intermediate is exact, so rounding it to binary32
# equals the correctly-rounded binary32 operation and the vector form
# computes directly in float32.  Division, square root and the fused
# multiply-add family keep the float64 intermediate (the scalar path's
# double rounding is part of the reference semantics), and the explicit
# special cases (canonical NaN on 0/0, NaN inputs to min/max, saturating
# conversions) are replicated with masked patches.

import numpy as np  # noqa: E402  (kept local to the vector section)

_CANONICAL_NAN_U32 = np.uint32(0x7FC00000)


def _bits_to_f64(bits: np.ndarray) -> np.ndarray:
    """Reinterpret uint32 lane bits as binary32, widened to float64."""
    return bits.view(np.float32).astype(np.float64)


def _f64_to_bits(values: np.ndarray) -> np.ndarray:
    """Round float64 lane values to binary32 and return the raw bits."""
    return values.astype(np.float32).view(np.uint32)


def _round_bits(values: np.ndarray) -> np.ndarray:
    """float32 lane values -> uint32 bits with RISC-V canonical NaNs."""
    return np.where(np.isnan(values), _CANONICAL_NAN_U32, values.view(np.uint32))


def _nan_bits_mask(bits: np.ndarray) -> np.ndarray:
    exponent = np.bitwise_and(np.right_shift(bits, np.uint32(23)), np.uint32(0xFF))
    mantissa = np.bitwise_and(bits, np.uint32(0x7FFFFF))
    return (exponent == 0xFF) & (mantissa != 0)


def _vec_fdiv(rs1: np.ndarray, rs2: np.ndarray) -> np.ndarray:
    a = _bits_to_f64(rs1)
    b = _bits_to_f64(rs2)
    with np.errstate(divide="ignore", invalid="ignore"):
        quotient = _round_bits((a / np.where(b != 0.0, b, 1.0)).astype(np.float32))
    zero_b = b == 0.0
    nan_case = zero_b & ((a == 0.0) | np.isnan(a))
    inf_case = zero_b & ~nan_case
    signed_inf = _f64_to_bits(np.copysign(np.inf, a) * np.copysign(1.0, b))
    result = np.where(inf_case, signed_inf, quotient)
    return np.where(nan_case, _CANONICAL_NAN_U32, result).astype(np.uint32)


def _vec_fsqrt(rs1: np.ndarray, rs2: np.ndarray) -> np.ndarray:
    a = _bits_to_f64(rs1)
    with np.errstate(invalid="ignore"):
        root = _round_bits(np.sqrt(np.where(a < 0.0, 0.0, a)).astype(np.float32))
    return np.where(a < 0.0, _CANONICAL_NAN_U32, root).astype(np.uint32)


def _vec_fminmax(rs1: np.ndarray, rs2: np.ndarray, use_max: bool) -> np.ndarray:
    a = rs1.view(np.float32)
    b = rs2.view(np.float32)
    nan_a = np.isnan(a)
    nan_b = np.isnan(b)
    picked = np.maximum(a, b) if use_max else np.minimum(a, b)
    # Python's min/max return the first operand on ties (so fmin(+0,-0) is
    # rs1), whereas numpy prefers -0/+0; replicate the scalar behaviour.
    # Selection never rounds, so float32 is exact here.
    picked = np.where(a == b, a, picked)
    # maximum/minimum propagate NaN; substitute zeros (the NaN cases are
    # patched in explicitly afterwards).
    result = np.where(nan_a | nan_b, np.float32(0.0), picked).view(np.uint32)
    result = np.where(nan_b & ~nan_a, rs1, result)
    result = np.where(nan_a & ~nan_b, rs2, result)
    return np.where(nan_a & nan_b, _CANONICAL_NAN_U32, result).astype(np.uint32)


def _vec_fcvt_from_float(rs1: np.ndarray, signed: bool) -> np.ndarray:
    a = _bits_to_f64(rs1)
    truncated = np.trunc(np.where(np.isnan(a), 0.0, a))
    if signed:
        clipped = np.clip(truncated, float(_F32_MIN_INT), float(_F32_MAX_INT))
        result = clipped.astype(np.int64).astype(np.uint32)
        return np.where(np.isnan(a), np.uint32(_F32_MAX_INT), result).astype(np.uint32)
    clipped = np.clip(truncated, 0.0, float(0xFFFFFFFF))
    result = clipped.astype(np.int64).astype(np.uint32)
    return np.where(np.isnan(a), np.uint32(0xFFFFFFFF), result).astype(np.uint32)


def _vec_compare(
    rs1: np.ndarray, rs2: np.ndarray, op: Callable[[np.ndarray, np.ndarray], np.ndarray]
) -> np.ndarray:
    # IEEE comparisons with NaN operands are False, matching the scalar
    # path's explicit NaN checks; comparisons never round, so float32 is
    # exact.
    with np.errstate(invalid="ignore"):
        return op(rs1.view(np.float32), rs2.view(np.float32)).astype(np.uint32)


def _mul64(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact float64 product of two binary32 lane vectors."""
    return np.multiply(a.view(np.float32), b.view(np.float32), dtype=np.float64)


_SIGN = np.uint32(0x80000000)
_MAG = np.uint32(0x7FFFFFFF)

FPU_VECTOR_OPS = {
    "fadd.s": lambda a, b, c: _round_bits(np.add(a.view(np.float32), b.view(np.float32))),
    "fsub.s": lambda a, b, c: _round_bits(np.subtract(a.view(np.float32), b.view(np.float32))),
    "fmul.s": lambda a, b, c: _round_bits(np.multiply(a.view(np.float32), b.view(np.float32))),
    "fdiv.s": lambda a, b, c: _vec_fdiv(a, b),
    "fsqrt.s": lambda a, b, c: _vec_fsqrt(a, b),
    "fmin.s": lambda a, b, c: _vec_fminmax(a, b, use_max=False),
    "fmax.s": lambda a, b, c: _vec_fminmax(a, b, use_max=True),
    "fsgnj.s": lambda a, b, c: np.bitwise_or(np.bitwise_and(a, _MAG), np.bitwise_and(b, _SIGN)),
    "fsgnjn.s": lambda a, b, c: np.bitwise_or(
        np.bitwise_and(a, _MAG), np.bitwise_and(np.bitwise_xor(b, _SIGN), _SIGN)
    ),
    "fsgnjx.s": lambda a, b, c: np.bitwise_xor(a, np.bitwise_and(b, _SIGN)),
    "feq.s": lambda a, b, c: _vec_compare(a, b, np.equal),
    "flt.s": lambda a, b, c: _vec_compare(a, b, np.less),
    "fle.s": lambda a, b, c: _vec_compare(a, b, np.less_equal),
    "fcvt.w.s": lambda a, b, c: _vec_fcvt_from_float(a, signed=True),
    "fcvt.wu.s": lambda a, b, c: _vec_fcvt_from_float(a, signed=False),
    "fcvt.s.w": lambda a, b, c: a.view(np.int32).astype(np.float32).view(np.uint32),
    "fcvt.s.wu": lambda a, b, c: a.astype(np.float32).view(np.uint32),
    "fmv.x.w": lambda a, b, c: a.copy(),
    "fmv.w.x": lambda a, b, c: a.copy(),
    "fmadd.s": lambda a, b, c: _round_bits(
        (_mul64(a, b) + c.view(np.float32)).astype(np.float32)
    ),
    "fmsub.s": lambda a, b, c: _round_bits(
        (_mul64(a, b) - c.view(np.float32)).astype(np.float32)
    ),
    "fnmsub.s": lambda a, b, c: _round_bits(
        (c.view(np.float32) - _mul64(a, b)).astype(np.float32)
    ),
    # Note operation order: -(a*b) - c, not -((a*b) + c) — they differ for
    # signed zeros.
    "fnmadd.s": lambda a, b, c: _round_bits(
        (np.negative(_mul64(a, b)) - c.view(np.float32)).astype(np.float32)
    ),
}


def fpu_op_vec(mnemonic: str, rs1: np.ndarray, rs2: np.ndarray, rs3: np.ndarray) -> np.ndarray:
    """Vectorized floating-point operation over raw-binary32 lane vectors."""
    op = FPU_VECTOR_OPS.get(mnemonic)
    if op is None:
        raise ValueError(f"not a floating-point operation: {mnemonic}")
    with np.errstate(all="ignore"):
        return op(rs1, rs2, rs3)
