"""The per-core CSR file.

Most CSRs are plain 32-bit storage written by kernels (texture state) or by
the hardware (cycle/instret counters).  The SIMT identification CSRs
(thread id, warp id, …) are *contextual*: their value depends on which
thread and warp performs the read, so reads go through :meth:`CsrFile.read`
with the reading context supplied by the core.
"""

from __future__ import annotations

from repro.common.bitutils import to_uint32
from repro.isa.csr import CSR, is_tex_csr


class CsrFile:
    """CSR storage plus the contextual SIMT identification registers."""

    def __init__(self, core_id: int, num_warps: int, num_threads: int, num_cores: int):
        self.core_id = core_id
        self.num_warps = num_warps
        self.num_threads = num_threads
        self.num_cores = num_cores
        self._storage: dict[int, int] = {}
        self.cycle = 0
        self.instret = 0
        #: Texture-state dirty counter: bumped by every write into a
        #: texture CSR block, so the texture unit can cache its CSR
        #: snapshot and re-read it only when the state actually changed.
        self.tex_epoch = 0

    # -- hardware-side hooks ------------------------------------------------------

    def tick(self, cycles: int = 1) -> None:
        """Advance the cycle counter."""
        self.cycle += cycles

    def retire(self, instructions: int = 1) -> None:
        """Advance the retired-instruction counter."""
        self.instret += instructions

    # -- kernel-side access --------------------------------------------------------

    def read(
        self,
        address: int,
        thread_id: int = 0,
        warp_id: int = 0,
        thread_mask: int = 0,
        warp_mask: int = 0,
    ) -> int:
        """Read a CSR in the context of ``thread_id`` of ``warp_id``."""
        address = int(address)
        if address == CSR.THREAD_ID:
            return thread_id
        if address == CSR.WARP_ID:
            return warp_id
        if address == CSR.CORE_ID:
            return self.core_id
        if address == CSR.THREAD_MASK:
            return to_uint32(thread_mask)
        if address == CSR.WARP_MASK:
            return to_uint32(warp_mask)
        if address == CSR.NUM_THREADS:
            return self.num_threads
        if address == CSR.NUM_WARPS:
            return self.num_warps
        if address == CSR.NUM_CORES:
            return self.num_cores
        if address == CSR.CYCLE:
            return to_uint32(self.cycle)
        if address == CSR.INSTRET:
            return to_uint32(self.instret)
        return self._storage.get(address, 0)

    def write(self, address: int, value: int) -> None:
        """Write a CSR.  Writes to read-only identification CSRs are ignored,
        matching the hardware's behaviour."""
        address = int(address)
        read_only = {
            int(CSR.THREAD_ID),
            int(CSR.WARP_ID),
            int(CSR.CORE_ID),
            int(CSR.THREAD_MASK),
            int(CSR.WARP_MASK),
            int(CSR.NUM_THREADS),
            int(CSR.NUM_WARPS),
            int(CSR.NUM_CORES),
            int(CSR.CYCLE),
            int(CSR.INSTRET),
        }
        if address in read_only:
            return
        if is_tex_csr(address):
            self.tex_epoch += 1
        self._storage[address] = to_uint32(value)

    def raw(self, address: int, default: int = 0) -> int:
        """Read backing storage without SIMT context (used by texture units)."""
        return self._storage.get(int(address), default)

    # -- checkpoint/restore --------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Serialize storage plus the hardware counters."""
        return {
            "storage": dict(self._storage),
            "cycle": self.cycle,
            "instret": self.instret,
            "tex_epoch": self.tex_epoch,
        }

    def restore(self, payload: dict[str, object]) -> None:
        """Restore CSR state from a :meth:`snapshot` payload."""
        storage = payload["storage"]
        assert isinstance(storage, dict)
        self._storage = dict(storage)
        self.cycle = int(payload["cycle"])  # type: ignore[call-overload]
        self.instret = int(payload["instret"])  # type: ignore[call-overload]
        self.tex_epoch = int(payload["tex_epoch"])  # type: ignore[call-overload]
