"""Integer ALU semantics (RV32I and RV32M).

All helpers take and return unsigned 32-bit integers (Python ints in
``[0, 2**32)``); signedness is applied internally per instruction exactly as
the RISC-V specification requires (e.g. ``div`` rounds toward zero, divide
by zero returns all-ones, ``INT_MIN / -1`` returns ``INT_MIN``).
"""

from __future__ import annotations

from repro.common.bitutils import to_int32, to_uint32

_INT_MIN = -(1 << 31)


def _shamt(value: int) -> int:
    return value & 0x1F


def alu_op(mnemonic: str, lhs: int, rhs: int) -> int:
    """Execute a base-ISA register/immediate ALU operation."""
    lhs = to_uint32(lhs)
    rhs = to_uint32(rhs)
    if mnemonic in ("add", "addi"):
        return to_uint32(lhs + rhs)
    if mnemonic == "sub":
        return to_uint32(lhs - rhs)
    if mnemonic in ("sll", "slli"):
        return to_uint32(lhs << _shamt(rhs))
    if mnemonic in ("slt", "slti"):
        return 1 if to_int32(lhs) < to_int32(rhs) else 0
    if mnemonic in ("sltu", "sltiu"):
        return 1 if lhs < rhs else 0
    if mnemonic in ("xor", "xori"):
        return lhs ^ rhs
    if mnemonic in ("srl", "srli"):
        return lhs >> _shamt(rhs)
    if mnemonic in ("sra", "srai"):
        return to_uint32(to_int32(lhs) >> _shamt(rhs))
    if mnemonic in ("or", "ori"):
        return lhs | rhs
    if mnemonic in ("and", "andi"):
        return lhs & rhs
    raise ValueError(f"not an ALU operation: {mnemonic}")


def mul_op(mnemonic: str, lhs: int, rhs: int) -> int:
    """Execute an RV32M multiply operation."""
    lhs_u = to_uint32(lhs)
    rhs_u = to_uint32(rhs)
    lhs_s = to_int32(lhs_u)
    rhs_s = to_int32(rhs_u)
    if mnemonic == "mul":
        return to_uint32(lhs_s * rhs_s)
    if mnemonic == "mulh":
        return to_uint32((lhs_s * rhs_s) >> 32)
    if mnemonic == "mulhsu":
        return to_uint32((lhs_s * rhs_u) >> 32)
    if mnemonic == "mulhu":
        return to_uint32((lhs_u * rhs_u) >> 32)
    raise ValueError(f"not a multiply operation: {mnemonic}")


def div_op(mnemonic: str, lhs: int, rhs: int) -> int:
    """Execute an RV32M divide/remainder operation (RISC-V corner cases)."""
    lhs_u = to_uint32(lhs)
    rhs_u = to_uint32(rhs)
    lhs_s = to_int32(lhs_u)
    rhs_s = to_int32(rhs_u)
    if mnemonic == "div":
        if rhs_s == 0:
            return to_uint32(-1)
        if lhs_s == _INT_MIN and rhs_s == -1:
            return to_uint32(_INT_MIN)
        return to_uint32(int(lhs_s / rhs_s))  # truncate toward zero
    if mnemonic == "divu":
        if rhs_u == 0:
            return to_uint32(-1)
        return lhs_u // rhs_u
    if mnemonic == "rem":
        if rhs_s == 0:
            return to_uint32(lhs_s)
        if lhs_s == _INT_MIN and rhs_s == -1:
            return 0
        return to_uint32(lhs_s - int(lhs_s / rhs_s) * rhs_s)
    if mnemonic == "remu":
        if rhs_u == 0:
            return lhs_u
        return lhs_u % rhs_u
    raise ValueError(f"not a divide operation: {mnemonic}")


def branch_taken(mnemonic: str, lhs: int, rhs: int) -> bool:
    """Evaluate a conditional-branch comparison."""
    lhs_u = to_uint32(lhs)
    rhs_u = to_uint32(rhs)
    if mnemonic == "beq":
        return lhs_u == rhs_u
    if mnemonic == "bne":
        return lhs_u != rhs_u
    if mnemonic == "blt":
        return to_int32(lhs_u) < to_int32(rhs_u)
    if mnemonic == "bge":
        return to_int32(lhs_u) >= to_int32(rhs_u)
    if mnemonic == "bltu":
        return lhs_u < rhs_u
    if mnemonic == "bgeu":
        return lhs_u >= rhs_u
    raise ValueError(f"not a branch: {mnemonic}")
