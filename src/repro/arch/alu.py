"""Integer ALU semantics (RV32I and RV32M).

All scalar helpers take and return unsigned 32-bit integers (Python ints in
``[0, 2**32)``); signedness is applied internally per instruction exactly as
the RISC-V specification requires (e.g. ``div`` rounds toward zero, divide
by zero returns all-ones, ``INT_MIN / -1`` returns ``INT_MIN``).

Two forms are exposed per operation class:

* per-mnemonic scalar tables (``ALU_OPS``, ``MUL_OPS``, ``DIV_OPS``,
  ``BRANCH_OPS``) used by the functional emulator's precomputed handler
  tables — one dictionary lookup replaces the old if-chains on the hot path;
* lane-vector forms (``alu_op_vec`` …) operating on whole-warp numpy
  ``uint32`` lane vectors, used by the vectorized execution engine.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.common.bitutils import to_int32, to_uint32

_INT_MIN = -(1 << 31)
_U32_ONES = np.uint32(0xFFFFFFFF)


def _shamt(value: int) -> int:
    return value & 0x1F


# -- scalar per-mnemonic tables --------------------------------------------------------

def _slt(lhs: int, rhs: int) -> int:
    return 1 if to_int32(lhs) < to_int32(rhs) else 0


def _sra(lhs: int, rhs: int) -> int:
    return to_uint32(to_int32(lhs) >> _shamt(rhs))


#: Base-ISA register/immediate ALU operations on uint32 scalars.
ALU_OPS: dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: (a + b) & 0xFFFFFFFF,
    "addi": lambda a, b: (a + b) & 0xFFFFFFFF,
    "sub": lambda a, b: (a - b) & 0xFFFFFFFF,
    "sll": lambda a, b: (a << (b & 0x1F)) & 0xFFFFFFFF,
    "slli": lambda a, b: (a << (b & 0x1F)) & 0xFFFFFFFF,
    "slt": _slt,
    "slti": _slt,
    "sltu": lambda a, b: 1 if a < b else 0,
    "sltiu": lambda a, b: 1 if a < b else 0,
    "xor": lambda a, b: a ^ b,
    "xori": lambda a, b: a ^ b,
    "srl": lambda a, b: a >> (b & 0x1F),
    "srli": lambda a, b: a >> (b & 0x1F),
    "sra": _sra,
    "srai": _sra,
    "or": lambda a, b: a | b,
    "ori": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "andi": lambda a, b: a & b,
}


def _mul(lhs_s: int, rhs_s: int, lhs_u: int, rhs_u: int) -> int:
    return to_uint32(lhs_s * rhs_s)


MUL_OPS: dict[str, Callable[[int, int, int, int], int]] = {
    "mul": _mul,
    "mulh": lambda ls, rs, lu, ru: to_uint32((ls * rs) >> 32),
    "mulhsu": lambda ls, rs, lu, ru: to_uint32((ls * ru) >> 32),
    "mulhu": lambda ls, rs, lu, ru: to_uint32((lu * ru) >> 32),
}


def _div(lhs_s: int, rhs_s: int, lhs_u: int, rhs_u: int) -> int:
    if rhs_s == 0:
        return 0xFFFFFFFF
    if lhs_s == _INT_MIN and rhs_s == -1:
        return to_uint32(_INT_MIN)
    return to_uint32(int(lhs_s / rhs_s))  # truncate toward zero


def _rem(lhs_s: int, rhs_s: int, lhs_u: int, rhs_u: int) -> int:
    if rhs_s == 0:
        return to_uint32(lhs_s)
    if lhs_s == _INT_MIN and rhs_s == -1:
        return 0
    return to_uint32(lhs_s - int(lhs_s / rhs_s) * rhs_s)


DIV_OPS: dict[str, Callable[[int, int, int, int], int]] = {
    "div": _div,
    "divu": lambda ls, rs, lu, ru: 0xFFFFFFFF if ru == 0 else lu // ru,
    "rem": _rem,
    "remu": lambda ls, rs, lu, ru: lu if ru == 0 else lu % ru,
}


BRANCH_OPS: dict[str, Callable[[int, int], bool]] = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: to_int32(a) < to_int32(b),
    "bge": lambda a, b: to_int32(a) >= to_int32(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}


# -- scalar wrappers (stable public API) ------------------------------------------------

def alu_op(mnemonic: str, lhs: int, rhs: int) -> int:
    """Execute a base-ISA register/immediate ALU operation."""
    op = ALU_OPS.get(mnemonic)
    if op is None:
        raise ValueError(f"not an ALU operation: {mnemonic}")
    return op(to_uint32(lhs), to_uint32(rhs))


def mul_op(mnemonic: str, lhs: int, rhs: int) -> int:
    """Execute an RV32M multiply operation."""
    op = MUL_OPS.get(mnemonic)
    if op is None:
        raise ValueError(f"not a multiply operation: {mnemonic}")
    lhs_u = to_uint32(lhs)
    rhs_u = to_uint32(rhs)
    return op(to_int32(lhs_u), to_int32(rhs_u), lhs_u, rhs_u)


def div_op(mnemonic: str, lhs: int, rhs: int) -> int:
    """Execute an RV32M divide/remainder operation (RISC-V corner cases)."""
    op = DIV_OPS.get(mnemonic)
    if op is None:
        raise ValueError(f"not a divide operation: {mnemonic}")
    lhs_u = to_uint32(lhs)
    rhs_u = to_uint32(rhs)
    return op(to_int32(lhs_u), to_int32(rhs_u), lhs_u, rhs_u)


def branch_taken(mnemonic: str, lhs: int, rhs: int) -> bool:
    """Evaluate a conditional-branch comparison."""
    op = BRANCH_OPS.get(mnemonic)
    if op is None:
        raise ValueError(f"not a branch: {mnemonic}")
    return op(to_uint32(lhs), to_uint32(rhs))


# -- lane-vector forms -----------------------------------------------------------------
#
# Operands and results are numpy uint32 arrays holding one value per active
# lane.  Semantics are bit-identical to the scalar tables above: wrap-around
# arithmetic, RISC-V shift-amount masking, signed comparisons through an
# int32 reinterpretation, and the div/rem corner cases.

def _as_i32(values: np.ndarray) -> np.ndarray:
    """Reinterpret a uint32 lane vector as int32 (no copy)."""
    return values.view(np.int32)


def _vec_sll(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    return np.left_shift(lhs, np.bitwise_and(rhs, np.uint32(0x1F)))


def _vec_srl(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    return np.right_shift(lhs, np.bitwise_and(rhs, np.uint32(0x1F)))


def _vec_sra(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    shifted = np.right_shift(_as_i32(lhs), np.bitwise_and(rhs, np.uint32(0x1F)).astype(np.int32))
    return shifted.view(np.uint32)


def _vec_slt(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    return (np.less(_as_i32(lhs), _as_i32(rhs))).astype(np.uint32)


def _vec_sltu(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    return np.less(lhs, rhs).astype(np.uint32)


ALU_VECTOR_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "add": np.add,
    "addi": np.add,
    "sub": np.subtract,
    "sll": _vec_sll,
    "slli": _vec_sll,
    "slt": _vec_slt,
    "slti": _vec_slt,
    "sltu": _vec_sltu,
    "sltiu": _vec_sltu,
    "xor": np.bitwise_xor,
    "xori": np.bitwise_xor,
    "srl": _vec_srl,
    "srli": _vec_srl,
    "sra": _vec_sra,
    "srai": _vec_sra,
    "or": np.bitwise_or,
    "ori": np.bitwise_or,
    "and": np.bitwise_and,
    "andi": np.bitwise_and,
}


def alu_op_vec(mnemonic: str, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Vectorized base-ISA ALU operation over uint32 lane vectors."""
    op = ALU_VECTOR_OPS.get(mnemonic)
    if op is None:
        raise ValueError(f"not an ALU operation: {mnemonic}")
    result = op(lhs, rhs)
    return result if result.dtype == np.uint32 else result.astype(np.uint32)


def _vec_mulh_generic(lhs: np.ndarray, rhs: np.ndarray, lhs_signed: bool, rhs_signed: bool) -> np.ndarray:
    wide_l = _as_i32(lhs).astype(np.int64) if lhs_signed else lhs.astype(np.int64)
    wide_r = _as_i32(rhs).astype(np.int64) if rhs_signed else rhs.astype(np.int64)
    return ((wide_l * wide_r) >> 32).astype(np.uint32)


MUL_VECTOR_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "mul": np.multiply,  # uint32 wrap-around == signed low word
    "mulh": lambda l, r: _vec_mulh_generic(l, r, True, True),
    "mulhsu": lambda l, r: _vec_mulh_generic(l, r, True, False),
    "mulhu": lambda l, r: _vec_mulh_generic(l, r, False, False),
}


def mul_op_vec(mnemonic: str, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Vectorized RV32M multiply over uint32 lane vectors."""
    op = MUL_VECTOR_OPS.get(mnemonic)
    if op is None:
        raise ValueError(f"not a multiply operation: {mnemonic}")
    return op(lhs, rhs)


def _vec_div(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    ls = _as_i32(lhs).astype(np.int64)
    rs = _as_i32(rhs).astype(np.int64)
    with np.errstate(divide="ignore", invalid="ignore"):
        quotient = np.where(rs != 0, np.fix(ls / np.where(rs != 0, rs, 1)), -1)
    quotient = np.where((ls == _INT_MIN) & (rs == -1), _INT_MIN, quotient)
    return quotient.astype(np.int64).astype(np.uint32)


def _vec_divu(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    safe = np.where(rhs != 0, rhs, np.uint32(1))
    return np.where(rhs != 0, lhs // safe, _U32_ONES).astype(np.uint32)


def _vec_rem(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    ls = _as_i32(lhs).astype(np.int64)
    rs = _as_i32(rhs).astype(np.int64)
    quotient = np.fix(ls / np.where(rs != 0, rs, 1)).astype(np.int64)
    remainder = ls - quotient * rs
    remainder = np.where(rs == 0, ls, remainder)
    remainder = np.where((ls == _INT_MIN) & (rs == -1), 0, remainder)
    return remainder.astype(np.uint32)


def _vec_remu(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    safe = np.where(rhs != 0, rhs, np.uint32(1))
    return np.where(rhs != 0, lhs % safe, lhs).astype(np.uint32)


DIV_VECTOR_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "div": _vec_div,
    "divu": _vec_divu,
    "rem": _vec_rem,
    "remu": _vec_remu,
}


def div_op_vec(mnemonic: str, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Vectorized RV32M divide/remainder over uint32 lane vectors."""
    op = DIV_VECTOR_OPS.get(mnemonic)
    if op is None:
        raise ValueError(f"not a divide operation: {mnemonic}")
    return op(lhs, rhs)


BRANCH_VECTOR_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "beq": np.equal,
    "bne": np.not_equal,
    "blt": lambda a, b: np.less(_as_i32(a), _as_i32(b)),
    "bge": lambda a, b: np.greater_equal(_as_i32(a), _as_i32(b)),
    "bltu": np.less,
    "bgeu": np.greater_equal,
}


def branch_taken_vec(mnemonic: str, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Vectorized conditional-branch comparison: one bool per lane."""
    op = BRANCH_VECTOR_OPS.get(mnemonic)
    if op is None:
        raise ValueError(f"not a branch: {mnemonic}")
    return op(lhs, rhs)
