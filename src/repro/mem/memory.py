"""Sparse byte-addressable device memory.

Device memory is modeled as a dictionary of fixed-size numpy pages
allocated on first touch, so a 4 GB address space costs nothing until
used.  All simulator drivers, the texture units and the command-processor
driver share one instance per device, exactly as the FPGA board's local
memory is shared between the AFU and the cores.

Each page keeps two views of the same backing store: a ``uint8`` byte view
(the byte-level API used by DMA and :class:`DeviceBuffer`) and a
little-endian ``uint32`` word view used by the vectorized execution
engine's gather/scatter paths, which service a whole warp's coalesced
loads and stores with a handful of numpy operations.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable

import numpy as np

from repro.common.bitutils import to_uint32

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1
_WORD_DTYPE = np.dtype("<u4")
_HALF_DTYPE = np.dtype("<u2")


class MemoryAccessError(Exception):
    """Raised on malformed accesses (misaligned words, negative sizes …)."""


class MainMemory:
    """Byte-addressable sparse memory with word/halfword/byte accessors."""

    def __init__(self):
        #: page index -> (uint8 byte view, uint32 word view) of one backing array
        self._pages: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.reads = 0
        self.writes = 0

    # -- page helpers ---------------------------------------------------------------

    def _page(self, address: int) -> tuple[np.ndarray, np.ndarray]:
        page_index = address >> 12
        page = self._pages.get(page_index)
        if page is None:
            data = np.zeros(PAGE_SIZE, dtype=np.uint8)
            page = (data, data.view(_WORD_DTYPE))
            self._pages[page_index] = page
        return page

    @property
    def allocated_bytes(self) -> int:
        """Total bytes of backing storage currently allocated."""
        return len(self._pages) * PAGE_SIZE

    def page_snapshot(self) -> dict[int, bytes]:
        """Canonical content snapshot: non-zero pages keyed by page index.

        All-zero pages are omitted so two memories are equal iff their
        snapshots are equal, regardless of which pages were merely touched.
        """
        snapshot: dict[int, bytes] = {}
        for index, (data, _) in self._pages.items():
            if data.any():
                snapshot[index] = data.tobytes()
        return snapshot

    # -- checkpoint/restore -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize the memory image (sparse: non-zero pages only).

        Page payloads are immutable ``bytes`` copies, so a snapshot held
        across further execution is copy-on-write friendly by construction —
        later stores never alias into it.
        """
        return {
            "pages": self.page_snapshot(),
            "reads": self.reads,
            "writes": self.writes,
        }

    def restore(self, payload: dict) -> None:
        """Restore the memory image from a :meth:`snapshot` payload."""
        self._pages.clear()
        for index, raw in payload["pages"].items():
            data = np.frombuffer(raw, dtype=np.uint8).copy()
            self._pages[index] = (data, data.view(_WORD_DTYPE))
        self.reads = payload["reads"]
        self.writes = payload["writes"]

    # -- raw byte access --------------------------------------------------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``address``."""
        if size < 0:
            raise MemoryAccessError(f"negative read size: {size}")
        address = to_uint32(address)
        result = bytearray()
        remaining = size
        while remaining > 0:
            data, _ = self._page(address)
            offset = address & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            result += data[offset : offset + chunk].tobytes()
            address = to_uint32(address + chunk)
            remaining -= chunk
        self.reads += 1
        return bytes(result)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        address = to_uint32(address)
        view = memoryview(data)
        while view:
            page, _ = self._page(address)
            offset = address & PAGE_MASK
            chunk = min(len(view), PAGE_SIZE - offset)
            page[offset : offset + chunk] = np.frombuffer(view[:chunk], dtype=np.uint8)
            address = to_uint32(address + chunk)
            view = view[chunk:]
        self.writes += 1

    # -- typed accessors ---------------------------------------------------------------

    def read_word(self, address: int) -> int:
        """Read a little-endian 32-bit word (must be 4-byte aligned)."""
        if address & 3:
            raise MemoryAccessError(f"misaligned word read at {address:#x}")
        address = to_uint32(address)
        _, words = self._page(address)
        self.reads += 1
        return int(words[(address & PAGE_MASK) >> 2])

    def write_word(self, address: int, value: int) -> None:
        """Write a little-endian 32-bit word (must be 4-byte aligned)."""
        if address & 3:
            raise MemoryAccessError(f"misaligned word write at {address:#x}")
        address = to_uint32(address)
        _, words = self._page(address)
        words[(address & PAGE_MASK) >> 2] = to_uint32(value)
        self.writes += 1

    def read_half(self, address: int) -> int:
        if address & 1:
            raise MemoryAccessError(f"misaligned halfword read at {address:#x}")
        address = to_uint32(address)
        data, _ = self._page(address)
        offset = address & PAGE_MASK
        self.reads += 1
        return int(data[offset]) | (int(data[offset + 1]) << 8)

    def write_half(self, address: int, value: int) -> None:
        if address & 1:
            raise MemoryAccessError(f"misaligned halfword write at {address:#x}")
        address = to_uint32(address)
        data, _ = self._page(address)
        offset = address & PAGE_MASK
        data[offset] = value & 0xFF
        data[offset + 1] = (value >> 8) & 0xFF
        self.writes += 1

    def read_byte(self, address: int) -> int:
        address = to_uint32(address)
        data, _ = self._page(address)
        self.reads += 1
        return int(data[address & PAGE_MASK])

    def write_byte(self, address: int, value: int) -> None:
        address = to_uint32(address)
        data, _ = self._page(address)
        data[address & PAGE_MASK] = value & 0xFF
        self.writes += 1

    # -- vector gather/scatter (whole-warp coalesced accesses) --------------------------

    def gather_words(self, addresses: np.ndarray) -> np.ndarray:
        """Read one 32-bit word per lane address (4-byte aligned each).

        The single-page case — a warp's coalesced load — is serviced with
        one fancy-indexed numpy read; page-straddling gathers group the
        lanes by page and do one fancy-indexed read per touched page.
        Alignment and the same-page test share two reductions: the OR of
        all addresses carries any misaligned low bit, and OR == AND over
        the page field iff every lane hits one page.
        """
        ored = int(np.bitwise_or.reduce(addresses))
        if ored & 3:
            for address in addresses:
                if int(address) & 3:
                    raise MemoryAccessError(f"misaligned word read at {int(address):#x}")
        anded = int(np.bitwise_and.reduce(addresses))
        if (ored >> 12) == (anded >> 12):
            _, words = self._page(ored)
            self.reads += len(addresses)
            return words[np.bitwise_and(addresses, PAGE_MASK) >> np.uint32(2)]
        # Page-straddling gather: group the lanes by page and service each
        # page with one fancy-indexed read (large textures span many pages).
        out = np.empty(len(addresses), dtype=np.uint32)
        pages = addresses >> np.uint32(12)
        for page_index in np.unique(pages):
            selected = pages == page_index
            _, words = self._page(int(page_index) << 12)
            out[selected] = words[
                np.bitwise_and(addresses[selected], PAGE_MASK) >> np.uint32(2)
            ]
        self.reads += len(addresses)
        return out

    def scatter_words(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Write one 32-bit word per lane address (4-byte aligned each).

        Lane order is preserved for duplicate addresses (the highest lane
        wins, matching sequential per-thread emulation; numpy fancy
        assignment stores values in index order).
        """
        ored = int(np.bitwise_or.reduce(addresses))
        if ored & 3:
            for address in addresses:
                if int(address) & 3:
                    raise MemoryAccessError(f"misaligned word write at {int(address):#x}")
        anded = int(np.bitwise_and.reduce(addresses))
        if (ored >> 12) == (anded >> 12):
            _, words = self._page(ored)
            words[np.bitwise_and(addresses, PAGE_MASK) >> np.uint32(2)] = values
            self.writes += len(addresses)
            return
        for lane, address in enumerate(addresses):
            self.write_word(int(address), int(values[lane]))

    def gather_bytes(self, addresses: np.ndarray) -> np.ndarray:
        """Read one byte per lane address."""
        ored = int(np.bitwise_or.reduce(addresses))
        anded = int(np.bitwise_and.reduce(addresses))
        if (ored >> 12) == (anded >> 12):
            data, _ = self._page(ored)
            self.reads += len(addresses)
            return data[np.bitwise_and(addresses, PAGE_MASK)].astype(np.uint32)
        out = np.empty(len(addresses), dtype=np.uint32)
        pages = addresses >> np.uint32(12)
        for page_index in np.unique(pages):
            selected = pages == page_index
            data, _ = self._page(int(page_index) << 12)
            out[selected] = data[np.bitwise_and(addresses[selected], PAGE_MASK)]
        self.reads += len(addresses)
        return out

    def scatter_bytes(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Write one byte per lane address (highest lane wins on duplicates)."""
        ored = int(np.bitwise_or.reduce(addresses))
        anded = int(np.bitwise_and.reduce(addresses))
        if (ored >> 12) == (anded >> 12):
            data, _ = self._page(ored)
            data[np.bitwise_and(addresses, PAGE_MASK)] = np.bitwise_and(
                values, np.uint32(0xFF)
            ).astype(np.uint8)
            self.writes += len(addresses)
            return
        for lane, address in enumerate(addresses):
            self.write_byte(int(address), int(values[lane]))

    def gather_halves(self, addresses: np.ndarray) -> np.ndarray:
        """Read one 16-bit halfword per lane address (2-byte aligned each)."""
        if np.bitwise_and(addresses, 1).any():
            bad = addresses[np.bitwise_and(addresses, 1) != 0][0]
            raise MemoryAccessError(f"misaligned halfword read at {int(bad):#x}")
        out = np.empty(len(addresses), dtype=np.uint32)
        pages = addresses >> np.uint32(12)
        for page_index in np.unique(pages):
            selected = pages == page_index
            data, _ = self._page(int(page_index) << 12)
            halves = data.view(_HALF_DTYPE)
            out[selected] = halves[
                np.bitwise_and(addresses[selected], PAGE_MASK) >> np.uint32(1)
            ]
        self.reads += len(addresses)
        return out

    def scatter_halves(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Write one 16-bit halfword per lane address (2-byte aligned each)."""
        if np.bitwise_and(addresses, 1).any():
            bad = addresses[np.bitwise_and(addresses, 1) != 0][0]
            raise MemoryAccessError(f"misaligned halfword write at {int(bad):#x}")
        for lane, address in enumerate(addresses):
            self.write_half(int(address), int(values[lane]))

    def word_cursor(self) -> WordCursor:
        """A per-call-site cursor that memoizes the last page touched."""
        return WordCursor(self)

    # -- bulk helpers -------------------------------------------------------------------

    def load_words(self, address: int, words: Iterable[int]) -> None:
        """Write a sequence of 32-bit words starting at ``address``."""
        words = list(words)
        self.write_bytes(address, struct.pack(f"<{len(words)}I", *(to_uint32(w) for w in words)))

    def read_words(self, address: int, count: int) -> list:
        """Read ``count`` consecutive 32-bit words."""
        data = self.read_bytes(address, count * 4)
        return list(struct.unpack(f"<{count}I", data))

    def fill(self, address: int, size: int, value: int = 0) -> None:
        """Fill ``size`` bytes with a byte value."""
        self.write_bytes(address, bytes([value & 0xFF]) * size)


class WordCursor:
    """Page-memoizing word gather/scatter front end for one access site.

    A warp's loads/stores from one program point overwhelmingly hit the
    same page run after run; the cursor caches that page's word view so the
    steady-state cost is a single numpy reduction (which validates both
    page residency and 4-byte alignment: relative offsets OR-ed together
    stay below the page size with clear low bits iff every lane does).
    """

    __slots__ = ("memory", "page_start", "words")

    def __init__(self, memory: MainMemory):
        self.memory = memory
        self.page_start = np.uint32(0)
        self.words = None

    def _re_anchor(self, addresses: np.ndarray) -> None:
        base = int(addresses[0]) & ~PAGE_MASK
        self.page_start = np.uint32(base)
        self.words = self.memory._page(base)[1]

    def gather(self, addresses: np.ndarray) -> np.ndarray:
        relative = addresses - self.page_start
        if self.words is not None:
            packed = int(np.bitwise_or.reduce(relative))
            if packed < PAGE_SIZE and not (packed & 3):
                # reads/writes count per-lane accesses on every path.
                self.memory.reads += relative.shape[0]
                return self.words.take(relative >> np.uint32(2))
        result = self.memory.gather_words(addresses)
        self._re_anchor(addresses)
        return result

    def scatter(self, addresses: np.ndarray, values: np.ndarray) -> None:
        relative = addresses - self.page_start
        if self.words is not None:
            packed = int(np.bitwise_or.reduce(relative))
            if packed < PAGE_SIZE and not (packed & 3):
                self.words.put(relative >> np.uint32(2), values)
                self.memory.writes += relative.shape[0]
                return
        self.memory.scatter_words(addresses, values)
        self._re_anchor(addresses)
