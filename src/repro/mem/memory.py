"""Sparse byte-addressable device memory.

Device memory is modeled as a dictionary of fixed-size pages allocated on
first touch, so a 4 GB address space costs nothing until used.  All
simulator drivers, the texture units and the command-processor driver
share one instance per device, exactly as the FPGA board's local memory is
shared between the AFU and the cores.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable

from repro.common.bitutils import to_uint32

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1


class MemoryAccessError(Exception):
    """Raised on malformed accesses (misaligned words, negative sizes …)."""


class MainMemory:
    """Byte-addressable sparse memory with word/halfword/byte accessors."""

    def __init__(self):
        self._pages: Dict[int, bytearray] = {}
        self.reads = 0
        self.writes = 0

    # -- page helpers ---------------------------------------------------------------

    def _page(self, address: int) -> bytearray:
        page_index = address >> 12
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_index] = page
        return page

    @property
    def allocated_bytes(self) -> int:
        """Total bytes of backing storage currently allocated."""
        return len(self._pages) * PAGE_SIZE

    # -- raw byte access --------------------------------------------------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``address``."""
        if size < 0:
            raise MemoryAccessError(f"negative read size: {size}")
        address = to_uint32(address)
        result = bytearray()
        remaining = size
        while remaining > 0:
            page = self._page(address)
            offset = address & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            result += page[offset : offset + chunk]
            address = to_uint32(address + chunk)
            remaining -= chunk
        self.reads += 1
        return bytes(result)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        address = to_uint32(address)
        view = memoryview(data)
        while view:
            page = self._page(address)
            offset = address & PAGE_MASK
            chunk = min(len(view), PAGE_SIZE - offset)
            page[offset : offset + chunk] = view[:chunk]
            address = to_uint32(address + chunk)
            view = view[chunk:]
        self.writes += 1

    # -- typed accessors ---------------------------------------------------------------

    def read_word(self, address: int) -> int:
        """Read a little-endian 32-bit word (must be 4-byte aligned)."""
        if address & 3:
            raise MemoryAccessError(f"misaligned word read at {address:#x}")
        return struct.unpack("<I", self.read_bytes(address, 4))[0]

    def write_word(self, address: int, value: int) -> None:
        """Write a little-endian 32-bit word (must be 4-byte aligned)."""
        if address & 3:
            raise MemoryAccessError(f"misaligned word write at {address:#x}")
        self.write_bytes(address, struct.pack("<I", to_uint32(value)))

    def read_half(self, address: int) -> int:
        if address & 1:
            raise MemoryAccessError(f"misaligned halfword read at {address:#x}")
        return struct.unpack("<H", self.read_bytes(address, 2))[0]

    def write_half(self, address: int, value: int) -> None:
        if address & 1:
            raise MemoryAccessError(f"misaligned halfword write at {address:#x}")
        self.write_bytes(address, struct.pack("<H", value & 0xFFFF))

    def read_byte(self, address: int) -> int:
        return self.read_bytes(address, 1)[0]

    def write_byte(self, address: int, value: int) -> None:
        self.write_bytes(address, bytes([value & 0xFF]))

    # -- bulk helpers -------------------------------------------------------------------

    def load_words(self, address: int, words: Iterable[int]) -> None:
        """Write a sequence of 32-bit words starting at ``address``."""
        words = list(words)
        self.write_bytes(address, struct.pack(f"<{len(words)}I", *(to_uint32(w) for w in words)))

    def read_words(self, address: int, count: int) -> list:
        """Read ``count`` consecutive 32-bit words."""
        data = self.read_bytes(address, count * 4)
        return list(struct.unpack(f"<{count}I", data))

    def fill(self, address: int, size: int, value: int = 0) -> None:
        """Fill ``size`` bytes with a byte value."""
        self.write_bytes(address, bytes([value & 0xFF]) * size)
