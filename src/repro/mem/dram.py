"""Off-chip memory timing model.

The cycle-level driver routes every cache miss through a :class:`DramModel`
configured with a fixed access ``latency`` and a ``bandwidth`` expressed as
the number of line-sized responses the device can return per cycle — the
two knobs Figure 21 sweeps.  Requests enter a bounded queue (deadlock rule
from section 4.3: the cache never lets this queue fill up), wait out the
latency, and are released in order subject to the bandwidth limit.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.common.config import MemoryConfig
from repro.common.perf import PerfCounters, hot_path
from repro.trace.events import NO_WARP


def _identity_tag(tag: Any) -> Any:
    return tag


@dataclass
class MemRequest:
    """A line-sized request sent to off-chip memory."""

    address: int
    is_write: bool = False
    tag: Any = None
    issue_cycle: int = 0


@dataclass
class MemResponse:
    """A completed memory request."""

    address: int
    is_write: bool
    tag: Any
    complete_cycle: int


@dataclass
class _InFlight:
    request: MemRequest
    ready_cycle: int


class DramModel:
    """Fixed-latency, bandwidth-limited memory device."""

    #: Counter schema (vxlint VX003).
    COUNTERS = frozenset(
        {
            "rejected",
            "reads",
            "writes",
            "responses",
            "total_latency",
            "bandwidth_stalls",
            "cycles",
        }
    )

    #: Construction-time timing parameters (vxlint VX007).
    SNAPSHOT_EXCLUDED = frozenset({"config", "trace"})

    def __init__(self, config: MemoryConfig | None = None):
        self.config = config or MemoryConfig()
        self._queue: deque[_InFlight] = deque()
        self._cycle = 0
        self.perf = PerfCounters("dram")
        # Observability (attached by MemorySubsystem.attach_trace): one
        # ``dram`` event per completed response.  Rejections are deliberately
        # *not* traced — the fast-forward skips provably-refused retry storms,
        # and its replayed event stream must match the ticked one exactly.
        self.trace: Any = None

    # -- request side -----------------------------------------------------------------

    @property
    def can_accept(self) -> bool:
        """True when the request queue has room this cycle."""
        return len(self._queue) < self.config.request_queue_size

    @hot_path
    def send(self, request: MemRequest) -> bool:
        """Queue a request; returns False when the queue is full."""
        if not self.can_accept:
            self.perf.incr("rejected")
            return False
        request.issue_cycle = self._cycle
        self._queue.append(_InFlight(request=request, ready_cycle=self._cycle + self.config.latency))
        self.perf.incr("writes" if request.is_write else "reads")
        return True

    # -- clocking --------------------------------------------------------------------

    def tick(self) -> list[MemResponse]:
        """Advance one cycle and return the responses completing this cycle."""
        self._cycle += 1
        responses: list[MemResponse] = []
        budget = self.config.bandwidth
        trace = self.trace
        while budget > 0 and self._queue and self._queue[0].ready_cycle <= self._cycle:
            in_flight = self._queue.popleft()
            responses.append(
                MemResponse(
                    address=in_flight.request.address,
                    is_write=in_flight.request.is_write,
                    tag=in_flight.request.tag,
                    complete_cycle=self._cycle,
                )
            )
            latency = self._cycle - in_flight.request.issue_cycle
            self.perf.incr("total_latency", latency)
            self.perf.incr("responses")
            if trace is not None:
                trace.emit(
                    self._cycle,
                    -1,
                    NO_WARP,
                    "dram",
                    "response",
                    {
                        "address": in_flight.request.address,
                        "write": in_flight.request.is_write,
                        "latency": latency,
                    },
                )
            budget -= 1
        if self._queue and self._queue[0].ready_cycle <= self._cycle and budget == 0:
            self.perf.incr("bandwidth_stalls")
        self.perf.incr("cycles")
        return responses

    # -- fast-forward ------------------------------------------------------------------

    def next_event_cycle(self) -> int | None:
        """Cycle of the next in-order release (``None`` when the queue is empty).

        Requests complete in order with a fixed latency, so the head of the
        queue carries the earliest ready cycle.  A head that is *already*
        ready (bandwidth-limited last tick) reports its past ready cycle,
        which the fast-forward caller treats as "event next tick" — the
        ``bandwidth_stalls`` accounting must keep running every cycle.
        """
        if not self._queue:
            return None
        return self._queue[0].ready_cycle

    def skip_idle(self, cycles: int) -> None:
        """Advance ``cycles`` provably idle cycles in one jump (nothing ready
        inside the window: no releases, no bandwidth stalls, just the clock)."""
        self._cycle += cycles
        self.perf.incr("cycles", cycles)

    # -- checkpoint/restore ------------------------------------------------------------

    def snapshot(self, encode_tag: Callable[[Any], Any] | None = None) -> dict:
        """Serialize queue and clock state.

        ``encode_tag`` maps request tags to plain data — fill tags carry a
        live cache reference, which :class:`~repro.cache.hierarchy.MemorySubsystem`
        encodes by cache name and rebinds on restore.
        """
        encode = encode_tag if encode_tag is not None else _identity_tag
        return {
            "cycle": self._cycle,
            "queue": [
                {
                    "address": in_flight.request.address,
                    "is_write": in_flight.request.is_write,
                    "tag": encode(in_flight.request.tag),
                    "issue_cycle": in_flight.request.issue_cycle,
                    "ready_cycle": in_flight.ready_cycle,
                }
                for in_flight in self._queue
            ],
            "perf": self.perf.snapshot(),
        }

    def restore(self, payload: dict, decode_tag: Callable[[Any], Any] | None = None) -> None:
        """Restore queue and clock state from a :meth:`snapshot` payload."""
        decode = decode_tag if decode_tag is not None else _identity_tag
        self._cycle = payload["cycle"]
        self._queue.clear()
        for item in payload["queue"]:
            self._queue.append(
                _InFlight(
                    request=MemRequest(
                        address=item["address"],
                        is_write=item["is_write"],
                        tag=decode(item["tag"]),
                        issue_cycle=item["issue_cycle"],
                    ),
                    ready_cycle=item["ready_cycle"],
                )
            )
        self.perf.restore(payload["perf"])

    # -- inspection -------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of requests currently in flight."""
        return len(self._queue)

    @property
    def average_latency(self) -> float:
        """Observed average request latency including queueing delay."""
        return self.perf.ratio("total_latency", "responses")

    def drain_cycles(self) -> int:
        """Cycles needed to drain the current queue (used by tests)."""
        if not self._queue:
            return 0
        last_ready = self._queue[-1].ready_cycle
        backlog = (len(self._queue) + self.config.bandwidth - 1) // self.config.bandwidth
        return max(last_ready - self._cycle, backlog)
