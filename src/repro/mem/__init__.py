"""Memory system: the device's global memory and its timing model.

``MainMemory`` is the functional backing store shared by every simulator
driver (sparse, byte-addressable).  ``DramModel`` adds the latency and
bandwidth behaviour the cycle-level driver needs, and is the component the
Figure 21 memory-scaling experiment sweeps.
"""

from repro.mem.memory import MainMemory, MemoryAccessError
from repro.mem.dram import DramModel, MemRequest, MemResponse

__all__ = ["MainMemory", "MemoryAccessError", "DramModel", "MemRequest", "MemResponse"]
