"""Batched multi-kernel simulation sessions.

Design-space exploration runs *many* (kernel, config) combinations — the
paper's Figures 14 and 18–21 each sweep a grid of design points.  A
:class:`Session` turns that sweep into a batch: jobs are described
declaratively as :class:`KernelJob` records, queued on a
:class:`JobQueue`, and executed concurrently on a process pool (one
simulator per worker, true parallelism) or a thread pool, each job on its
own freshly-constructed :class:`~repro.runtime.device.VortexDevice`.

Results come back as :class:`JobResult` records aggregating the
:class:`~repro.runtime.report.ExecutionReport`, the verification outcome
and per-job wall-clock, plus batch-level statistics (total wall time,
peak concurrency measured from the jobs' actual execution intervals).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import VortexConfig


@dataclass(frozen=True)
class KernelJob:
    """One (kernel, config) point of a sweep.

    ``engine`` optionally pins the execution engine behind the driver:
    ``None`` keeps the driver default (the vectorized engine for both
    ``simx`` and ``funcsim``), ``"scalar"`` selects the per-thread reference
    path (useful for differential sweeps), ``"vector"`` is explicit about
    the default.  Design-space batches therefore run the vectorized
    cycle-level core unless a job opts out.
    """

    kernel: str
    config: VortexConfig = field(default_factory=VortexConfig)
    driver: str = "simx"
    engine: Optional[str] = None
    size: Optional[int] = None
    label: str = ""
    verify: bool = True

    @property
    def driver_name(self) -> str:
        """The device driver string selecting this job's engine variant.

        An explicit ``engine`` always wins over a ``-scalar``-suffixed
        driver string, in both directions, so sweeps can toggle the engine
        on a fixed base driver.
        """
        base = self.driver
        suffixed = base.endswith("-scalar")
        if self.engine is None:
            return base
        if self.engine == "vector":
            return base[: -len("-scalar")] if suffixed else base
        if self.engine == "scalar":
            return base if suffixed else f"{base}-scalar"
        raise ValueError(f"unknown engine {self.engine!r} (use 'scalar' or 'vector')")

    def describe(self) -> str:
        cfg = self.config
        return (
            self.label
            or f"{self.kernel}@{self.driver_name}"
            f"[{cfg.num_cores}C-{cfg.num_warps}W-{cfg.num_threads}T]"
        )


@dataclass
class JobResult:
    """Outcome of one executed job."""

    job: KernelJob
    report: Optional[object] = None  # ExecutionReport (None when the job errored)
    passed: bool = False
    wall_seconds: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.passed


def execute_job(job: KernelJob) -> JobResult:
    """Run one job on a fresh device (module-level: picklable for pools)."""
    from repro.kernels import KERNELS
    from repro.runtime.device import VortexDevice

    started = time.time()
    clock = time.perf_counter()
    try:
        kernel_cls = KERNELS[job.kernel]
        device = VortexDevice(job.config, driver=job.driver_name)
        run = kernel_cls().run(device, size=job.size, verify=job.verify)
        wall = time.perf_counter() - clock
        return JobResult(
            job=job,
            report=run.report,
            passed=run.passed,
            wall_seconds=wall,
            started_at=started,
            finished_at=time.time(),
        )
    except Exception as exc:  # pragma: no cover - exercised via error-path test
        wall = time.perf_counter() - clock
        return JobResult(
            job=job,
            wall_seconds=wall,
            started_at=started,
            finished_at=time.time(),
            error=f"{type(exc).__name__}: {exc}",
        )


class JobQueue:
    """A FIFO of jobs waiting for the next batch run."""

    def __init__(self, jobs: Optional[Sequence[KernelJob]] = None):
        self._jobs: List[KernelJob] = list(jobs or [])

    def add(self, job: KernelJob) -> None:
        self._jobs.append(job)

    def extend(self, jobs: Sequence[KernelJob]) -> None:
        self._jobs.extend(jobs)

    def drain(self) -> List[KernelJob]:
        """Remove and return all queued jobs."""
        jobs, self._jobs = self._jobs, []
        return jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self):
        return iter(self._jobs)


@dataclass
class BatchReport:
    """Aggregate outcome of one :meth:`Session.run_batch` call."""

    results: List[JobResult]
    wall_seconds: float
    max_workers: int
    executor: str

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def peak_concurrency(self) -> int:
        """Largest number of jobs whose execution intervals overlapped."""
        events: List[Tuple[float, int]] = []
        for result in self.results:
            events.append((result.started_at, 1))
            events.append((result.finished_at, -1))
        peak = current = 0
        for _, delta in sorted(events):
            current += delta
            peak = max(peak, current)
        return peak

    @property
    def total_simulated_instructions(self) -> int:
        return sum(r.report.instructions for r in self.results if r.report is not None)

    def by_label(self) -> Dict[str, JobResult]:
        return {result.job.describe(): result for result in self.results}

    def summary(self) -> str:
        status = "ok" if self.ok else "FAILED"
        return (
            f"[session] {len(self.results)} jobs in {self.wall_seconds:.2f}s "
            f"({self.executor} x{self.max_workers}, peak {self.peak_concurrency} "
            f"concurrent) {status}"
        )


class Session:
    """Launches batches of (kernel, config) jobs concurrently.

    ``executor`` selects the pool type: ``"process"`` (default when the
    platform supports fork) runs each job in a worker process for true
    parallelism; ``"thread"`` uses threads (lighter weight, still
    concurrent, useful under constrained environments and in tests);
    ``"serial"`` runs inline (debugging).
    """

    def __init__(self, max_workers: Optional[int] = None, executor: Optional[str] = None):
        if executor is None:
            executor = "process" if hasattr(os, "fork") else "thread"
        if executor not in ("process", "thread", "serial"):
            raise ValueError(f"unknown executor {executor!r}")
        self.executor = executor
        # Floor of 4: even on small hosts a batch should overlap several
        # simulations (jobs block on different pages/pool pipes, and the
        # acceptance bar for a sweep is >= 4 jobs in flight).
        self.max_workers = max_workers or max(4, min(8, os.cpu_count() or 4))
        self.queue = JobQueue()

    # -- job submission -----------------------------------------------------------------

    def submit(self, job: KernelJob) -> None:
        """Queue one job for the next batch."""
        self.queue.add(job)

    def submit_sweep(
        self,
        kernel: str,
        configs: Sequence[VortexConfig],
        driver: str = "simx",
        size: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> None:
        """Queue one job per configuration for the same kernel."""
        for config in configs:
            self.queue.add(
                KernelJob(kernel=kernel, config=config, driver=driver, size=size, engine=engine)
            )

    # -- execution ----------------------------------------------------------------------

    def run_batch(self, jobs: Optional[Sequence[KernelJob]] = None) -> BatchReport:
        """Execute ``jobs`` (or everything queued) concurrently.

        Results are returned in submission order regardless of completion
        order.  A failing job never aborts the batch: its ``JobResult``
        carries the error string instead.
        """
        batch = list(jobs) if jobs is not None else self.queue.drain()
        start = time.perf_counter()
        if not batch:
            return BatchReport([], 0.0, self.max_workers, self.executor)
        if self.executor == "serial" or len(batch) == 1:
            results = [execute_job(job) for job in batch]
        else:
            pool_cls = ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
            try:
                pool = pool_cls(max_workers=self.max_workers)
            except (OSError, ImportError):
                # The pool could not be brought up at all (constrained
                # sandbox): degrade to in-process execution.
                results = [execute_job(job) for job in batch]
            else:
                results = self._run_on_pool(pool, batch)
        wall = time.perf_counter() - start
        return BatchReport(results, wall, self.max_workers, self.executor)

    @staticmethod
    def _run_on_pool(pool, batch: List[KernelJob]) -> List[JobResult]:
        """Submit one future per job and collect results in order.

        If a worker dies (e.g. a poison job is OOM-killed, breaking the
        pool), completed jobs keep their results and the broken or
        never-submitted ones are marked failed — the batch is never rerun
        in the parent process.
        """
        with pool:
            futures: List[Optional[object]] = []
            submit_error: Optional[str] = None
            for job in batch:
                if submit_error is None:
                    try:
                        futures.append(pool.submit(execute_job, job))
                    except BrokenExecutor as exc:
                        submit_error = f"{type(exc).__name__}: {exc}"
                        futures.append(None)
                else:
                    futures.append(None)
            results: List[JobResult] = []
            for job, future in zip(batch, futures):
                if future is None:
                    results.append(JobResult(job=job, error=submit_error))
                    continue
                try:
                    results.append(future.result())
                except Exception as exc:
                    results.append(JobResult(job=job, error=f"{type(exc).__name__}: {exc}"))
        return results


def design_point_jobs(
    kernel: str,
    points: Dict[str, Tuple[int, int]],
    base: Optional[VortexConfig] = None,
    driver: str = "simx",
    size: Optional[int] = None,
) -> List[KernelJob]:
    """Jobs for the Table-3-style (warps, threads) design points."""
    base = base or VortexConfig()
    jobs = []
    for label, (warps, threads) in points.items():
        config = base.with_warps_threads(warps, threads)
        jobs.append(
            KernelJob(kernel=kernel, config=config, driver=driver, size=size, label=label)
        )
    return jobs
