"""Batched multi-kernel simulation sessions.

Design-space exploration runs *many* (kernel, config) combinations — the
paper's Figures 14 and 18-21 each sweep a grid of design points.  A
:class:`Session` turns that sweep into a batch: jobs are described
declaratively as :class:`KernelJob` records, queued on a
:class:`JobQueue`, and executed concurrently on a process pool (one
simulator per worker, true parallelism), a thread pool, or — for
repeat-heavy traffic — the sharded :mod:`repro.service` job server with
its content-addressed result cache (``executor="service"``).

Results come back as :class:`JobResult` records aggregating the
:class:`~repro.runtime.report.ExecutionReport`, the verification outcome
and per-job wall-clock, plus batch-level statistics (total wall time,
peak concurrency measured from the jobs' actual execution intervals).

Because the simulators are deterministic, a job's result is fully
determined by its content: :meth:`KernelJob.cache_key` is the canonical
identity — a stable hash over the program bytes, the full config payload,
the resolved driver spec and the launch options — that the service layer
caches and dedups on.

:meth:`Session.run_differential` turns the same job grid into a
first-class differential sweep: every job runs on both execution engines
of its simulator and **every** performance counter is diffed, returning a
:class:`DifferentialReport` (the reusable form of the fixed-point
Fig 14/19/20 differential tests).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field, replace
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING, Any

from repro.common.config import VortexConfig
from repro.runtime.launch import LaunchOptions
from repro.runtime.registry import DriverSpec, parse_driver_spec
from repro.runtime.report import ExecutionReport
from repro.runtime.serialize import (
    config_payload,
    content_digest,
    options_payload,
    spec_payload,
)

if TYPE_CHECKING:
    from repro.service.client import ServiceClient
    from repro.service.server import ServiceConfig

#: Program-image digests per kernel name (assembly is deterministic, so the
#: digest is a pure function of the kernel; memoized because ``cache_key``
#: may be called once per submission on high-volume service traffic).
_PROGRAM_DIGESTS: dict[str, tuple[str, int, int]] = {}


def _program_digest(kernel_name: str) -> tuple[str, int, int]:
    """``(sha256, base, entry)`` of the kernel's assembled program image."""
    cached = _PROGRAM_DIGESTS.get(kernel_name)
    if cached is None:
        import hashlib

        from repro.kernels import KERNELS

        program = KERNELS[kernel_name]().build_program()
        cached = (
            hashlib.sha256(program.to_bytes()).hexdigest(),
            program.base,
            program.entry,
        )
        _PROGRAM_DIGESTS[kernel_name] = cached
    return cached


@dataclass(frozen=True)
class KernelJob:
    """One (kernel, config) point of a sweep.

    ``driver`` is a driver spec — a canonical spec string
    (``"simx"``, ``"simx:engine=scalar"``) or a
    :class:`~repro.runtime.registry.DriverSpec`; the legacy suffix strings
    still parse (with a :class:`DeprecationWarning`).  ``engine``
    optionally pins the execution engine on top of the spec: ``None``
    keeps the spec's selection (the vectorized engine by default),
    ``"scalar"`` the per-thread reference path, ``"vector"`` is explicit
    about the default.  An explicit ``engine`` always wins over the spec's
    own engine, so sweeps can toggle the engine on a fixed base driver.

    ``options`` (a :class:`~repro.runtime.launch.LaunchOptions`) rides
    through the device launch to the driver, bounding the job uniformly on
    any backend.
    """

    kernel: str
    config: VortexConfig = field(default_factory=VortexConfig)
    driver: str | DriverSpec = "simx"
    engine: str | None = None
    size: int | None = None
    label: str = ""
    verify: bool = True
    options: LaunchOptions | None = None
    #: Execute via the checkpoint/restore midpoint path: run to a fixed
    #: midpoint, checkpoint, restore into a *fresh* device and finish there.
    #: The result must be bit-identical to a straight-through run — this is
    #: the differential grid's restore leg.
    restart_midpoint: bool = False

    @property
    def spec(self) -> DriverSpec:
        """The resolved :class:`DriverSpec` selecting this job's driver."""
        spec = parse_driver_spec(self.driver)
        if self.engine is not None:
            spec = spec.with_engine(self.engine)
        return spec

    @property
    def driver_name(self) -> str:
        """The canonical spec string of :attr:`spec`."""
        return self.spec.driver_name

    def describe(self) -> str:
        cfg = self.config
        return (
            self.label
            or f"{self.kernel}@{self.driver_name}"
            f"[{cfg.num_cores}C-{cfg.num_warps}W-{cfg.num_threads}T]"
        )

    def cache_key(self) -> str:
        """Stable content hash identifying *what this job computes*.

        The key covers everything the deterministic simulators consume —
        the assembled program bytes (with image base and entry point), the
        problem size (``size=None`` resolves to the kernel's default, since
        both launch identically), the verification flag, the full config
        payload, the resolved driver spec and the launch options — via the
        canonical encodings of :mod:`repro.runtime.serialize`.  Equal jobs
        hash equal even when constructed differently (legacy suffix driver
        strings normalize to their canonical spec; ``engine=None`` resolves
        to the simulator's default engine); any semantic field perturbation
        changes the key.

        ``label`` is deliberately excluded: it is presentation metadata and
        does not change the computed result, so relabeled resubmissions of
        the same job still hit the service cache.

        Raises ``KeyError`` for a kernel name not in the registry — such a
        job has no content to key (the service treats it as uncacheable and
        lets the worker report the deterministic failure).
        """
        from repro.kernels import KERNELS

        program_sha, base, entry = _program_digest(self.kernel)
        size = self.size if self.size is not None else KERNELS[self.kernel]().default_size()
        material: dict[str, Any] = {
            "program": program_sha,
            "base": base,
            "entry": entry,
            "kernel": self.kernel,
            "size": size,
            "verify": self.verify,
            "config": config_payload(self.config),
            "spec": spec_payload(self.spec),
            "options": options_payload(self.options),
        }
        if self.restart_midpoint:
            # Only keyed when set, so every pre-existing job keeps its key.
            # The restore path *should* compute the identical result, but a
            # serializer bug must surface as a differential mismatch — never
            # be masked by a cache hit on the straight-through result.
            material["restart_midpoint"] = True
        return content_digest(material)


@dataclass
class JobResult:
    """Outcome of one executed job."""

    job: KernelJob
    report: ExecutionReport | None = None
    passed: bool = False
    wall_seconds: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    error: str | None = None
    #: Machine-readable exception type when the job errored: the raising
    #: exception's class name for deterministic kernel failures
    #: (``"KeyError"``, ``"SimulationLimitExceeded"``) or the service-level
    #: infrastructure classifications (``"WorkerCrash"``, ``"JobTimeout"``).
    #: Retry policies branch on this — infrastructure failures are
    #: retryable, deterministic failures are not.
    error_type: str | None = None
    #: Execution attempts the backend made (1 = the first try answered).
    attempts: int = 1
    #: True when the result was served without executing — from the
    #: service's content-addressed cache or by inflight deduplication.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and self.passed

    def to_payload(self) -> dict[str, Any]:
        """A JSON-ready payload (report serialized via its own payload)."""
        return {
            "job": {
                "kernel": self.job.kernel,
                "label": self.job.label,
                "driver": self.job.driver_name,
                "size": self.job.size,
                "verify": self.job.verify,
            },
            "scenario": self.job.describe(),
            "ok": self.ok,
            "passed": self.passed,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "cached": self.cached,
            "report": self.report.to_payload() if self.report is not None else None,
        }


def execute_job(job: KernelJob) -> JobResult:
    """Run one job on a fresh device (module-level: picklable for pools)."""
    from repro.kernels import KERNELS
    from repro.runtime.device import VortexDevice

    if job.restart_midpoint:
        return execute_job_restart(job)
    started = time.time()
    clock = time.perf_counter()
    try:
        kernel_cls = KERNELS[job.kernel]
        device = VortexDevice(job.config, driver=job.spec)
        run = kernel_cls().run(device, size=job.size, verify=job.verify, options=job.options)
        wall = time.perf_counter() - clock
        return JobResult(
            job=job,
            report=run.report,
            passed=run.passed,
            wall_seconds=wall,
            started_at=started,
            finished_at=time.time(),
        )
    except Exception as exc:  # pragma: no cover - exercised via error-path test
        wall = time.perf_counter() - clock
        return JobResult(
            job=job,
            wall_seconds=wall,
            started_at=started,
            finished_at=time.time(),
            error=f"{type(exc).__name__}: {exc}",
            error_type=type(exc).__name__,
        )


#: Midpoint at which restart-leg jobs pause and checkpoint: cycles on the
#: cycle-level driver, retired warp instructions on the functional one.
#: Small enough that every grid kernel is genuinely mid-flight.
RESTART_MIDPOINT_UNITS = 400


def _rebind_buffers(value: Any, device: Any) -> None:
    """Re-point every :class:`DeviceBuffer` in a context at ``device``.

    A verification context built against one device carries buffers bound
    to it; after a checkpoint is restored into a *different* device the
    buffers must read the restored memory.  Walks the context containers
    (kernel contexts are small dicts of buffers/arrays/scalars).
    """
    from repro.runtime.buffer import DeviceBuffer

    if isinstance(value, DeviceBuffer):
        value.device = device
    elif isinstance(value, dict):
        for item in value.values():
            _rebind_buffers(item, device)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _rebind_buffers(item, device)


def execute_job_restart(job: KernelJob) -> JobResult:
    """Run a job through the checkpoint/restore midpoint path.

    The kernel runs to a fixed midpoint on a first device, a versioned
    checkpoint is taken and pushed through a pickle round-trip (proving the
    envelope is cross-process safe), restored into a *fresh* device, and
    the run finishes there.  If the kernel completes before the midpoint
    the leg degrades to a straight-through run — still a valid comparison.
    The acceptance property: the returned report is bit-identical to an
    uninterrupted run's.
    """
    import pickle

    from repro.kernels import KERNELS
    from repro.runtime.device import VortexDevice

    started = time.time()
    clock = time.perf_counter()
    try:
        kernel = KERNELS[job.kernel]()
        size = job.size if job.size is not None else kernel.default_size()
        device = VortexDevice(job.config, driver=job.spec)
        program = kernel.build_program()
        device.upload_program(program)
        context = kernel.setup(device, size)
        driver = device.driver
        if hasattr(driver.processor, "cycle"):
            report = driver.run(
                program.entry, options=job.options, stop_cycle=RESTART_MIDPOINT_UNITS
            )
        else:
            report = driver.run(
                program.entry,
                options=job.options,
                stop_after_instructions=RESTART_MIDPOINT_UNITS,
            )
        if not driver.done:
            envelope = pickle.loads(pickle.dumps(device.checkpoint()))
            device = VortexDevice(job.config, driver=job.spec)
            device.restore(envelope)
            _rebind_buffers(context, device)
            report = device.driver.run(None, options=job.options, resume=True)
        passed = kernel.verify(device, context) if job.verify else True
        wall = time.perf_counter() - clock
        return JobResult(
            job=job,
            report=report,
            passed=passed,
            wall_seconds=wall,
            started_at=started,
            finished_at=time.time(),
        )
    except Exception as exc:
        wall = time.perf_counter() - clock
        return JobResult(
            job=job,
            wall_seconds=wall,
            started_at=started,
            finished_at=time.time(),
            error=f"{type(exc).__name__}: {exc}",
            error_type=type(exc).__name__,
        )


def execute_job_checkpointed(
    job: KernelJob,
    *,
    checkpoint_every: int,
    checkpoint_sink: Any = None,
    resume_from: dict | None = None,
) -> JobResult:
    """Run one job inline with periodic device checkpoints.

    ``checkpoint_every`` is measured in the driver's natural unit (cycles
    on the cycle-level driver, instructions on the functional one); after
    each paused chunk ``checkpoint_sink`` receives the device's envelope.
    ``resume_from`` continues a previously checkpointed run: the envelope
    is restored into a fresh device and the verification context is
    rebuilt deterministically (kernel setup is seeded) on a scratch device,
    with its buffers rebound to the restored one.
    """
    from repro.kernels import KERNELS
    from repro.runtime.device import VortexDevice

    started = time.time()
    clock = time.perf_counter()
    try:
        kernel = KERNELS[job.kernel]()
        size = job.size if job.size is not None else kernel.default_size()
        device = VortexDevice(job.config, driver=job.spec)
        if resume_from is not None:
            device.restore(resume_from)
            # Rebuild the verification context on a scratch device (setup is
            # deterministic: seeded RNG, fresh bump allocator) and point its
            # buffers at the restored device.
            scratch = VortexDevice(job.config, driver="funcsim")
            scratch.upload_program(kernel.build_program())
            context = kernel.setup(scratch, size)
            _rebind_buffers(context, device)
        else:
            device.upload_program(kernel.build_program())
            context = kernel.setup(device, size)
        report = device.launch_resumable(
            options=job.options,
            checkpoint_every=checkpoint_every,
            checkpoint_sink=checkpoint_sink,
            resume=resume_from is not None,
        )
        passed = kernel.verify(device, context) if job.verify else True
        wall = time.perf_counter() - clock
        return JobResult(
            job=job,
            report=report,
            passed=passed,
            wall_seconds=wall,
            started_at=started,
            finished_at=time.time(),
        )
    except Exception as exc:
        wall = time.perf_counter() - clock
        return JobResult(
            job=job,
            wall_seconds=wall,
            started_at=started,
            finished_at=time.time(),
            error=f"{type(exc).__name__}: {exc}",
            error_type=type(exc).__name__,
        )


class JobQueue:
    """A FIFO of jobs waiting for the next batch run."""

    def __init__(self, jobs: Sequence[KernelJob] | None = None):
        self._jobs: list[KernelJob] = list(jobs or [])

    def add(self, job: KernelJob) -> None:
        self._jobs.append(job)

    def extend(self, jobs: Sequence[KernelJob]) -> None:
        self._jobs.extend(jobs)

    def drain(self) -> list[KernelJob]:
        """Remove and return all queued jobs."""
        jobs, self._jobs = self._jobs, []
        return jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[KernelJob]:
        return iter(self._jobs)


@dataclass
class BatchReport:
    """Aggregate outcome of one :meth:`Session.run_batch` call."""

    results: list[JobResult]
    wall_seconds: float
    max_workers: int
    executor: str

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def peak_concurrency(self) -> int:
        """Largest number of jobs whose execution intervals overlapped."""
        events: list[tuple[float, int]] = []
        for result in self.results:
            events.append((result.started_at, 1))
            events.append((result.finished_at, -1))
        peak = current = 0
        for _, delta in sorted(events):
            current += delta
            peak = max(peak, current)
        return peak

    @property
    def total_simulated_instructions(self) -> int:
        return sum(r.report.instructions for r in self.results if r.report is not None)

    @property
    def cache_hits(self) -> int:
        """Jobs served without execution (service cache or inflight dedup)."""
        return sum(1 for result in self.results if result.cached)

    def by_label(self) -> dict[str, JobResult]:
        return {result.job.describe(): result for result in self.results}

    def to_payload(self) -> dict[str, Any]:
        """A JSON-ready payload built from each result's own payload."""
        return {
            "benchmark": "session batch",
            "generated_by": "Session.run_batch",
            "ok": self.ok,
            "wall_seconds": self.wall_seconds,
            "executor": self.executor,
            "max_workers": self.max_workers,
            "cache_hits": self.cache_hits,
            "results": [result.to_payload() for result in self.results],
        }

    def summary(self) -> str:
        status = "ok" if self.ok else "FAILED"
        return (
            f"[session] {len(self.results)} jobs in {self.wall_seconds:.2f}s "
            f"({self.executor} x{self.max_workers}, peak {self.peak_concurrency} "
            f"concurrent) {status}"
        )


def diff_execution_reports(reference: ExecutionReport, subject: ExecutionReport) -> list[str]:
    """Diff two :class:`ExecutionReport`\\ s down to every counter.

    Returns human-readable ``"what: ref != subj"`` strings; empty means the
    reports are bit-identical in cycles, instruction counts and every
    per-component performance counter.
    """
    diffs: list[str] = []
    for attr in ("cycles", "instructions", "thread_instructions"):
        ref, subj = getattr(reference, attr), getattr(subject, attr)
        if ref != subj:
            diffs.append(f"{attr}: {ref} != {subj}")
    components = sorted(set(reference.counters) | set(subject.counters))
    for component in components:
        ref_counters = reference.counters.get(component, {})
        subj_counters = subject.counters.get(component, {})
        for name in sorted(set(ref_counters) | set(subj_counters)):
            ref_count = ref_counters.get(name, 0)
            subj_count = subj_counters.get(name, 0)
            if ref_count != subj_count:
                diffs.append(f"{component}.{name}: {ref_count} != {subj_count}")
    return diffs


@dataclass
class DifferentialResult:
    """One job executed on both engines, with the full counter diff."""

    job: KernelJob
    scalar: JobResult
    vector: JobResult
    mismatches: list[str] = field(default_factory=list)
    #: Sweep-unique label (collisions between unlabeled jobs get a suffix).
    label: str = ""
    #: Optional third leg: the same point run through the checkpoint/restore
    #: midpoint path (``KernelJob.restart_midpoint``).  ``mismatches``
    #: includes its diff against the straight-through vector run.
    restored: JobResult | None = None

    @property
    def ok(self) -> bool:
        """Every executed leg ran and verified."""
        legs_ok = self.scalar.ok and self.vector.ok
        if self.restored is not None:
            legs_ok = legs_ok and self.restored.ok
        return legs_ok

    @property
    def identical_counters(self) -> bool:
        """Both runs succeeded and every diffed quantity matched."""
        return self.ok and not self.mismatches

    def describe(self) -> str:
        return self.label or self.job.describe()


@dataclass
class DifferentialReport:
    """Aggregate outcome of one :meth:`Session.run_differential` sweep."""

    results: list[DifferentialResult]
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def identical_counters(self) -> bool:
        """True when every swept job matched on every counter."""
        return all(result.identical_counters for result in self.results)

    @property
    def mismatching(self) -> list[DifferentialResult]:
        return [result for result in self.results if not result.identical_counters]

    def by_label(self) -> dict[str, DifferentialResult]:
        return {result.describe(): result for result in self.results}

    def summary(self) -> str:
        status = "identical" if self.identical_counters else (
            f"{len(self.mismatching)} MISMATCHED"
        )
        return (
            f"[differential] {len(self.results)} jobs x 2 engines "
            f"in {self.wall_seconds:.2f}s: {status}"
        )

    def to_payload(self) -> dict[str, Any]:
        """A JSON-ready payload (consumed by ``benchmarks/check_regression.py``)."""
        rows: list[dict[str, Any]] = []
        for result in self.results:
            # The row's numbers come from the vector run, so attribute them
            # to that run's driver spec (not the submitted job's engine pin).
            report = result.vector.report
            rows.append(
                {
                    "scenario": result.describe(),
                    "driver": result.vector.job.driver_name,
                    "cycles": getattr(report, "cycles", None),
                    "instructions": getattr(report, "instructions", None),
                    "identical_counters": result.identical_counters,
                    "mismatches": list(result.mismatches),
                    "errors": [
                        error
                        for error in (
                            result.scalar.error,
                            result.vector.error,
                            result.restored.error if result.restored is not None else None,
                        )
                        if error is not None
                    ],
                }
            )
        return {
            "benchmark": "differential sweep: scalar vs vector engines",
            "generated_by": "Session.run_differential",
            "identical_counters": self.identical_counters,
            "results": rows,
        }


class Session:
    """Launches batches of (kernel, config) jobs concurrently.

    ``executor`` selects the execution backend: ``"process"`` (default when
    the platform supports fork) runs each job in a worker process for true
    parallelism; ``"thread"`` uses threads (lighter weight, still
    concurrent, useful under constrained environments and in tests);
    ``"serial"`` runs inline (debugging); ``"service"`` routes batches
    through a :class:`repro.service.SimulationService` — a sharded worker
    fleet with a content-addressed result cache, so repeat-heavy sweep
    traffic (differential grids, Fig 14/18/19 clients) short-circuits to
    cache hits.

    For the service backend, pass an existing
    :class:`~repro.service.client.ServiceClient` as ``service`` to share a
    fleet (and its cache) across sessions, or a
    :class:`~repro.service.server.ServiceConfig` as ``service_config`` to
    let the session own one (created lazily, shut down by :meth:`close`).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        executor: str | None = None,
        service: ServiceClient | None = None,
        service_config: ServiceConfig | None = None,
    ):
        if executor is None:
            executor = "process" if hasattr(os, "fork") else "thread"
        if executor not in ("process", "thread", "serial", "service"):
            raise ValueError(f"unknown executor {executor!r}")
        self.executor = executor
        # Floor of 4: even on small hosts a batch should overlap several
        # simulations (jobs block on different pages/pool pipes, and the
        # acceptance bar for a sweep is >= 4 jobs in flight).
        self.max_workers = max_workers or max(4, min(8, os.cpu_count() or 4))
        self.queue = JobQueue()
        self._service_client = service
        self._service_config = service_config
        self._owns_service = service is None

    # -- job submission -----------------------------------------------------------------

    def submit(self, job: KernelJob) -> None:
        """Queue one job for the next batch."""
        self.queue.add(job)

    def submit_sweep(
        self,
        kernel: str,
        configs: Sequence[VortexConfig],
        driver: str = "simx",
        size: int | None = None,
        engine: str | None = None,
    ) -> None:
        """Queue one job per configuration for the same kernel."""
        for config in configs:
            self.queue.add(
                KernelJob(kernel=kernel, config=config, driver=driver, size=size, engine=engine)
            )

    # -- the service backend ------------------------------------------------------------

    def service_client(self) -> ServiceClient:
        """The session's service backend (created lazily when owned)."""
        if self._service_client is None:
            from repro.service.client import ServiceClient

            self._service_client = ServiceClient(self._service_config)
        return self._service_client

    def close(self) -> None:
        """Shut down an owned service backend (no-op otherwise)."""
        if self._owns_service and self._service_client is not None:
            self._service_client.close()
            self._service_client = None

    def __enter__(self) -> Session:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution ----------------------------------------------------------------------

    def run_batch(self, jobs: Sequence[KernelJob] | None = None) -> BatchReport:
        """Execute ``jobs`` (or everything queued) concurrently.

        Results are returned in submission order regardless of completion
        order.  A failing job never aborts the batch: its ``JobResult``
        carries the error string instead.
        """
        batch = list(jobs) if jobs is not None else self.queue.drain()
        start = time.perf_counter()
        if not batch:
            return BatchReport([], 0.0, self.max_workers, self.executor)
        workers = self.max_workers
        if self.executor == "service":
            client = self.service_client()
            results = client.run_jobs(batch)
            workers = client.num_shards
        elif self.executor == "serial" or len(batch) == 1:
            results = [execute_job(job) for job in batch]
        else:
            pool_cls = ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
            try:
                pool = pool_cls(max_workers=self.max_workers)
            except (OSError, ImportError):
                # The pool could not be brought up at all (constrained
                # sandbox): degrade to in-process execution.
                results = [execute_job(job) for job in batch]
            else:
                results = self._run_on_pool(pool, batch)
        wall = time.perf_counter() - start
        return BatchReport(results, wall, workers, self.executor)

    def run(
        self,
        job: KernelJob,
        *,
        checkpoint_every: int | None = None,
        checkpoint_sink: Any = None,
        resume_from: dict | None = None,
    ) -> JobResult:
        """Execute one job, optionally as a resumable checkpointed run.

        With neither ``checkpoint_every`` nor ``resume_from`` this is a
        plain single-job :func:`execute_job`.  With ``checkpoint_every``
        the job runs inline in chunks of N driver units (cycles on the
        cycle-level driver, instructions on the functional one) and
        ``checkpoint_sink`` receives the device envelope after each chunk;
        ``resume_from`` continues a run from such an envelope.  Chunked and
        resumed runs report bit-identically to straight-through runs.
        """
        if checkpoint_every is None and resume_from is None:
            return execute_job(job)
        if checkpoint_every is None:
            raise ValueError("resume_from requires checkpoint_every")
        return execute_job_checkpointed(
            job,
            checkpoint_every=checkpoint_every,
            checkpoint_sink=checkpoint_sink,
            resume_from=resume_from,
        )

    def run_differential(
        self,
        jobs: Sequence[KernelJob] | None = None,
        *,
        checkpoint_legs: bool = False,
    ) -> DifferentialReport:
        """Run every job on both of its simulator's engines and diff all counters.

        Each submitted job expands into a ``scalar`` (reference) and a
        ``vector`` run of the same (kernel, config, driver) point — the
        expanded batch executes through :meth:`run_batch`, so the sweep gets
        the session's usual concurrency — and the two
        :class:`~repro.runtime.report.ExecutionReport`\\ s are diffed down to
        every per-component performance counter.  A job whose engine is
        pinned explicitly still sweeps both engines (the pin picks which
        variant a plain :meth:`run_batch` would run, not what a differential
        sweep compares).

        With ``checkpoint_legs=True`` every job also expands into a third
        leg: the vector run re-executed through the checkpoint/restore
        midpoint path (:func:`execute_job_restart`).  Its report is diffed
        against the straight-through vector run, so any serializer drift in
        any simulator layer shows up as a counter mismatch in the grid.
        """
        engines = ("scalar", "vector")
        batch = list(jobs) if jobs is not None else self.queue.drain()
        # Sweep-unique labels: two unlabeled jobs sharing kernel/simulator/
        # geometry (e.g. a policy sweep) must not collapse into one row.
        labels: list[str] = []
        label_counts: dict[str, int] = {}
        for job in batch:
            label = job.label or (
                f"{job.kernel}@{job.spec.simulator}"
                f"[{job.config.num_cores}C-{job.config.num_warps}W-{job.config.num_threads}T]"
            )
            count = label_counts.get(label, 0)
            label_counts[label] = count + 1
            labels.append(f"{label}#{count + 1}" if count else label)
        expanded: list[KernelJob] = []
        for job, base_label in zip(batch, labels):
            spec = job.spec
            for engine in engines:
                expanded.append(
                    replace(
                        job,
                        driver=spec.with_engine(engine),
                        engine=None,
                        label=f"{base_label}#{engine}",
                    )
                )
            if checkpoint_legs:
                expanded.append(
                    replace(
                        job,
                        driver=spec.with_engine("vector"),
                        engine=None,
                        label=f"{base_label}#restore",
                        restart_midpoint=True,
                    )
                )
        stride = len(engines) + (1 if checkpoint_legs else 0)
        executed = self.run_batch(expanded)
        results: list[DifferentialResult] = []
        for index, (job, label) in enumerate(zip(batch, labels)):
            scalar = executed.results[index * stride]
            vector = executed.results[index * stride + 1]
            restored = executed.results[index * stride + 2] if checkpoint_legs else None
            if scalar.report is not None and vector.report is not None:
                mismatches = diff_execution_reports(scalar.report, vector.report)
            else:
                mismatches = []
            if restored is not None and vector.report is not None:
                if restored.report is not None:
                    mismatches.extend(
                        f"restore leg {diff}"
                        for diff in diff_execution_reports(vector.report, restored.report)
                    )
            results.append(
                DifferentialResult(
                    job=job,
                    scalar=scalar,
                    vector=vector,
                    mismatches=mismatches,
                    label=label,
                    restored=restored,
                )
            )
        return DifferentialReport(results=results, wall_seconds=executed.wall_seconds)

    @staticmethod
    def _run_on_pool(pool: Executor, batch: list[KernelJob]) -> list[JobResult]:
        """Submit one future per job and collect results in order.

        If a worker dies (e.g. a poison job is OOM-killed, breaking the
        pool), completed jobs keep their results and the broken or
        never-submitted ones are marked failed — the batch is never rerun
        in the parent process.
        """
        with pool:
            futures: list[Future[JobResult] | None] = []
            submit_error: str | None = None
            submit_error_type: str | None = None
            for job in batch:
                if submit_error is None:
                    try:
                        futures.append(pool.submit(execute_job, job))
                    except BrokenExecutor as exc:
                        submit_error = f"{type(exc).__name__}: {exc}"
                        submit_error_type = type(exc).__name__
                        futures.append(None)
                else:
                    futures.append(None)
            results: list[JobResult] = []
            for job, future in zip(batch, futures):
                if future is None:
                    results.append(
                        JobResult(job=job, error=submit_error, error_type=submit_error_type)
                    )
                    continue
                try:
                    results.append(future.result())
                except Exception as exc:
                    results.append(
                        JobResult(
                            job=job,
                            error=f"{type(exc).__name__}: {exc}",
                            error_type=type(exc).__name__,
                        )
                    )
        return results


def design_point_jobs(
    kernel: str,
    points: dict[str, tuple[int, int]],
    base: VortexConfig | None = None,
    driver: str = "simx",
    size: int | None = None,
) -> list[KernelJob]:
    """Jobs for the Table-3-style (warps, threads) design points."""
    base = base or VortexConfig()
    jobs: list[KernelJob] = []
    for label, (warps, threads) in points.items():
        config = base.with_warps_threads(warps, threads)
        jobs.append(
            KernelJob(kernel=kernel, config=config, driver=driver, size=size, label=label)
        )
    return jobs
