"""The vectorized execution engine and the batched session layer.

This package is the lane-parallel back end of the simulation stack:

* :mod:`repro.engine.protocol` — the :class:`ExecutionEngine` protocol all
  simulation drivers implement.
* :mod:`repro.engine.vector_emulator` — per-PC plan-compiled, whole-warp
  lane-vector instruction execution.
* :mod:`repro.engine.vector_core` — the vectorized functional core and
  multi-core processor (drop-in engine for the FUNCSIM driver).
* :mod:`repro.engine.session` — batched multi-kernel sessions: queue
  (kernel, config) jobs, execute them concurrently on a process or thread
  pool, aggregate the reports; ``Session.run_differential`` sweeps every
  job across both engines and diffs all performance counters.

``Session`` and friends are re-exported lazily to avoid a circular import
(the runtime drivers import the vector engine, while the session layer
imports the runtime).
"""

from repro.engine.protocol import ExecutionEngine
from repro.engine.vector_core import VectorProcessor, VectorSimtCore
from repro.engine.vector_emulator import VectorWarpEmulator

__all__ = [
    "ExecutionEngine",
    "VectorProcessor",
    "VectorSimtCore",
    "VectorWarpEmulator",
    "Session",
    "JobQueue",
    "KernelJob",
    "JobResult",
    "BatchReport",
    "DifferentialResult",
    "DifferentialReport",
    "diff_execution_reports",
    "execute_job",
    "design_point_jobs",
]

_SESSION_EXPORTS = {
    "Session",
    "JobQueue",
    "KernelJob",
    "JobResult",
    "BatchReport",
    "DifferentialResult",
    "DifferentialReport",
    "diff_execution_reports",
    "execute_job",
    "design_point_jobs",
}


def __getattr__(name: str):
    if name in _SESSION_EXPORTS:
        from repro.engine import session

        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
