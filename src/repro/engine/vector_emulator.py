"""Lane-parallel warp emulation.

``VectorWarpEmulator`` executes one instruction for *all* active lanes of a
warp with a handful of numpy operations instead of a per-thread Python
loop, following the SIMT-lane organization of the Vortex microarchitecture:
one architectural register is one contiguous lane vector
(:meth:`repro.core.warp.RegisterFile.int_row`), and the thread mask selects
which lanes an operation commits.

Execution goes through per-PC *plans*: the first time a warp reaches a PC,
the instruction is decoded once and specialized into a closure that has the
operand rows, the immediates and the vector op already bound.  Subsequent
visits are a dictionary lookup plus one closure call — the per-mnemonic
handler-table idea of the scalar emulator taken to its limit.

Architectural results are bit-identical to the scalar
:class:`~repro.core.emulator.WarpEmulator` (the differential test in
``tests/test_engine_differential.py`` holds both engines to that); rare
instructions (CSR access, barriers, ``tmc``/``wspawn``, texture fetches)
reuse the scalar per-mnemonic handlers directly.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.arch.alu import (
    ALU_VECTOR_OPS,
    BRANCH_VECTOR_OPS,
    DIV_VECTOR_OPS,
    MUL_VECTOR_OPS,
)
from repro.arch.fpu import FPU_VECTOR_OPS
from repro.common.bitutils import to_uint32
from repro.core.emulator import StepResult, WarpEmulator
from repro.isa.decoder import DecodedInstruction
from repro.isa.instructions import ExecUnit

#: A plan executes one instruction for one warp (registers, memory, PC).
Plan = Callable[[], None]

#: A timing plan additionally returns ``(taken_branch, request_addresses)``.
TimingPlan = Callable[[], tuple]


class TimingStep:
    """What the cycle-level core needs to know about one lane-plan execution.

    The lightweight counterpart of :class:`~repro.core.emulator.StepResult`:
    the decoded instruction (unit, destination, latency class), the number of
    active lanes at issue, whether the front end must redirect, and — for
    LSU/TEX instructions — the per-request memory addresses in the exact
    order the scalar emulator would have produced them.
    """

    __slots__ = ("instr", "active_thread_count", "taken_branch", "request_addresses")

    def __init__(
        self,
        instr: DecodedInstruction,
        active_thread_count: int,
        taken_branch: bool,
        request_addresses,
    ):
        self.instr = instr
        self.active_thread_count = active_thread_count
        self.taken_branch = taken_branch
        self.request_addresses = request_addresses


def _sext_vec(values: np.ndarray, sign_bit: int) -> np.ndarray:
    """Sign-extend ``sign_bit``-wide lane values inside uint32 arithmetic."""
    bias = np.uint32(1 << (sign_bit - 1))
    return (np.bitwise_xor(values, bias) - bias).astype(np.uint32)


class VectorWarpEmulator(WarpEmulator):
    """Executes instructions for the warps of one core, one lane vector at a time.

    Plans execute exactly one instruction — never fused blocks — so the
    cross-warp round-robin interleaving of memory accesses in
    :class:`~repro.engine.vector_core.VectorProcessor`'s loop matches the
    scalar engine exactly (kernels like bfs communicate through memory
    flags and observe that order).
    """

    # -- plan construction -------------------------------------------------------------

    def _build_plan(self, warp, pc: int) -> Plan:
        instr = self.fetch(pc)
        mnemonic = instr.mnemonic
        spec = instr.spec

        if spec.is_branch:
            return self._plan_branch(warp, pc, instr)
        if spec.is_load:
            return self._plan_load(warp, pc, instr)
        if spec.is_store:
            return self._plan_store(warp, pc, instr)
        if mnemonic in ("lui", "auipc"):
            value = to_uint32(instr.imm if mnemonic == "lui" else pc + instr.imm)
            return self._plan_broadcast(warp, pc, instr.rd, value)
        if mnemonic == "jal":
            return self._plan_jal(warp, pc, instr)
        if mnemonic == "jalr":
            return self._plan_jalr(warp, pc, instr)
        if mnemonic in ALU_VECTOR_OPS:
            if spec.fmt.value == "I":
                return self._plan_alu_imm(warp, pc, instr)
            return self._plan_binary(warp, pc, instr, ALU_VECTOR_OPS[mnemonic])
        if mnemonic in MUL_VECTOR_OPS:
            return self._plan_binary(warp, pc, instr, MUL_VECTOR_OPS[mnemonic])
        if mnemonic in DIV_VECTOR_OPS:
            return self._plan_binary(warp, pc, instr, DIV_VECTOR_OPS[mnemonic])
        if spec.unit in (ExecUnit.FPU, ExecUnit.FDIV) and mnemonic in FPU_VECTOR_OPS:
            return self._plan_fpu(warp, pc, instr)
        if mnemonic == "split":
            return self._plan_split(warp, pc, instr)
        if mnemonic == "join":
            return self._plan_join(warp, pc)
        if mnemonic == "tex":
            return self._plan_tex(warp, pc, instr)
        # CSR access, tmc/wspawn/bar, fence, ecall: reuse the scalar
        # per-mnemonic handlers (rare instructions).
        return self._plan_scalar(warp, pc, instr)

    # -- ALU / MUL / DIV ---------------------------------------------------------------

    def _plan_broadcast(self, warp, pc: int, rd: int, value: int) -> Plan:
        next_pc = pc + 4
        if rd == 0:
            def run() -> None:
                warp.pc = next_pc
            return run
        rd_row = warp.regs.int_row(rd)
        const = np.uint32(value)

        def run() -> None:
            if warp.full:
                rd_row[:] = const
            else:
                rd_row[warp.lanes] = const
            warp.pc = next_pc

        return run

    def _plan_alu_imm(self, warp, pc: int, instr: DecodedInstruction) -> Plan:
        mnemonic = instr.mnemonic
        op = ALU_VECTOR_OPS[mnemonic]
        rs1_row = warp.regs.int_row(instr.rs1)
        imm = np.uint32(to_uint32(instr.imm))
        next_pc = pc + 4
        rd = instr.rd
        if rd == 0:
            def run() -> None:
                warp.pc = next_pc
            return run
        rd_row = warp.regs.int_row(rd)

        # Immediate shift amounts are static: pre-mask them so the shifts
        # run as plain in-place ufuncs.
        if mnemonic in ("slli", "srli"):
            op = np.left_shift if mnemonic == "slli" else np.right_shift
            imm = np.uint32(instr.imm & 0x1F)
        elif mnemonic == "srai":
            shamt = np.int32(instr.imm & 0x1F)
            rs1_signed = rs1_row.view(np.int32)
            rd_signed = rd_row.view(np.int32)

            def run() -> None:
                if warp.full:
                    np.right_shift(rs1_signed, shamt, out=rd_signed)
                else:
                    lanes = warp.lanes
                    rd_signed[lanes] = np.right_shift(rs1_signed[lanes], shamt)
                warp.pc = next_pc

            return run

        if isinstance(op, np.ufunc):
            # Plain dtype-preserving ufunc: write the full-mask result in
            # place (no temporary).
            def run() -> None:
                if warp.full:
                    op(rs1_row, imm, out=rd_row)
                else:
                    lanes = warp.lanes
                    rd_row[lanes] = op(rs1_row[lanes], imm)
                warp.pc = next_pc

            return run

        def run() -> None:
            if warp.full:
                rd_row[:] = op(rs1_row, imm)
            else:
                lanes = warp.lanes
                rd_row[lanes] = op(rs1_row[lanes], imm)
            warp.pc = next_pc

        return run

    def _plan_binary(self, warp, pc: int, instr: DecodedInstruction, op) -> Plan:
        rs1_row = warp.regs.int_row(instr.rs1)
        rs2_row = warp.regs.int_row(instr.rs2)
        next_pc = pc + 4
        rd = instr.rd
        if rd == 0:
            def run() -> None:
                warp.pc = next_pc
            return run
        rd_row = warp.regs.int_row(rd)

        if isinstance(op, np.ufunc):
            def run() -> None:
                if warp.full:
                    op(rs1_row, rs2_row, out=rd_row)
                else:
                    lanes = warp.lanes
                    rd_row[lanes] = op(rs1_row[lanes], rs2_row[lanes])
                warp.pc = next_pc

            return run

        def run() -> None:
            if warp.full:
                rd_row[:] = op(rs1_row, rs2_row)
            else:
                lanes = warp.lanes
                rd_row[lanes] = op(rs1_row[lanes], rs2_row[lanes])
            warp.pc = next_pc

        return run

    # -- branches / jumps --------------------------------------------------------------

    def _plan_branch(self, warp, pc: int, instr: DecodedInstruction) -> Plan:
        """Conditional branch plan.

        The closure returns the taken decision — ignored by the functional
        execution loop, consumed by the timing wrapper
        (:meth:`_timing_plan_branch`) so there is exactly one compiled
        branch semantics shared by both paths.
        """
        mnemonic = instr.mnemonic
        rs1_row = warp.regs.int_row(instr.rs1)
        rs2_row = warp.regs.int_row(instr.rs2)
        target = to_uint32(pc + instr.imm)
        next_pc = pc + 4
        perf = self.core.perf
        # Signed comparisons reinterpret the rows once at build time; the
        # masked path re-derives the comparator from the generic table.
        if mnemonic in ("blt", "bge"):
            full_lhs = rs1_row.view(np.int32)
            full_rhs = rs2_row.view(np.int32)
            full_cmp = np.less if mnemonic == "blt" else np.greater_equal
        else:
            full_lhs = rs1_row
            full_rhs = rs2_row
            full_cmp = BRANCH_VECTOR_OPS[mnemonic]
        masked_cmp = BRANCH_VECTOR_OPS[mnemonic]

        def run() -> bool:
            if warp.full:
                decisions = full_cmp(full_lhs, full_rhs)
            else:
                lanes = warp.lanes
                decisions = masked_cmp(rs1_row[lanes], rs2_row[lanes])
            votes = np.count_nonzero(decisions)
            if votes == decisions.shape[0]:
                taken = True
            elif votes == 0:
                taken = False
            else:
                # The warp follows the first active thread, as in the scalar
                # emulator; the divergence only shows up in the counters.
                taken = bool(decisions[0])
                perf.incr("divergent_branches")
            warp.pc = target if taken else next_pc
            return taken

        return run

    def _plan_jal(self, warp, pc: int, instr: DecodedInstruction) -> Plan:
        target = to_uint32(pc + instr.imm)
        return_address = np.uint32(to_uint32(pc + 4))
        rd = instr.rd
        if rd == 0:
            def run() -> None:
                warp.pc = target
            return run
        rd_row = warp.regs.int_row(rd)

        def run() -> None:
            if warp.full:
                rd_row[:] = return_address
            else:
                rd_row[warp.lanes] = return_address
            warp.pc = target

        return run

    def _plan_jalr(self, warp, pc: int, instr: DecodedInstruction) -> Plan:
        rs1_row = warp.regs.int_row(instr.rs1)
        imm = instr.imm
        return_address = np.uint32(to_uint32(pc + 4))
        rd = instr.rd
        rd_row = warp.regs.int_row(rd) if rd else None

        def run() -> None:
            base = int(rs1_row[warp.lanes[0]]) if instr.rs1 else 0
            if rd_row is not None:
                if warp.full:
                    rd_row[:] = return_address
                else:
                    rd_row[warp.lanes] = return_address
            warp.pc = to_uint32(base + imm) & ~1

        return run

    # -- floating point ----------------------------------------------------------------

    #: Arithmetic FPU ops specialized with prebuilt float32 row views:
    #: mnemonic -> (wide, full-mask implementation over float32 lanes).
    #: ``wide`` ops compute through an exact float64 product first.
    _FPU_F32_FULL = {
        "fadd.s": (False, np.add),
        "fsub.s": (False, np.subtract),
        "fmul.s": (False, np.multiply),
        "fmadd.s": (True, lambda a, b, c: np.multiply(a, b, dtype=np.float64) + c),
        "fmsub.s": (True, lambda a, b, c: np.multiply(a, b, dtype=np.float64) - c),
        "fnmsub.s": (True, lambda a, b, c: c - np.multiply(a, b, dtype=np.float64)),
        "fnmadd.s": (
            True,
            lambda a, b, c: np.negative(np.multiply(a, b, dtype=np.float64)) - c,
        ),
    }

    def _plan_fpu(self, warp, pc: int, instr: DecodedInstruction) -> Plan:
        mnemonic = instr.mnemonic
        op = FPU_VECTOR_OPS[mnemonic]
        spec = instr.spec
        regs = warp.regs
        rs1_row = regs.fp_row(instr.rs1) if spec.rs1_float else regs.int_row(instr.rs1)
        rs2_row = regs.fp_row(instr.rs2) if spec.rs2_float else regs.int_row(instr.rs2)
        rs3_row = regs.fp_row(instr.rs3) if spec.rs3_float else regs.int_row(instr.rs3)
        next_pc = pc + 4
        rd = instr.rd
        writes_int_rd = not spec.rd_float
        if writes_int_rd and rd == 0:
            def run() -> None:
                warp.pc = next_pc
            return run
        rd_row = regs.fp_row(rd) if spec.rd_float else regs.int_row(rd)

        special = self._FPU_F32_FULL.get(mnemonic)
        if special is not None:
            from repro.arch.fpu import _round_bits

            wide, fast = special
            lhs32 = rs1_row.view(np.float32)
            rhs32 = rs2_row.view(np.float32)
            acc32 = rs3_row.view(np.float32)

            if wide:
                def run() -> None:
                    if warp.full:
                        result = fast(lhs32, rhs32, acc32).astype(np.float32)
                        rd_row[:] = _round_bits(result)
                    else:
                        lanes = warp.lanes
                        rd_row[lanes] = op(rs1_row[lanes], rs2_row[lanes], rs3_row[lanes])
                    warp.pc = next_pc
            else:
                def run() -> None:
                    if warp.full:
                        rd_row[:] = _round_bits(fast(lhs32, rhs32))
                    else:
                        lanes = warp.lanes
                        rd_row[lanes] = op(rs1_row[lanes], rs2_row[lanes], rs3_row[lanes])
                    warp.pc = next_pc

            return run

        def run() -> None:
            if warp.full:
                rd_row[:] = op(rs1_row, rs2_row, rs3_row)
            else:
                lanes = warp.lanes
                rd_row[lanes] = op(rs1_row[lanes], rs2_row[lanes], rs3_row[lanes])
            warp.pc = next_pc

        return run

    # -- loads / stores ----------------------------------------------------------------

    def _plan_load(self, warp, pc: int, instr: DecodedInstruction) -> Plan:
        memory = self.core.memory
        regs = warp.regs
        mnemonic = instr.mnemonic
        rs1_row = regs.int_row(instr.rs1)
        imm = np.uint32(to_uint32(instr.imm))
        next_pc = pc + 4
        rd = instr.rd
        rd_float = instr.spec.rd_float
        rd_row = (regs.fp_row(rd) if rd_float else regs.int_row(rd)) if (rd or rd_float) else None
        if mnemonic in ("lw", "flw"):
            return self._plan_word_load(warp, memory, rs1_row, rd_row, imm, next_pc)
        if mnemonic in ("lh", "lhu"):
            gather, sign_bit = memory.gather_halves, 16 if mnemonic == "lh" else 0
        elif mnemonic in ("lb", "lbu"):
            gather, sign_bit = memory.gather_bytes, 8 if mnemonic == "lb" else 0
        else:
            from repro.core.emulator import EmulationError

            raise EmulationError(f"unhandled load {mnemonic}")

        def run() -> None:
            if warp.full:
                values = gather(rs1_row + imm)
                if sign_bit:
                    values = _sext_vec(values, sign_bit)
                if rd_row is not None:
                    rd_row[:] = values
            else:
                lanes = warp.lanes
                values = gather(rs1_row[lanes] + imm)
                if sign_bit:
                    values = _sext_vec(values, sign_bit)
                if rd_row is not None:
                    rd_row[lanes] = values
            warp.pc = next_pc

        return run

    @staticmethod
    def _plan_word_load(warp, memory, rs1_row, rd_row, imm, next_pc) -> Plan:
        """Word load with the page cursor inlined.

        The steady-state full-mask path is one add (the immediate and the
        cached page base fold into a single constant), one OR-reduction
        validating page residency and alignment at once, and one ``take``.
        Keep the residency/alignment test and access accounting in sync
        with :meth:`repro.mem.memory.WordCursor.gather` — this is that
        fast path inlined (measured: the extra call is significant here).
        """
        from repro.mem.memory import PAGE_SIZE

        cursor = memory.word_cursor()
        # state = [imm - page_start] — rebiased whenever the cursor re-anchors.
        state = [None]

        def run() -> None:
            if warp.full:
                biased = state[0]
                if biased is not None:
                    relative = rs1_row + biased
                    packed = int(np.bitwise_or.reduce(relative))
                    if packed < PAGE_SIZE and not (packed & 3):
                        memory.reads += relative.shape[0]
                        if rd_row is not None:
                            rd_row[:] = cursor.words.take(relative >> np.uint32(2))
                        warp.pc = next_pc
                        return
                values = cursor.gather(rs1_row + imm)
                state[0] = imm - cursor.page_start
                if rd_row is not None:
                    rd_row[:] = values
            else:
                values = cursor.gather(rs1_row[warp.lanes] + imm)
                state[0] = imm - cursor.page_start
                if rd_row is not None:
                    rd_row[warp.lanes] = values
            warp.pc = next_pc

        return run

    def _plan_store(self, warp, pc: int, instr: DecodedInstruction) -> Plan:
        memory = self.core.memory
        regs = warp.regs
        mnemonic = instr.mnemonic
        rs1_row = regs.int_row(instr.rs1)
        src_row = regs.fp_row(instr.rs2) if instr.spec.rs2_float else regs.int_row(instr.rs2)
        imm = np.uint32(to_uint32(instr.imm))
        next_pc = pc + 4
        if mnemonic in ("sw", "fsw"):
            return self._plan_word_store(warp, memory, rs1_row, src_row, imm, next_pc)
        if mnemonic == "sh":
            scatter = memory.scatter_halves
        elif mnemonic == "sb":
            scatter = memory.scatter_bytes
        else:
            from repro.core.emulator import EmulationError

            raise EmulationError(f"unhandled store {mnemonic}")

        def run() -> None:
            if warp.full:
                scatter(rs1_row + imm, src_row)
            else:
                lanes = warp.lanes
                scatter(rs1_row[lanes] + imm, src_row[lanes])
            warp.pc = next_pc

        return run

    @staticmethod
    def _plan_word_store(warp, memory, rs1_row, src_row, imm, next_pc) -> Plan:
        """Word store with the page cursor inlined (see :meth:`_plan_word_load`;
        keep in sync with :meth:`repro.mem.memory.WordCursor.scatter`)."""
        from repro.mem.memory import PAGE_SIZE

        cursor = memory.word_cursor()
        state = [None]

        def run() -> None:
            if warp.full:
                biased = state[0]
                if biased is not None:
                    relative = rs1_row + biased
                    packed = int(np.bitwise_or.reduce(relative))
                    if packed < PAGE_SIZE and not (packed & 3):
                        cursor.words.put(relative >> np.uint32(2), src_row)
                        memory.writes += relative.shape[0]
                        warp.pc = next_pc
                        return
                cursor.scatter(rs1_row + imm, src_row)
                state[0] = imm - cursor.page_start
            else:
                cursor.scatter(rs1_row[warp.lanes] + imm, src_row[warp.lanes])
                state[0] = imm - cursor.page_start
            warp.pc = next_pc

        return run

    # -- texture fetch -----------------------------------------------------------------

    def _plan_tex(self, warp, pc: int, instr: DecodedInstruction) -> Plan:
        """Whole-warp ``tex``: the active lanes' (u, v, lod) operand rows go
        through the texture unit's vectorized sampler in one shot.

        Texture state is CSR-programmed and mutable between executions, so
        the plan binds only the operand rows; the CSR block snapshot is
        delegated to :meth:`TextureUnit.state_for`, whose dirty-bit cache
        (keyed on :attr:`CsrFile.tex_epoch`) re-reads the block only after
        a texture CSR write instead of on every warp instruction.
        """
        core = self.core
        if core.tex_unit is None:
            # Keep the scalar handler's error path.
            return self._plan_scalar(warp, pc, instr)
        tex_unit = core.tex_unit
        csr = core.csr
        regs = warp.regs
        u_row = regs.fp_row(instr.rs1)
        v_row = regs.fp_row(instr.rs2)
        lod_row = regs.fp_row(instr.rs3)
        rd = instr.rd
        rd_row = regs.int_row(rd) if rd else None
        stage = instr.tex_stage
        next_pc = pc + 4

        def run() -> None:
            if warp.full:
                colors = tex_unit.sample_warp_vector(csr, stage, u_row, v_row, lod_row)
                if rd_row is not None:
                    rd_row[:] = colors
            else:
                lanes = warp.lanes
                colors = tex_unit.sample_warp_vector(
                    csr, stage, u_row[lanes], v_row[lanes], lod_row[lanes]
                )
                if rd_row is not None:
                    rd_row[lanes] = colors
            warp.pc = next_pc

        return run

    # -- SIMT control ------------------------------------------------------------------

    def _plan_split(self, warp, pc: int, instr: DecodedInstruction) -> Plan:
        rs1_row = warp.regs.int_row(instr.rs1)
        next_pc = pc + 4
        perf = self.core.perf

        def run() -> None:
            lanes = warp.lanes
            predicates = rs1_row[lanes] != 0
            taken_mask = int((np.left_shift(np.int64(1), lanes.astype(np.int64))[predicates]).sum())
            original = warp.tmask
            not_taken_mask = original & ~taken_mask
            warp.ipdom.push(original, pc=None)
            if taken_mask and not_taken_mask:
                warp.ipdom.push(not_taken_mask, pc=next_pc)
                warp.set_tmask(taken_mask)
                perf.incr("divergent_splits")
            else:
                perf.incr("uniform_splits")
            warp.pc = next_pc

        return run

    def _plan_join(self, warp, pc: int) -> Plan:
        """``join`` plan; returns True when the pop redirects the front end
        (not the fall-through path) — see :meth:`_plan_branch` on why."""
        next_pc = pc + 4

        def run() -> bool:
            entry = warp.ipdom.pop()
            warp.set_tmask(entry.tmask)
            if entry.is_fallthrough:
                warp.pc = next_pc
                return False
            warp.pc = entry.pc
            return True

        return run

    # -- timing plans (cycle-level SIMX core) -------------------------------------------

    def _arch_plan(self, warp, pc: int) -> Plan:
        """The (cached) architectural plan for ``warp`` at ``pc``."""
        cache = warp.plan_cache
        plan = cache.get(pc)
        if plan is None:
            plan = self._build_plan(warp, pc)
            cache[pc] = plan
        return plan

    def step_timing(self, warp) -> TimingStep:
        """Execute the next instruction of ``warp`` through its timing plan.

        The architectural effects are exactly those of :meth:`step` (the
        timing plans reuse the compiled lane plans); the returned
        :class:`TimingStep` carries the issue facts the cycle-level core
        charges latencies and cache traffic from, in the same order and with
        the same values as the scalar :class:`~repro.core.emulator.StepResult`.
        """
        pc = warp.pc
        cache = warp.timing_plan_cache
        entry = cache.get(pc)
        if entry is None:
            entry = self._build_timing_plan(warp, pc)
            cache[pc] = entry
        instr, run = entry
        active = warp.active_count
        taken, addresses = run()
        warp.instructions += 1
        return TimingStep(instr, active, taken, addresses)

    def _build_timing_plan(self, warp, pc: int):
        instr = self.fetch(pc)
        spec = instr.spec
        mnemonic = instr.mnemonic
        if spec.is_branch or mnemonic == "join":
            run = self._timing_plan_redirecting(warp, pc)
        elif spec.is_load or spec.is_store:
            run = self._timing_plan_memory(warp, pc, instr)
        elif mnemonic in ("jal", "jalr"):
            run = self._timing_plan_taken(warp, pc)
        elif mnemonic == "tex" and self.core.tex_unit is not None:
            run = self._timing_plan_tex(warp, pc, instr)
        else:
            run = self._timing_plan_default(warp, pc)
        return (instr, run)

    def _timing_plan_default(self, warp, pc: int) -> TimingPlan:
        """Wrap the architectural plan of a non-redirecting, non-memory
        instruction (ALU/MUL/DIV/FPU, CSR, SIMT control, scalar fallbacks)."""
        arch_plan = self._arch_plan(warp, pc)

        def run() -> tuple:
            arch_plan()
            return False, None

        return run

    def _timing_plan_taken(self, warp, pc: int) -> TimingPlan:
        """``jal``/``jalr``: the architectural plan plus an unconditional
        front-end redirect (the scalar emulator always flags them taken)."""
        arch_plan = self._arch_plan(warp, pc)

        def run() -> tuple:
            arch_plan()
            return True, None

        return run

    def _timing_plan_redirecting(self, warp, pc: int) -> TimingPlan:
        """Branch/``join``: wrap the (shared, cached) architectural plan,
        whose closure already returns the taken decision."""
        arch_plan = self._arch_plan(warp, pc)

        def run() -> tuple:
            return arch_plan(), None

        return run

    def _timing_plan_memory(self, warp, pc: int, instr: DecodedInstruction) -> TimingPlan:
        """Load/store: capture the active lanes' byte addresses (thread
        order, uint32 wraparound — identical to the scalar per-thread trace)
        before the architectural plan commits the accesses.

        The address vector is computed here *in addition to* whatever the
        architectural plan computes internally: the word-load/store fast
        paths work on page-relative offsets and never materialize absolute
        addresses, so sharing would mean slowing the functional engine's
        hottest path to feed the timing model.  One extra lane-vector add
        per memory instruction is the cheaper side of that trade."""
        arch_plan = self._arch_plan(warp, pc)
        rs1_row = warp.regs.int_row(instr.rs1)
        imm = np.uint32(to_uint32(instr.imm))

        def run() -> tuple:
            if warp.full:
                addresses = (rs1_row + imm).tolist()
            else:
                addresses = (rs1_row[warp.lanes] + imm).tolist()
            arch_plan()
            return False, addresses

        return run

    def _timing_plan_tex(self, warp, pc: int, instr: DecodedInstruction) -> TimingPlan:
        """Whole-warp ``tex`` with the de-duplicated texel address trace the
        timing core turns into cache requests (see
        :meth:`TextureUnit.sample_warp_vector_trace`)."""
        core = self.core
        tex_unit = core.tex_unit
        csr = core.csr
        regs = warp.regs
        u_row = regs.fp_row(instr.rs1)
        v_row = regs.fp_row(instr.rs2)
        lod_row = regs.fp_row(instr.rs3)
        rd_row = regs.int_row(instr.rd) if instr.rd else None
        stage = instr.tex_stage
        next_pc = pc + 4

        def run() -> tuple:
            if warp.full:
                colors, unique = tex_unit.sample_warp_vector_trace(
                    csr, stage, u_row, v_row, lod_row
                )
                if rd_row is not None:
                    rd_row[:] = colors
            else:
                lanes = warp.lanes
                colors, unique = tex_unit.sample_warp_vector_trace(
                    csr, stage, u_row[lanes], v_row[lanes], lod_row[lanes]
                )
                if rd_row is not None:
                    rd_row[lanes] = colors
            warp.pc = next_pc
            return False, unique

        return run

    # -- scalar fallback ---------------------------------------------------------------

    def _plan_scalar(self, warp, pc: int, instr: DecodedInstruction) -> Plan:
        handler = self._MNEMONIC_HANDLERS.get(instr.mnemonic)
        if handler is None:
            from repro.core.emulator import EmulationError

            raise EmulationError(f"unhandled instruction {instr.mnemonic}")
        unit = instr.spec.unit

        def run() -> None:
            result = StepResult(
                warp_id=warp.warp_id,
                pc=pc,
                next_pc=pc + 4,
                instr=instr,
                tmask=warp.tmask,
                unit=unit,
            )
            handler(self, warp, instr, result)
            warp.pc = result.next_pc

        return run
