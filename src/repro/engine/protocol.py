"""The common execution-engine interface.

Every simulation driver — the scalar functional engine, the vectorized
lane-parallel engine and the cycle-level SIMX model — implements this
protocol, which is what the device facade (:class:`repro.runtime.device.VortexDevice`),
the command processor and the batched :class:`repro.engine.session.Session`
program against.  The protocol is deliberately small: construct against a
``(config, memory)`` pair, run a kernel to completion, and allow the
program-load path to invalidate any cached decodes.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.runtime.launch import LaunchOptions
from repro.runtime.report import ExecutionReport


@runtime_checkable
class ExecutionEngine(Protocol):
    """What a simulation driver must provide to plug into the runtime stack."""

    #: Short identifier used in reports ("funcsim", "simx", …).
    name: str

    def run(self, entry_pc: int, options: LaunchOptions | None = None) -> ExecutionReport:
        """Execute the kernel at ``entry_pc`` to completion.

        ``options`` is the uniform :class:`LaunchOptions` record; drivers
        apply the budget fields that are meaningful for their model and
        ignore the rest.
        """
        ...

    def invalidate_decode_caches(self) -> None:
        """Drop cached instruction decodes (a new program image was loaded)."""
        ...
