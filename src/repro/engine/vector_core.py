"""Vectorized functional core and processor.

``VectorSimtCore`` is a :class:`~repro.core.core.SimtCore` whose emulator
executes whole-warp lane vectors (:class:`VectorWarpEmulator`);
``VectorProcessor`` drives those cores with the same round-robin
instruction interleaving as the scalar :class:`~repro.core.processor.Processor`
— so barriers, ``wspawn`` ordering and memory visibility behave
identically — but batches the per-instruction bookkeeping (performance
counters, ``instret``) per scheduling round instead of per instruction.

Architectural results (registers, memory, retired-instruction counts) are
bit-identical to the scalar engine; only wall-clock differs.

The cycle-level driver reuses these pieces: ``TimingCore(engine="vector")``
embeds a :class:`VectorSimtCore` and steps issued warps through the same
compiled lane plans via :meth:`VectorWarpEmulator.step_timing`, so the
functional and timing fast paths share one plan compiler (and one
invalidation point: ``upload_program`` →
:meth:`WarpEmulator.invalidate_decode_cache`).  The lane traces a timing
step reports (``TimingStep.request_addresses``) feed the timing core's
batched per-bank request path: the warp's addresses are grouped and
arbitrated in bulk per cycle rather than re-sent lane by lane on every
retry.
"""

from __future__ import annotations

import numpy as np

from repro.core.core import SimtCore
from repro.core.emulator import EmulationError, SimulationLimitExceeded
from repro.core.processor import Processor
from repro.engine.vector_emulator import VectorWarpEmulator


class VectorSimtCore(SimtCore):
    """One Vortex core executing with lane-parallel (vectorized) semantics."""

    emulator_cls = VectorWarpEmulator


class VectorProcessor(Processor):
    """Functional multi-core processor backed by the vectorized cores."""

    core_cls = VectorSimtCore

    def run(
        self,
        entry_pc: int | None = None,
        max_instructions: int = 50_000_000,
        stop_after_instructions: int | None = None,
    ) -> int:
        """Run to completion; returns total warp instructions executed.

        Cores and wavefronts are interleaved at instruction granularity
        exactly like the scalar processor; the instruction limit is checked
        once per scheduling round (the round length is bounded by
        ``num_cores * num_warps``).

        ``stop_after_instructions`` pauses at the same scheduling-round
        boundaries as the scalar processor's, so a paused-and-resumed run
        replays the identical interleaving.
        """
        if entry_pc is not None:
            self.reset(entry_pc)
        executed = 0
        cores = self.cores
        # Performance counters are accumulated in plain ints and flushed
        # into the perf state once at the end (or on error): nothing
        # observes them mid-run and the per-instruction increments are
        # measurable at this loop's throughput.  The instret CSR *is*
        # guest-visible (csrrs of INSTRET), so it advances per retired
        # instruction, exactly like the scalar engine — and the limit is
        # checked per instruction so both engines raise at the same
        # boundary.
        retired_per_core = [0] * len(cores)
        threads_per_core = [0] * len(cores)
        try:
            with np.errstate(all="ignore"):
                while True:
                    progressed = False
                    for index, core in enumerate(cores):
                        build_plan = core.emulator._build_plan
                        csr = core.csr
                        retired = 0
                        thread_retired = 0
                        try:
                            for warp in core.warps:
                                if not warp.active or warp.at_barrier or warp._tmask == 0:
                                    continue
                                pc = warp.pc
                                cache = warp.plan_cache
                                plan = cache.get(pc)
                                if plan is None:
                                    plan = build_plan(warp, pc)
                                    cache[pc] = plan
                                thread_retired += warp.active_count
                                plan()
                                warp.instructions += 1
                                csr.instret += 1
                                retired += 1
                                executed += 1
                                if executed >= max_instructions:
                                    raise SimulationLimitExceeded(
                                        "instructions",
                                        max_instructions,
                                        "processor exceeded the instruction limit "
                                        f"({max_instructions})",
                                    )
                        finally:
                            if retired:
                                progressed = True
                                retired_per_core[index] += retired
                                threads_per_core[index] += thread_retired
                    if not progressed:
                        if self.done:
                            break
                        raise EmulationError(
                            "processor deadlocked: active wavefronts exist but none can execute"
                        )
                    if (
                        stop_after_instructions is not None
                        and executed >= stop_after_instructions
                    ):
                        break
        finally:
            for index, core in enumerate(cores):
                if retired_per_core[index]:
                    core.perf.incr("instructions", retired_per_core[index])
                    core.perf.incr("thread_instructions", threads_per_core[index])
        self.perf.incr("instructions", executed)
        return executed
