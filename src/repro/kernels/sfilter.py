"""``sfilter`` — 3x3 box filter over a float image (compute-bounded group).

One task filters one pixel; image borders are handled with branch-free
clamping so the kernel contains no divergent control flow.  Argument block
layout::

    word 0: num_tasks (= width * height)
    word 1: width
    word 2: height
    word 3: address of the source image (float32, row-major)
    word 4: address of the destination image (float32, row-major)
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import ProgramBuilder
from repro.isa.registers import FReg, Reg
from repro.kernels.base import Kernel
from repro.runtime.device import VortexDevice


class SfilterKernel(Kernel):
    """dst[y, x] = mean of the 3x3 neighbourhood of src (clamped borders)."""

    name = "sfilter"
    category = "compute"

    def default_size(self) -> int:
        return 16 * 16

    def emit_body(self, asm: ProgramBuilder) -> None:
        dy_loop = asm.new_label("sfilter_dy")
        dx_loop = asm.new_label("sfilter_dx")
        # Geometry: width (t0), height (t1), row (t2), col (t3), src (t4).
        asm.lw(Reg.t0, 4, Reg.a1)
        asm.lw(Reg.t1, 8, Reg.a1)
        asm.divu(Reg.t2, Reg.a0, Reg.t0)
        asm.remu(Reg.t3, Reg.a0, Reg.t0)
        asm.lw(Reg.t4, 12, Reg.a1)
        # Accumulator.
        asm.fmv_w_x(FReg.fa0, Reg.zero)
        # dy in [-1, 1] (uniform loop bounds => uniform branches).
        asm.li(Reg.t5, -1)
        asm.label(dy_loop)
        asm.li(Reg.t6, -1)
        asm.label(dx_loop)
        # r = clamp(row + dy, 0, height - 1)
        asm.add(Reg.a2, Reg.t2, Reg.t5)
        self._emit_clamp_index(asm, Reg.a2, Reg.t1, Reg.a4)
        # c = clamp(col + dx, 0, width - 1)
        asm.add(Reg.a3, Reg.t3, Reg.t6)
        self._emit_clamp_index(asm, Reg.a3, Reg.t0, Reg.a4)
        # acc += src[r * width + c]
        asm.mul(Reg.a4, Reg.a2, Reg.t0)
        asm.add(Reg.a4, Reg.a4, Reg.a3)
        asm.slli(Reg.a4, Reg.a4, 2)
        asm.add(Reg.a4, Reg.t4, Reg.a4)
        asm.flw(FReg.fa1, 0, Reg.a4)
        asm.fadd_s(FReg.fa0, FReg.fa0, FReg.fa1)
        # Next dx / dy.
        asm.addi(Reg.t6, Reg.t6, 1)
        asm.li(Reg.a5, 2)
        asm.blt(Reg.t6, Reg.a5, dx_loop)
        asm.addi(Reg.t5, Reg.t5, 1)
        asm.blt(Reg.t5, Reg.a5, dy_loop)
        # dst[task] = acc / 9
        asm.li_float(FReg.fa2, 1.0 / 9.0, scratch=Reg.a5)
        asm.fmul_s(FReg.fa0, FReg.fa0, FReg.fa2)
        asm.lw(Reg.a5, 16, Reg.a1)
        asm.slli(Reg.a6, Reg.a0, 2)
        asm.add(Reg.a5, Reg.a5, Reg.a6)
        asm.fsw(FReg.fa0, 0, Reg.a5)
        asm.ret()

    @staticmethod
    def _emit_clamp_index(asm: ProgramBuilder, value: Reg, limit: Reg, scratch: Reg) -> None:
        """Branch-free clamp of ``value`` into ``[0, limit - 1]``."""
        # value = max(value, 0)
        asm.srai(scratch, value, 31)
        asm.xori(scratch, scratch, -1)
        asm.and_(value, value, scratch)
        # d = value - (limit - 1); if d > 0 (sign bit clear and d != 0) subtract d.
        asm.addi(scratch, limit, -1)
        asm.sub(scratch, value, scratch)
        # mask = d > 0 ? -1 : 0  computed as  ~(d >> 31) when d > 0 else 0.
        # Using: positive = (d > 0) -> sltz trick: take max(d, 0) then subtract.
        asm.srai(Reg.a7, scratch, 31)
        asm.xori(Reg.a7, Reg.a7, -1)
        asm.and_(scratch, scratch, Reg.a7)  # scratch = max(d, 0)
        asm.sub(value, value, scratch)

    def setup(self, device: VortexDevice, size: int) -> Dict:
        width = max(int(round(size ** 0.5)), 4)
        height = width
        rng = self.rng()
        src = rng.random((height, width), dtype=np.float32)
        buf_src = device.alloc_array(src)
        buf_dst = device.alloc(width * height * 4)
        self.write_args(
            device, [width * height, width, height, buf_src.address, buf_dst.address]
        )
        return {"src": src, "out": buf_dst, "width": width, "height": height}

    def verify(self, device: VortexDevice, context: Dict) -> bool:
        src = context["src"]
        height, width = src.shape
        padded = np.pad(src, 1, mode="edge").astype(np.float64)
        expected = np.zeros_like(src, dtype=np.float64)
        for dy in range(3):
            for dx in range(3):
                expected += padded[dy : dy + height, dx : dx + width]
        expected /= 9.0
        result = context["out"].read(np.float32, width * height).reshape(height, width)
        return bool(np.allclose(result, expected, rtol=1e-4, atol=1e-5))
