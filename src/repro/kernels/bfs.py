"""``bfs`` — one breadth-first-search level expansion (memory-bounded group).

The graph is stored in ELLPACK (padded adjacency) form so the per-node edge
loop has a uniform trip count; threads whose node is not on the current
frontier, and edge slots that are padding or lead to visited nodes, are
masked off with ``split``/``join``.  One kernel launch expands one BFS
level.  Argument block layout::

    word 0: num_tasks (= number of nodes)
    word 1: max_degree (padded adjacency width)
    word 2: address of the adjacency table (num_nodes * max_degree int32, -1 padding)
    word 3: address of the level array (int32, -1 = unvisited)
    word 4: current level
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg
from repro.kernels.base import Kernel
from repro.runtime.device import VortexDevice


def build_ellpack(num_nodes: int, edges, max_degree: int) -> np.ndarray:
    """Convert an edge list into a padded (ELLPACK) adjacency table."""
    table = -np.ones((num_nodes, max_degree), dtype=np.int32)
    fill = np.zeros(num_nodes, dtype=np.int64)
    for src, dst in edges:
        if fill[src] < max_degree:
            table[src, fill[src]] = dst
            fill[src] += 1
        if fill[dst] < max_degree:
            table[dst, fill[dst]] = src
            fill[dst] += 1
    return table


def bfs_reference(adjacency: np.ndarray, source: int) -> np.ndarray:
    """Host BFS over a padded adjacency table (reference for verification)."""
    num_nodes = adjacency.shape[0]
    levels = -np.ones(num_nodes, dtype=np.int32)
    levels[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        next_frontier = []
        for node in frontier:
            for neighbor in adjacency[node]:
                if neighbor >= 0 and levels[neighbor] < 0:
                    levels[neighbor] = level + 1
                    next_frontier.append(int(neighbor))
        frontier = next_frontier
        level += 1
    return levels


class BfsKernel(Kernel):
    """Expand one BFS level over a padded-adjacency graph."""

    name = "bfs"
    category = "memory"

    def __init__(self, max_degree: int = 4, **parameters):
        super().__init__(**parameters)
        self.max_degree = max_degree

    def default_size(self) -> int:
        # Number of graph nodes.
        return 128

    def emit_body(self, asm: ProgramBuilder) -> None:
        eloop = asm.new_label("bfs_edge")
        eskip = asm.new_label("bfs_eskip")
        eend = asm.new_label("bfs_eend")
        skip = asm.new_label("bfs_skip")
        end = asm.new_label("bfs_end")

        # levels pointer (t0) and this node's level (t2).
        asm.lw(Reg.t0, 12, Reg.a1)
        asm.slli(Reg.t1, Reg.a0, 2)
        asm.add(Reg.t1, Reg.t0, Reg.t1)
        asm.lw(Reg.t2, 0, Reg.t1)
        asm.lw(Reg.t3, 16, Reg.a1)
        # Frontier predicate: level == current_level.
        asm.xor(Reg.t4, Reg.t2, Reg.t3)
        asm.seqz(Reg.t4, Reg.t4)
        asm.split(Reg.t4)
        asm.beqz(Reg.t4, skip)

        # Edge loop setup: max_degree (t5), edge pointer (a2), next level (a6).
        asm.lw(Reg.t5, 4, Reg.a1)
        asm.lw(Reg.t6, 8, Reg.a1)
        asm.mul(Reg.a2, Reg.a0, Reg.t5)
        asm.slli(Reg.a2, Reg.a2, 2)
        asm.add(Reg.a2, Reg.t6, Reg.a2)
        asm.lw(Reg.a6, 16, Reg.a1)
        asm.addi(Reg.a6, Reg.a6, 1)
        asm.li(Reg.a3, 0)

        asm.label(eloop)
        asm.lw(Reg.a4, 0, Reg.a2)
        # valid = neighbor >= 0
        asm.slt(Reg.a5, Reg.a4, Reg.zero)
        asm.xori(Reg.a5, Reg.a5, 1)
        # Clamp padding entries to index 0 so the level load stays in bounds.
        asm.srai(Reg.a7, Reg.a4, 31)
        asm.xori(Reg.a7, Reg.a7, -1)
        asm.and_(Reg.a7, Reg.a4, Reg.a7)
        asm.slli(Reg.a7, Reg.a7, 2)
        asm.add(Reg.a7, Reg.t0, Reg.a7)
        asm.lw(Reg.t1, 0, Reg.a7)
        # unvisited = (level == -1); update = valid & unvisited.
        asm.addi(Reg.t2, Reg.t1, 1)
        asm.seqz(Reg.t2, Reg.t2)
        asm.and_(Reg.t2, Reg.t2, Reg.a5)
        asm.split(Reg.t2)
        asm.beqz(Reg.t2, eskip)
        asm.sw(Reg.a6, 0, Reg.a7)
        asm.join()
        asm.j(eend)
        asm.label(eskip)
        asm.join()
        asm.label(eend)
        asm.addi(Reg.a2, Reg.a2, 4)
        asm.addi(Reg.a3, Reg.a3, 1)
        asm.blt(Reg.a3, Reg.t5, eloop)

        asm.join()
        asm.j(end)
        asm.label(skip)
        asm.join()
        asm.label(end)
        asm.ret()

    # -- host side ---------------------------------------------------------------------

    def _build_graph(self, num_nodes: int) -> np.ndarray:
        """A deterministic sparse graph: a ring plus random chords."""
        rng = self.rng()
        edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
        num_chords = num_nodes // 2
        for _ in range(num_chords):
            a, b = rng.integers(0, num_nodes, size=2)
            if a != b:
                edges.append((int(a), int(b)))
        return build_ellpack(num_nodes, edges, self.max_degree)

    def setup(self, device: VortexDevice, size: int) -> Dict:
        adjacency = self._build_graph(size)
        levels = -np.ones(size, dtype=np.int32)
        levels[0] = 0
        buf_adj = device.alloc_array(adjacency)
        buf_levels = device.alloc_array(levels)
        current_level = 0
        self.write_args(
            device,
            [size, self.max_degree, buf_adj.address, buf_levels.address, current_level],
        )
        return {
            "adjacency": adjacency,
            "levels": levels,
            "buf_levels": buf_levels,
            "size": size,
            "current_level": current_level,
        }

    def verify(self, device: VortexDevice, context: Dict) -> bool:
        adjacency = context["adjacency"]
        levels = context["levels"].copy()
        current = context["current_level"]
        # Host reference for a single level expansion.
        for node in range(context["size"]):
            if levels[node] != current:
                continue
            for neighbor in adjacency[node]:
                if neighbor >= 0 and levels[neighbor] < 0:
                    levels[neighbor] = current + 1
        result = context["buf_levels"].read(np.int32, context["size"])
        return bool(np.array_equal(result, levels))
