"""Device-side runtime (the Vortex native runtime of section 5.3).

Every kernel binary starts with the startup code emitted here.  It mirrors
what the paper's ``pocl_spawn`` runtime does on real Vortex hardware:

1. warp 0 / thread 0 boots, reads the machine geometry CSRs and uses
   ``wspawn`` to activate the remaining wavefronts of the core,
2. every wavefront enables all of its threads with ``tmc``,
3. each hardware thread computes its global thread id and iterates over the
   kernel's task range with a uniform trip count, using ``split``/``join``
   to mask off threads whose task id falls beyond ``num_tasks``,
4. each in-range task calls the kernel body with ``a0 = task id`` and
   ``a1 = argument-block address``,
5. when the loop finishes the wavefront halts itself with ``tmc 0``.

Kernel bodies are leaf routines: they may clobber ``t``/``a``/``ft``/``fa``
registers but must leave the ``s`` registers untouched.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.isa.builder import Label, Program, ProgramBuilder
from repro.isa.csr import CSR
from repro.isa.registers import Reg
from repro.runtime.device import KERNEL_ARG_PTR_ADDR

#: Device address kernels are linked at.
DEFAULT_KERNEL_BASE = 0x8000_0000

#: Offset of ``num_tasks`` inside the kernel argument block.
ARG_NUM_TASKS_OFFSET = 0


def emit_load_arg_pointer(asm: ProgramBuilder, dest: Reg, scratch: Reg = Reg.t6) -> None:
    """Load the kernel argument-block address into ``dest``."""
    asm.li(scratch, KERNEL_ARG_PTR_ADDR)
    asm.lw(dest, 0, scratch)


def emit_spawn_runtime(
    asm: ProgramBuilder,
    body_label: Label,
    emit_prologue: Callable[[ProgramBuilder], None] | None = None,
) -> None:
    """Emit the startup + task-distribution loop calling ``body_label``.

    ``emit_prologue``, when given, runs on warp 0 / thread 0 of every core
    before any wavefront is spawned — this is where kernels program texture
    CSRs, mirroring the kernel ``main`` of the paper's Figure 13.
    """
    worker = asm.new_label("worker")
    loop = asm.new_label("loop")
    skip = asm.new_label("skip")
    endif = asm.new_label("endif")
    done = asm.new_label("done")

    # -- warp 0 / thread 0 boot code ------------------------------------------------
    asm.label("entry")
    if emit_prologue is not None:
        emit_prologue(asm)
    asm.csr_read(Reg.t0, CSR.NUM_WARPS)
    asm.la(Reg.t1, worker)
    asm.wspawn(Reg.t0, Reg.t1)
    asm.j(worker)

    # -- per-wavefront worker --------------------------------------------------------
    asm.label(worker)
    asm.csr_read(Reg.t0, CSR.NUM_THREADS)
    asm.tmc(Reg.t0)

    # Global thread id: ((core_id * NW) + warp_id) * NT + thread_id.
    asm.csr_read(Reg.t1, CSR.CORE_ID)
    asm.csr_read(Reg.t2, CSR.WARP_ID)
    asm.csr_read(Reg.t3, CSR.THREAD_ID)
    asm.csr_read(Reg.t4, CSR.NUM_WARPS)
    asm.csr_read(Reg.t5, CSR.NUM_THREADS)
    asm.csr_read(Reg.t6, CSR.NUM_CORES)
    asm.mul(Reg.s0, Reg.t1, Reg.t4)
    asm.add(Reg.s0, Reg.s0, Reg.t2)
    asm.mul(Reg.s0, Reg.s0, Reg.t5)
    asm.add(Reg.s0, Reg.s0, Reg.t3)
    # Stride: total hardware threads in the machine.
    asm.mul(Reg.s1, Reg.t6, Reg.t4)
    asm.mul(Reg.s1, Reg.s1, Reg.t5)

    # Argument block pointer and task count.
    asm.li(Reg.t0, KERNEL_ARG_PTR_ADDR)
    asm.lw(Reg.s2, 0, Reg.t0)
    asm.lw(Reg.s3, ARG_NUM_TASKS_OFFSET, Reg.s2)

    # Uniform trip count: ceil(num_tasks / stride).
    asm.add(Reg.t0, Reg.s3, Reg.s1)
    asm.addi(Reg.t0, Reg.t0, -1)
    asm.divu(Reg.s4, Reg.t0, Reg.s1)
    asm.li(Reg.s5, 0)
    asm.beqz(Reg.s4, done)

    # -- task loop ----------------------------------------------------------------------
    asm.label(loop)
    asm.mul(Reg.t0, Reg.s5, Reg.s1)
    asm.add(Reg.s6, Reg.s0, Reg.t0)
    asm.slt(Reg.t1, Reg.s6, Reg.s3)
    asm.split(Reg.t1)
    asm.beqz(Reg.t1, skip)
    asm.mv(Reg.a0, Reg.s6)
    asm.mv(Reg.a1, Reg.s2)
    asm.call(body_label)
    asm.join()
    asm.j(endif)
    asm.label(skip)
    asm.join()
    asm.label(endif)
    asm.addi(Reg.s5, Reg.s5, 1)
    asm.blt(Reg.s5, Reg.s4, loop)

    # -- shutdown --------------------------------------------------------------------------
    asm.label(done)
    asm.li(Reg.t0, 0)
    asm.tmc(Reg.t0)


def build_kernel_program(
    emit_body: Callable[[ProgramBuilder], None],
    base: int = DEFAULT_KERNEL_BASE,
    emit_prologue: Callable[[ProgramBuilder], None] | None = None,
) -> Program:
    """Assemble a complete kernel image: runtime prologue plus the body.

    ``emit_body`` receives the builder positioned at the body's first
    instruction (``a0`` = task id, ``a1`` = argument-block address) and must
    end the body with ``ret``.  ``emit_prologue`` optionally emits per-core
    setup code (e.g. texture CSR programming) that runs before wavefronts
    are spawned.
    """
    asm = ProgramBuilder(base=base)
    body_label = asm.new_label("kernel_body")
    emit_spawn_runtime(asm, body_label, emit_prologue=emit_prologue)
    asm.label(body_label)
    emit_body(asm)
    asm.set_entry("entry")
    return asm.assemble()
