"""Common scaffolding for the benchmark kernels.

Each kernel used in the evaluation (the Rodinia-derived set of section 6.1
plus the synthetic texture benchmarks) is a :class:`Kernel` subclass that
knows how to

* emit its device-side body through the assembler DSL,
* stage its input buffers and argument block onto a :class:`VortexDevice`,
* verify the device results against a numpy reference, and
* report whether the paper classifies it as compute- or memory-bounded.

``Kernel.run`` performs the full upload → launch → verify flow and returns
the :class:`ExecutionReport` together with the verification outcome, which
is what the benchmark harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.isa.builder import Program, ProgramBuilder
from repro.kernels.runtime import DEFAULT_KERNEL_BASE, build_kernel_program
from repro.runtime.device import VortexDevice
from repro.runtime.launch import LaunchOptions
from repro.runtime.report import ExecutionReport


@dataclass
class KernelRun:
    """The outcome of one kernel execution."""

    report: ExecutionReport
    passed: bool
    context: Dict = field(default_factory=dict)


class Kernel:
    """Base class for device kernels."""

    #: Registry key and display name.
    name: str = "kernel"
    #: "compute" or "memory" (the paper's benchmark classification) or "texture".
    category: str = "compute"

    def __init__(self, **parameters):
        self.parameters = parameters
        self._program: Program | None = None

    # -- device code ---------------------------------------------------------------

    def emit_body(self, asm: ProgramBuilder) -> None:
        """Emit the kernel body (``a0`` = task id, ``a1`` = argument block)."""
        raise NotImplementedError

    def emit_prologue(self, asm: ProgramBuilder) -> None:
        """Emit optional per-core setup code (default: nothing).

        Runs on warp 0 / thread 0 of every core before wavefronts spawn;
        texture kernels use it to program the texture CSRs.
        """

    def build_program(self, base: int = DEFAULT_KERNEL_BASE) -> Program:
        """Assemble (and cache) the kernel image."""
        if self._program is None or self._program.base != base:
            self._program = build_kernel_program(
                self.emit_body, base=base, emit_prologue=self.emit_prologue
            )
        return self._program

    # -- host-side staging --------------------------------------------------------------

    def default_size(self) -> int:
        """Problem size used when the caller does not specify one."""
        return 256

    def setup(self, device: VortexDevice, size: int) -> Dict:
        """Allocate/initialize device buffers and the argument block.

        Returns a context dictionary handed back to :meth:`verify`.
        Subclasses must call :meth:`write_args` with the argument words
        (starting with ``num_tasks``).
        """
        raise NotImplementedError

    def verify(self, device: VortexDevice, context: Dict) -> bool:
        """Check device results against the host reference."""
        raise NotImplementedError

    @staticmethod
    def write_args(device: VortexDevice, words) -> int:
        """Write the argument block and publish its pointer to the device."""
        return device.write_kernel_args(words)

    # -- end-to-end flow -----------------------------------------------------------------------

    def run(
        self,
        device: VortexDevice,
        size: int | None = None,
        verify: bool = True,
        options: LaunchOptions | None = None,
    ) -> KernelRun:
        """Upload, launch and (optionally) verify this kernel on ``device``.

        ``options`` (a :class:`LaunchOptions`) rides through ``launch`` to
        the driver, so per-job cycle/instruction budgets apply uniformly on
        every backend.  The entry point resolves through the launch
        precedence: ``options.entry_pc`` when set, else the uploaded
        program's entry.
        """
        size = size if size is not None else self.default_size()
        program = self.build_program()
        device.upload_program(program)
        context = self.setup(device, size)
        report = device.launch(options=options)
        passed = self.verify(device, context) if verify else True
        return KernelRun(report=report, passed=passed, context=context)

    # -- numpy helpers ----------------------------------------------------------------------------

    @staticmethod
    def rng(seed: int = 7) -> np.random.Generator:
        """Deterministic RNG so kernel inputs are reproducible across runs."""
        return np.random.default_rng(seed)
