"""``saxpy`` — single-precision A*X plus Y (memory-bounded group).

Argument block layout::

    word 0: num_tasks
    word 1: a (binary32 bits)
    word 2: address of X
    word 3: address of Y (updated in place)
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import ProgramBuilder
from repro.isa.registers import FReg, Reg
from repro.kernels.base import Kernel
from repro.runtime.device import VortexDevice


class SaxpyKernel(Kernel):
    """Y[i] = a * X[i] + Y[i] over binary32 floats."""

    name = "saxpy"
    category = "memory"

    def __init__(self, scale: float = 2.5, **parameters):
        super().__init__(**parameters)
        self.scale = scale

    def default_size(self) -> int:
        return 256

    def emit_body(self, asm: ProgramBuilder) -> None:
        asm.slli(Reg.t0, Reg.a0, 2)
        # Scalar a.
        asm.lw(Reg.t1, 4, Reg.a1)
        asm.fmv_w_x(FReg.fa1, Reg.t1)
        # X[i].
        asm.lw(Reg.t2, 8, Reg.a1)
        asm.add(Reg.t2, Reg.t2, Reg.t0)
        asm.flw(FReg.fa2, 0, Reg.t2)
        # Y[i].
        asm.lw(Reg.t3, 12, Reg.a1)
        asm.add(Reg.t3, Reg.t3, Reg.t0)
        asm.flw(FReg.fa3, 0, Reg.t3)
        # Y[i] = a * X[i] + Y[i].
        asm.fmadd_s(FReg.fa4, FReg.fa1, FReg.fa2, FReg.fa3)
        asm.fsw(FReg.fa4, 0, Reg.t3)
        asm.ret()

    def setup(self, device: VortexDevice, size: int) -> Dict:
        rng = self.rng()
        x = rng.random(size, dtype=np.float32)
        y = rng.random(size, dtype=np.float32)
        buf_x = device.alloc_array(x)
        buf_y = device.alloc_array(y)
        from repro.common.bitutils import float_to_bits

        self.write_args(
            device, [size, float_to_bits(self.scale), buf_x.address, buf_y.address]
        )
        return {"x": x, "y": y, "out": buf_y, "size": size}

    def verify(self, device: VortexDevice, context: Dict) -> bool:
        scale = np.float32(self.scale)
        expected = scale * context["x"] + context["y"]
        result = context["out"].read(np.float32, context["size"])
        return bool(np.allclose(result, expected, rtol=1e-5, atol=1e-6))
