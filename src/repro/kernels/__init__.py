"""Device kernels used by the evaluation (paper section 6.1).

The Rodinia-derived OpenCL kernels are re-implemented against the assembler
DSL: the compute-bounded group (``sgemm``, ``vecadd``, ``sfilter``), the
memory-bounded group (``saxpy``, ``nearn``, ``gaussian``, ``bfs``), and the
synthetic texture benchmarks (point / bilinear / trilinear, each in a
hardware-accelerated and a pure-software variant) used by Figure 20.
"""

from repro.kernels.base import Kernel, KernelRun
from repro.kernels.runtime import build_kernel_program, DEFAULT_KERNEL_BASE
from repro.kernels.vecadd import VecAddKernel
from repro.kernels.saxpy import SaxpyKernel
from repro.kernels.sgemm import SgemmKernel
from repro.kernels.sfilter import SfilterKernel
from repro.kernels.nearn import NearnKernel
from repro.kernels.gaussian import GaussianKernel
from repro.kernels.bfs import BfsKernel
from repro.kernels.texture import (
    TextureKernel,
    hardware_texture_kernel,
    software_texture_kernel,
)

#: Registry of the Rodinia-style kernels keyed by their paper name.
KERNELS = {
    kernel_cls.name: kernel_cls
    for kernel_cls in (
        VecAddKernel,
        SaxpyKernel,
        SgemmKernel,
        SfilterKernel,
        NearnKernel,
        GaussianKernel,
        BfsKernel,
    )
}

#: The benchmark grouping used throughout section 6.
COMPUTE_BOUND = ("sgemm", "vecadd", "sfilter")
MEMORY_BOUND = ("saxpy", "nearn", "gaussian", "bfs")

__all__ = [
    "Kernel",
    "KernelRun",
    "build_kernel_program",
    "DEFAULT_KERNEL_BASE",
    "VecAddKernel",
    "SaxpyKernel",
    "SgemmKernel",
    "SfilterKernel",
    "NearnKernel",
    "GaussianKernel",
    "BfsKernel",
    "TextureKernel",
    "hardware_texture_kernel",
    "software_texture_kernel",
    "KERNELS",
    "COMPUTE_BOUND",
    "MEMORY_BOUND",
]
