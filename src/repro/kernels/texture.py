"""Synthetic texture benchmarks (paper section 6.4, Figure 20).

Each kernel renders a source texture into a destination image of the same
size, one task per destination pixel, exercising one of the three filtering
modes — point, bilinear, trilinear — either through the hardware ``tex``
instruction (HW variants) or through an equivalent software sampling
routine built from ordinary loads and integer/float arithmetic (SW
variants), exactly the comparison Figure 20 makes.

Argument block layout (shared by all variants)::

    word 0: num_tasks (= dstW * dstH)
    word 1: dstW
    word 2: dstH
    word 3: address of the destination image (RGBA8)
    word 4: address of the source texture (RGBA8, mip 0)
    word 5: log2(srcW)
    word 6: log2(srcH)
    word 7: hardware filter mode (0 = point, 1 = bilinear)
    word 8: byte offset of mip level 1 (trilinear only)
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import ProgramBuilder
from repro.isa.csr import TexCSR, tex_csr
from repro.isa.registers import FReg, Reg
from repro.kernels.base import Kernel
from repro.kernels.runtime import emit_load_arg_pointer
from repro.runtime.device import VortexDevice
from repro.texture.formats import TexFilter, TexFormat, TexWrap
from repro.texture.sampler import TextureSampler, TextureState

#: Filtering modes accepted by the kernel factories.
MODES = ("point", "bilinear", "trilinear")


def _log2(value: int) -> int:
    if value & (value - 1):
        raise ValueError(f"texture dimension must be a power of two, got {value}")
    return value.bit_length() - 1


class TextureKernel(Kernel):
    """One texture benchmark configuration (mode x HW/SW)."""

    category = "texture"

    def __init__(self, mode: str = "bilinear", use_hw: bool = True, **parameters):
        super().__init__(**parameters)
        if mode not in MODES:
            raise ValueError(f"unknown filtering mode {mode!r}")
        self.mode = mode
        self.use_hw = use_hw
        self.name = f"tex_{mode}_{'hw' if use_hw else 'sw'}"

    def default_size(self) -> int:
        # Number of destination pixels (32 x 32 render target).
        return 32 * 32

    # ------------------------------------------------------------------ device code

    def emit_prologue(self, asm: ProgramBuilder) -> None:
        """Program the stage-0 texture CSRs from the argument block (HW only)."""
        if not self.use_hw:
            return
        emit_load_arg_pointer(asm, Reg.a1)
        asm.lw(Reg.t0, 16, Reg.a1)
        asm.csr_write(tex_csr(0, TexCSR.ADDR), Reg.t0)
        asm.lw(Reg.t0, 20, Reg.a1)
        asm.csr_write(tex_csr(0, TexCSR.WIDTH), Reg.t0)
        asm.lw(Reg.t0, 24, Reg.a1)
        asm.csr_write(tex_csr(0, TexCSR.HEIGHT), Reg.t0)
        asm.li(Reg.t0, int(TexFormat.RGBA8))
        asm.csr_write(tex_csr(0, TexCSR.FORMAT), Reg.t0)
        asm.li(Reg.t0, int(TexWrap.CLAMP))
        asm.csr_write(tex_csr(0, TexCSR.WRAP), Reg.t0)
        asm.lw(Reg.t0, 28, Reg.a1)
        asm.csr_write(tex_csr(0, TexCSR.FILTER), Reg.t0)
        asm.li(Reg.t0, 0)
        asm.csr_write(tex_csr(0, TexCSR.MIPOFF, 0), Reg.t0)
        asm.lw(Reg.t0, 32, Reg.a1)
        asm.csr_write(tex_csr(0, TexCSR.MIPOFF, 1), Reg.t0)

    def emit_body(self, asm: ProgramBuilder) -> None:
        self._emit_uv(asm)
        if self.use_hw:
            self._emit_hw_sample(asm)
        else:
            self._emit_sw_sample(asm)
        # Store the color held in t2 to dst[task].
        asm.lw(Reg.t3, 12, Reg.a1)
        asm.slli(Reg.t4, Reg.a0, 2)
        asm.add(Reg.t3, Reg.t3, Reg.t4)
        asm.sw(Reg.t2, 0, Reg.t3)
        asm.ret()

    # -- shared preamble: u (fa0) and v (fa1) at the pixel centre -------------------

    @staticmethod
    def _emit_uv(asm: ProgramBuilder) -> None:
        asm.lw(Reg.t0, 4, Reg.a1)
        asm.lw(Reg.t1, 8, Reg.a1)
        asm.divu(Reg.t2, Reg.a0, Reg.t0)
        asm.remu(Reg.t3, Reg.a0, Reg.t0)
        asm.fcvt_s_wu(FReg.fa0, Reg.t3)
        asm.li_float(FReg.fa2, 0.5, scratch=Reg.t4)
        asm.fadd_s(FReg.fa0, FReg.fa0, FReg.fa2)
        asm.fcvt_s_wu(FReg.fa3, Reg.t0)
        asm.fdiv_s(FReg.fa0, FReg.fa0, FReg.fa3)
        asm.fcvt_s_wu(FReg.fa4, Reg.t2)
        asm.fadd_s(FReg.fa4, FReg.fa4, FReg.fa2)
        asm.fcvt_s_wu(FReg.fa5, Reg.t1)
        asm.fdiv_s(FReg.fa1, FReg.fa4, FReg.fa5)

    # -- hardware path -----------------------------------------------------------------

    def _emit_hw_sample(self, asm: ProgramBuilder) -> None:
        asm.fmv_w_x(FReg.fa5, Reg.zero)
        asm.tex(Reg.t2, FReg.fa0, FReg.fa1, FReg.fa5, stage=0)
        if self.mode == "trilinear":
            # Second sample from mip level 1 and a 50/50 blend (Algorithm 1
            # with FRAC(lod) = 0.5).
            asm.li_float(FReg.fa6, 1.0, scratch=Reg.t5)
            asm.tex(Reg.t5, FReg.fa0, FReg.fa1, FReg.fa6, stage=0)
            self._emit_average(asm, Reg.t2, Reg.t5, Reg.t6)

    @staticmethod
    def _emit_average(asm: ProgramBuilder, dst: Reg, other: Reg, scratch: Reg) -> None:
        """dst = per-channel average of two packed RGBA8 colors."""
        asm.li(scratch, 0xFEFEFEFE - (1 << 32))  # sign-extended constant fits li
        asm.and_(dst, dst, scratch)
        asm.srli(dst, dst, 1)
        asm.and_(other, other, scratch)
        asm.srli(other, other, 1)
        asm.add(dst, dst, other)

    # -- software path ------------------------------------------------------------------

    def _emit_sw_sample(self, asm: ProgramBuilder) -> None:
        if self.mode == "point":
            self._emit_sw_point(asm)
        elif self.mode == "bilinear":
            self._emit_sw_bilinear(asm, lod=0)
        else:
            # Trilinear: bilinear at mip 0 and mip 1, then a 50/50 blend.
            self._emit_sw_bilinear(asm, lod=0)
            asm.fmv_w_x(FReg.fa7, Reg.t2)
            self._emit_sw_bilinear(asm, lod=1)
            asm.fmv_x_w(Reg.t5, FReg.fa7)
            self._emit_average(asm, Reg.t2, Reg.t5, Reg.t6)

    @staticmethod
    def _emit_clamp(asm: ProgramBuilder, value: Reg, limit: Reg, s1: Reg, s2: Reg) -> None:
        """Branch-free clamp of ``value`` into ``[0, limit - 1]``."""
        asm.srai(s1, value, 31)
        asm.xori(s1, s1, -1)
        asm.and_(value, value, s1)
        asm.addi(s1, limit, -1)
        asm.sub(s1, value, s1)
        asm.srai(s2, s1, 31)
        asm.xori(s2, s2, -1)
        asm.and_(s1, s1, s2)
        asm.sub(value, value, s1)

    def _emit_src_dimensions(self, asm: ProgramBuilder, lod: int) -> None:
        """Load srcW into t4 and srcH into t5 for mip ``lod``."""
        asm.lw(Reg.t4, 20, Reg.a1)
        asm.addi(Reg.t4, Reg.t4, -lod)
        asm.li(Reg.t2, 1)
        asm.sll(Reg.t4, Reg.t2, Reg.t4)
        asm.lw(Reg.t5, 24, Reg.a1)
        asm.addi(Reg.t5, Reg.t5, -lod)
        asm.sll(Reg.t5, Reg.t2, Reg.t5)

    def _emit_src_base(self, asm: ProgramBuilder, dest: Reg, lod: int) -> None:
        """Load the byte address of mip ``lod`` into ``dest``."""
        asm.lw(dest, 16, Reg.a1)
        if lod > 0:
            asm.lw(Reg.t2, 32, Reg.a1)
            asm.add(dest, dest, Reg.t2)

    def _emit_sw_point(self, asm: ProgramBuilder) -> None:
        self._emit_src_dimensions(asm, lod=0)
        # xi = trunc(u * srcW), yi = trunc(v * srcH), clamped.
        asm.fcvt_s_wu(FReg.fa5, Reg.t4)
        asm.fmul_s(FReg.fa6, FReg.fa0, FReg.fa5)
        asm.fcvt_w_s(Reg.a2, FReg.fa6)
        asm.fcvt_s_wu(FReg.fa5, Reg.t5)
        asm.fmul_s(FReg.fa6, FReg.fa1, FReg.fa5)
        asm.fcvt_w_s(Reg.a3, FReg.fa6)
        self._emit_clamp(asm, Reg.a2, Reg.t4, Reg.a4, Reg.a5)
        self._emit_clamp(asm, Reg.a3, Reg.t5, Reg.a4, Reg.a5)
        # color = src[yi * srcW + xi]
        self._emit_src_base(asm, Reg.a5, lod=0)
        asm.mul(Reg.a4, Reg.a3, Reg.t4)
        asm.add(Reg.a4, Reg.a4, Reg.a2)
        asm.slli(Reg.a4, Reg.a4, 2)
        asm.add(Reg.a4, Reg.a4, Reg.a5)
        asm.lw(Reg.t2, 0, Reg.a4)

    def _emit_sw_bilinear(self, asm: ProgramBuilder, lod: int) -> None:
        """Software bilinear sample of mip ``lod``; result color in t2."""
        self._emit_src_dimensions(asm, lod=lod)
        # fx = u * srcW - 0.5, fy = v * srcH - 0.5.
        asm.fcvt_s_wu(FReg.fa5, Reg.t4)
        asm.fmul_s(FReg.fa5, FReg.fa0, FReg.fa5)
        asm.li_float(FReg.fa6, 0.5, scratch=Reg.t2)
        asm.fsub_s(FReg.fa5, FReg.fa5, FReg.fa6)
        asm.fcvt_s_wu(FReg.fa4, Reg.t5)
        asm.fmul_s(FReg.fa4, FReg.fa1, FReg.fa4)
        asm.fsub_s(FReg.fa4, FReg.fa4, FReg.fa6)
        # Clamp fx/fy at zero: negative values only occur in the half-texel
        # border where both bilinear taps resolve to the same clamped texel,
        # so flooring at zero matches the hardware result exactly.
        asm.fmv_w_x(FReg.ft4, Reg.zero)
        asm.fmax_s(FReg.fa5, FReg.fa5, FReg.ft4)
        asm.fmax_s(FReg.fa4, FReg.fa4, FReg.ft4)
        # x0 (t6), y0 (a2) and the 8-bit blend fractions (a3, a4).
        asm.fcvt_w_s(Reg.t6, FReg.fa5)
        asm.fcvt_w_s(Reg.a2, FReg.fa4)
        asm.fcvt_s_w(FReg.fa6, Reg.t6)
        asm.fsub_s(FReg.fa6, FReg.fa5, FReg.fa6)
        asm.li_float(FReg.fa3, 256.0, scratch=Reg.t2)
        asm.fmul_s(FReg.fa6, FReg.fa6, FReg.fa3)
        asm.fcvt_w_s(Reg.a3, FReg.fa6)
        asm.fcvt_s_w(FReg.fa6, Reg.a2)
        asm.fsub_s(FReg.fa6, FReg.fa4, FReg.fa6)
        asm.fmul_s(FReg.fa6, FReg.fa6, FReg.fa3)
        asm.fcvt_w_s(Reg.a4, FReg.fa6)
        # x1 = x0 + 1, y1 = y0 + 1, all clamped to the mip dimensions.
        asm.addi(Reg.a5, Reg.t6, 1)
        asm.addi(Reg.a6, Reg.a2, 1)
        self._emit_clamp(asm, Reg.t6, Reg.t4, Reg.a7, Reg.t2)
        self._emit_clamp(asm, Reg.a2, Reg.t5, Reg.a7, Reg.t2)
        self._emit_clamp(asm, Reg.a5, Reg.t4, Reg.a7, Reg.t2)
        self._emit_clamp(asm, Reg.a6, Reg.t5, Reg.a7, Reg.t2)
        # Base address of the mip level.
        self._emit_src_base(asm, Reg.a7, lod=lod)
        # Row 0 texels -> ft0 (x0) and ft1 (x1).
        asm.mul(Reg.t2, Reg.a2, Reg.t4)
        asm.add(Reg.t3, Reg.t2, Reg.t6)
        asm.slli(Reg.t3, Reg.t3, 2)
        asm.add(Reg.t3, Reg.t3, Reg.a7)
        asm.lw(Reg.t3, 0, Reg.t3)
        asm.fmv_w_x(FReg.ft0, Reg.t3)
        asm.add(Reg.t3, Reg.t2, Reg.a5)
        asm.slli(Reg.t3, Reg.t3, 2)
        asm.add(Reg.t3, Reg.t3, Reg.a7)
        asm.lw(Reg.t3, 0, Reg.t3)
        asm.fmv_w_x(FReg.ft1, Reg.t3)
        # Row 1 texels -> ft2 (x0) and ft3 (x1).
        asm.mul(Reg.t2, Reg.a6, Reg.t4)
        asm.add(Reg.t3, Reg.t2, Reg.t6)
        asm.slli(Reg.t3, Reg.t3, 2)
        asm.add(Reg.t3, Reg.t3, Reg.a7)
        asm.lw(Reg.t3, 0, Reg.t3)
        asm.fmv_w_x(FReg.ft2, Reg.t3)
        asm.add(Reg.t3, Reg.t2, Reg.a5)
        asm.slli(Reg.t3, Reg.t3, 2)
        asm.add(Reg.t3, Reg.t3, Reg.a7)
        asm.lw(Reg.t3, 0, Reg.t3)
        asm.fmv_w_x(FReg.ft3, Reg.t3)
        # Horizontal blends, then the vertical blend.
        asm.fmv_x_w(Reg.t2, FReg.ft0)
        asm.fmv_x_w(Reg.t3, FReg.ft1)
        self._emit_blend(asm, Reg.t2, Reg.t3, Reg.a3)
        asm.fmv_w_x(FReg.ft0, Reg.t2)
        asm.fmv_x_w(Reg.t2, FReg.ft2)
        asm.fmv_x_w(Reg.t3, FReg.ft3)
        self._emit_blend(asm, Reg.t2, Reg.t3, Reg.a3)
        asm.fmv_w_x(FReg.ft1, Reg.t2)
        asm.fmv_x_w(Reg.t2, FReg.ft0)
        asm.fmv_x_w(Reg.t3, FReg.ft1)
        self._emit_blend(asm, Reg.t2, Reg.t3, Reg.a4)

    @staticmethod
    def _emit_blend(asm: ProgramBuilder, color_a: Reg, color_b: Reg, weight: Reg) -> None:
        """color_a = blend(color_a, color_b, weight/256) on packed RGBA8.

        Uses the two-lanes-at-a-time fixed-point trick the hardware sampler
        also relies on.  Clobbers t6, a5, a6, a7 and a2.
        """
        t1, t2, t3, t4, t5 = Reg.t6, Reg.a5, Reg.a6, Reg.a7, Reg.a2
        asm.li(t1, 256)
        asm.sub(t1, t1, weight)
        asm.li(t2, 0x00FF00FF)
        # Low byte lanes.
        asm.and_(t3, color_a, t2)
        asm.mul(t3, t3, t1)
        asm.and_(t4, color_b, t2)
        asm.mul(t4, t4, weight)
        asm.add(t3, t3, t4)
        asm.srli(t3, t3, 8)
        asm.and_(t3, t3, t2)
        # High byte lanes.
        asm.srli(t4, color_a, 8)
        asm.and_(t4, t4, t2)
        asm.mul(t4, t4, t1)
        asm.srli(t5, color_b, 8)
        asm.and_(t5, t5, t2)
        asm.mul(t5, t5, weight)
        asm.add(t4, t4, t5)
        asm.srli(t4, t4, 8)
        asm.and_(t4, t4, t2)
        asm.slli(t4, t4, 8)
        asm.or_(color_a, t3, t4)

    # ------------------------------------------------------------------ host side

    def setup(self, device: VortexDevice, size: int) -> Dict:
        width = max(int(round(size ** 0.5)), 8)
        # Round down to a power of two so mip dimensions stay exact.
        width = 1 << _log2(1 << (width.bit_length() - 1))
        height = width
        num_tasks = width * height
        rng = self.rng()
        texture = rng.integers(0, 256, size=(height, width, 4), dtype=np.uint8)
        mip1 = texture.reshape(height // 2, 2, width // 2, 2, 4).mean(axis=(1, 3)).astype(np.uint8)

        mip0_bytes = texture.tobytes()
        mip1_offset = len(mip0_bytes)
        buf_src = device.alloc(mip1_offset + mip1.nbytes)
        device.memory.write_bytes(buf_src.address, mip0_bytes + mip1.tobytes())
        buf_dst = device.alloc(num_tasks * 4)

        hw_filter = TexFilter.POINT if self.mode == "point" else TexFilter.BILINEAR
        self.write_args(
            device,
            [
                num_tasks,
                width,
                height,
                buf_dst.address,
                buf_src.address,
                _log2(width),
                _log2(height),
                int(hw_filter),
                mip1_offset,
            ],
        )
        return {
            "texture": texture,
            "mip1": mip1,
            "width": width,
            "height": height,
            "src_address": buf_src.address,
            "mip1_offset": mip1_offset,
            "dst": buf_dst,
            "filter": hw_filter,
        }

    def _reference_image(self, device: VortexDevice, context: Dict) -> np.ndarray:
        """Compute the expected output with the functional texture sampler."""
        width, height = context["width"], context["height"]
        state = TextureState(
            address=context["src_address"],
            width_log2=_log2(width),
            height_log2=_log2(height),
            fmt=TexFormat.RGBA8,
            wrap=TexWrap.CLAMP,
            filter_mode=context["filter"],
            mip_offsets=[0, context["mip1_offset"]] + [0] * 10,
        )
        sampler = TextureSampler(device.memory)
        expected = np.zeros(width * height, dtype=np.uint32)
        for y in range(height):
            for x in range(width):
                u = (x + 0.5) / width
                v = (y + 0.5) / height
                color0 = sampler.sample(state, u, v, 0)
                if self.mode == "trilinear":
                    color1 = sampler.sample(state, u, v, 1)
                    color0 = (
                        ((color0 & 0xFEFEFEFE) >> 1) + ((color1 & 0xFEFEFEFE) >> 1)
                    ) & 0xFFFFFFFF
                expected[y * width + x] = color0
        return expected

    def verify(self, device: VortexDevice, context: Dict) -> bool:
        expected = self._reference_image(device, context)
        result = context["dst"].read(np.uint32, context["width"] * context["height"])
        expected_bytes = expected.view(np.uint8).reshape(-1, 4).astype(np.int32)
        result_bytes = result.view(np.uint8).reshape(-1, 4).astype(np.int32)
        return bool(np.max(np.abs(expected_bytes - result_bytes)) <= 1)


def hardware_texture_kernel(mode: str) -> TextureKernel:
    """The HW (``tex``-accelerated) variant used by Figure 20."""
    return TextureKernel(mode=mode, use_hw=True)


def software_texture_kernel(mode: str) -> TextureKernel:
    """The all-software variant used by Figure 20."""
    return TextureKernel(mode=mode, use_hw=False)
