"""``sgemm`` — single-precision matrix multiply (compute-bounded group).

One task computes one output element of ``C = A @ B`` for square ``N x N``
matrices.  Argument block layout::

    word 0: num_tasks (= N * N)
    word 1: N
    word 2: address of A (row-major)
    word 3: address of B (row-major)
    word 4: address of C (row-major, output)
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import ProgramBuilder
from repro.isa.registers import FReg, Reg
from repro.kernels.base import Kernel
from repro.runtime.device import VortexDevice


class SgemmKernel(Kernel):
    """C[r, c] = sum_k A[r, k] * B[k, c] over binary32 floats."""

    name = "sgemm"
    category = "compute"

    def default_size(self) -> int:
        # Interpreted as N*N tasks for N = 16.
        return 16 * 16

    def emit_body(self, asm: ProgramBuilder) -> None:
        loop = asm.new_label("sgemm_k")
        # N, row, col.
        asm.lw(Reg.t0, 4, Reg.a1)
        asm.divu(Reg.t1, Reg.a0, Reg.t0)
        asm.remu(Reg.t2, Reg.a0, Reg.t0)
        # &A[row][0] and &B[0][col].
        asm.lw(Reg.t3, 8, Reg.a1)
        asm.lw(Reg.t4, 12, Reg.a1)
        asm.mul(Reg.t5, Reg.t1, Reg.t0)
        asm.slli(Reg.t5, Reg.t5, 2)
        asm.add(Reg.t3, Reg.t3, Reg.t5)
        asm.slli(Reg.t5, Reg.t2, 2)
        asm.add(Reg.t4, Reg.t4, Reg.t5)
        # Accumulator and k counter.
        asm.fmv_w_x(FReg.fa0, Reg.zero)
        asm.li(Reg.t6, 0)
        # Row stride of B in bytes.
        asm.slli(Reg.a2, Reg.t0, 2)
        asm.label(loop)
        asm.flw(FReg.fa1, 0, Reg.t3)
        asm.flw(FReg.fa2, 0, Reg.t4)
        asm.fmadd_s(FReg.fa0, FReg.fa1, FReg.fa2, FReg.fa0)
        asm.addi(Reg.t3, Reg.t3, 4)
        asm.add(Reg.t4, Reg.t4, Reg.a2)
        asm.addi(Reg.t6, Reg.t6, 1)
        asm.blt(Reg.t6, Reg.t0, loop)
        # C[row][col] = accumulator.
        asm.lw(Reg.t3, 16, Reg.a1)
        asm.mul(Reg.t5, Reg.t1, Reg.t0)
        asm.add(Reg.t5, Reg.t5, Reg.t2)
        asm.slli(Reg.t5, Reg.t5, 2)
        asm.add(Reg.t3, Reg.t3, Reg.t5)
        asm.fsw(FReg.fa0, 0, Reg.t3)
        asm.ret()

    def setup(self, device: VortexDevice, size: int) -> Dict:
        n = max(int(round(size ** 0.5)), 2)
        rng = self.rng()
        a = rng.random((n, n), dtype=np.float32)
        b = rng.random((n, n), dtype=np.float32)
        buf_a = device.alloc_array(a)
        buf_b = device.alloc_array(b)
        buf_c = device.alloc(n * n * 4)
        self.write_args(
            device, [n * n, n, buf_a.address, buf_b.address, buf_c.address]
        )
        return {"a": a, "b": b, "out": buf_c, "n": n}

    def verify(self, device: VortexDevice, context: Dict) -> bool:
        n = context["n"]
        expected = context["a"].astype(np.float64) @ context["b"].astype(np.float64)
        result = context["out"].read(np.float32, n * n).reshape(n, n)
        return bool(np.allclose(result, expected, rtol=1e-3, atol=1e-4))
