"""``gaussian`` — one elimination step of Gaussian elimination
(memory-bounded group).

The kernel performs the row-update step for pivot ``k``: every task owns
one row ``i > k`` and computes ``A[i, j] -= (A[i, k] / A[k, k]) * A[k, j]``
for ``j in [k, n)`` plus the matching right-hand-side update.  Argument
block layout::

    word 0: num_tasks (= n - k - 1)
    word 1: n
    word 2: k
    word 3: address of A (row-major float32)
    word 4: address of b (float32)
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import ProgramBuilder
from repro.isa.registers import FReg, Reg
from repro.kernels.base import Kernel
from repro.runtime.device import VortexDevice


class GaussianKernel(Kernel):
    """Row update of the elimination step for one pivot."""

    name = "gaussian"
    category = "memory"

    def __init__(self, pivot: int = 0, **parameters):
        super().__init__(**parameters)
        self.pivot = pivot

    def default_size(self) -> int:
        # Interpreted as the matrix dimension n; tasks = n - pivot - 1.
        return 24

    def emit_body(self, asm: ProgramBuilder) -> None:
        jloop = asm.new_label("gaussian_j")
        # n (t0), k (t1), A (t2), b (t3), row i = k + 1 + task (t4).
        asm.lw(Reg.t0, 4, Reg.a1)
        asm.lw(Reg.t1, 8, Reg.a1)
        asm.lw(Reg.t2, 12, Reg.a1)
        asm.lw(Reg.t3, 16, Reg.a1)
        asm.addi(Reg.t4, Reg.t1, 1)
        asm.add(Reg.t4, Reg.t4, Reg.a0)
        # &A[i][k] (t5) and &A[k][k] (t6).
        asm.mul(Reg.t5, Reg.t4, Reg.t0)
        asm.add(Reg.t5, Reg.t5, Reg.t1)
        asm.slli(Reg.t5, Reg.t5, 2)
        asm.add(Reg.t5, Reg.t2, Reg.t5)
        asm.mul(Reg.t6, Reg.t1, Reg.t0)
        asm.add(Reg.t6, Reg.t6, Reg.t1)
        asm.slli(Reg.t6, Reg.t6, 2)
        asm.add(Reg.t6, Reg.t2, Reg.t6)
        # m = A[i][k] / A[k][k]
        asm.flw(FReg.fa0, 0, Reg.t5)
        asm.flw(FReg.fa1, 0, Reg.t6)
        asm.fdiv_s(FReg.fa0, FReg.fa0, FReg.fa1)
        # j loop from k to n - 1 (uniform bounds across all threads).
        asm.mv(Reg.a2, Reg.t1)
        asm.label(jloop)
        asm.flw(FReg.fa2, 0, Reg.t6)
        asm.flw(FReg.fa3, 0, Reg.t5)
        asm.fnmsub_s(FReg.fa3, FReg.fa0, FReg.fa2, FReg.fa3)
        asm.fsw(FReg.fa3, 0, Reg.t5)
        asm.addi(Reg.t5, Reg.t5, 4)
        asm.addi(Reg.t6, Reg.t6, 4)
        asm.addi(Reg.a2, Reg.a2, 1)
        asm.blt(Reg.a2, Reg.t0, jloop)
        # b[i] -= m * b[k]
        asm.slli(Reg.a2, Reg.t4, 2)
        asm.add(Reg.a2, Reg.t3, Reg.a2)
        asm.flw(FReg.fa2, 0, Reg.a2)
        asm.slli(Reg.a3, Reg.t1, 2)
        asm.add(Reg.a3, Reg.t3, Reg.a3)
        asm.flw(FReg.fa3, 0, Reg.a3)
        asm.fnmsub_s(FReg.fa2, FReg.fa0, FReg.fa3, FReg.fa2)
        asm.fsw(FReg.fa2, 0, Reg.a2)
        asm.ret()

    def setup(self, device: VortexDevice, size: int) -> Dict:
        n = max(size, self.pivot + 2)
        rng = self.rng()
        matrix = (rng.random((n, n), dtype=np.float32) + np.eye(n, dtype=np.float32) * n).astype(
            np.float32
        )
        rhs = rng.random(n, dtype=np.float32)
        buf_a = device.alloc_array(matrix)
        buf_b = device.alloc_array(rhs)
        num_tasks = n - self.pivot - 1
        self.write_args(
            device, [num_tasks, n, self.pivot, buf_a.address, buf_b.address]
        )
        return {"a": matrix, "b": rhs, "buf_a": buf_a, "buf_b": buf_b, "n": n}

    def verify(self, device: VortexDevice, context: Dict) -> bool:
        n = context["n"]
        k = self.pivot
        a = context["a"].astype(np.float64).copy()
        b = context["b"].astype(np.float64).copy()
        multipliers = a[k + 1 :, k] / a[k, k]
        a[k + 1 :, k:] -= np.outer(multipliers, a[k, k:])
        b[k + 1 :] -= multipliers * b[k]
        result_a = context["buf_a"].read(np.float32, n * n).reshape(n, n)
        result_b = context["buf_b"].read(np.float32, n)
        return bool(
            np.allclose(result_a, a, rtol=1e-3, atol=1e-4)
            and np.allclose(result_b, b, rtol=1e-3, atol=1e-4)
        )
