"""``vecadd`` — element-wise integer vector addition (compute-bounded group).

The simplest Rodinia-style kernel of the evaluation: one task adds one pair
of elements.  Argument block layout::

    word 0: num_tasks
    word 1: address of A
    word 2: address of B
    word 3: address of C (output)
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg
from repro.kernels.base import Kernel
from repro.runtime.device import VortexDevice


class VecAddKernel(Kernel):
    """C[i] = A[i] + B[i] over 32-bit integers."""

    name = "vecadd"
    category = "compute"

    def default_size(self) -> int:
        return 256

    def emit_body(self, asm: ProgramBuilder) -> None:
        # t0 = byte offset of this task's element.
        asm.slli(Reg.t0, Reg.a0, 2)
        # Load A[i].
        asm.lw(Reg.t1, 4, Reg.a1)
        asm.add(Reg.t1, Reg.t1, Reg.t0)
        asm.lw(Reg.t2, 0, Reg.t1)
        # Load B[i].
        asm.lw(Reg.t3, 8, Reg.a1)
        asm.add(Reg.t3, Reg.t3, Reg.t0)
        asm.lw(Reg.t4, 0, Reg.t3)
        # C[i] = A[i] + B[i].
        asm.add(Reg.t5, Reg.t2, Reg.t4)
        asm.lw(Reg.t6, 12, Reg.a1)
        asm.add(Reg.t6, Reg.t6, Reg.t0)
        asm.sw(Reg.t5, 0, Reg.t6)
        asm.ret()

    def setup(self, device: VortexDevice, size: int) -> Dict:
        rng = self.rng()
        a = rng.integers(0, 1 << 20, size=size, dtype=np.uint32)
        b = rng.integers(0, 1 << 20, size=size, dtype=np.uint32)
        buf_a = device.alloc_array(a)
        buf_b = device.alloc_array(b)
        buf_c = device.alloc(size * 4)
        self.write_args(device, [size, buf_a.address, buf_b.address, buf_c.address])
        return {"a": a, "b": b, "out": buf_c, "size": size}

    def verify(self, device: VortexDevice, context: Dict) -> bool:
        expected = context["a"] + context["b"]
        result = context["out"].read(np.uint32, context["size"])
        return bool(np.array_equal(result, expected))
