"""``nearn`` — nearest-neighbour distance computation (memory-bounded group,
but with an expensive square-root per task, which is why the paper notes it
also behaves compute-bound).

One task computes the Euclidean distance of one record to the query point.
Argument block layout::

    word 0: num_tasks
    word 1: address of latitudes  (float32)
    word 2: address of longitudes (float32)
    word 3: address of distances  (float32, output)
    word 4: query latitude  (binary32 bits)
    word 5: query longitude (binary32 bits)
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.common.bitutils import float_to_bits
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import FReg, Reg
from repro.kernels.base import Kernel
from repro.runtime.device import VortexDevice


class NearnKernel(Kernel):
    """dist[i] = sqrt((lat[i] - lat0)^2 + (lng[i] - lng0)^2)."""

    name = "nearn"
    category = "memory"

    def __init__(self, query=(30.0, 120.0), **parameters):
        super().__init__(**parameters)
        self.query = query

    def default_size(self) -> int:
        return 256

    def emit_body(self, asm: ProgramBuilder) -> None:
        asm.slli(Reg.t0, Reg.a0, 2)
        # lat[i], lng[i].
        asm.lw(Reg.t1, 4, Reg.a1)
        asm.add(Reg.t1, Reg.t1, Reg.t0)
        asm.flw(FReg.fa1, 0, Reg.t1)
        asm.lw(Reg.t2, 8, Reg.a1)
        asm.add(Reg.t2, Reg.t2, Reg.t0)
        asm.flw(FReg.fa2, 0, Reg.t2)
        # Query point.
        asm.lw(Reg.t3, 16, Reg.a1)
        asm.fmv_w_x(FReg.fa3, Reg.t3)
        asm.lw(Reg.t4, 20, Reg.a1)
        asm.fmv_w_x(FReg.fa4, Reg.t4)
        # Squared distance and square root.
        asm.fsub_s(FReg.fa1, FReg.fa1, FReg.fa3)
        asm.fsub_s(FReg.fa2, FReg.fa2, FReg.fa4)
        asm.fmul_s(FReg.fa1, FReg.fa1, FReg.fa1)
        asm.fmadd_s(FReg.fa1, FReg.fa2, FReg.fa2, FReg.fa1)
        asm.fsqrt_s(FReg.fa1, FReg.fa1)
        # dist[i].
        asm.lw(Reg.t5, 12, Reg.a1)
        asm.add(Reg.t5, Reg.t5, Reg.t0)
        asm.fsw(FReg.fa1, 0, Reg.t5)
        asm.ret()

    def setup(self, device: VortexDevice, size: int) -> Dict:
        rng = self.rng()
        lat = (rng.random(size, dtype=np.float32) * 180.0 - 90.0).astype(np.float32)
        lng = (rng.random(size, dtype=np.float32) * 360.0 - 180.0).astype(np.float32)
        buf_lat = device.alloc_array(lat)
        buf_lng = device.alloc_array(lng)
        buf_out = device.alloc(size * 4)
        self.write_args(
            device,
            [
                size,
                buf_lat.address,
                buf_lng.address,
                buf_out.address,
                float_to_bits(self.query[0]),
                float_to_bits(self.query[1]),
            ],
        )
        return {"lat": lat, "lng": lng, "out": buf_out, "size": size}

    def verify(self, device: VortexDevice, context: Dict) -> bool:
        lat0, lng0 = np.float32(self.query[0]), np.float32(self.query[1])
        expected = np.sqrt(
            (context["lat"] - lat0) ** 2 + (context["lng"] - lng0) ** 2
        )
        result = context["out"].read(np.float32, context["size"])
        return bool(np.allclose(result, expected, rtol=1e-4, atol=1e-4))
