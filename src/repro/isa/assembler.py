"""Two-pass text assembler for the Vortex ISA.

The assembler accepts the conventional RISC-V assembly syntax, including
labels, comments (``#`` and ``;``), the ``.word`` / ``.space`` / ``.entry``
directives, the pseudo-instructions implemented by the builder DSL, and the
six Vortex extension instructions.  It is implemented on top of
:class:`~repro.isa.builder.ProgramBuilder`, so both paths share a single
encoder.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from typing import List

from repro.isa.builder import BuildError, Program, ProgramBuilder
from repro.isa.instructions import SPEC_BY_MNEMONIC, InstrSpec
from repro.isa.registers import parse_fregister, parse_register


class AssemblerError(Exception):
    """Raised with the offending line number when source cannot be assembled."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


_MEM_OPERAND = re.compile(r"^(?P<offset>[^()]*)\((?P<base>[^()]+)\)$")
_LABEL_DEF = re.compile(r"^(?P<label>[A-Za-z_.][\w.$]*):(?P<rest>.*)$")

#: Pseudo-instructions handled by delegating to the builder's helpers.
_PSEUDOS = {
    "nop": 0,
    "mv": 2,
    "neg": 2,
    "not": 2,
    "seqz": 2,
    "snez": 2,
    "li": 2,
    "la": 2,
    "j": 1,
    "jr": 1,
    "call": 1,
    "ret": 0,
    "beqz": 2,
    "bnez": 2,
    "blez": 2,
    "bgtz": 2,
    "bgt": 3,
    "ble": 3,
    "fmv.s": 2,
    "fneg.s": 2,
    "fabs.s": 2,
}


def _parse_int(token: str) -> int:
    token = token.strip()
    negative = token.startswith("-")
    if negative:
        token = token[1:]
    value = int(token, 0)
    return -value if negative else value


class Assembler:
    """Assembles Vortex assembly text into a :class:`Program` image."""

    def __init__(self, base: int = 0x8000_0000):
        self.base = base

    def assemble(self, source: str) -> Program:
        """Assemble ``source`` and return the program image."""
        builder = ProgramBuilder(base=self.base)
        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            try:
                self._assemble_line(builder, raw_line)
            except (BuildError, ValueError, KeyError) as exc:
                raise AssemblerError(str(exc), line_number) from exc
        try:
            return builder.assemble()
        except BuildError as exc:
            raise AssemblerError(str(exc)) from exc

    # -- line handling ------------------------------------------------------------

    def _assemble_line(self, builder: ProgramBuilder, raw_line: str) -> None:
        line = raw_line.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            return
        match = _LABEL_DEF.match(line)
        if match:
            builder.label(match.group("label"))
            line = match.group("rest").strip()
            if not line:
                return
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = self._split_operands(operand_text)

        if mnemonic.startswith("."):
            self._directive(builder, mnemonic, operands)
            return
        if mnemonic in _PSEUDOS:
            self._pseudo(builder, mnemonic, operands)
            return
        spec = SPEC_BY_MNEMONIC.get(mnemonic)
        if spec is None:
            raise BuildError(f"unknown instruction {mnemonic!r}")
        args = self._convert_operands(spec.syntax, operands, spec)
        builder.emit(mnemonic, *args)

    @staticmethod
    def _split_operands(text: str) -> list[str]:
        text = text.strip()
        if not text:
            return []
        return [token.strip() for token in text.split(",")]

    # -- directives -----------------------------------------------------------------

    def _directive(self, builder: ProgramBuilder, name: str, operands: Sequence[str]) -> None:
        if name == ".word":
            for token in operands:
                builder.word(_parse_int(token))
        elif name == ".float":
            for token in operands:
                builder.float_word(float(token))
        elif name == ".space":
            builder.space(_parse_int(operands[0]))
        elif name == ".entry":
            builder.set_entry(operands[0])
        elif name in (".text", ".data", ".globl", ".global", ".align"):
            return  # accepted for compatibility; layout is linear
        else:
            raise BuildError(f"unknown directive {name!r}")

    # -- pseudo-instructions ----------------------------------------------------------

    def _pseudo(self, builder: ProgramBuilder, mnemonic: str, operands: Sequence[str]) -> None:
        expected = _PSEUDOS[mnemonic]
        if len(operands) != expected:
            raise BuildError(f"{mnemonic}: expected {expected} operands, got {len(operands)}")
        method = {
            "nop": builder.nop,
            "mv": lambda rd, rs: builder.mv(parse_register(rd), parse_register(rs)),
            "neg": lambda rd, rs: builder.neg(parse_register(rd), parse_register(rs)),
            "not": lambda rd, rs: builder.not_(parse_register(rd), parse_register(rs)),
            "seqz": lambda rd, rs: builder.seqz(parse_register(rd), parse_register(rs)),
            "snez": lambda rd, rs: builder.snez(parse_register(rd), parse_register(rs)),
            "li": lambda rd, imm: builder.li(parse_register(rd), _parse_int(imm)),
            "la": lambda rd, sym: builder.la(parse_register(rd), sym),
            "j": lambda target: builder.j(self._target(target)),
            "jr": lambda rs: builder.jr(parse_register(rs)),
            "call": lambda target: builder.call(self._target(target)),
            "ret": builder.ret,
            "beqz": lambda rs, target: builder.beqz(parse_register(rs), self._target(target)),
            "bnez": lambda rs, target: builder.bnez(parse_register(rs), self._target(target)),
            "blez": lambda rs, target: builder.blez(parse_register(rs), self._target(target)),
            "bgtz": lambda rs, target: builder.bgtz(parse_register(rs), self._target(target)),
            "bgt": lambda a, b, target: builder.bgt(
                parse_register(a), parse_register(b), self._target(target)
            ),
            "ble": lambda a, b, target: builder.ble(
                parse_register(a), parse_register(b), self._target(target)
            ),
            "fmv.s": lambda fd, fs: builder.fmv_s(parse_fregister(fd), parse_fregister(fs)),
            "fneg.s": lambda fd, fs: builder.fneg_s(parse_fregister(fd), parse_fregister(fs)),
            "fabs.s": lambda fd, fs: builder.fabs_s(parse_fregister(fd), parse_fregister(fs)),
        }[mnemonic]
        method(*operands)

    @staticmethod
    def _target(token: str) -> int | str:
        token = token.strip()
        try:
            return _parse_int(token)
        except ValueError:
            return token

    # -- operand conversion ------------------------------------------------------------

    def _convert_operands(
        self, syntax: Sequence[str], operands: Sequence[str], spec: InstrSpec
    ) -> List:
        expected = len(syntax)
        if len(operands) != expected:
            raise BuildError(
                f"{spec.mnemonic}: expected {expected} operands ({', '.join(syntax)}), "
                f"got {len(operands)}"
            )
        args: List = []
        for role, token in zip(syntax, operands):
            if role == "mem":
                match = _MEM_OPERAND.match(token.replace(" ", ""))
                if not match:
                    raise BuildError(f"{spec.mnemonic}: malformed memory operand {token!r}")
                offset_text = match.group("offset") or "0"
                args.append(_parse_int(offset_text))
                args.append(parse_register(match.group("base")))
            elif role in ("rd", "rs1", "rs2", "rs3"):
                floating = getattr(spec, f"{role}_float")
                args.append(parse_fregister(token) if floating else parse_register(token))
            elif role in ("imm", "shamt", "zimm", "csr"):
                args.append(_parse_int(token))
            elif role == "target":
                args.append(self._target(token))
            else:  # pragma: no cover - roles are exhaustively listed above
                raise BuildError(f"{spec.mnemonic}: unhandled operand role {role!r}")
        return args
