"""Control and status registers (CSRs) defined by the Vortex ISA.

Besides the handful of machine CSRs kernels read to discover the machine
geometry (thread id, warp id, core id, and the corresponding counts), the
texture units are configured entirely through CSRs (paper section 4.2.2):
per texture stage there is a block holding the base address, the log2
dimensions, the texel format, the wrap mode, the filter mode (point,
bilinear or trilinear — see
:class:`~repro.texture.formats.TexFilter`), and one mipmap offset per
level of detail.
"""

from __future__ import annotations

from enum import IntEnum

#: Number of texture stages addressable through CSRs.
NUM_TEX_STATES = 2
#: Number of mipmap levels each texture stage can describe.
NUM_TEX_LODS = 12
#: Size of a per-stage texture CSR block.
TEX_STATE_STRIDE = 0x20


class CSR(IntEnum):
    """CSR addresses.  Values follow the Vortex convention of using the
    user-read-only (0xCC0) and machine-read-only (0xFC0) ranges."""

    # SIMT identification registers (per thread / warp / core).
    THREAD_ID = 0xCC0
    WARP_ID = 0xCC1
    CORE_ID = 0xCC2
    THREAD_MASK = 0xCC3
    WARP_MASK = 0xCC4

    # Machine configuration registers.
    NUM_THREADS = 0xFC0
    NUM_WARPS = 0xFC1
    NUM_CORES = 0xFC2

    # Performance counters exposed to kernels.
    CYCLE = 0xC00
    INSTRET = 0xC02

    # Base of the texture state blocks (stage 0).  Stage ``s`` lives at
    # ``TEX_STATE_BASE + s * TEX_STATE_STRIDE``.
    TEX_STATE_BASE = 0x7C0


class TexCSR(IntEnum):
    """Offsets within one texture-stage CSR block."""

    ADDR = 0
    WIDTH = 1
    HEIGHT = 2
    FORMAT = 3
    WRAP = 4
    FILTER = 5
    MIPOFF = 6  # MIPOFF + lod, for lod in [0, NUM_TEX_LODS)


def tex_csr(stage: int, field: TexCSR, lod: int = 0) -> int:
    """Return the CSR address of ``field`` for texture ``stage``.

    ``lod`` is only meaningful for :attr:`TexCSR.MIPOFF`.
    """
    if not 0 <= stage < NUM_TEX_STATES:
        raise ValueError(f"texture stage out of range: {stage}")
    if field is TexCSR.MIPOFF:
        if not 0 <= lod < NUM_TEX_LODS:
            raise ValueError(f"texture lod out of range: {lod}")
        offset = int(TexCSR.MIPOFF) + lod
    else:
        if lod != 0:
            raise ValueError("lod is only valid for MIPOFF")
        offset = int(field)
    return int(CSR.TEX_STATE_BASE) + stage * TEX_STATE_STRIDE + offset


def is_tex_csr(address: int) -> bool:
    """Return True when ``address`` falls inside a texture-stage CSR block."""
    base = int(CSR.TEX_STATE_BASE)
    return base <= address < base + NUM_TEX_STATES * TEX_STATE_STRIDE


def split_tex_csr(address: int) -> tuple[int, TexCSR, int]:
    """Split a texture CSR address into ``(stage, field, lod)``."""
    if not is_tex_csr(address):
        raise ValueError(f"not a texture CSR: {address:#x}")
    offset = address - int(CSR.TEX_STATE_BASE)
    stage, field_offset = divmod(offset, TEX_STATE_STRIDE)
    if field_offset >= int(TexCSR.MIPOFF):
        return stage, TexCSR.MIPOFF, field_offset - int(TexCSR.MIPOFF)
    return stage, TexCSR(field_offset), 0
