"""Disassembler: instruction words back to assembly text.

Used by the instruction tracers in both simulator drivers — the paper
emphasizes tracing support as one of the benefits of the elastic design
(section 4.4), and the trace lines produced here carry the same
``pc @ warp`` tags the RTL uses.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.isa.decoder import DecodedInstruction, decode
from repro.isa.registers import freg_name, reg_name


def format_instruction(instr: DecodedInstruction, pc: int | None = None) -> str:
    """Render a decoded instruction as assembly text."""
    spec = instr.spec
    parts: list[str] = []
    for role in spec.syntax:
        if role == "rd":
            parts.append(freg_name(instr.rd) if spec.rd_float else reg_name(instr.rd))
        elif role == "rs1":
            parts.append(freg_name(instr.rs1) if spec.rs1_float else reg_name(instr.rs1))
        elif role == "rs2":
            parts.append(freg_name(instr.rs2) if spec.rs2_float else reg_name(instr.rs2))
        elif role == "rs3":
            parts.append(freg_name(instr.rs3) if spec.rs3_float else reg_name(instr.rs3))
        elif role == "mem":
            base = reg_name(instr.rs1)
            reg = instr.rs2 if spec.is_store else instr.rd
            reg_text = (
                freg_name(reg)
                if (spec.rs2_float if spec.is_store else spec.rd_float)
                else reg_name(reg)
            )
            # The register itself was appended by the rd/rs2 role; memory
            # operands only add the offset(base) component.
            parts.append(f"{instr.imm}({base})")
            continue
        elif role in ("imm", "shamt", "zimm"):
            if role == "shamt":
                parts.append(str(instr.imm & 0x1F))
            else:
                parts.append(str(instr.imm))
        elif role == "csr":
            parts.append(hex(instr.csr))
        elif role == "target":
            if pc is not None:
                parts.append(hex(pc + instr.imm))
            else:
                parts.append(f"pc{instr.imm:+d}")
    mnemonic = spec.mnemonic
    if mnemonic == "tex" and instr.tex_stage:
        mnemonic = f"tex.{instr.tex_stage}"
    if not parts:
        return mnemonic
    return f"{mnemonic} {', '.join(parts)}"


def disassemble(word: int, pc: int | None = None) -> str:
    """Disassemble a single instruction word."""
    return format_instruction(decode(word), pc=pc)


def disassemble_program(words: Iterable[int], base: int = 0) -> list[str]:
    """Disassemble a sequence of words, one line per instruction."""
    lines = []
    for index, word in enumerate(words):
        pc = base + index * 4
        try:
            text = disassemble(word, pc=pc)
        except Exception:
            text = f".word {word:#010x}"
        lines.append(f"{pc:08x}:  {word:08x}  {text}")
    return lines
