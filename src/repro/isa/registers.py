"""Architectural register names for the Vortex ISA.

Vortex keeps the standard RV32 integer register file (``x0``-``x31``) and
the single-precision floating-point register file (``f0``-``f31``).  The
standard RISC-V ABI names are accepted everywhere a register can be named
(assembler source, the builder DSL, disassembly output).
"""

from __future__ import annotations

from enum import IntEnum

NUM_REGS = 32


class Reg(IntEnum):
    """Integer registers with their ABI aliases as the canonical names."""

    zero = 0
    ra = 1
    sp = 2
    gp = 3
    tp = 4
    t0 = 5
    t1 = 6
    t2 = 7
    s0 = 8
    s1 = 9
    a0 = 10
    a1 = 11
    a2 = 12
    a3 = 13
    a4 = 14
    a5 = 15
    a6 = 16
    a7 = 17
    s2 = 18
    s3 = 19
    s4 = 20
    s5 = 21
    s6 = 22
    s7 = 23
    s8 = 24
    s9 = 25
    s10 = 26
    s11 = 27
    t3 = 28
    t4 = 29
    t5 = 30
    t6 = 31


class FReg(IntEnum):
    """Floating-point registers with their ABI aliases."""

    ft0 = 0
    ft1 = 1
    ft2 = 2
    ft3 = 3
    ft4 = 4
    ft5 = 5
    ft6 = 6
    ft7 = 7
    fs0 = 8
    fs1 = 9
    fa0 = 10
    fa1 = 11
    fa2 = 12
    fa3 = 13
    fa4 = 14
    fa5 = 15
    fa6 = 16
    fa7 = 17
    fs2 = 18
    fs3 = 19
    fs4 = 20
    fs5 = 21
    fs6 = 22
    fs7 = 23
    fs8 = 24
    fs9 = 25
    fs10 = 26
    fs11 = 27
    ft8 = 28
    ft9 = 29
    ft10 = 30
    ft11 = 31


#: Alternate spellings accepted by the parsers.
_INT_ALIASES = {"fp": Reg.s0}
_INT_ALIASES.update({f"x{i}": Reg(i) for i in range(NUM_REGS)})
_FP_ALIASES = {f"f{i}": FReg(i) for i in range(NUM_REGS)}


def reg_name(index: int) -> str:
    """Return the ABI name of integer register ``index``."""
    return Reg(index).name


def freg_name(index: int) -> str:
    """Return the ABI name of floating-point register ``index``."""
    return FReg(index).name


def parse_register(token: str) -> int:
    """Parse an integer-register token (``x5``, ``t0``, ``fp`` …) to its index."""
    token = token.strip().lower()
    if token in _INT_ALIASES:
        return int(_INT_ALIASES[token])
    try:
        return int(Reg[token])
    except KeyError:
        raise ValueError(f"unknown integer register {token!r}") from None


def parse_fregister(token: str) -> int:
    """Parse a floating-point register token (``f3``, ``fa0`` …) to its index."""
    token = token.strip().lower()
    if token in _FP_ALIASES:
        return int(_FP_ALIASES[token])
    try:
        return int(FReg[token])
    except KeyError:
        raise ValueError(f"unknown floating-point register {token!r}") from None


RegisterLike = int | str | Reg | FReg


def reg_index(value: RegisterLike, floating: bool = False) -> int:
    """Normalize any register designator (enum, int, or name) to an index."""
    if isinstance(value, (Reg, FReg)):
        return int(value)
    if isinstance(value, int):
        if not 0 <= value < NUM_REGS:
            raise ValueError(f"register index out of range: {value}")
        return value
    if isinstance(value, str):
        return parse_fregister(value) if floating else parse_register(value)
    raise TypeError(f"cannot interpret {value!r} as a register")
