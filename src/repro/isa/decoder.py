"""Binary instruction decoder.

``decode`` turns a 32-bit word into a :class:`DecodedInstruction` carrying
the matched :class:`~repro.isa.instructions.InstrSpec`, the register
indices, and the sign-extended immediate.  Both simulator drivers and the
disassembler are built on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitutils import bits
from repro.isa.encoding import Opcode, unpack
from repro.isa.instructions import InstrSpec, SPEC_BY_MNEMONIC


class DecodeError(Exception):
    """Raised when a word does not correspond to a supported instruction."""


@dataclass(frozen=True)
class DecodedInstruction:
    """A fully decoded instruction."""

    word: int
    spec: InstrSpec
    rd: int
    rs1: int
    rs2: int
    rs3: int
    imm: int
    csr: int = 0
    tex_stage: int = 0

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    def __str__(self) -> str:  # pragma: no cover - convenience
        from repro.isa.disassembler import format_instruction

        return format_instruction(self)


def _decode_op_imm(word: int, funct3: int) -> str | None:
    if funct3 == 0:
        return "addi"
    if funct3 == 1:
        return "slli"
    if funct3 == 2:
        return "slti"
    if funct3 == 3:
        return "sltiu"
    if funct3 == 4:
        return "xori"
    if funct3 == 5:
        return "srai" if bits(word, 31, 25) == 0x20 else "srli"
    if funct3 == 6:
        return "ori"
    if funct3 == 7:
        return "andi"
    return None


def _decode_op(funct3: int, funct7: int) -> str | None:
    if funct7 == 0x01:
        return {
            0: "mul",
            1: "mulh",
            2: "mulhsu",
            3: "mulhu",
            4: "div",
            5: "divu",
            6: "rem",
            7: "remu",
        }.get(funct3)
    key = (funct3, funct7)
    return {
        (0, 0x00): "add",
        (0, 0x20): "sub",
        (1, 0x00): "sll",
        (2, 0x00): "slt",
        (3, 0x00): "sltu",
        (4, 0x00): "xor",
        (5, 0x00): "srl",
        (5, 0x20): "sra",
        (6, 0x00): "or",
        (7, 0x00): "and",
    }.get(key)


def _decode_branch(funct3: int) -> str | None:
    return {0: "beq", 1: "bne", 4: "blt", 5: "bge", 6: "bltu", 7: "bgeu"}.get(funct3)


def _decode_load(funct3: int) -> str | None:
    return {0: "lb", 1: "lh", 2: "lw", 4: "lbu", 5: "lhu"}.get(funct3)


def _decode_store(funct3: int) -> str | None:
    return {0: "sb", 1: "sh", 2: "sw"}.get(funct3)


def _decode_system(funct3: int) -> str | None:
    return {
        0: "ecall",
        1: "csrrw",
        2: "csrrs",
        3: "csrrc",
        5: "csrrwi",
        6: "csrrsi",
        7: "csrrci",
    }.get(funct3)


def _decode_op_fp(word: int, funct3: int, funct7: int, rs2: int) -> str | None:
    if funct7 == 0x00:
        return "fadd.s"
    if funct7 == 0x04:
        return "fsub.s"
    if funct7 == 0x08:
        return "fmul.s"
    if funct7 == 0x0C:
        return "fdiv.s"
    if funct7 == 0x2C:
        return "fsqrt.s"
    if funct7 == 0x10:
        return {0: "fsgnj.s", 1: "fsgnjn.s", 2: "fsgnjx.s"}.get(funct3)
    if funct7 == 0x14:
        return {0: "fmin.s", 1: "fmax.s"}.get(funct3)
    if funct7 == 0x50:
        return {0: "fle.s", 1: "flt.s", 2: "feq.s"}.get(funct3)
    if funct7 == 0x60:
        return "fcvt.wu.s" if rs2 == 1 else "fcvt.w.s"
    if funct7 == 0x68:
        return "fcvt.s.wu" if rs2 == 1 else "fcvt.s.w"
    if funct7 == 0x70:
        return "fmv.x.w"
    if funct7 == 0x78:
        return "fmv.w.x"
    return None


def _decode_vx(funct3: int) -> str | None:
    return {0: "tmc", 1: "wspawn", 2: "split", 3: "join", 4: "bar"}.get(funct3)


def decode(word: int) -> DecodedInstruction:
    """Decode a 32-bit instruction word."""
    opcode = bits(word, 6, 0)
    funct3 = bits(word, 14, 12)
    funct7 = bits(word, 31, 25)
    rs2_field = bits(word, 24, 20)

    mnemonic: str | None = None
    if opcode == Opcode.LUI:
        mnemonic = "lui"
    elif opcode == Opcode.AUIPC:
        mnemonic = "auipc"
    elif opcode == Opcode.JAL:
        mnemonic = "jal"
    elif opcode == Opcode.JALR:
        mnemonic = "jalr"
    elif opcode == Opcode.BRANCH:
        mnemonic = _decode_branch(funct3)
    elif opcode == Opcode.LOAD:
        mnemonic = _decode_load(funct3)
    elif opcode == Opcode.STORE:
        mnemonic = _decode_store(funct3)
    elif opcode == Opcode.OP_IMM:
        mnemonic = _decode_op_imm(word, funct3)
    elif opcode == Opcode.OP:
        mnemonic = _decode_op(funct3, funct7)
    elif opcode == Opcode.MISC_MEM:
        mnemonic = "fence"
    elif opcode == Opcode.SYSTEM:
        mnemonic = _decode_system(funct3)
    elif opcode == Opcode.LOAD_FP:
        mnemonic = "flw" if funct3 == 2 else None
    elif opcode == Opcode.STORE_FP:
        mnemonic = "fsw" if funct3 == 2 else None
    elif opcode == Opcode.OP_FP:
        mnemonic = _decode_op_fp(word, funct3, funct7, rs2_field)
    elif opcode == Opcode.FMADD:
        mnemonic = "fmadd.s"
    elif opcode == Opcode.FMSUB:
        mnemonic = "fmsub.s"
    elif opcode == Opcode.FNMSUB:
        mnemonic = "fnmsub.s"
    elif opcode == Opcode.FNMADD:
        mnemonic = "fnmadd.s"
    elif opcode == Opcode.VX_EXT:
        mnemonic = _decode_vx(funct3)
    elif opcode == Opcode.VX_TEX:
        mnemonic = "tex"

    if mnemonic is None:
        raise DecodeError(f"cannot decode instruction word {word:#010x}")

    spec = SPEC_BY_MNEMONIC[mnemonic]
    fields = unpack(word, spec.fmt)
    csr = 0
    imm = fields.imm
    if spec.group == "Zicsr":
        csr = bits(word, 31, 20)
        # For immediate CSR forms the rs1 field holds the 5-bit zero-extended
        # immediate; keep it in ``imm`` so the executor has a single source.
        imm = fields.rs1
    tex_stage = funct3 if mnemonic == "tex" else 0
    return DecodedInstruction(
        word=word,
        spec=spec,
        rd=fields.rd,
        rs1=fields.rs1,
        rs2=fields.rs2,
        rs3=fields.rs3,
        imm=imm,
        csr=csr,
        tex_stage=tex_stage,
    )
