"""GPGPU ISA taxonomy (paper Table 1).

The paper's first contribution is a taxonomy of mainstream GPU ISAs used to
derive the minimal SIMT subset Vortex adds to RISC-V.  This module encodes
that comparison as structured data so the Table 1 benchmark can regenerate
the published table and so tests can assert the properties the paper calls
out (e.g. every surveyed ISA provides barriers and texture sampling, and
Vortex covers each category with exactly six added instructions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import VORTEX_EXTENSION


@dataclass(frozen=True)
class IsaProfile:
    """One row of Table 1."""

    name: str
    memory_model: tuple[str, ...]
    threading_model: tuple[str, ...]
    register_file: tuple[str, ...]
    thread_control: tuple[str, ...]
    synchronization: tuple[str, ...]
    flow_control: tuple[str, ...]
    alu_operations: tuple[str, ...]
    memory_operations: tuple[str, ...]
    gpu_operations: tuple[str, ...]


TABLE1: list[IsaProfile] = [
    IsaProfile(
        name="RDNA",
        memory_model=("GDS", "LDS", "Constants", "Global"),
        threading_model=("Workgroup", "Wavefront", "32/64 threads"),
        register_file=("Vector/Scalar", "256 VGPRs", "106 SGPRs"),
        thread_control=("end threads", "thread mask"),
        synchronization=("barrier", "wait_cnt", "data dep"),
        flow_control=("branch", "thread mask"),
        alu_operations=("arithmetic", "conditional", "bitwise"),
        memory_operations=("load", "store", "prefetch"),
        gpu_operations=("interpolate", "tex-sampler"),
    ),
    IsaProfile(
        name="GCN",
        memory_model=("GDS", "LDS", "Constants", "Global"),
        threading_model=("Compute unit", "Wavefront", "64 threads"),
        register_file=("Vector/Scalar", "256 VGPRs", "102 SGPRs"),
        thread_control=("end threads", "thread mask"),
        synchronization=("barrier", "wait_cnt", "data dep"),
        flow_control=("branch", "thread mask", "split/join"),
        alu_operations=("arithmetic", "conditional", "bitwise"),
        memory_operations=("load", "store", "prefetch"),
        gpu_operations=("interpolate", "tex-sampler"),
    ),
    IsaProfile(
        name="PTX",
        memory_model=("Shared", "Texture", "Constants", "Global"),
        threading_model=("Grid/CTA", "Warp", "32 threads"),
        register_file=("Scalar",),
        thread_control=("predicate",),
        synchronization=("barrier", "membar"),
        flow_control=("branch", "predicate"),
        alu_operations=("arithmetic", "conditional", "bitwise"),
        memory_operations=("load", "store", "prefetch"),
        gpu_operations=("tex-sampler", "tex-load", "tex-query"),
    ),
    IsaProfile(
        name="GEM",
        memory_model=("SW Managed",),
        threading_model=("Root thread", "Child thread"),
        register_file=("256-bit Vec", "128 GRFs", "predicate"),
        thread_control=("send msg",),
        synchronization=("Wait", "Fence"),
        flow_control=("branch", "SPF Regs", "split/join"),
        alu_operations=("arithmetic", "conditional", "bitwise"),
        memory_operations=("load", "store"),
        gpu_operations=("interpolate", "tex-sampler"),
    ),
    IsaProfile(
        name="PowerVR",
        memory_model=("Global", "Common St", "Unified St"),
        threading_model=("USC", "32 threads"),
        register_file=("Vector", "128-bit", "predicate"),
        thread_control=("fence",),
        synchronization=("fence",),
        flow_control=("branch", "predicate"),
        alu_operations=("arithmetic", "conditional", "bitwise"),
        memory_operations=("load", "store"),
        gpu_operations=("tex-sampler", "iteration", "alpha/depth"),
    ),
    IsaProfile(
        name="Vortex",
        memory_model=("Shared", "Global"),
        threading_model=("Compute Unit", "Wavefront"),
        register_file=("Scalar", "32-bit"),
        thread_control=("thread mask",),
        synchronization=("Barrier", "Flush"),
        flow_control=("Split/Join",),
        alu_operations=("arithmetic", "conditional", "bitwise"),
        memory_operations=("load", "store"),
        gpu_operations=("tex-sampler",),
    ),
]

#: Table 2: the Vortex extension instructions and their one-line descriptions.
TABLE2: dict[str, str] = {
    "wspawn %numW, %PC": "Wavefronts activation",
    "tmc %numT": "Thread mask control",
    "split %pred": "Control flow divergence",
    "join": "Control flow reconvergence",
    "bar %barID, %numW": "Wavefronts barrier",
    "tex %dest, %u, %v, %lod": "Texture sampling/filtering",
}


def vortex_profile() -> IsaProfile:
    """Return the Vortex row of Table 1."""
    return next(profile for profile in TABLE1 if profile.name == "Vortex")


def category_coverage() -> dict[str, dict[str, bool]]:
    """Return, per ISA, whether each SIMT capability category is covered."""
    coverage = {}
    for profile in TABLE1:
        coverage[profile.name] = {
            "threading": bool(profile.threading_model),
            "thread_control": bool(profile.thread_control),
            "synchronization": bool(profile.synchronization),
            "flow_control": bool(profile.flow_control),
            "texture": any("tex" in op for op in profile.gpu_operations),
        }
    return coverage


def extension_summary() -> dict[str, str]:
    """Map each Vortex extension instruction to the capability it provides."""
    capability_by_instr = {
        "wspawn": "wavefront activation",
        "tmc": "thread control",
        "split": "control divergence",
        "join": "control reconvergence",
        "bar": "synchronization",
        "tex": "texture filtering",
    }
    assert set(capability_by_instr) == set(VORTEX_EXTENSION)
    return capability_by_instr
