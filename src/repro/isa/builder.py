"""Python-embedded assembler DSL.

This module replaces the paper's POCL/LLVM compiler backend (section 5.4)
for the purposes of the reproduction: device kernels are written as Python
functions that emit Vortex instructions through a :class:`ProgramBuilder`.
The builder supports labels, forward references, data words, and a set of
standard RISC-V pseudo-instructions (``li``, ``la``, ``mv``, ``j``,
``call``, ``ret`` …), and produces a relocatable :class:`Program` image the
runtime loads into device memory.

Every real instruction mnemonic in the specification table is exposed as a
method whose positional arguments follow the standard assembly operand
order; mnemonics containing ``.`` use ``_`` instead (``fadd.s`` →
``fadd_s``) and mnemonics that collide with Python keywords get a trailing
underscore (``and_``, ``or_``).
"""

from __future__ import annotations

import keyword
import struct
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import Any

from repro.common.bitutils import float_to_bits, to_uint32
from repro.isa.encoding import encode, imm_fits
from repro.isa.instructions import SPEC_BY_MNEMONIC, InstrSpec
from repro.isa.registers import Reg, RegisterLike, reg_index


class BuildError(Exception):
    """Raised when a program cannot be assembled."""


def _split_hi_lo(value: int) -> tuple:
    """Split a 32-bit constant into ``lui``/``addi`` parts.

    Returns ``(upper, lower)`` where ``upper`` is the (unsigned, pre-shifted)
    ``lui`` immediate and ``lower`` the sign-extended 12-bit ``addi``
    immediate, such that ``upper + lower`` reproduces the constant modulo
    2**32.
    """
    unsigned = to_uint32(value)
    lower = ((unsigned & 0xFFF) ^ 0x800) - 0x800
    upper = to_uint32(unsigned - lower) & 0xFFFFF000
    return upper, lower


@dataclass(frozen=True)
class Label:
    """A symbolic position in the program."""

    name: str

    def __str__(self) -> str:
        return self.name


TargetLike = Label | str | int


@dataclass
class Program:
    """An assembled program image.

    ``words`` holds the little-endian 32-bit words of the image starting at
    ``base``; ``symbols`` maps label names to absolute addresses; ``entry``
    is the address execution starts at.
    """

    base: int
    words: list[int]
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int | None = None

    def __post_init__(self) -> None:
        if self.entry is None:
            self.entry = self.base

    @property
    def size(self) -> int:
        """Image size in bytes."""
        return len(self.words) * 4

    def to_bytes(self) -> bytes:
        """Return the image as little-endian bytes."""
        return struct.pack(f"<{len(self.words)}I", *self.words)

    def address_of(self, label: Label | str) -> int:
        """Return the absolute address of ``label``."""
        name = label.name if isinstance(label, Label) else label
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"undefined symbol {name!r}") from None


@dataclass
class _Item:
    """One emitted item: an instruction awaiting relocation, or raw data."""

    kind: str  # "instr" | "word"
    mnemonic: str = ""
    operands: dict = field(default_factory=dict)
    value: int = 0
    size: int = 4


class ProgramBuilder:
    """Incrementally builds a Vortex program image."""

    def __init__(self, base: int = 0x8000_0000):
        self.base = base
        self._items: list[_Item] = []
        self._labels: dict[str, int] = {}  # label name -> item index
        self._label_counter = 0
        self._entry_label: str | None = None

    # -- position and labels ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def new_label(self, hint: str = "L") -> Label:
        """Create a fresh, not-yet-placed label."""
        self._label_counter += 1
        return Label(f".{hint}_{self._label_counter}")

    def label(self, label: Label | str | None = None) -> Label:
        """Place ``label`` (or a fresh one) at the current position."""
        if label is None:
            label = self.new_label()
        name = label.name if isinstance(label, Label) else label
        if name in self._labels:
            raise BuildError(f"label {name!r} defined twice")
        self._labels[name] = len(self._items)
        return Label(name)

    def set_entry(self, label: Label | str) -> None:
        """Mark ``label`` as the program entry point."""
        self._entry_label = label.name if isinstance(label, Label) else label

    # -- data -------------------------------------------------------------------

    def word(self, value: int) -> None:
        """Emit a raw 32-bit data word."""
        self._items.append(_Item(kind="word", value=to_uint32(value)))

    def float_word(self, value: float) -> None:
        """Emit a 32-bit float constant."""
        self.word(float_to_bits(value))

    def space(self, num_words: int) -> None:
        """Reserve ``num_words`` zeroed words."""
        for _ in range(num_words):
            self.word(0)

    # -- generic instruction emission --------------------------------------------

    def emit(self, mnemonic: str, *args: Any, **kwargs: Any) -> None:
        """Emit instruction ``mnemonic`` with operands in assembly order."""
        spec = SPEC_BY_MNEMONIC.get(mnemonic)
        if spec is None:
            raise BuildError(f"unknown mnemonic {mnemonic!r}")
        operands = self._bind_operands(spec, args, kwargs)
        self._items.append(_Item(kind="instr", mnemonic=mnemonic, operands=operands))

    def _bind_operands(
        self, spec: InstrSpec, args: Sequence[Any], kwargs: dict[str, Any]
    ) -> dict[str, Any]:
        names = list(spec.syntax)
        if spec.syntax and spec.syntax[-1] == "mem":
            # Memory operands take two positional arguments: offset and base.
            names = names[:-1] + ["offset", "base"]
        if len(args) > len(names):
            raise BuildError(
                f"{spec.mnemonic}: expected at most {len(names)} operands "
                f"({', '.join(names)}), got {len(args)}"
            )
        operands = dict(zip(names, args))
        for key, value in kwargs.items():
            if key == "stage" and spec.mnemonic == "tex":
                operands["stage"] = value
                continue
            if key not in names:
                raise BuildError(f"{spec.mnemonic}: unexpected operand {key!r}")
            if key in operands:
                raise BuildError(f"{spec.mnemonic}: duplicate operand {key!r}")
            operands[key] = value
        missing = [name for name in names if name not in operands]
        if missing:
            raise BuildError(f"{spec.mnemonic}: missing operands {missing}")
        return operands

    # -- pseudo-instructions ------------------------------------------------------

    def nop(self) -> None:
        self.emit("addi", Reg.zero, Reg.zero, 0)

    def mv(self, rd: RegisterLike, rs: RegisterLike) -> None:
        self.emit("addi", rd, rs, 0)

    def neg(self, rd: RegisterLike, rs: RegisterLike) -> None:
        self.emit("sub", rd, Reg.zero, rs)

    def not_(self, rd: RegisterLike, rs: RegisterLike) -> None:
        self.emit("xori", rd, rs, -1)

    def seqz(self, rd: RegisterLike, rs: RegisterLike) -> None:
        self.emit("sltiu", rd, rs, 1)

    def snez(self, rd: RegisterLike, rs: RegisterLike) -> None:
        self.emit("sltu", rd, Reg.zero, rs)

    def li(self, rd: RegisterLike, value: int) -> None:
        """Load a 32-bit integer constant."""
        value = int(value)
        if -2048 <= value < 2048:
            self.emit("addi", rd, Reg.zero, value)
            return
        upper, lower = _split_hi_lo(value)
        # ``lui`` takes the pre-shifted upper 20 bits via a full immediate.
        self.emit("lui", rd, upper)
        if lower:
            self.emit("addi", rd, rd, lower)

    def li_float(self, fd: RegisterLike, value: float, scratch: RegisterLike = Reg.t6) -> None:
        """Load a binary32 constant into an FP register via a scratch register."""
        self.li(scratch, float_to_bits(value))
        self.emit("fmv.w.x", fd, scratch)

    def la(self, rd: RegisterLike, label: TargetLike) -> None:
        """Load the absolute address of ``label``."""
        self._items.append(
            _Item(kind="instr", mnemonic="_la", operands={"rd": rd, "target": label})
        )

    def j(self, target: TargetLike) -> None:
        self.emit("jal", Reg.zero, target)

    def jr(self, rs: RegisterLike) -> None:
        self.emit("jalr", Reg.zero, rs, 0)

    def call(self, target: TargetLike) -> None:
        self.emit("jal", Reg.ra, target)

    def ret(self) -> None:
        self.emit("jalr", Reg.zero, Reg.ra, 0)

    def beqz(self, rs: RegisterLike, target: TargetLike) -> None:
        self.emit("beq", rs, Reg.zero, target)

    def bnez(self, rs: RegisterLike, target: TargetLike) -> None:
        self.emit("bne", rs, Reg.zero, target)

    def blez(self, rs: RegisterLike, target: TargetLike) -> None:
        self.emit("bge", Reg.zero, rs, target)

    def bgtz(self, rs: RegisterLike, target: TargetLike) -> None:
        self.emit("blt", Reg.zero, rs, target)

    def bgt(self, rs1: RegisterLike, rs2: RegisterLike, target: TargetLike) -> None:
        self.emit("blt", rs2, rs1, target)

    def ble(self, rs1: RegisterLike, rs2: RegisterLike, target: TargetLike) -> None:
        self.emit("bge", rs2, rs1, target)

    def fmv_s(self, fd: RegisterLike, fs: RegisterLike) -> None:
        self.emit("fsgnj.s", fd, fs, fs)

    def fneg_s(self, fd: RegisterLike, fs: RegisterLike) -> None:
        self.emit("fsgnjn.s", fd, fs, fs)

    def fabs_s(self, fd: RegisterLike, fs: RegisterLike) -> None:
        self.emit("fsgnjx.s", fd, fs, fs)

    def csr_read(self, rd: RegisterLike, csr: int) -> None:
        """Read a CSR (``csrrs rd, csr, x0``)."""
        self.emit("csrrs", rd, int(csr), Reg.zero)

    def csr_write(self, csr: int, rs: RegisterLike) -> None:
        """Write a CSR (``csrrw x0, csr, rs``)."""
        self.emit("csrrw", Reg.zero, int(csr), rs)

    # -- assembly -----------------------------------------------------------------

    def assemble(self) -> Program:
        """Resolve labels and produce the final :class:`Program` image."""
        # First pass: lay out addresses.  ``la`` expands to two words.
        addresses: list[int] = []
        sizes: list[int] = []
        offset = 0
        for item in self._items:
            addresses.append(self.base + offset)
            size = 8 if item.mnemonic == "_la" else item.size
            sizes.append(size)
            offset += size

        symbols = {}
        for name, index in self._labels.items():
            symbols[name] = addresses[index] if index < len(addresses) else self.base + offset

        words: list[int] = []
        for item, address in zip(self._items, addresses):
            if item.kind == "word":
                words.append(item.value)
            elif item.mnemonic == "_la":
                words.extend(self._encode_la(item, address, symbols))
            else:
                words.append(self._encode_instruction(item, address, symbols))

        entry = symbols.get(self._entry_label, self.base) if self._entry_label else self.base
        return Program(base=self.base, words=words, symbols=symbols, entry=entry)

    def _resolve_target(self, target: TargetLike, symbols: dict[str, int]) -> int:
        if isinstance(target, Label):
            target = target.name
        if isinstance(target, str):
            if target not in symbols:
                raise BuildError(f"undefined label {target!r}")
            return symbols[target]
        return int(target)

    def _encode_la(self, item: _Item, address: int, symbols: dict[str, int]) -> list[int]:
        rd = reg_index(item.operands["rd"])
        value = self._resolve_target(item.operands["target"], symbols)
        upper, lower = _split_hi_lo(value)
        lui_spec = SPEC_BY_MNEMONIC["lui"]
        addi_spec = SPEC_BY_MNEMONIC["addi"]
        lui_word = encode(lui_spec.fmt, lui_spec.opcode, rd=rd, imm=upper)
        addi_word = encode(
            addi_spec.fmt,
            addi_spec.opcode,
            rd=rd,
            rs1=rd,
            funct3=addi_spec.funct3,
            imm=lower,
        )
        return [lui_word, addi_word]

    def _encode_instruction(self, item: _Item, address: int, symbols: dict[str, int]) -> int:
        spec = SPEC_BY_MNEMONIC[item.mnemonic]
        ops = item.operands
        rd = rs1 = rs2 = rs3 = 0
        imm = 0
        funct3 = spec.funct3
        funct7 = spec.funct7

        for role in ("rd", "rs1", "rs2", "rs3"):
            if role in ops:
                floating = getattr(spec, f"{role}_float")
                value = ops[role]
                index = reg_index(value, floating=floating)
                if role == "rd":
                    rd = index
                elif role == "rs1":
                    rs1 = index
                elif role == "rs2":
                    rs2 = index
                else:
                    rs3 = index

        if "imm" in ops:
            imm = int(ops["imm"])
        if "shamt" in ops:
            imm = int(ops["shamt"]) & 0x1F
            if spec.mnemonic == "srai":
                imm |= 0x400
        if "offset" in ops:
            imm = int(ops["offset"])
            rs1 = reg_index(ops["base"])
        is_csr_access = "csr" in ops
        if is_csr_access:
            csr_address = int(ops["csr"])
            if not 0 <= csr_address < (1 << 12):
                raise BuildError(f"{spec.mnemonic}: CSR address {csr_address:#x} out of range")
            imm = csr_address
            if "zimm" in ops:
                rs1 = int(ops["zimm"]) & 0x1F
        elif "zimm" in ops:
            rs1 = int(ops["zimm"]) & 0x1F
        if "target" in ops:
            target = self._resolve_target(ops["target"], symbols)
            imm = target - address
            if imm % 2:
                raise BuildError(f"{spec.mnemonic}: misaligned branch target {target:#x}")
        if "stage" in ops:
            funct3 = int(ops["stage"]) & 0x7

        # The unsigned-conversion variants are distinguished by the rs2 field.
        if spec.mnemonic in ("fcvt.wu.s", "fcvt.s.wu"):
            rs2 = 1

        if not is_csr_access and not imm_fits(imm, spec.fmt):
            raise BuildError(
                f"{spec.mnemonic}: immediate {imm} does not fit format {spec.fmt.value}"
            )

        return encode(
            spec.fmt,
            spec.opcode,
            rd=rd,
            rs1=rs1,
            rs2=rs2,
            rs3=rs3,
            funct3=funct3,
            funct7=funct7,
            imm=imm,
        )


def _method_name(mnemonic: str) -> str:
    name = mnemonic.replace(".", "_")
    if keyword.iskeyword(name):
        name += "_"
    return name


def _make_emitter(mnemonic: str) -> Callable[..., None]:
    def emitter(self: ProgramBuilder, *args: Any, **kwargs: Any) -> None:
        self.emit(mnemonic, *args, **kwargs)

    emitter.__name__ = _method_name(mnemonic)
    emitter.__doc__ = f"Emit the ``{mnemonic}`` instruction."
    return emitter


# Expose one method per real instruction (``add``, ``lw``, ``fadd_s``, ``tex`` …).
for _mnemonic in SPEC_BY_MNEMONIC:
    _name = _method_name(_mnemonic)
    if not hasattr(ProgramBuilder, _name):
        setattr(ProgramBuilder, _name, _make_emitter(_mnemonic))
