"""The Vortex instruction set: RV32IM, an F subset, and the six-instruction
SIMT extension proposed by the paper (``wspawn``, ``tmc``, ``split``,
``join``, ``bar``, ``tex``).

The package provides everything needed to produce and consume Vortex
binaries without an external toolchain:

* :mod:`repro.isa.registers` / :mod:`repro.isa.csr` — architectural names.
* :mod:`repro.isa.encoding` — the RISC-V instruction formats (R/I/S/B/U/J
  plus the R4 format reused by ``tex``).
* :mod:`repro.isa.instructions` — the instruction specification table.
* :mod:`repro.isa.decoder` — binary → :class:`DecodedInstruction`.
* :mod:`repro.isa.assembler` — a two-pass text assembler.
* :mod:`repro.isa.builder` — a Python-embedded assembler DSL (the
  replacement for the paper's POCL/LLVM backend) used to write kernels.
* :mod:`repro.isa.disassembler` — binary → text, used by traces.
* :mod:`repro.isa.taxonomy` — the Table 1 ISA-taxonomy data.
"""

from repro.isa.registers import Reg, FReg, reg_name, freg_name, parse_register
from repro.isa.csr import CSR, tex_csr
from repro.isa.instructions import InstrSpec, SPEC_BY_MNEMONIC, VORTEX_EXTENSION
from repro.isa.decoder import DecodedInstruction, decode
from repro.isa.encoding import encode, InstrFormat
from repro.isa.assembler import Assembler, AssemblerError
from repro.isa.builder import ProgramBuilder, Label
from repro.isa.disassembler import disassemble

__all__ = [
    "Reg",
    "FReg",
    "reg_name",
    "freg_name",
    "parse_register",
    "CSR",
    "tex_csr",
    "InstrSpec",
    "SPEC_BY_MNEMONIC",
    "VORTEX_EXTENSION",
    "DecodedInstruction",
    "decode",
    "encode",
    "InstrFormat",
    "Assembler",
    "AssemblerError",
    "ProgramBuilder",
    "Label",
    "disassemble",
]
