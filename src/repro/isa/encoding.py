"""RISC-V instruction formats and field packing.

Vortex keeps the six instructions of its extension inside standard RISC-V
formats: ``wspawn``/``tmc``/``split``/``join``/``bar`` are R-type
instructions sharing a single custom opcode, and ``tex`` reuses the R4
format used by the fused multiply-add instructions (paper section 3.2).
This module implements bit-exact packing/unpacking for every format the
simulator needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.common.bitutils import bits, mask, sext, to_uint32


class InstrFormat(Enum):
    """The instruction formats used by the Vortex ISA."""

    R = "R"
    R4 = "R4"
    I = "I"  # noqa: E741 - RISC-V's own name for the format
    S = "S"
    B = "B"
    U = "U"
    J = "J"


class Opcode:
    """Major (7-bit) opcodes."""

    LOAD = 0x03
    LOAD_FP = 0x07
    MISC_MEM = 0x0F
    OP_IMM = 0x13
    AUIPC = 0x17
    STORE = 0x23
    STORE_FP = 0x27
    OP = 0x33
    LUI = 0x37
    OP_FP = 0x53
    BRANCH = 0x63
    JALR = 0x67
    JAL = 0x6F
    SYSTEM = 0x73
    FMADD = 0x43
    FMSUB = 0x47
    FNMSUB = 0x4B
    FNMADD = 0x4F
    # Custom opcodes claimed by the Vortex extension.
    VX_EXT = 0x0B  # custom-0: wspawn, tmc, split, join, bar
    VX_TEX = 0x2B  # custom-1: tex (R4 format)


@dataclass(frozen=True)
class Fields:
    """Raw instruction fields extracted from (or destined for) a 32-bit word."""

    opcode: int
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    rs3: int = 0
    funct3: int = 0
    funct7: int = 0
    imm: int = 0


# -- immediate encode/decode per format ----------------------------------------


def _encode_imm_i(imm: int) -> int:
    return (imm & mask(12)) << 20


def _encode_imm_s(imm: int) -> int:
    imm &= mask(12)
    return ((imm >> 5) << 25) | ((imm & mask(5)) << 7)


def _encode_imm_b(imm: int) -> int:
    imm &= mask(13)
    return (
        (bits(imm, 12, 12) << 31)
        | (bits(imm, 10, 5) << 25)
        | (bits(imm, 4, 1) << 8)
        | (bits(imm, 11, 11) << 7)
    )


def _encode_imm_u(imm: int) -> int:
    return imm & 0xFFFFF000


def _encode_imm_j(imm: int) -> int:
    imm &= mask(21)
    return (
        (bits(imm, 20, 20) << 31)
        | (bits(imm, 10, 1) << 21)
        | (bits(imm, 11, 11) << 20)
        | (bits(imm, 19, 12) << 12)
    )


def decode_imm(word: int, fmt: InstrFormat) -> int:
    """Extract the sign-extended immediate of ``word`` for format ``fmt``."""
    if fmt is InstrFormat.I:
        return sext(bits(word, 31, 20), 12)
    if fmt is InstrFormat.S:
        return sext((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12)
    if fmt is InstrFormat.B:
        value = (
            (bits(word, 31, 31) << 12)
            | (bits(word, 7, 7) << 11)
            | (bits(word, 30, 25) << 5)
            | (bits(word, 11, 8) << 1)
        )
        return sext(value, 13)
    if fmt is InstrFormat.U:
        return sext(word & 0xFFFFF000, 32)
    if fmt is InstrFormat.J:
        value = (
            (bits(word, 31, 31) << 20)
            | (bits(word, 19, 12) << 12)
            | (bits(word, 20, 20) << 11)
            | (bits(word, 30, 21) << 1)
        )
        return sext(value, 21)
    return 0


# -- whole-instruction packing --------------------------------------------------


def pack(fields: Fields, fmt: InstrFormat) -> int:
    """Pack ``fields`` into a 32-bit instruction word for format ``fmt``."""
    word = fields.opcode & mask(7)
    if fmt is InstrFormat.R:
        word |= (fields.rd & mask(5)) << 7
        word |= (fields.funct3 & mask(3)) << 12
        word |= (fields.rs1 & mask(5)) << 15
        word |= (fields.rs2 & mask(5)) << 20
        word |= (fields.funct7 & mask(7)) << 25
    elif fmt is InstrFormat.R4:
        word |= (fields.rd & mask(5)) << 7
        word |= (fields.funct3 & mask(3)) << 12
        word |= (fields.rs1 & mask(5)) << 15
        word |= (fields.rs2 & mask(5)) << 20
        word |= (fields.funct7 & mask(2)) << 25
        word |= (fields.rs3 & mask(5)) << 27
    elif fmt is InstrFormat.I:
        word |= (fields.rd & mask(5)) << 7
        word |= (fields.funct3 & mask(3)) << 12
        word |= (fields.rs1 & mask(5)) << 15
        word |= _encode_imm_i(fields.imm)
    elif fmt is InstrFormat.S:
        word |= (fields.funct3 & mask(3)) << 12
        word |= (fields.rs1 & mask(5)) << 15
        word |= (fields.rs2 & mask(5)) << 20
        word |= _encode_imm_s(fields.imm)
    elif fmt is InstrFormat.B:
        word |= (fields.funct3 & mask(3)) << 12
        word |= (fields.rs1 & mask(5)) << 15
        word |= (fields.rs2 & mask(5)) << 20
        word |= _encode_imm_b(fields.imm)
    elif fmt is InstrFormat.U:
        word |= (fields.rd & mask(5)) << 7
        word |= _encode_imm_u(fields.imm)
    elif fmt is InstrFormat.J:
        word |= (fields.rd & mask(5)) << 7
        word |= _encode_imm_j(fields.imm)
    else:  # pragma: no cover - all formats enumerated above
        raise ValueError(f"unsupported format {fmt}")
    return to_uint32(word)


def unpack(word: int, fmt: InstrFormat) -> Fields:
    """Extract the fields of ``word`` assuming format ``fmt``."""
    word = to_uint32(word)
    return Fields(
        opcode=bits(word, 6, 0),
        rd=bits(word, 11, 7),
        funct3=bits(word, 14, 12),
        rs1=bits(word, 19, 15),
        rs2=bits(word, 24, 20),
        rs3=bits(word, 31, 27) if fmt is InstrFormat.R4 else 0,
        funct7=bits(word, 26, 25) if fmt is InstrFormat.R4 else bits(word, 31, 25),
        imm=decode_imm(word, fmt),
    )


def encode(
    fmt: InstrFormat,
    opcode: int,
    rd: int = 0,
    rs1: int = 0,
    rs2: int = 0,
    rs3: int = 0,
    funct3: int = 0,
    funct7: int = 0,
    imm: int = 0,
) -> int:
    """Convenience wrapper packing keyword fields into a word."""
    return pack(
        Fields(
            opcode=opcode,
            rd=rd,
            rs1=rs1,
            rs2=rs2,
            rs3=rs3,
            funct3=funct3,
            funct7=funct7,
            imm=imm,
        ),
        fmt,
    )


def imm_fits(imm: int, fmt: InstrFormat) -> bool:
    """Return True when ``imm`` is representable in format ``fmt``."""
    ranges = {
        InstrFormat.I: (-(1 << 11), (1 << 11) - 1),
        InstrFormat.S: (-(1 << 11), (1 << 11) - 1),
        InstrFormat.B: (-(1 << 12), (1 << 12) - 2),
        InstrFormat.J: (-(1 << 20), (1 << 20) - 2),
        InstrFormat.U: (-(1 << 31), (1 << 32) - 1),
    }
    lo_hi: tuple | None = ranges.get(fmt)
    if lo_hi is None:
        return True
    lo, hi = lo_hi
    return lo <= imm <= hi
