"""The Vortex instruction specification table.

Each supported instruction is described by an :class:`InstrSpec` giving its
encoding (format, opcode, funct fields), its assembly syntax, which
operands live in the floating-point register file, and which execution
unit services it in the timing model.  The decoder, the assembler, the
builder DSL, the disassembler, the functional executor and the cycle-level
core all consume this single table, which keeps the ISA definition in one
place exactly as the paper argues a minimal extension should.

Instruction groups:

* ``RV32I`` — the base integer ISA.
* ``RV32M`` — integer multiply/divide.
* ``RV32F`` — the single-precision subset Vortex kernels use.
* ``Zicsr`` — CSR access (used for SIMT ids and texture state).
* ``VX`` — the six-instruction Vortex extension (paper Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.isa.encoding import InstrFormat, Opcode


class ExecUnit:
    """Execution-unit classes used by the cycle-level core (section 4.1)."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FPU = "fpu"
    FDIV = "fdiv"
    LSU = "lsu"
    SFU = "sfu"  # CSR, fences, and the SIMT control instructions
    TEX = "tex"


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one instruction."""

    mnemonic: str
    fmt: InstrFormat
    opcode: int
    funct3: int = 0
    funct7: int = 0
    syntax: tuple[str, ...] = ()
    group: str = "RV32I"
    unit: str = ExecUnit.ALU
    rd_float: bool = False
    rs1_float: bool = False
    rs2_float: bool = False
    rs3_float: bool = False
    is_branch: bool = False
    is_jump: bool = False
    is_load: bool = False
    is_store: bool = False
    writes_rd: bool = True


def _spec(*args: Any, **kwargs: Any) -> InstrSpec:
    return InstrSpec(*args, **kwargs)


_SPECS = []


def _add(spec: InstrSpec) -> None:
    _SPECS.append(spec)


# -- RV32I ----------------------------------------------------------------------

_add(_spec("lui", InstrFormat.U, Opcode.LUI, syntax=("rd", "imm")))
_add(_spec("auipc", InstrFormat.U, Opcode.AUIPC, syntax=("rd", "imm")))
_add(_spec("jal", InstrFormat.J, Opcode.JAL, syntax=("rd", "target"), is_jump=True))
_add(_spec("jalr", InstrFormat.I, Opcode.JALR, funct3=0, syntax=("rd", "rs1", "imm"), is_jump=True))

for _name, _f3 in [("beq", 0), ("bne", 1), ("blt", 4), ("bge", 5), ("bltu", 6), ("bgeu", 7)]:
    _add(
        _spec(
            _name,
            InstrFormat.B,
            Opcode.BRANCH,
            funct3=_f3,
            syntax=("rs1", "rs2", "target"),
            is_branch=True,
            writes_rd=False,
        )
    )

for _name, _f3 in [("lb", 0), ("lh", 1), ("lw", 2), ("lbu", 4), ("lhu", 5)]:
    _add(
        _spec(
            _name,
            InstrFormat.I,
            Opcode.LOAD,
            funct3=_f3,
            syntax=("rd", "mem"),
            unit=ExecUnit.LSU,
            is_load=True,
        )
    )

for _name, _f3 in [("sb", 0), ("sh", 1), ("sw", 2)]:
    _add(
        _spec(
            _name,
            InstrFormat.S,
            Opcode.STORE,
            funct3=_f3,
            syntax=("rs2", "mem"),
            unit=ExecUnit.LSU,
            is_store=True,
            writes_rd=False,
        )
    )

for _name, _f3 in [
    ("addi", 0),
    ("slti", 2),
    ("sltiu", 3),
    ("xori", 4),
    ("ori", 6),
    ("andi", 7),
]:
    _add(_spec(_name, InstrFormat.I, Opcode.OP_IMM, funct3=_f3, syntax=("rd", "rs1", "imm")))

_add(_spec("slli", InstrFormat.I, Opcode.OP_IMM, funct3=1, funct7=0x00, syntax=("rd", "rs1", "shamt")))
_add(_spec("srli", InstrFormat.I, Opcode.OP_IMM, funct3=5, funct7=0x00, syntax=("rd", "rs1", "shamt")))
_add(_spec("srai", InstrFormat.I, Opcode.OP_IMM, funct3=5, funct7=0x20, syntax=("rd", "rs1", "shamt")))

for _name, _f3, _f7 in [
    ("add", 0, 0x00),
    ("sub", 0, 0x20),
    ("sll", 1, 0x00),
    ("slt", 2, 0x00),
    ("sltu", 3, 0x00),
    ("xor", 4, 0x00),
    ("srl", 5, 0x00),
    ("sra", 5, 0x20),
    ("or", 6, 0x00),
    ("and", 7, 0x00),
]:
    _add(_spec(_name, InstrFormat.R, Opcode.OP, funct3=_f3, funct7=_f7, syntax=("rd", "rs1", "rs2")))

_add(
    _spec(
        "fence",
        InstrFormat.I,
        Opcode.MISC_MEM,
        funct3=0,
        syntax=(),
        unit=ExecUnit.SFU,
        writes_rd=False,
    )
)
_add(
    _spec(
        "ecall",
        InstrFormat.I,
        Opcode.SYSTEM,
        funct3=0,
        syntax=(),
        unit=ExecUnit.SFU,
        writes_rd=False,
    )
)

# -- RV32M ----------------------------------------------------------------------

for _name, _f3, _unit in [
    ("mul", 0, ExecUnit.MUL),
    ("mulh", 1, ExecUnit.MUL),
    ("mulhsu", 2, ExecUnit.MUL),
    ("mulhu", 3, ExecUnit.MUL),
    ("div", 4, ExecUnit.DIV),
    ("divu", 5, ExecUnit.DIV),
    ("rem", 6, ExecUnit.DIV),
    ("remu", 7, ExecUnit.DIV),
]:
    _add(
        _spec(
            _name,
            InstrFormat.R,
            Opcode.OP,
            funct3=_f3,
            funct7=0x01,
            syntax=("rd", "rs1", "rs2"),
            group="RV32M",
            unit=_unit,
        )
    )

# -- Zicsr ----------------------------------------------------------------------

for _name, _f3 in [("csrrw", 1), ("csrrs", 2), ("csrrc", 3)]:
    _add(
        _spec(
            _name,
            InstrFormat.I,
            Opcode.SYSTEM,
            funct3=_f3,
            syntax=("rd", "csr", "rs1"),
            group="Zicsr",
            unit=ExecUnit.SFU,
        )
    )
for _name, _f3 in [("csrrwi", 5), ("csrrsi", 6), ("csrrci", 7)]:
    _add(
        _spec(
            _name,
            InstrFormat.I,
            Opcode.SYSTEM,
            funct3=_f3,
            syntax=("rd", "csr", "zimm"),
            group="Zicsr",
            unit=ExecUnit.SFU,
        )
    )

# -- RV32F (single-precision subset) ---------------------------------------------

_add(
    _spec(
        "flw",
        InstrFormat.I,
        Opcode.LOAD_FP,
        funct3=2,
        syntax=("rd", "mem"),
        group="RV32F",
        unit=ExecUnit.LSU,
        rd_float=True,
        is_load=True,
    )
)
_add(
    _spec(
        "fsw",
        InstrFormat.S,
        Opcode.STORE_FP,
        funct3=2,
        syntax=("rs2", "mem"),
        group="RV32F",
        unit=ExecUnit.LSU,
        rs2_float=True,
        is_store=True,
        writes_rd=False,
    )
)

for _name, _f7, _unit in [
    ("fadd.s", 0x00, ExecUnit.FPU),
    ("fsub.s", 0x04, ExecUnit.FPU),
    ("fmul.s", 0x08, ExecUnit.FPU),
    ("fdiv.s", 0x0C, ExecUnit.FDIV),
]:
    _add(
        _spec(
            _name,
            InstrFormat.R,
            Opcode.OP_FP,
            funct3=7,  # rm = dynamic
            funct7=_f7,
            syntax=("rd", "rs1", "rs2"),
            group="RV32F",
            unit=_unit,
            rd_float=True,
            rs1_float=True,
            rs2_float=True,
        )
    )

_add(
    _spec(
        "fsqrt.s",
        InstrFormat.R,
        Opcode.OP_FP,
        funct3=7,
        funct7=0x2C,
        syntax=("rd", "rs1"),
        group="RV32F",
        unit=ExecUnit.FDIV,
        rd_float=True,
        rs1_float=True,
    )
)

for _name, _f3 in [("fsgnj.s", 0), ("fsgnjn.s", 1), ("fsgnjx.s", 2)]:
    _add(
        _spec(
            _name,
            InstrFormat.R,
            Opcode.OP_FP,
            funct3=_f3,
            funct7=0x10,
            syntax=("rd", "rs1", "rs2"),
            group="RV32F",
            unit=ExecUnit.FPU,
            rd_float=True,
            rs1_float=True,
            rs2_float=True,
        )
    )

for _name, _f3 in [("fmin.s", 0), ("fmax.s", 1)]:
    _add(
        _spec(
            _name,
            InstrFormat.R,
            Opcode.OP_FP,
            funct3=_f3,
            funct7=0x14,
            syntax=("rd", "rs1", "rs2"),
            group="RV32F",
            unit=ExecUnit.FPU,
            rd_float=True,
            rs1_float=True,
            rs2_float=True,
        )
    )

for _name, _f3 in [("fle.s", 0), ("flt.s", 1), ("feq.s", 2)]:
    _add(
        _spec(
            _name,
            InstrFormat.R,
            Opcode.OP_FP,
            funct3=_f3,
            funct7=0x50,
            syntax=("rd", "rs1", "rs2"),
            group="RV32F",
            unit=ExecUnit.FPU,
            rs1_float=True,
            rs2_float=True,
        )
    )

# Conversions and moves between the register files.
_add(
    _spec(
        "fcvt.w.s",
        InstrFormat.R,
        Opcode.OP_FP,
        funct3=1,  # rm = RTZ per the RISC-V convention for conversions to int
        funct7=0x60,
        syntax=("rd", "rs1"),
        group="RV32F",
        unit=ExecUnit.FPU,
        rs1_float=True,
    )
)
_add(
    _spec(
        "fcvt.wu.s",
        InstrFormat.R,
        Opcode.OP_FP,
        funct3=1,
        funct7=0x60,
        syntax=("rd", "rs1"),
        group="RV32F",
        unit=ExecUnit.FPU,
        rs1_float=True,
    )
)
_add(
    _spec(
        "fcvt.s.w",
        InstrFormat.R,
        Opcode.OP_FP,
        funct3=7,
        funct7=0x68,
        syntax=("rd", "rs1"),
        group="RV32F",
        unit=ExecUnit.FPU,
        rd_float=True,
    )
)
_add(
    _spec(
        "fcvt.s.wu",
        InstrFormat.R,
        Opcode.OP_FP,
        funct3=7,
        funct7=0x68,
        syntax=("rd", "rs1"),
        group="RV32F",
        unit=ExecUnit.FPU,
        rd_float=True,
    )
)
_add(
    _spec(
        "fmv.x.w",
        InstrFormat.R,
        Opcode.OP_FP,
        funct3=0,
        funct7=0x70,
        syntax=("rd", "rs1"),
        group="RV32F",
        unit=ExecUnit.FPU,
        rs1_float=True,
    )
)
_add(
    _spec(
        "fmv.w.x",
        InstrFormat.R,
        Opcode.OP_FP,
        funct3=0,
        funct7=0x78,
        syntax=("rd", "rs1"),
        group="RV32F",
        unit=ExecUnit.FPU,
        rd_float=True,
    )
)

# Fused multiply-add family (R4 format, the format reused by ``tex``).
for _name, _opc in [
    ("fmadd.s", Opcode.FMADD),
    ("fmsub.s", Opcode.FMSUB),
    ("fnmsub.s", Opcode.FNMSUB),
    ("fnmadd.s", Opcode.FNMADD),
]:
    _add(
        _spec(
            _name,
            InstrFormat.R4,
            _opc,
            funct3=7,
            syntax=("rd", "rs1", "rs2", "rs3"),
            group="RV32F",
            unit=ExecUnit.FPU,
            rd_float=True,
            rs1_float=True,
            rs2_float=True,
            rs3_float=True,
        )
    )

# -- Vortex extension (paper Table 2) --------------------------------------------

_add(
    _spec(
        "tmc",
        InstrFormat.R,
        Opcode.VX_EXT,
        funct3=0,
        syntax=("rs1",),
        group="VX",
        unit=ExecUnit.SFU,
        writes_rd=False,
    )
)
_add(
    _spec(
        "wspawn",
        InstrFormat.R,
        Opcode.VX_EXT,
        funct3=1,
        syntax=("rs1", "rs2"),
        group="VX",
        unit=ExecUnit.SFU,
        writes_rd=False,
    )
)
_add(
    _spec(
        "split",
        InstrFormat.R,
        Opcode.VX_EXT,
        funct3=2,
        syntax=("rs1",),
        group="VX",
        unit=ExecUnit.SFU,
        writes_rd=False,
    )
)
_add(
    _spec(
        "join",
        InstrFormat.R,
        Opcode.VX_EXT,
        funct3=3,
        syntax=(),
        group="VX",
        unit=ExecUnit.SFU,
        writes_rd=False,
    )
)
_add(
    _spec(
        "bar",
        InstrFormat.R,
        Opcode.VX_EXT,
        funct3=4,
        syntax=("rs1", "rs2"),
        group="VX",
        unit=ExecUnit.SFU,
        writes_rd=False,
    )
)
_add(
    _spec(
        "tex",
        InstrFormat.R4,
        Opcode.VX_TEX,
        funct3=0,  # funct3 selects the texture stage
        syntax=("rd", "rs1", "rs2", "rs3"),
        group="VX",
        unit=ExecUnit.TEX,
        rs1_float=True,
        rs2_float=True,
        rs3_float=True,
    )
)


#: Mnemonic -> specification.
SPEC_BY_MNEMONIC: dict[str, InstrSpec] = {spec.mnemonic: spec for spec in _SPECS}

#: The six instructions the paper adds to RISC-V (Table 2).
VORTEX_EXTENSION = ("wspawn", "tmc", "split", "join", "bar", "tex")

#: Instruction groups for reporting.
GROUPS = sorted({spec.group for spec in _SPECS})


def specs_in_group(group: str) -> list[InstrSpec]:
    """Return all specifications belonging to ``group``."""
    return [spec for spec in _SPECS if spec.group == group]


def lookup(mnemonic: str) -> InstrSpec:
    """Return the specification for ``mnemonic`` (case-insensitive)."""
    try:
        return SPEC_BY_MNEMONIC[mnemonic.lower()]
    except KeyError:
        raise KeyError(f"unknown instruction mnemonic {mnemonic!r}") from None


def all_specs() -> list[InstrSpec]:
    """Return every instruction specification in definition order."""
    return list(_SPECS)
