"""Elastic-pipeline primitives (paper section 4.4).

The RTL design threads every producer/consumer boundary through a
ready/valid handshake so that backpressure composes across the whole
processor and every in-flight request carries a tag (PC + wavefront id)
that identifies it for tracing.  The timing models in this repository use
the same discipline: stages exchange :class:`ElasticPacket` objects through
:class:`ElasticChannel` queues, a stage only pops a channel when it can
accept the packet, and a bounded channel that is full exerts backpressure
by refusing pushes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Iterator
from typing import Any


@dataclass
class ElasticPacket:
    """A tagged payload travelling through an elastic channel.

    The ``tag`` mirrors the RTL's trace tag: by convention it is a tuple of
    ``(pc, warp_id)`` for instruction-derived requests, but any hashable
    value is accepted — cache fills, for example, are tagged with their MSHR
    entry id.
    """

    payload: Any
    tag: Any = None
    cycle: int = 0


class ElasticChannel:
    """A bounded ready/valid FIFO connecting two pipeline stages.

    ``capacity=None`` models a combinational connection with unlimited
    skid-buffering (used where the RTL would instantiate a deep FIFO);
    bounded capacities model the single- or double-entry skid buffers used
    between most stages.
    """

    def __init__(self, name: str, capacity: int | None = 1):
        if capacity is not None and capacity < 1:
            raise ValueError("channel capacity must be at least 1")
        self.name = name
        self.capacity = capacity
        self._queue: deque[ElasticPacket] = deque()
        self.pushed = 0
        self.popped = 0
        self.stalls = 0

    # -- producer side ---------------------------------------------------------

    @property
    def ready(self) -> bool:
        """True when a producer may push this cycle."""
        return self.capacity is None or len(self._queue) < self.capacity

    def push(self, payload: Any, tag: Any = None, cycle: int = 0) -> bool:
        """Push a packet if the channel is ready; returns False on backpressure."""
        if not self.ready:
            self.stalls += 1
            return False
        self._queue.append(ElasticPacket(payload=payload, tag=tag, cycle=cycle))
        self.pushed += 1
        return True

    # -- consumer side ---------------------------------------------------------

    @property
    def valid(self) -> bool:
        """True when a consumer may pop this cycle."""
        return bool(self._queue)

    def peek(self) -> ElasticPacket:
        """Return the head packet without consuming it."""
        if not self._queue:
            raise IndexError(f"peek on empty channel {self.name!r}")
        return self._queue[0]

    def pop(self) -> ElasticPacket:
        """Consume and return the head packet."""
        if not self._queue:
            raise IndexError(f"pop on empty channel {self.name!r}")
        self.popped += 1
        return self._queue.popleft()

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[ElasticPacket]:
        return iter(self._queue)

    def clear(self) -> None:
        self._queue.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ElasticChannel({self.name!r}, depth={len(self._queue)}/{self.capacity})"


@dataclass
class ElasticStage:
    """Bookkeeping helper for a named pipeline stage.

    Timing models register the stages they implement so traces and
    utilization reports can be produced uniformly.  ``busy_cycles`` counts
    cycles in which the stage processed at least one packet.
    """

    name: str
    busy_cycles: int = 0
    total_cycles: int = 0
    processed: int = 0

    def tick(self, did_work: bool, count: int = 1) -> None:
        """Record one cycle of activity."""
        self.total_cycles += 1
        if did_work:
            self.busy_cycles += 1
            self.processed += count

    @property
    def utilization(self) -> float:
        """Fraction of cycles the stage did useful work."""
        if self.total_cycles == 0:
            return 0.0
        return self.busy_cycles / self.total_cycles
