"""Performance counters shared by the timing models.

Every timing component (core, cache, texture unit, memory controller)
owns a :class:`PerfCounters` instance.  Counters are plain named integers
plus a few derived metrics; the benchmark harness merges them into the
per-experiment reports.

This module also defines the :func:`hot_path` marker.  Functions tagged
``@hot_path`` run at per-request-attempt rates (millions of calls per
simulated second); vxlint rule VX004 statically forbids comprehensions,
lambdas, f-strings, and fresh numpy arrays inside them.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterator, Mapping
from typing import TypeVar

_F = TypeVar("_F", bound=Callable[..., object])


def hot_path(func: _F) -> _F:
    """Mark ``func`` as a per-attempt hot path.

    Purely declarative at runtime (zero wrapping, zero overhead): the
    decorator returns ``func`` unchanged and only sets an attribute so
    tooling and tests can discover the tagged set.  The real enforcement
    is static — vxlint VX004 rejects allocation-heavy constructs inside
    any function carrying this marker.
    """
    func.__hot_path__ = True  # type: ignore[attr-defined]
    return func


class PerfCounters:
    """A dictionary of monotonically increasing counters with derived ratios.

    Counter *keys* are governed by vxlint VX003: every literal key used
    with ``incr``/``set`` (or via a prebound ``_counters`` dict on a hot
    path) must appear in some component's ``COUNTERS`` schema — a
    class-level ``frozenset`` of the counter names that component owns.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._counters: defaultdict[str, int] = defaultdict(int)

    def incr(self, counter: str, amount: int = 1) -> None:
        """Increment ``counter`` by ``amount``."""
        self._counters[counter] += amount

    def set(self, counter: str, value: int) -> None:
        """Set ``counter`` to an absolute value."""
        self._counters[counter] = value

    def get(self, counter: str) -> int:
        """Read ``counter`` (0 if never touched)."""
        return self._counters.get(counter, 0)

    def ratio(self, numerator: str, denominator: str) -> float:
        """Return ``numerator / denominator`` guarding against division by zero."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def merge(self, other: PerfCounters, prefix: str = "") -> None:
        """Accumulate another counter set into this one."""
        for key, value in other.items():
            self._counters[prefix + key] += value

    def items(self) -> Iterator[tuple[str, int]]:
        return iter(self._counters.items())

    def as_dict(self) -> dict[str, int]:
        """Return a plain-dict snapshot."""
        return dict(self._counters)

    def update_from(self, mapping: Mapping[str, int]) -> None:
        """Accumulate counters from a plain mapping."""
        for key, value in mapping.items():
            self._counters[key] += value

    def reset(self) -> None:
        self._counters.clear()

    # -- checkpoint/restore -------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        """Serialize the counter values (see ``repro.runtime.checkpoint``)."""
        return dict(self._counters)

    def restore(self, payload: Mapping[str, int]) -> None:
        """Restore counter values from a :meth:`snapshot` payload."""
        self._counters.clear()
        for key, value in payload.items():
            self._counters[key] = value

    def __contains__(self, counter: str) -> bool:
        return counter in self._counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"PerfCounters({self.name!r}, {inner})"


__all__ = ["PerfCounters", "hot_path"]
