"""Bit-manipulation helpers shared by the ISA, ALU and cache models.

Everything in the simulator that touches architectural state works on
32-bit two's-complement integers stored as Python ints in the unsigned
range ``[0, 2**32)``.  These helpers centralize the conversions so that the
rest of the code never has to worry about Python's unbounded integers.
"""

from __future__ import annotations

import math
import struct

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1


def mask(nbits: int) -> int:
    """Return an integer with the low ``nbits`` bits set."""
    if nbits < 0:
        raise ValueError(f"negative bit count: {nbits}")
    return (1 << nbits) - 1


def bit(value: int, index: int) -> int:
    """Return bit ``index`` of ``value`` (0 or 1)."""
    return (value >> index) & 1


def bits(value: int, hi: int, lo: int) -> int:
    """Return the inclusive bit-field ``value[hi:lo]``."""
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    return (value >> lo) & mask(hi - lo + 1)


def to_uint32(value: int) -> int:
    """Truncate an integer into the unsigned 32-bit range."""
    return value & WORD_MASK


def to_int32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= WORD_MASK
    if value & (1 << (WORD_BITS - 1)):
        return value - (1 << WORD_BITS)
    return value


def sext(value: int, from_bits: int) -> int:
    """Sign-extend the low ``from_bits`` bits of ``value`` to a Python int."""
    value &= mask(from_bits)
    if value & (1 << (from_bits - 1)):
        return value - (1 << from_bits)
    return value


def popcount(value: int) -> int:
    """Count set bits."""
    return bin(value & ((1 << 1024) - 1)).count("1") if value >= 0 else bin(value & WORD_MASK).count("1")


def float_to_bits(value: float) -> int:
    """Pack a Python float into IEEE-754 binary32 bits (round-to-nearest)."""
    try:
        packed = struct.pack("<f", value)
    except OverflowError:
        packed = struct.pack("<f", math.inf if value > 0 else -math.inf)
    return struct.unpack("<I", packed)[0]


def bits_to_float(word: int) -> float:
    """Unpack IEEE-754 binary32 bits into a Python float."""
    return struct.unpack("<f", struct.pack("<I", word & WORD_MASK))[0]


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    """Return True when ``value`` is a multiple of ``alignment``."""
    return (value & (alignment - 1)) == 0


def log2ceil(value: int) -> int:
    """Return ceil(log2(value)); 0 for value <= 1."""
    if value <= 1:
        return 0
    return (value - 1).bit_length()
