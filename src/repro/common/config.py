"""Configuration dataclasses describing a Vortex processor build.

A :class:`VortexConfig` captures the knobs the paper sweeps in its
evaluation section: warps and threads per core (Table 3 / Figure 14), core
count (Table 4 / Figure 18), cache banks and virtual ports (Table 5 /
Figure 19), texture hardware on/off (Figure 20), and the DRAM latency and
bandwidth knobs used by Figure 21.  Every simulator driver, the synthesis
area model and the benchmark harness consume the same dataclasses, so a
configuration used to measure IPC is by construction the configuration the
area model prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one non-blocking multi-banked cache (section 4.3)."""

    size: int = 16 * 1024
    line_size: int = 64
    num_banks: int = 4
    num_ways: int = 2
    num_ports: int = 1
    mshr_size: int = 8
    hit_latency: int = 2
    write_through: bool = True

    def __post_init__(self) -> None:
        if self.line_size & (self.line_size - 1):
            raise ValueError("cache line size must be a power of two")
        if self.num_banks & (self.num_banks - 1):
            raise ValueError("bank count must be a power of two")
        if self.size % (self.line_size * self.num_banks * self.num_ways):
            raise ValueError("cache size must divide evenly into ways and banks")
        if self.num_ports < 1:
            raise ValueError("a cache bank needs at least one port")

    @property
    def num_sets(self) -> int:
        """Sets per bank."""
        return self.size // (self.line_size * self.num_banks * self.num_ways)


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory (DRAM) latency/bandwidth model used by Figure 21."""

    latency: int = 100
    bandwidth: int = 1
    request_queue_size: int = 16

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError("memory latency must be at least one cycle")
        if self.bandwidth < 1:
            raise ValueError("memory bandwidth must be at least one response per cycle")


@dataclass(frozen=True)
class TextureConfig:
    """Texture unit configuration (section 4.2)."""

    enabled: bool = True
    num_states: int = 2
    address_latency: int = 1
    sampler_latency: int = 2

    def __post_init__(self) -> None:
        if self.num_states < 1:
            raise ValueError("at least one texture state is required")


#: Wavefront scheduler policies the cycle-level core can be configured with.
#: ``"round-robin"`` is the paper's hierarchical two-level policy (and the
#: counter-identical default); the alternatives are the classic design-space
#: axis the timing model sweeps.  ``"cache-locality"`` came out of the trace
#: forensics on the greedy-then-oldest pathology: prefer warps touching the
#: current D$ line, but never re-select a warp whose last issue attempt hit a
#: scoreboard hazard.
SCHEDULER_POLICIES = (
    "round-robin",
    "greedy-then-oldest",
    "loose-round-robin",
    "cache-locality",
)


@dataclass(frozen=True)
class CoreConfig:
    """Per-core SIMT configuration (section 4.1)."""

    num_warps: int = 4
    num_threads: int = 4
    num_barriers: int = 4
    ipdom_depth: int = 32
    fpu_latency: int = 4
    fdiv_latency: int = 16
    fsqrt_latency: int = 16
    imul_latency: int = 3
    idiv_latency: int = 16
    shared_mem_size: int = 8 * 1024
    #: Wavefront scheduler policy of the cycle-level core (see
    #: :data:`SCHEDULER_POLICIES`).  Only the timing model consults it; the
    #: functional engines execute wavefronts in a fixed interleaving.
    scheduler_policy: str = "round-robin"

    def __post_init__(self) -> None:
        if self.scheduler_policy not in SCHEDULER_POLICIES:
            raise ValueError(
                f"unknown scheduler policy {self.scheduler_policy!r}; "
                f"available: {sorted(SCHEDULER_POLICIES)}"
            )
        if self.num_warps < 1 or self.num_threads < 1:
            raise ValueError("a core needs at least one warp and one thread")
        if self.num_threads > 32:
            raise ValueError("the thread mask register is 32 bits wide")
        if self.num_warps > 32:
            raise ValueError("the wavefront masks are 32 bits wide")


@dataclass(frozen=True)
class VortexConfig:
    """Full processor configuration: cores, clusters, caches, memory, texture."""

    num_cores: int = 1
    num_clusters: int = 1
    core: CoreConfig = field(default_factory=CoreConfig)
    icache: CacheConfig = field(default_factory=lambda: CacheConfig(size=8 * 1024, num_banks=1))
    dcache: CacheConfig = field(default_factory=CacheConfig)
    l2cache: CacheConfig = field(default_factory=lambda: CacheConfig(size=128 * 1024, num_banks=4))
    l3cache: CacheConfig = field(default_factory=lambda: CacheConfig(size=1024 * 1024, num_banks=8))
    enable_l2: bool = False
    enable_l3: bool = False
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    texture: TextureConfig = field(default_factory=TextureConfig)

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("at least one core is required")
        if self.num_clusters < 1:
            raise ValueError("at least one cluster is required")
        if self.num_cores % self.num_clusters:
            raise ValueError("cores must divide evenly into clusters")

    # -- convenience accessors -------------------------------------------------

    @property
    def cores_per_cluster(self) -> int:
        return self.num_cores // self.num_clusters

    @property
    def num_warps(self) -> int:
        return self.core.num_warps

    @property
    def num_threads(self) -> int:
        return self.core.num_threads

    @property
    def total_threads(self) -> int:
        """Hardware threads across the whole processor."""
        return self.num_cores * self.core.num_warps * self.core.num_threads

    def with_cores(self, num_cores: int, num_clusters: int = 1) -> VortexConfig:
        """Return a copy scaled to ``num_cores`` cores."""
        return replace(self, num_cores=num_cores, num_clusters=num_clusters)

    def with_warps_threads(self, num_warps: int, num_threads: int) -> VortexConfig:
        """Return a copy with a different warp/thread geometry."""
        return replace(self, core=replace(self.core, num_warps=num_warps, num_threads=num_threads))

    def with_scheduler_policy(self, policy: str) -> VortexConfig:
        """Return a copy with a different wavefront scheduler policy."""
        return replace(self, core=replace(self.core, scheduler_policy=policy))

    def with_dcache_ports(self, num_ports: int) -> VortexConfig:
        """Return a copy with a different virtual-port count on the data cache."""
        return replace(self, dcache=replace(self.dcache, num_ports=num_ports))

    def with_memory(self, latency: int, bandwidth: int) -> VortexConfig:
        """Return a copy with different DRAM latency/bandwidth (Figure 21)."""
        return replace(self, memory=MemoryConfig(latency=latency, bandwidth=bandwidth))

    def with_cache_hierarchy(
        self, enable_l2: bool = False, enable_l3: bool = False
    ) -> VortexConfig:
        """Return a copy with the shared cache levels toggled (the L2/L3 axis)."""
        return replace(self, enable_l2=enable_l2, enable_l3=enable_l3)

    def describe(self) -> dict[str, int]:
        """Return a flat summary used by reports and the area model."""
        return {
            "cores": self.num_cores,
            "clusters": self.num_clusters,
            "warps": self.core.num_warps,
            "threads": self.core.num_threads,
            "dcache_banks": self.dcache.num_banks,
            "dcache_ports": self.dcache.num_ports,
            "mem_latency": self.memory.latency,
            "mem_bandwidth": self.memory.bandwidth,
        }


# Named configurations used throughout the evaluation section.
def baseline_config(**overrides) -> VortexConfig:
    """The paper's baseline: 4 warps x 4 threads per core, 4-bank 16KB D$."""
    config = VortexConfig()
    if overrides:
        config = replace(config, **overrides)
    return config


#: Table 3 / Figure 14 core design-space points, keyed by their paper label.
CORE_DESIGN_POINTS = {
    "4W-4T": (4, 4),
    "2W-8T": (2, 8),
    "8W-2T": (8, 2),
    "4W-8T": (4, 8),
    "8W-4T": (8, 4),
}
