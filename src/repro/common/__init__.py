"""Shared infrastructure used by every Vortex subsystem.

This package hosts the pieces that the paper treats as cross-cutting
foundations: configuration dataclasses describing a processor build
(threads, warps, cores, cache geometry), bit-manipulation helpers used by
the ISA encoder/decoder and the ALU, the elastic-pipeline primitives
(ready/valid channels with tagged packets, section 4.4 of the paper), and
performance-counter plumbing shared by the timing models.
"""

from repro.common.bitutils import (
    bit,
    bits,
    mask,
    sext,
    to_int32,
    to_uint32,
    popcount,
    float_to_bits,
    bits_to_float,
)
from repro.common.config import (
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    TextureConfig,
    VortexConfig,
)
from repro.common.elastic import ElasticChannel, ElasticPacket
from repro.common.perf import PerfCounters

__all__ = [
    "bit",
    "bits",
    "mask",
    "sext",
    "to_int32",
    "to_uint32",
    "popcount",
    "float_to_bits",
    "bits_to_float",
    "CacheConfig",
    "CoreConfig",
    "MemoryConfig",
    "TextureConfig",
    "VortexConfig",
    "ElasticChannel",
    "ElasticPacket",
    "PerfCounters",
]
