"""CLI driver: ``python -m repro.analysis [paths] [options]``.

Exit status is 0 when every finding is fixed, suppressed inline, or
covered by the committed baseline — the contract the CI ``static_analysis``
job enforces.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.framework import Baseline, load_modules, registered_rules, run_rules
from repro.analysis.rules import INVENTORY_PATH, write_inventory

DEFAULT_BASELINE = Path("vxlint_baseline.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="vxlint: simulator-invariant static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline JSON of justified exceptions (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (report every finding)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file as a skeleton and exit",
    )
    parser.add_argument(
        "--write-state-inventory",
        action="store_true",
        help=f"regenerate {INVENTORY_PATH.name} from the code and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also report baselined findings and the suppression count",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in registered_rules():
            scope = ", ".join(rule.scope) if rule.scope else "<all modules>"
            print(f"{rule.id}  {rule.title:<22} scope: {scope}")
        return 0

    modules = load_modules(Path(p) for p in args.paths)

    if args.write_state_inventory:
        components = write_inventory(modules)
        print(f"wrote {INVENTORY_PATH} ({len(components)} components)")
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    result = run_rules(modules, baseline=baseline)

    if args.write_baseline:
        Baseline.dump(result.findings, args.baseline)
        print(f"wrote {args.baseline} ({len(result.findings)} exceptions — fill in justifications)")
        return 0

    for finding in result.findings:
        print(finding.render())
    if args.verbose:
        for finding in result.baselined:
            print(f"[baselined] {finding.render()}")
        print(
            f"-- {len(result.findings)} finding(s), {len(result.baselined)} baselined, "
            f"{result.suppressed_count} suppressed inline"
        )
    if result.findings:
        print(
            f"vxlint: {len(result.findings)} finding(s). Fix them, suppress inline with "
            "`# vxlint: disable=VXnnn`, or baseline with a justification.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
