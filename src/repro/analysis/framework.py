"""vxlint: rule framework for the simulator-invariant static analyses.

The repo's correctness story rests on a handful of invariants that normal
linters cannot see — side-effect-free arbitration predicates, counter
updates drawn from a fixed schema, allocation-light hot paths, strictly
deterministic scheduling.  This module provides the machinery shared by all
rules (:mod:`repro.analysis.rules`):

* :class:`Rule` — one invariant; rules register themselves via
  :func:`register_rule` and are scoped to module prefixes so e.g. the
  determinism rule never fires on the kernel generators (which seed RNGs
  deliberately).
* :class:`ModuleInfo` — one parsed source file: AST, module name, and the
  per-line ``# vxlint: disable=VXnnn`` suppressions.
* :class:`Finding` — one violation, carrying a *stable fingerprint*
  (rule : module : symbol : detail, no line numbers) so committed baselines
  survive unrelated edits.
* :func:`run_rules` — two-phase driver: every rule first *collects*
  project-wide facts (declared ``COUNTERS`` schemas, the state inventory),
  then checks each module.

Fixing a finding is always preferred; a deliberate exception is either
suppressed inline (``# vxlint: disable=VX003`` with a nearby comment
explaining why) or entered into the committed baseline with a one-line
justification (see ``vxlint_baseline.json`` at the repo root).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "Baseline",
    "register_rule",
    "registered_rules",
    "load_modules",
    "module_name_for",
    "run_rules",
]

_SUPPRESS_RE = re.compile(r"#\s*vxlint:\s*disable=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    module: str
    path: str
    line: int
    symbol: str
    detail: str
    message: str

    @property
    def fingerprint(self) -> str:
        """Location-independent identity used for baseline matching.

        Deliberately excludes the line number: baselined exceptions must
        survive unrelated edits above them.  ``symbol`` is the enclosing
        ``Class.function`` qualname and ``detail`` a rule-chosen
        discriminator (e.g. the offending counter key).
        """
        return f"{self.rule}:{self.module}:{self.symbol}:{self.detail}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.symbol}] {self.message}"


class ModuleInfo:
    """One parsed python module presented to the rules."""

    def __init__(self, path: str, module: str, source: str):
        self.path = path
        self.module = module
        self.source = source
        self.tree = ast.parse(source, filename=path)
        #: line number -> set of rule ids disabled on that line.
        self.suppressions: dict[int, set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                rules = {item.strip() for item in match.group(1).split(",") if item.strip()}
                self.suppressions[lineno] = rules

    def suppressed(self, rule: str, line: int) -> bool:
        disabled = self.suppressions.get(line)
        return disabled is not None and rule in disabled

    def in_scope(self, prefixes: Sequence[str]) -> bool:
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


class Rule:
    """Base class for one invariant check.

    ``scope`` lists the module prefixes the rule applies to.  ``collect``
    runs over *every* loaded module (regardless of scope) before any
    ``check`` call, letting rules gather project-wide declarations — the
    VX003 counter schemas and the VX006 state inventory both need to see
    modules other than the one being checked.
    """

    id: str = ""
    title: str = ""
    scope: tuple[str, ...] = ()

    def collect(self, module: ModuleInfo) -> None:  # pragma: no cover - default no-op
        return None

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        symbol: str,
        detail: str,
        message: str,
    ) -> Finding:
        return Finding(
            rule=self.id,
            module=module.module,
            path=module.path,
            line=getattr(node, "lineno", 0),
            symbol=symbol,
            detail=detail,
            message=message,
        )


_RULE_FACTORIES: list[Callable[[], Rule]] = []


def register_rule(factory: Callable[[], Rule]) -> Callable[[], Rule]:
    """Class decorator registering a rule with the default registry."""
    _RULE_FACTORIES.append(factory)
    return factory


def registered_rules() -> list[Rule]:
    """Fresh instances of every registered rule (rules carry collect state)."""
    return [factory() for factory in _RULE_FACTORIES]


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path`` (``.../src/repro/cache/cache.py`` →
    ``repro.cache.cache``), falling back to the stem when no package root
    is recognizable."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("src",):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1 :]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


def load_modules(paths: Iterable[Path]) -> list[ModuleInfo]:
    """Parse every ``.py`` file under ``paths`` into :class:`ModuleInfo`."""
    modules: list[ModuleInfo] = []
    for root in paths:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            if "__pycache__" in file.parts:
                continue
            source = file.read_text(encoding="utf-8")
            modules.append(ModuleInfo(str(file), module_name_for(file), source))
    return modules


@dataclass
class Baseline:
    """The committed set of deliberate, justified exceptions."""

    entries: dict[str, str] = field(default_factory=dict)  # fingerprint -> justification

    @classmethod
    def load(cls, path: Path) -> Baseline:
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries: dict[str, str] = {}
        for item in payload.get("exceptions", []):
            entries[item["fingerprint"]] = item.get("justification", "")
        return cls(entries=entries)

    def matches(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    @staticmethod
    def dump(findings: Sequence[Finding], path: Path) -> None:
        """Write a baseline skeleton for ``findings`` (justifications to fill in)."""
        seen: dict[str, dict[str, str]] = {}
        for finding in findings:
            seen.setdefault(
                finding.fingerprint,
                {
                    "fingerprint": finding.fingerprint,
                    "justification": "TODO: justify or fix",
                },
            )
        payload = {"exceptions": sorted(seen.values(), key=lambda e: e["fingerprint"])}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


@dataclass
class RunResult:
    """Outcome of one analysis run."""

    findings: list[Finding]
    baselined: list[Finding]
    suppressed_count: int

    @property
    def clean(self) -> bool:
        return not self.findings


def run_rules(
    modules: Sequence[ModuleInfo],
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
) -> RunResult:
    """Run ``rules`` (default: the full registry) over ``modules``."""
    active = list(rules) if rules is not None else registered_rules()
    baseline = baseline or Baseline()
    for rule in active:
        for module in modules:
            rule.collect(module)
    findings: list[Finding] = []
    baselined: list[Finding] = []
    suppressed = 0
    for rule in active:
        for module in modules:
            if rule.scope and not module.in_scope(rule.scope):
                continue
            for finding in rule.check(module):
                if module.suppressed(rule.id, finding.line):
                    suppressed += 1
                elif baseline.matches(finding):
                    baselined.append(finding)
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return RunResult(findings=findings, baselined=baselined, suppressed_count=suppressed)
