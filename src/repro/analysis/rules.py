"""The eight vxlint rules encoding the repo's simulator invariants.

Each rule is the static generalization of a property the differential and
Hypothesis tests enforce dynamically on specific code paths:

* **VX001 determinism** — the timing/functional simulators must be pure
  functions of (program, config): no wall-clock, no RNG, no ``id()``-keyed
  decisions, no iteration over unsorted sets (release order once leaked
  from ``set`` hashing into barrier release lists).
* **VX002 predicate purity** — the probe predicates the fast paths share
  with the send paths (``can_accept*``, ``next_event_cycle``,
  ``refusal_horizon``, ...) must not mutate state: the batched request path
  and the event-driven fast-forward are only bit-identical because probing
  is free.
* **VX003 counter discipline** — performance counters may only be touched
  through ``+=``/``-=`` (or the ``incr``/``set`` API) with string-literal
  keys declared in a component's ``COUNTERS`` schema, so a typo'd key can
  never silently fork the scalar and batched paths' counter sets.
* **VX004 hot-path allocation** — functions marked ``@hot_path`` run at
  per-request-attempt rates (millions per simulated second) and must not
  build comprehensions, lambdas, f-strings or fresh numpy arrays.
* **VX005 dtype discipline** — lane-vector arithmetic must not mix bare
  python ints into uint32 vectors without an explicit ``np.uint32`` cast
  (the NEP-50 promotion class of bug), and numpy array constructors must
  pass an explicit ``dtype`` (defaults differ across platforms and numpy
  majors).
* **VX006 state inventory** — every ``self.x`` a simulator component
  mutates must be catalogued in the committed state inventory; the
  inventory is the groundwork for checkpoint/restore (you cannot snapshot
  state you have not catalogued).
* **VX007 snapshot coverage** — every inventory-catalogued attribute must
  be handled by its owning class's ``snapshot()``/``restore()`` methods or
  explicitly declared derived/rebuildable in a ``SNAPSHOT_EXCLUDED``
  class attribute.  New state that the serializers silently miss is the
  checkpoint/restore analogue of a typo'd counter key: a restored run
  diverges from the straight-through one without any error.
* **VX008 trace-emission guard** — ``TraceBus.emit`` calls inside
  ``@hot_path`` functions must sit lexically inside an ``if`` that tests
  the trace receiver, so the tracing-off hot path stays allocation-free
  (the ``trace = self.trace`` / ``if trace is not None:`` idiom).
"""

from __future__ import annotations

import ast
import fnmatch
import json
from pathlib import Path
from collections.abc import Iterator

from repro.analysis.framework import Finding, ModuleInfo, Rule, register_rule

# ---------------------------------------------------------------------------
# Shared AST helpers


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_functions(tree: ast.Module) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, function)`` for every function, including methods."""

    def walk(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from walk(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")

    yield from walk(tree, "")


def enclosing_symbol(module: ModuleInfo, target: ast.AST) -> str:
    """Qualname of the function/class lexically containing ``target``."""
    best = "<module>"
    best_span = None
    for qualname, func in iter_functions(module.tree):
        end = getattr(func, "end_lineno", func.lineno)
        line = getattr(target, "lineno", 0)
        if func.lineno <= line <= end:
            span = end - func.lineno
            if best_span is None or span <= best_span:
                best, best_span = qualname, span
    return best


def decorator_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    names = []
    for dec in func.decorator_list:
        node = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(node)
        if name is not None:
            names.append(name.rsplit(".", 1)[-1])
    return names


def _literal_str_keys(node: ast.AST) -> list[str] | None:
    """String value(s) of a key expression, resolving two-armed IfExps.

    ``"writes" if is_write else "reads"`` is a fixed two-key choice, not a
    typo risk, so both arms are validated against the schema.  Returns
    ``None`` when the key is not statically known.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.IfExp):
        body = _literal_str_keys(node.body)
        orelse = _literal_str_keys(node.orelse)
        if body is not None and orelse is not None:
            return body + orelse
    return None


_SET_ANNOTATIONS = {"set", "Set", "frozenset", "FrozenSet", "MutableSet", "AbstractSet"}


def _annotation_is_set(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = dotted_name(node)
    return name is not None and name.rsplit(".", 1)[-1] in _SET_ANNOTATIONS


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


# ---------------------------------------------------------------------------
# VX001 — determinism


_BANNED_MODULES = {"time", "random", "secrets", "uuid"}

SIMULATOR_SCOPE = ("repro.core", "repro.cache", "repro.mem", "repro.engine")


@register_rule
class DeterminismRule(Rule):
    """VX001: no wall-clock, RNG, ``id()`` keying or unsorted-set iteration."""

    id = "VX001"
    title = "determinism"
    scope = SIMULATOR_SCOPE

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        set_symbols = self._collect_set_symbols(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield self.finding(
                            module,
                            node,
                            enclosing_symbol(module, node),
                            f"import:{alias.name}",
                            f"nondeterminism source: `import {alias.name}` inside the "
                            "simulator (wall-clock/RNG leaks into scheduling)",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED_MODULES:
                    yield self.finding(
                        module,
                        node,
                        enclosing_symbol(module, node),
                        f"import:{node.module}",
                        f"nondeterminism source: `from {node.module} import ...` inside "
                        "the simulator",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None:
                    root = name.split(".")[0]
                    if root in ("time", "random") and "." in name:
                        yield self.finding(
                            module,
                            node,
                            enclosing_symbol(module, node),
                            f"call:{name}",
                            f"nondeterministic call `{name}()` in simulator code",
                        )
                    elif name == "id" and len(node.args) == 1:
                        yield self.finding(
                            module,
                            node,
                            enclosing_symbol(module, node),
                            "call:id",
                            "`id()` values depend on allocation order; keying or "
                            "ordering on them is nondeterministic across processes",
                        )
                    elif name in ("list", "tuple") and len(node.args) == 1:
                        target = dotted_name(node.args[0])
                        if target is not None and target.rsplit(".", 1)[-1] in set_symbols:
                            yield self.finding(
                                module,
                                node,
                                enclosing_symbol(module, node),
                                f"set-order:{target}",
                                f"`{name}({target})` materializes an unsorted set: "
                                "element order follows hash seeds, not program order "
                                "(wrap in sorted() or use an insertion-ordered dict)",
                            )
            elif isinstance(node, (ast.For, ast.comprehension)):
                iter_expr = node.iter
                target = dotted_name(iter_expr)
                if target is not None and target.rsplit(".", 1)[-1] in set_symbols:
                    yield self.finding(
                        module,
                        iter_expr,
                        enclosing_symbol(module, iter_expr),
                        f"set-order:{target}",
                        f"iteration over unsorted set `{target}`: order follows hash "
                        "seeds, not program order (sort it or use an insertion-ordered "
                        "dict)",
                    )

    @staticmethod
    def _collect_set_symbols(module: ModuleInfo) -> set[str]:
        """Attribute/variable names statically known to hold a set."""
        symbols: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AnnAssign):
                name = dotted_name(node.target)
                if name is not None and _annotation_is_set(node.annotation):
                    symbols.add(name.rsplit(".", 1)[-1])
            elif isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    name = dotted_name(target)
                    if name is not None:
                        symbols.add(name.rsplit(".", 1)[-1])
            elif isinstance(node, ast.arg) and _annotation_is_set(node.annotation):
                symbols.add(node.arg)
        return symbols


# ---------------------------------------------------------------------------
# VX002 — predicate purity


#: Names (fnmatch patterns) of the registered side-effect-free predicates.
PURE_PREDICATES = (
    "can_accept*",
    "next_event_cycle",
    "next_response_cycle",
    "refusal_horizon",
    "write_refusal_horizon",
    "_arbitration_refusal",
    "_warp_would_stall",
    "_schedulable_mask",
    "probe",
    "busy",
    "done",
    "full",
    "schedulable",
    "deadlocked",
    "any_waiting",
    "any_active",
    "all_stalled",
    "contains",
)

#: Method names that mutate their receiver (containers + counter APIs +
#: the simulator send paths).  Calling one inside a pure predicate is a
#: violation no matter what the receiver is.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "add",
        "remove",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "incr",
        "reset",
        "merge",
        "update_from",
        "send",
        "send_raw",
        "send_batch",
        "request_fill",
        "request_write",
        "note_skipped_refusal",
        "allocate",
        "release",
        "fill",
        "install",
        "touch",
        "reserve",
        "tick",
        "skip_idle",
    }
)


def is_registered_predicate(name: str) -> bool:
    return any(fnmatch.fnmatchcase(name, pattern) for pattern in PURE_PREDICATES)


@register_rule
class PredicatePurityRule(Rule):
    """VX002: registered probe predicates must be side-effect free."""

    id = "VX002"
    title = "predicate-purity"
    scope = SIMULATOR_SCOPE

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for qualname, func in iter_functions(module.tree):
            if not is_registered_predicate(func.name):
                continue
            tainted = self._tainted_names(func)
            for node in ast.walk(func):
                yield from self._check_node(module, qualname, node, tainted)

    @staticmethod
    def _tainted_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """Local names aliasing externally visible state.

        Parameters (including ``self``) are tainted; a local assigned from
        an expression mentioning a tainted name inherits the taint
        (``bank = self.banks[i]``).  A local built from a fresh literal or
        comprehension (``results = []``) is *not* tainted: mutating it is
        invisible outside the predicate, which is exactly what the batch
        probes do to collect their answers.
        """
        args = func.args
        tainted = {
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        }
        if args.vararg:
            tainted.add(args.vararg.arg)
        if args.kwarg:
            tainted.add(args.kwarg.arg)
        # Statement-order pass; ast.walk is approximately source order, and
        # predicates are short enough that one pass converges in practice.
        for node in ast.walk(func):
            value: ast.AST | None = None
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, (ast.For, ast.comprehension)):
                value, targets = node.iter, [node.target]
            if value is None:
                continue
            value_names = {
                n.id for n in ast.walk(value) if isinstance(n, ast.Name)
            }
            if value_names & tainted:
                for target in targets:
                    for n in ast.walk(target):
                        if isinstance(n, ast.Name):
                            tainted.add(n.id)
        return tainted

    def _check_node(
        self,
        module: ModuleInfo,
        qualname: str,
        node: ast.AST,
        tainted: set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = target
                    while isinstance(root, (ast.Attribute, ast.Subscript)):
                        root = root.value
                    if isinstance(root, ast.Name) and root.id not in tainted:
                        continue
                    detail = dotted_name(target) or "<subscript>"
                    yield self.finding(
                        module,
                        node,
                        qualname,
                        f"store:{detail}",
                        f"predicate `{qualname}` stores to `{detail}`: probe "
                        "predicates must not mutate state (the batched/fast-forward "
                        "paths probe them freely)",
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    detail = dotted_name(target) or "<subscript>"
                    yield self.finding(
                        module,
                        node,
                        qualname,
                        f"delete:{detail}",
                        f"predicate `{qualname}` deletes `{detail}`",
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in MUTATING_METHODS:
                receiver = node.func.value
                root = receiver
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                # Mutating an untainted local (a fresh result list the
                # probe is building) is invisible outside the predicate.
                if isinstance(root, ast.Name) and root.id not in tainted:
                    return
                name = dotted_name(receiver)
                target = f"{name}.{method}" if name else f"<expr>.{method}"
                yield self.finding(
                    module,
                    node,
                    qualname,
                    f"mutating-call:{target}",
                    f"predicate `{qualname}` calls mutating method `{target}()`",
                )


# ---------------------------------------------------------------------------
# VX003 — counter discipline


@register_rule
class CounterDisciplineRule(Rule):
    """VX003: counter mutations use literal keys declared in a COUNTERS schema."""

    id = "VX003"
    title = "counter-discipline"
    scope = SIMULATOR_SCOPE

    def __init__(self) -> None:
        #: union of every declared per-component schema ("Class.key" attribution
        #: is by declaration site; validation uses the union because charging a
        #: sibling component's counters — e.g. the timing core replaying a
        #: refusal storm into the dcache — is legitimate and still typo-prone).
        self.declared: set[str] = set()
        self.declaring_classes: dict[str, set[str]] = {}

    def collect(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    keys = self._schema_literal(stmt)
                    if keys is not None:
                        self.declared.update(keys)
                        self.declaring_classes.setdefault(node.name, set()).update(keys)

    @staticmethod
    def _schema_literal(stmt: ast.stmt) -> set[str] | None:
        """Keys of a class-level ``COUNTERS = frozenset({...})`` declaration."""
        if isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        else:
            return None
        if not (isinstance(target, ast.Name) and target.id == "COUNTERS") or value is None:
            return None
        if isinstance(value, ast.Call) and dotted_name(value.func) == "frozenset" and value.args:
            value = value.args[0]
        if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            keys = set()
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    keys.add(element.value)
            return keys
        return None

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if method not in ("incr", "set"):
                    continue
                receiver = dotted_name(node.func.value) or ""
                if "perf" not in receiver.split("."):
                    continue
                symbol = enclosing_symbol(module, node)
                if not node.args:
                    continue
                yield from self._check_key(module, node, node.args[0], symbol, f".{method}()")
            elif isinstance(node, (ast.AugAssign, ast.Assign)):
                targets = [node.target] if isinstance(node, ast.AugAssign) else node.targets
                for target in targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    container = dotted_name(target.value) or ""
                    leaf = container.rsplit(".", 1)[-1]
                    if not leaf.endswith("counters") and leaf != "counters":
                        continue
                    symbol = enclosing_symbol(module, node)
                    if isinstance(node, ast.Assign):
                        yield self.finding(
                            module,
                            node,
                            symbol,
                            f"assign:{container}",
                            f"plain assignment into counter dict `{container}` — "
                            "counters are monotonic; use `+=`/`-=` (or PerfCounters.set "
                            "for sanctioned absolute writes)",
                        )
                        continue
                    if not isinstance(node.op, (ast.Add, ast.Sub)):
                        yield self.finding(
                            module,
                            node,
                            symbol,
                            f"op:{container}",
                            f"counter dict `{container}` mutated with an operator other "
                            "than `+=`/`-=`",
                        )
                        continue
                    yield from self._check_key(
                        module, node, target.slice, symbol, f"`{container}[...]`"
                    )

    def _check_key(
        self,
        module: ModuleInfo,
        node: ast.AST,
        key: ast.AST,
        symbol: str,
        where: str,
    ) -> Iterator[Finding]:
        keys = _literal_str_keys(key)
        if keys is None:
            detail = dotted_name(key) or ast.dump(key)[:40]
            yield self.finding(
                module,
                node,
                symbol,
                f"non-literal:{detail}",
                f"counter key in {where} is not a string literal (`{detail}`): the "
                "schema check cannot protect against typos here",
            )
            return
        for value in keys:
            if value not in self.declared:
                yield self.finding(
                    module,
                    node,
                    symbol,
                    f"undeclared:{value}",
                    f"counter key {value!r} is not declared in any component COUNTERS "
                    "schema — a typo here would silently fork the scalar/batched "
                    "counter sets",
                )


# ---------------------------------------------------------------------------
# VX004 — hot-path allocation


_NUMPY_CONSTRUCTORS = {
    "array",
    "asarray",
    "asanyarray",
    "zeros",
    "ones",
    "empty",
    "full",
    "arange",
    "frombuffer",
    "fromiter",
    "concatenate",
    "stack",
}


@register_rule
class HotPathAllocationRule(Rule):
    """VX004: ``@hot_path`` functions stay allocation-light."""

    id = "VX004"
    title = "hot-path-allocation"
    scope = ("repro",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for qualname, func in iter_functions(module.tree):
            if "hot_path" not in decorator_names(func):
                continue
            for node in ast.walk(func):
                if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    kind = type(node).__name__
                    yield self.finding(
                        module,
                        node,
                        qualname,
                        f"comp:{kind}:{node.lineno - func.lineno}",
                        f"{kind} inside @hot_path `{qualname}`: builds a fresh object "
                        "(and a frame, for comprehensions) on a per-attempt path",
                    )
                elif isinstance(node, ast.Lambda):
                    yield self.finding(
                        module,
                        node,
                        qualname,
                        f"lambda:{node.lineno - func.lineno}",
                        f"lambda inside @hot_path `{qualname}`: allocates a function "
                        "object per call",
                    )
                elif isinstance(node, ast.JoinedStr):
                    yield self.finding(
                        module,
                        node,
                        qualname,
                        f"fstring:{node.lineno - func.lineno}",
                        f"f-string inside @hot_path `{qualname}`: formats and allocates "
                        "on the hot path (move to the error/cold branch)",
                    )
                elif isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    if name is not None and "." in name:
                        root, _, leaf = name.rpartition(".")
                        if root in ("np", "numpy") and leaf in _NUMPY_CONSTRUCTORS:
                            yield self.finding(
                                module,
                                node,
                                qualname,
                                f"nparray:{name}",
                                f"fresh numpy array (`{name}`) inside @hot_path "
                                f"`{qualname}`: per-call array allocation dominates at "
                                "attempt rates — precompute or reuse a buffer",
                            )


# ---------------------------------------------------------------------------
# VX005 — numpy dtype discipline


_ARITH_OPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.FloorDiv,
    ast.Mod,
    ast.LShift,
    ast.RShift,
    ast.BitAnd,
    ast.BitOr,
    ast.BitXor,
)

_NP_DTYPE_WRAPPERS = {
    "uint32",
    "int32",
    "uint8",
    "int8",
    "uint16",
    "int16",
    "uint64",
    "int64",
    "intp",
    "float32",
    "float64",
}


def _annotation_is_ndarray(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return "ndarray" in node.value
    name = dotted_name(node)
    return name is not None and name.rsplit(".", 1)[-1] == "ndarray"


@register_rule
class DtypeDisciplineRule(Rule):
    """VX005: no bare-int arithmetic into lane vectors; explicit constructor dtypes."""

    id = "VX005"
    title = "dtype-discipline"
    scope = ("repro.arch", "repro.engine", "repro.mem")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for qualname, func in iter_functions(module.tree):
            lane_names = self._lane_vector_names(func)
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    yield from self._check_constructor(module, qualname, node)
                elif isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
                    yield from self._check_binop(module, qualname, node, lane_names)
        # Module-level constructor calls (outside any function).
        function_spans = [
            (f.lineno, getattr(f, "end_lineno", f.lineno)) for _, f in iter_functions(module.tree)
        ]
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                line = node.lineno
                if not any(start <= line <= end for start, end in function_spans):
                    yield from self._check_constructor(module, "<module>", node)

    @staticmethod
    def _lane_vector_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """Names known to be ndarrays inside ``func`` (annotation-driven)."""
        names: set[str] = set()
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_is_ndarray(arg.annotation):
                names.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign) and _annotation_is_ndarray(node.annotation):
                name = dotted_name(node.target)
                if name is not None:
                    names.add(name.rsplit(".", 1)[-1])
        return names

    def _check_constructor(
        self, module: ModuleInfo, qualname: str, node: ast.Call
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None or "." not in name:
            return
        root, _, leaf = name.rpartition(".")
        if root not in ("np", "numpy") or leaf not in (
            "array",
            "asarray",
            "asanyarray",
            "zeros",
            "ones",
            "empty",
            "full",
            "arange",
            "frombuffer",
            "fromiter",
        ):
            return
        if any(kw.arg == "dtype" for kw in node.keywords):
            return
        # Positional dtype: np.zeros(shape, dtype) / np.full(shape, fill, dtype) ...
        positional_dtype_index = {"zeros": 1, "ones": 1, "empty": 1, "array": 1, "asarray": 1,
                                  "asanyarray": 1, "full": 2, "fromiter": 1}.get(leaf)
        if positional_dtype_index is not None and len(node.args) > positional_dtype_index:
            return
        yield self.finding(
            module,
            node,
            qualname,
            f"implicit-dtype:{name}",
            f"`{name}(...)` without an explicit dtype: default dtypes differ across "
            "platforms and numpy majors (NEP 50), which forks bit-identity",
        )

    def _check_binop(
        self,
        module: ModuleInfo,
        qualname: str,
        node: ast.BinOp,
        lane_names: set[str],
    ) -> Iterator[Finding]:
        if not lane_names:
            return
        sides = [(node.left, node.right), (node.right, node.left)]
        for vector_side, scalar_side in sides:
            vec = dotted_name(vector_side)
            if isinstance(vector_side, ast.Subscript):
                vec = dotted_name(vector_side.value)
            if vec is None or vec.rsplit(".", 1)[-1] not in lane_names:
                continue
            if (
                isinstance(scalar_side, ast.Constant)
                and isinstance(scalar_side.value, int)
                and not isinstance(scalar_side.value, bool)
            ):
                op = type(node.op).__name__
                yield self.finding(
                    module,
                    node,
                    qualname,
                    f"bare-int:{vec}:{op}:{scalar_side.value}",
                    f"bare python int {scalar_side.value} mixed into lane vector "
                    f"`{vec}` with {op}: wrap it in np.uint32(...) (or the intended "
                    "dtype) so NEP-50/value-based promotion cannot widen the result",
                )
                return


# ---------------------------------------------------------------------------
# VX006 — mutable-state inventory


#: Components whose state the inventory catalogues: the snapshot scope a
#: future checkpoint/restore must cover.
STATE_SCOPE = ("repro.core", "repro.cache", "repro.mem")

INVENTORY_PATH = Path(__file__).with_name("state_inventory.json")


def collect_state(modules: list[ModuleInfo]) -> dict[str, list[str]]:
    """``{"module.Class": [attr, ...]}`` for every class in the state scope."""
    inventory: dict[str, list[str]] = {}
    for module in modules:
        if not module.in_scope(STATE_SCOPE):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            attrs: set[str] = set()
            for child in ast.walk(node):
                target_nodes: list[ast.AST] = []
                if isinstance(child, ast.Assign):
                    target_nodes = list(child.targets)
                elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
                    target_nodes = [child.target]
                for target in target_nodes:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
            if attrs:
                inventory[f"{module.module}.{node.name}"] = sorted(attrs)
    return dict(sorted(inventory.items()))


def load_inventory(path: Path = INVENTORY_PATH) -> dict[str, list[str]]:
    if not path.exists():
        return {}
    payload = json.loads(path.read_text(encoding="utf-8"))
    return payload.get("components", {})


def write_inventory(modules: list[ModuleInfo], path: Path = INVENTORY_PATH) -> dict[str, list[str]]:
    components = collect_state(modules)
    payload = {
        "_comment": (
            "Generated by `python -m repro.analysis --write-state-inventory`. "
            "Every instance attribute a simulator component assigns, per class; "
            "the checkpoint/restore snapshot scope. VX006 fails when code and "
            "inventory drift."
        ),
        "components": components,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return components


@register_rule
class StateInventoryRule(Rule):
    """VX006: component state must match the committed inventory."""

    id = "VX006"
    title = "state-inventory"
    scope = STATE_SCOPE

    def __init__(self, inventory: dict[str, list[str]] | None = None) -> None:
        self.inventory = load_inventory() if inventory is None else inventory

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        actual = collect_state([module])
        for component, attrs in actual.items():
            declared = set(self.inventory.get(component, []))
            if component not in self.inventory:
                yield self.finding(
                    module,
                    module.tree,
                    component.rsplit(".", 1)[-1],
                    f"unknown-component:{component}",
                    f"component `{component}` is missing from the state inventory "
                    "(run `python -m repro.analysis --write-state-inventory`)",
                )
                continue
            for attr in attrs:
                if attr not in declared:
                    node = self._attr_node(module, component.rsplit(".", 1)[-1], attr)
                    yield self.finding(
                        module,
                        node if node is not None else module.tree,
                        f"{component.rsplit('.', 1)[-1]}.{attr}",
                        f"undeclared:{component}.{attr}",
                        f"`self.{attr}` in `{component}` is not in the committed state "
                        "inventory — new mutable state must be catalogued (it is the "
                        "checkpoint/restore snapshot scope)",
                    )
            stale = declared - set(attrs)
            for attr in sorted(stale):
                yield self.finding(
                    module,
                    module.tree,
                    f"{component.rsplit('.', 1)[-1]}.{attr}",
                    f"stale:{component}.{attr}",
                    f"inventory lists `{component}.{attr}` but the code no longer "
                    "assigns it — regenerate the inventory",
                )

    @staticmethod
    def _attr_node(module: ModuleInfo, class_name: str, attr: str) -> ast.AST | None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                for child in ast.walk(node):
                    if (
                        isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign))
                        and any(
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"
                            and t.attr == attr
                            for t in (
                                child.targets
                                if isinstance(child, ast.Assign)
                                else [child.target]
                            )
                        )
                    ):
                        return child
        return None


# ---------------------------------------------------------------------------
# VX007 — snapshot coverage


#: Inventory classes legitimately outside the Snapshotable protocol.  Each
#: is either construction-time wiring rebuilt by ``__init__`` (the hierarchy
#: ports), a transient helper that never lives across a pause boundary (the
#: memory word cursor, the per-instruction warp emulator facade), or an
#: exception type.  Anything else in the state scope must serialize.
SNAPSHOT_EXEMPT = frozenset(
    {
        "repro.cache.hierarchy._CachePort",
        "repro.cache.hierarchy._DramPort",
        "repro.core.emulator.SimulationLimitExceeded",
        "repro.core.emulator.WarpEmulator",
        "repro.mem.memory.WordCursor",
    }
)

#: Method-name prefixes counted as serializer code.  Helper pairs like
#: ``_snapshot_global_barriers``/``_restore_global_barriers`` count, so a
#: class may split its serializer without losing coverage credit.
_SNAPSHOT_METHOD_PREFIXES = ("snapshot", "restore")


def _is_snapshot_method(name: str) -> bool:
    return name.lstrip("_").startswith(_SNAPSHOT_METHOD_PREFIXES)


@register_rule
class SnapshotCoverageRule(Rule):
    """VX007: inventory attributes are serialized or explicitly excluded."""

    id = "VX007"
    title = "snapshot-coverage"
    scope = STATE_SCOPE

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        actual = collect_state([module])
        class_defs = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for component, attrs in actual.items():
            class_name = component.rsplit(".", 1)[-1]
            node = class_defs.get(class_name)
            if node is None:  # pragma: no cover - collect_state saw it, so we will
                continue
            methods = [
                child
                for child in node.body
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and _is_snapshot_method(child.name)
            ]
            if not methods:
                if component in SNAPSHOT_EXEMPT:
                    continue
                yield self.finding(
                    module,
                    node,
                    class_name,
                    f"no-serializer:{component}",
                    f"`{component}` owns mutable state but defines no "
                    "snapshot()/restore() methods — implement the Snapshotable "
                    "protocol or add it to SNAPSHOT_EXEMPT with a justification",
                )
                continue
            covered = self._excluded_attrs(node)
            for method in methods:
                covered |= self._mentioned_attrs(method)
            for attr in attrs:
                if attr not in covered:
                    yield self.finding(
                        module,
                        self._attr_site(node, attr) or node,
                        f"{class_name}.{attr}",
                        f"uncovered:{component}.{attr}",
                        f"`self.{attr}` in `{component}` is not referenced by any "
                        "snapshot*/restore* method and not declared in "
                        "SNAPSHOT_EXCLUDED — a checkpoint would silently drop it "
                        "and the restored run would diverge",
                    )

    @staticmethod
    def _excluded_attrs(node: ast.ClassDef) -> set[str]:
        """String entries of a class-level ``SNAPSHOT_EXCLUDED`` literal."""
        excluded: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            else:
                continue
            if not (isinstance(target, ast.Name) and target.id == "SNAPSHOT_EXCLUDED"):
                continue
            if value is None:
                continue
            if (
                isinstance(value, ast.Call)
                and dotted_name(value.func) == "frozenset"
                and value.args
            ):
                value = value.args[0]
            if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        excluded.add(element.value)
        return excluded

    @staticmethod
    def _mentioned_attrs(method: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        """Attributes a serializer method handles.

        Counts ``self.x`` accesses and bare string literals: payload keys
        conventionally match attribute names (modulo a leading underscore),
        so ``{"next": self._next}`` credits both spellings.
        """
        mentioned: set[str] = set()
        for child in ast.walk(method):
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.value, ast.Name)
                and child.value.id == "self"
            ):
                mentioned.add(child.attr)
            elif isinstance(child, ast.Constant) and isinstance(child.value, str):
                mentioned.add(child.value)
                mentioned.add(f"_{child.value}")
        return mentioned

    @staticmethod
    def _attr_site(node: ast.ClassDef, attr: str) -> ast.AST | None:
        for child in ast.walk(node):
            if isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    child.targets if isinstance(child, ast.Assign) else [child.target]
                )
                if any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    and t.attr == attr
                    for t in targets
                ):
                    return child
        return None


# ---------------------------------------------------------------------------
# VX008 — guarded trace emission


@register_rule
class TraceEmissionGuardRule(Rule):
    """VX008: ``.emit()`` on a trace receiver inside ``@hot_path`` needs a guard.

    The observability contract is that a tracing-off simulation pays one
    prebound ``None`` comparison per emission site and nothing else.  That
    only holds when every hot-path emission is lexically inside an ``if``
    whose test mentions the receiver — ``trace = self.trace`` followed by
    ``if trace is not None: trace.emit(...)`` — because the emit call's
    argument tuple (and usually a payload dict) is otherwise built on every
    attempt even when no bus is attached.
    """

    id = "VX008"
    title = "trace-emission-guard"
    scope = ("repro",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for qualname, func in iter_functions(module.tree):
            if "hot_path" not in decorator_names(func):
                continue
            for stmt in func.body:
                yield from self._scan(module, qualname, func, stmt, frozenset())

    def _scan(
        self,
        module: ModuleInfo,
        qualname: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.AST,
        guarded: frozenset[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs get their own scan if (and only if) they are hot.
            return
        if isinstance(node, ast.If):
            names = frozenset(
                name
                for sub in ast.walk(node.test)
                if isinstance(sub, (ast.Name, ast.Attribute))
                and (name := dotted_name(sub)) is not None
            )
            for child in ast.iter_child_nodes(node):
                if child is node.test:
                    yield from self._scan(module, qualname, func, child, guarded)
                else:
                    yield from self._scan(module, qualname, func, child, guarded | names)
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
        ):
            receiver = dotted_name(node.func.value)
            if (
                receiver is not None
                and "trace" in receiver.rsplit(".", 1)[-1]
                and receiver not in guarded
            ):
                yield self.finding(
                    module,
                    node,
                    qualname,
                    f"unguarded:{receiver}:{node.lineno - func.lineno}",
                    f"`{receiver}.emit(...)` inside @hot_path `{qualname}` is not "
                    f"lexically inside an `if` testing `{receiver}` — with tracing "
                    "off this builds the argument tuple (and payload) per attempt; "
                    "hoist the bus into a local and guard with `if <bus> is not "
                    "None:`",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._scan(module, qualname, func, child, guarded)
