"""vxlint — simulator-invariant static analysis for the repro codebase.

Run as ``python -m repro.analysis src`` (see :mod:`repro.analysis.__main__`).
"""

from __future__ import annotations

from repro.analysis.framework import (
    Baseline,
    Finding,
    ModuleInfo,
    Rule,
    RunResult,
    load_modules,
    module_name_for,
    register_rule,
    registered_rules,
    run_rules,
)
from repro.analysis.rules import (
    CounterDisciplineRule,
    DeterminismRule,
    DtypeDisciplineRule,
    HotPathAllocationRule,
    PredicatePurityRule,
    StateInventoryRule,
    collect_state,
    load_inventory,
    write_inventory,
)

__all__ = [
    "Baseline",
    "Finding",
    "ModuleInfo",
    "Rule",
    "RunResult",
    "load_modules",
    "module_name_for",
    "register_rule",
    "registered_rules",
    "run_rules",
    "CounterDisciplineRule",
    "DeterminismRule",
    "DtypeDisciplineRule",
    "HotPathAllocationRule",
    "PredicatePurityRule",
    "StateInventoryRule",
    "collect_state",
    "load_inventory",
    "write_inventory",
]
