"""FPGA synthesis area/frequency model and ASIC summary (paper section 6.2
and 6.6).

The RTL synthesis results of the paper (Tables 3, 4, 5 and Figures 15-17)
cannot be regenerated without Quartus and the RTL itself; this package
substitutes a *calibrated structural model*: resource usage is expressed as
a regression over the structural terms that drive it (threads, wavefronts,
threads x wavefronts, cores, cache banks and virtual ports), with the
coefficients derived from the published tables themselves.  The value of
the model is (a) it documents which structural parameters drive which
resource, and (b) it lets the benchmark harness price arbitrary
configurations (e.g. the ones the IPC experiments sweep) consistently with
the paper's published design points.
"""

from repro.synthesis.area_model import (
    CoreSynthesisModel,
    CacheSynthesisModel,
    MulticoreSynthesisModel,
    FpgaDevice,
    ARRIA10,
    STRATIX10,
)
from repro.synthesis.components import area_breakdown, COMPONENT_FRACTIONS
from repro.synthesis.asic import AsicSummary, asic_power_breakdown

__all__ = [
    "CoreSynthesisModel",
    "CacheSynthesisModel",
    "MulticoreSynthesisModel",
    "FpgaDevice",
    "ARRIA10",
    "STRATIX10",
    "area_breakdown",
    "COMPONENT_FRACTIONS",
    "AsicSummary",
    "asic_power_breakdown",
]
