"""Per-component area breakdown (Figure 15).

The paper reports that at eight cores the FPGA logic is occupied primarily
by the texture units and the caches, with the FPU area kept low because FMA
computation maps onto the device's hard DSP blocks.  The breakdown below
captures that distribution; combined with the calibrated totals of
:mod:`repro.synthesis.area_model` it regenerates the Figure 15 pie chart
for any core count.
"""

from __future__ import annotations

from repro.synthesis.area_model import ARRIA10, FpgaDevice, MulticoreSynthesisModel

#: Fraction of the processor's logic area attributed to each component
#: (normalized; derived from the Figure 15 distribution).
COMPONENT_FRACTIONS: dict[str, float] = {
    "caches": 0.30,
    "texture_units": 0.22,
    "pipeline": 0.18,
    "register_file": 0.12,
    "wavefront_scheduler": 0.08,
    "fpu": 0.05,
    "afu_interconnect": 0.05,
}


def area_breakdown(num_cores: int = 8, device: FpgaDevice = ARRIA10) -> dict[str, float]:
    """Return the per-component ALM estimate for a ``num_cores`` processor."""
    total = MulticoreSynthesisModel(device).estimate(num_cores, device)["alms"]
    return {component: fraction * total for component, fraction in COMPONENT_FRACTIONS.items()}


def dominant_components(num_cores: int = 8, top: int = 2) -> list:
    """The ``top`` largest area consumers (the paper calls out texture + caches)."""
    breakdown = area_breakdown(num_cores)
    return sorted(breakdown, key=breakdown.get, reverse=True)[:top]
