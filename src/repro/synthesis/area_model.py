"""Calibrated structural area/frequency models.

Three models cover the paper's synthesis results:

* :class:`CoreSynthesisModel` — one core as a function of wavefronts and
  threads (Table 3).  Structural terms: ``1``, ``T`` (per-thread datapath:
  ALUs, GPR width, cache arbitration), ``W`` (per-wavefront control:
  scheduler entries, scoreboards, IPDOM stacks) and ``W*T`` (per-wavefront
  register/IPDOM storage whose width scales with the thread count) —
  exactly the cost structure section 6.2.1 describes.
* :class:`CacheSynthesisModel` — a 4-bank data cache as a function of the
  virtual-port count (Table 5).
* :class:`MulticoreSynthesisModel` — the full processor as a function of
  the core count, reported against a target FPGA device (Table 4).

Each model is calibrated by least squares against the published table and
records its calibration points so tests can check the fit quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np


# --------------------------------------------------------------------------- devices


@dataclass(frozen=True)
class FpgaDevice:
    """Capacity of a target FPGA (used to express usage as a percentage)."""

    name: str
    alms: int
    registers: int
    brams: int
    dsps: int


#: Intel Arria 10 GX 1150 (the paper's A10 board).
ARRIA10 = FpgaDevice(name="Arria 10", alms=427_200, registers=1_708_800, brams=2_713, dsps=1_518)
#: Intel Stratix 10 GX 2800 (the paper's S10 board), sized so the published
#: 32-core utilization matches.
STRATIX10 = FpgaDevice(name="Stratix 10", alms=1_030_000, registers=3_732_480, brams=11_721, dsps=5_760)


# --------------------------------------------------------------------------- Table 3


#: Published Table 3 design points: label -> (warps, threads, LUT, Regs, BRAM, fmax).
TABLE3_POINTS: dict[str, tuple[int, int, int, int, int, int]] = {
    "4W-4T": (4, 4, 21502, 32661, 131, 233),
    "2W-8T": (2, 8, 36361, 54438, 238, 224),
    "8W-2T": (8, 2, 16981, 24343, 77, 225),
    "4W-8T": (4, 8, 37857, 57614, 247, 224),
    "8W-4T": (8, 4, 24485, 34854, 139, 228),
}


def _fit(features: np.ndarray, values: Sequence[float]) -> np.ndarray:
    coefficients, *_ = np.linalg.lstsq(features, np.asarray(values, dtype=float), rcond=None)
    return coefficients


class CoreSynthesisModel:
    """Single-core resource model over (wavefronts, threads)."""

    def __init__(self):
        rows = list(TABLE3_POINTS.values())
        features = np.array([[1.0, t, w, w * t] for w, t, *_ in rows])
        self._lut = _fit(features, [row[2] for row in rows])
        self._regs = _fit(features, [row[3] for row in rows])
        self._bram = _fit(features, [row[4] for row in rows])
        self._fmax = _fit(features, [row[5] for row in rows])

    @staticmethod
    def _terms(num_warps: int, num_threads: int) -> np.ndarray:
        return np.array([1.0, num_threads, num_warps, num_warps * num_threads])

    def estimate(self, num_warps: int, num_threads: int) -> dict[str, float]:
        """Estimate one core's LUTs, registers, BRAMs and fmax (MHz)."""
        if num_warps < 1 or num_threads < 1:
            raise ValueError("warp and thread counts must be positive")
        terms = self._terms(num_warps, num_threads)
        return {
            "lut": float(terms @ self._lut),
            "regs": float(terms @ self._regs),
            "bram": float(terms @ self._bram),
            "fmax": float(terms @ self._fmax),
        }

    def table3(self) -> dict[str, dict[str, float]]:
        """Regenerate Table 3 (model estimates for the published design points)."""
        return {
            label: self.estimate(warps, threads)
            for label, (warps, threads, *_rest) in TABLE3_POINTS.items()
        }

    @staticmethod
    def published(label: str) -> dict[str, int]:
        warps, threads, lut, regs, bram, fmax = TABLE3_POINTS[label]
        return {"warps": warps, "threads": threads, "lut": lut, "regs": regs, "bram": bram, "fmax": fmax}


# --------------------------------------------------------------------------- Table 5


#: Published Table 5 points: virtual ports -> (LUT, Regs, BRAM, fmax) for a 4-bank D$.
TABLE5_POINTS: dict[int, tuple[int, int, int, int]] = {
    1: (10747, 13238, 72, 253),
    2: (11722, 13650, 72, 250),
    4: (13516, 14928, 72, 244),
}


class CacheSynthesisModel:
    """Data-cache resource model over the virtual-port count (4-bank cache)."""

    def __init__(self, num_banks: int = 4):
        self.num_banks = num_banks
        ports = np.array([[1.0, p] for p in TABLE5_POINTS])
        self._lut = _fit(ports, [v[0] for v in TABLE5_POINTS.values()])
        self._regs = _fit(ports, [v[1] for v in TABLE5_POINTS.values()])
        self._bram = float(next(iter(TABLE5_POINTS.values()))[2])
        self._fmax = _fit(ports, [v[3] for v in TABLE5_POINTS.values()])

    def estimate(self, num_ports: int, num_banks: int | None = None) -> dict[str, float]:
        """Estimate a multi-banked cache's resources for ``num_ports`` virtual ports."""
        if num_ports < 1:
            raise ValueError("port count must be positive")
        num_banks = num_banks or self.num_banks
        scale = num_banks / self.num_banks
        terms = np.array([1.0, num_ports])
        return {
            "lut": float(terms @ self._lut) * scale,
            "regs": float(terms @ self._regs) * scale,
            "bram": self._bram * scale,
            "fmax": float(terms @ self._fmax),
        }

    def table5(self) -> dict[int, dict[str, float]]:
        """Regenerate Table 5."""
        return {ports: self.estimate(ports) for ports in TABLE5_POINTS}

    @staticmethod
    def published(num_ports: int) -> dict[str, int]:
        lut, regs, bram, fmax = TABLE5_POINTS[num_ports]
        return {"lut": lut, "regs": regs, "bram": bram, "fmax": fmax}


# --------------------------------------------------------------------------- Table 4


#: Published Table 4 rows: cores -> (ALM %, Regs, BRAM %, DSP %, fmax, device name).
TABLE4_POINTS: dict[int, tuple[float, int, float, float, int, str]] = {
    1: (13, 78_000, 10, 2, 234, "A10"),
    2: (19, 111_000, 15, 5, 225, "A10"),
    4: (30, 176_000, 25, 9, 223, "A10"),
    8: (53, 305_000, 45, 19, 210, "A10"),
    16: (85, 525_000, 83, 38, 203, "A10"),
    32: (70, 1_057_000, 23, 20, 200, "S10"),
}


class MulticoreSynthesisModel:
    """Whole-processor resource model over the core count."""

    def __init__(self, device: FpgaDevice = ARRIA10):
        self.device = device
        a10_rows = [(cores, row) for cores, row in TABLE4_POINTS.items() if row[5] == "A10"]
        cores = np.array([[1.0, float(c)] for c, _ in a10_rows])
        # Convert published percentages to absolute resources on the A10 so the
        # fit is device independent.
        self._alms = _fit(cores, [row[0] / 100.0 * ARRIA10.alms for _, row in a10_rows])
        self._regs = _fit(cores, [row[1] for _, row in a10_rows])
        self._brams = _fit(cores, [row[2] / 100.0 * ARRIA10.brams for _, row in a10_rows])
        self._dsps = _fit(cores, [row[3] / 100.0 * ARRIA10.dsps for _, row in a10_rows])
        # Frequency degrades roughly with log2(cores) as the interconnect deepens.
        log_features = np.array([[1.0, float(np.log2(c))] for c, _ in a10_rows])
        self._fmax = _fit(log_features, [row[4] for _, row in a10_rows])

    def estimate(self, num_cores: int, device: FpgaDevice | None = None) -> dict[str, float]:
        """Estimate the full-processor resources for ``num_cores`` cores."""
        if num_cores < 1:
            raise ValueError("core count must be positive")
        device = device or self.device
        terms = np.array([1.0, float(num_cores)])
        log_terms = np.array([1.0, float(np.log2(num_cores)) if num_cores > 1 else 0.0])
        alms = float(terms @ self._alms)
        brams = float(terms @ self._brams)
        dsps = float(terms @ self._dsps)
        return {
            "alms": alms,
            "alm_pct": 100.0 * alms / device.alms,
            "regs": float(terms @ self._regs),
            "brams": brams,
            "bram_pct": 100.0 * brams / device.brams,
            "dsps": dsps,
            "dsp_pct": 100.0 * dsps / device.dsps,
            "fmax": float(log_terms @ self._fmax),
            "device": device.name,
        }

    def fits(self, num_cores: int, device: FpgaDevice | None = None) -> bool:
        """Whether ``num_cores`` cores fit on ``device`` (< 100% of every resource)."""
        estimate = self.estimate(num_cores, device)
        return (
            estimate["alm_pct"] <= 100.0
            and estimate["bram_pct"] <= 100.0
            and estimate["dsp_pct"] <= 100.0
        )

    def max_cores(self, device: FpgaDevice | None = None) -> int:
        """Largest power-of-two core count fitting on ``device``."""
        cores = 1
        while self.fits(cores * 2, device):
            cores *= 2
            if cores >= 256:
                break
        return cores

    def table4(self) -> dict[int, dict[str, float]]:
        """Regenerate Table 4 (A10 rows plus the 32-core S10 row)."""
        rows = {}
        for cores, row in TABLE4_POINTS.items():
            device = STRATIX10 if row[5] == "S10" else ARRIA10
            rows[cores] = self.estimate(cores, device)
        return rows

    @staticmethod
    def published(num_cores: int) -> dict[str, float]:
        alm_pct, regs, bram_pct, dsp_pct, fmax, device = TABLE4_POINTS[num_cores]
        return {
            "alm_pct": alm_pct,
            "regs": regs,
            "bram_pct": bram_pct,
            "dsp_pct": dsp_pct,
            "fmax": fmax,
            "device": device,
        }
