"""ASIC design-flow summary (paper section 6.6, Figures 16 and 17).

The paper synthesized an 8-wavefront / 4-thread single-core Vortex with a
15-nm educational cell library, obtaining a 46.8 mW design at 300 MHz.
Regenerating a GDS layout is out of scope for a Python reproduction; this
module provides the analytical stand-in: a power model calibrated to that
published design point (scaling with the structural area terms and the
clock frequency) plus the power-density distribution of Figure 17.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synthesis.area_model import CoreSynthesisModel

#: The published calibration point.
PUBLISHED_CONFIG = {"warps": 8, "threads": 4, "frequency_mhz": 300, "power_mw": 46.8}

#: Power-density distribution across the die (Figure 17), normalized.
POWER_FRACTIONS: dict[str, float] = {
    "register_file": 0.28,
    "alu_datapath": 0.24,
    "caches": 0.20,
    "wavefront_scheduler": 0.10,
    "fpu": 0.10,
    "clock_tree": 0.08,
}


@dataclass(frozen=True)
class AsicSummary:
    """Estimated ASIC metrics for one core configuration."""

    num_warps: int
    num_threads: int
    frequency_mhz: float
    power_mw: float
    area_score: float

    def breakdown(self) -> dict[str, float]:
        """Per-component power estimate (mW)."""
        return {component: fraction * self.power_mw for component, fraction in POWER_FRACTIONS.items()}


def estimate_asic(num_warps: int = 8, num_threads: int = 4, frequency_mhz: float = 300.0) -> AsicSummary:
    """Estimate power for a single-core configuration at ``frequency_mhz``.

    Dynamic power is assumed proportional to the switching capacitance
    (approximated by the structural LUT estimate) times the frequency, and
    calibrated so the published 8W-4T / 300 MHz point yields 46.8 mW.
    """
    model = CoreSynthesisModel()
    area = model.estimate(num_warps, num_threads)["lut"]
    reference_area = model.estimate(PUBLISHED_CONFIG["warps"], PUBLISHED_CONFIG["threads"])["lut"]
    scale = (area / reference_area) * (frequency_mhz / PUBLISHED_CONFIG["frequency_mhz"])
    power = PUBLISHED_CONFIG["power_mw"] * scale
    return AsicSummary(
        num_warps=num_warps,
        num_threads=num_threads,
        frequency_mhz=frequency_mhz,
        power_mw=power,
        area_score=area,
    )


def asic_power_breakdown(num_warps: int = 8, num_threads: int = 4) -> dict[str, float]:
    """Regenerate the Figure 17 power distribution for a configuration."""
    return estimate_asic(num_warps, num_threads).breakdown()
