"""Canonical serialization of job identity: config, spec and launch options.

The simulators are deterministic (vxlint VX001 enforces it), so a result is
fully determined by *what* a job computes: the program bytes, the complete
:class:`~repro.common.config.VortexConfig` payload, the resolved
:class:`~repro.runtime.registry.DriverSpec` and the
:class:`~repro.runtime.launch.LaunchOptions`.  This module defines the one
canonical byte-stable encoding of those records that
:meth:`~repro.engine.session.KernelJob.cache_key` and the service layer's
content-addressed result cache key on.

Canonicalization rules (the cache-key contract):

* **Config** — the full nested dataclass payload, every field, in a
  sorted-key JSON encoding.  Two configs constructed differently but equal
  field-by-field encode identically.
* **Spec** — the parsed spec with the engine *resolved*: ``engine=None``
  (the simulator's default) encodes as the registered default engine, so
  ``"simx"`` and ``"simx:engine=vector"`` are the same identity — they run
  the exact same simulation.  Legacy suffix strings (``"simx-scalar"``)
  normalize through :func:`~repro.runtime.registry.parse_driver_spec` first
  and therefore share the key of their canonical spelling.  Spec options
  are already sorted by :class:`DriverSpec` itself.
* **Options** — ``options=None`` encodes as the all-default
  :class:`LaunchOptions` record (they launch identically).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro.common.config import VortexConfig
from repro.runtime.launch import LaunchOptions
from repro.runtime.registry import DriverSpec, default_engine


def config_payload(config: VortexConfig) -> dict[str, Any]:
    """The full nested field payload of a :class:`VortexConfig` (JSON-ready)."""
    return dataclasses.asdict(config)


def spec_payload(spec: DriverSpec) -> dict[str, Any]:
    """A spec's identity payload with the engine resolved to its default.

    Resolution makes the payload describe the simulation that actually runs:
    ``DriverSpec("simx")`` and ``DriverSpec("simx", engine="vector")`` both
    select the vectorized engine and must key identically.
    """
    engine = spec.engine if spec.engine is not None else default_engine(spec.simulator)
    return {
        "simulator": spec.simulator,
        "engine": engine,
        "options": [list(pair) for pair in spec.options],
    }


def options_payload(options: LaunchOptions | None) -> dict[str, Any]:
    """A launch-option payload; ``None`` normalizes to the all-default record."""
    return dataclasses.asdict(options if options is not None else LaunchOptions())


def canonical_json(payload: Any) -> str:
    """The one byte-stable JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(payload: Any) -> str:
    """SHA-256 hex digest of a payload's canonical JSON encoding."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
