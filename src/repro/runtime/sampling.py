"""Sampled simulation: functional fast-forward + cycle-level interval replay.

Full cycle-level (SIMX) simulation is orders of magnitude slower than the
vectorized functional engine.  :class:`SampledRun` trades cycle-accuracy
for wall-clock the classic way: the kernel *executes* entirely on the fast
functional driver, architectural checkpoints are captured at fixed retired-
instruction sample points, and each checkpoint seeds a cold cycle-level
simulation (:meth:`~repro.core.processor.TimingProcessor.adopt_architectural`)
that is replayed for a bounded interval.  The per-interval IPC samples
extrapolate to a whole-run cycle estimate.

Accuracy caveats are the standard ones for checkpoint-sampled simulation:
every interval starts with cold caches, an empty scoreboard and idle
scheduler state (cold-start bias), and the functional fast-forward
serializes warps at scheduling-round granularity rather than modeling
inter-warp timing.  What the design *does* guarantee — and what
``benchmarks/checkpoint_smoke.py`` measures — is determinism: the same
sampled run produces bit-identical interval counters every time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.common.config import VortexConfig
from repro.runtime.device import VortexDevice
from repro.runtime.funcsim import FuncSimDriver
from repro.runtime.simx import SimxDriver

#: Default retired-warp-instruction distance between sample points.
DEFAULT_SAMPLE_PERIOD = 2_000
#: Default cycle budget replayed under the cycle-level model per sample.
DEFAULT_INTERVAL_CYCLES = 2_000


@dataclass
class SampledInterval:
    """One sample point replayed under the cycle-level model."""

    index: int
    #: Warp instructions the functional fast-forward had retired at capture.
    start_instructions: int
    #: Cycles simulated by the cycle-level replay of this interval.
    cycles: int
    #: Warp instructions retired during the replay.
    instructions: int
    #: Thread instructions retired during the replay.
    thread_instructions: int
    #: Full per-component counter payload of the replay.
    counters: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Thread-instructions per cycle within this interval."""
        return self.thread_instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per warp instruction within this interval."""
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclass
class SampledReport:
    """Outcome of one :class:`SampledRun`."""

    kernel: str
    intervals: list[SampledInterval]
    #: Total warp instructions of the complete functional execution.
    total_instructions: int
    #: Whether the functional run's verification passed.
    passed: bool
    wall_seconds: float

    @property
    def sampled_instructions(self) -> int:
        """Warp instructions covered by cycle-level replay."""
        return sum(interval.instructions for interval in self.intervals)

    @property
    def estimated_cycles(self) -> int:
        """Whole-run cycle estimate: total instructions times the sampled CPI.

        The CPI is aggregated over every interval that retired instructions
        (cycles-weighted, i.e. total sampled cycles over total sampled
        instructions) — the plain SMARTS-style extrapolation.
        """
        cycles = sum(i.cycles for i in self.intervals if i.instructions)
        instructions = self.sampled_instructions
        if not instructions:
            return 0
        return round(self.total_instructions * cycles / instructions)

    def to_payload(self) -> dict[str, Any]:
        """A JSON-ready payload (consumed by ``benchmarks/checkpoint_smoke.py``)."""
        return {
            "kernel": self.kernel,
            "passed": self.passed,
            "total_instructions": self.total_instructions,
            "sampled_instructions": self.sampled_instructions,
            "estimated_cycles": self.estimated_cycles,
            "wall_seconds": self.wall_seconds,
            "intervals": [
                {
                    "index": interval.index,
                    "start_instructions": interval.start_instructions,
                    "cycles": interval.cycles,
                    "instructions": interval.instructions,
                    "thread_instructions": interval.thread_instructions,
                }
                for interval in self.intervals
            ],
        }


class SampledRun:
    """Run one kernel with functional fast-forward and sampled SIMX replay.

    ``sample_period`` is the retired-warp-instruction distance between
    architectural checkpoints (the fast-forward pauses at scheduling-round
    boundaries, so the actual capture points land on the first boundary at
    or after each multiple of the period); ``interval_cycles`` bounds each
    cycle-level replay; ``max_samples`` caps how many checkpoints are
    captured (the fast-forward then runs uninterrupted to completion).
    """

    def __init__(
        self,
        kernel: str,
        config: VortexConfig | None = None,
        size: int | None = None,
        *,
        sample_period: int = DEFAULT_SAMPLE_PERIOD,
        interval_cycles: int = DEFAULT_INTERVAL_CYCLES,
        max_samples: int = 8,
    ):
        if sample_period <= 0:
            raise ValueError("sample_period must be positive")
        if interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        self.kernel = kernel
        self.config = config or VortexConfig()
        self.size = size
        self.sample_period = sample_period
        self.interval_cycles = interval_cycles
        self.max_samples = max_samples

    def run(self) -> SampledReport:
        """Execute the sampled run; see the class docstring for mechanics."""
        from repro.kernels import KERNELS

        start = time.perf_counter()
        kernel = KERNELS[self.kernel]()
        size = self.size if self.size is not None else kernel.default_size()

        # Functional fast-forward, capturing architectural checkpoints.
        device = VortexDevice(self.config, driver="funcsim")
        driver = device.driver
        assert isinstance(driver, FuncSimDriver)
        program = kernel.build_program()
        device.upload_program(program)
        context = kernel.setup(device, size)
        # Reset explicitly so the entry-point checkpoint (sample 0) already
        # has warp 0 spawned; the fast-forward then always *resumes*.
        driver.processor.reset(program.entry)
        checkpoints: list[tuple[int, dict]] = [(0, driver.processor.snapshot())]
        while True:
            stop = self.sample_period if len(checkpoints) < self.max_samples else None
            report = driver.run(program.entry, stop_after_instructions=stop, resume=True)
            if driver.done:
                break
            checkpoints.append((report.instructions, driver.processor.snapshot()))
        passed = kernel.verify(device, context)

        # Cycle-level replay of each captured sample point.
        intervals: list[SampledInterval] = []
        for index, (start_instructions, snapshot) in enumerate(checkpoints):
            simx = SimxDriver(self.config)
            simx.processor.adopt_architectural(snapshot)
            simx.processor.run(None, stop_cycle=self.interval_cycles)
            intervals.append(
                SampledInterval(
                    index=index,
                    start_instructions=start_instructions,
                    cycles=simx.processor.cycle,
                    instructions=simx.processor.total_instructions,
                    thread_instructions=simx.processor.total_thread_instructions,
                    counters=simx.processor.counters(),
                )
            )

        return SampledReport(
            kernel=self.kernel,
            intervals=intervals,
            total_instructions=report.instructions,
            passed=passed,
            wall_seconds=time.perf_counter() - start,
        )
