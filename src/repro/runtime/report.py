"""Execution reports returned by the simulation drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExecutionReport:
    """Summary of one kernel execution.

    ``cycles`` is zero for the functional driver (it does not model time);
    ``counters`` carries the per-component performance counters of the
    driver that produced the report.
    """

    driver: str
    cycles: int
    instructions: int
    thread_instructions: int
    counters: dict[str, dict[str, int]] = field(default_factory=dict)
    #: host wall-clock seconds the simulation took (0.0 when not measured).
    wall_seconds: float = 0.0
    #: execution engine variant behind the driver ("scalar", "vector", "").
    engine: str = ""

    @property
    def instructions_per_second(self) -> float:
        """Simulated warp-instructions per host wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.instructions / self.wall_seconds

    @property
    def thread_instructions_per_second(self) -> float:
        """Simulated thread-instructions per host wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.thread_instructions / self.wall_seconds

    @property
    def ipc(self) -> float:
        """Thread-instructions per cycle (the paper's IPC metric)."""
        if self.cycles == 0:
            return 0.0
        return self.thread_instructions / self.cycles

    @property
    def warp_ipc(self) -> float:
        """Warp-instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    def counter(self, component: str, name: str) -> int:
        """Read one counter, defaulting to 0."""
        return self.counters.get(component, {}).get(name, 0)

    def to_payload(self) -> dict[str, Any]:
        """A JSON-ready payload that round-trips losslessly.

        ``from_payload(report.to_payload())`` reconstructs a report equal to
        the original field-for-field — the symmetry the service layer's
        content-addressed result cache relies on for bit-identical replay.
        """
        return {
            "driver": self.driver,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "thread_instructions": self.thread_instructions,
            "counters": {
                component: dict(counters) for component, counters in self.counters.items()
            },
            "wall_seconds": self.wall_seconds,
            "engine": self.engine,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> ExecutionReport:
        """Reconstruct a report from :meth:`to_payload` output."""
        return cls(
            driver=payload["driver"],
            cycles=payload["cycles"],
            instructions=payload["instructions"],
            thread_instructions=payload["thread_instructions"],
            counters={
                component: dict(counters)
                for component, counters in payload.get("counters", {}).items()
            },
            wall_seconds=payload.get("wall_seconds", 0.0),
            engine=payload.get("engine", ""),
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        rate = ""
        if self.wall_seconds > 0.0:
            rate = f" wall={self.wall_seconds:.3f}s rate={self.instructions_per_second:,.0f} instr/s"
        if self.cycles:
            return (
                f"[{self.driver}] cycles={self.cycles} instrs={self.instructions} "
                f"IPC={self.ipc:.3f}{rate}"
            )
        return f"[{self.driver}] instrs={self.instructions}{rate}"
