"""Device-memory allocation and typed device buffers.

The command processor exposes the FPGA's local memory to the host; the
runtime carves it up with a simple bump allocator (allocation is never
freed individually, matching how the OpenCL runtime stages whole kernels).
``DeviceBuffer`` adds numpy-typed read/write convenience on top of raw
device addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.bitutils import align_up

#: Default base address of the device heap (above the kernel image region).
DEFAULT_HEAP_BASE = 0x1000_0000
#: Default heap size (256 MB of the board's local memory).
DEFAULT_HEAP_SIZE = 0x1000_0000


class AllocationError(Exception):
    """Raised when the device heap is exhausted."""


class BufferAllocator:
    """Bump allocator over the device heap."""

    def __init__(self, base: int = DEFAULT_HEAP_BASE, size: int = DEFAULT_HEAP_SIZE):
        self.base = base
        self.size = size
        self._next = base

    def allocate(self, size: int, alignment: int = 64) -> int:
        """Reserve ``size`` bytes and return the device address."""
        if size < 0:
            raise AllocationError(f"negative allocation size: {size}")
        address = align_up(self._next, alignment)
        if address + size > self.base + self.size:
            raise AllocationError(
                f"device heap exhausted: requested {size} bytes, "
                f"{self.base + self.size - self._next} available"
            )
        self._next = address + size
        return address

    @property
    def used(self) -> int:
        """Bytes currently allocated (including alignment padding)."""
        return self._next - self.base

    def reset(self) -> None:
        """Release everything (used between benchmark runs)."""
        self._next = self.base

    # -- checkpoint/restore --------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize the heap geometry and the bump pointer."""
        return {"base": self.base, "size": self.size, "next": self._next}

    def restore(self, payload: dict) -> None:
        """Restore from a :meth:`snapshot` payload."""
        self.base = payload["base"]
        self.size = payload["size"]
        self._next = payload["next"]


@dataclass
class DeviceBuffer:
    """A typed window into device memory."""

    device: object  # VortexDevice; kept loose to avoid an import cycle
    address: int
    size: int

    def write(self, data) -> None:
        """Write bytes or a numpy array into the buffer."""
        raw = data.tobytes() if isinstance(data, np.ndarray) else bytes(data)
        if len(raw) > self.size:
            raise AllocationError(
                f"write of {len(raw)} bytes exceeds buffer size {self.size}"
            )
        self.device.memory.write_bytes(self.address, raw)

    def read(self, dtype=np.uint8, count: int | None = None) -> np.ndarray:
        """Read the buffer back as a numpy array of ``dtype``."""
        itemsize = np.dtype(dtype).itemsize
        if count is None:
            count = self.size // itemsize
        raw = self.device.memory.read_bytes(self.address, count * itemsize)
        return np.frombuffer(raw, dtype=dtype).copy()

    def write_words(self, words) -> None:
        """Write a sequence of 32-bit words."""
        self.device.memory.load_words(self.address, list(words))
