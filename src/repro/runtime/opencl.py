"""A minimal OpenCL-style host API (the POCL runtime substitution).

The paper runs OpenCL applications through a modified POCL runtime whose
work-item loop is lowered onto the ``pocl_spawn`` device runtime.  This
module provides the same programming style for the reproduction: a
``Context`` owns a device, a ``Program`` exposes named kernels, and a
``KernelLauncher`` takes buffer/scalar arguments and an ND-range and turns
them into the argument block + ``spawn_tasks`` launch the device-side
runtime expects.

.. code-block:: python

    ctx = Context(driver="simx")
    program = Program(ctx, ["vecadd"])
    kernel = program.kernel("vecadd")
    a = ctx.buffer_from(np.arange(256, dtype=np.uint32))
    b = ctx.buffer_from(np.ones(256, dtype=np.uint32))
    c = ctx.buffer(256 * 4)
    kernel.set_args(a, b, c)
    report = kernel.enqueue(global_size=256)
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.common.config import VortexConfig
from repro.runtime.buffer import DeviceBuffer
from repro.runtime.device import VortexDevice
from repro.runtime.launch import LaunchOptions
from repro.runtime.registry import DriverSpec
from repro.runtime.report import ExecutionReport


class Context:
    """An OpenCL-context lookalike owning one Vortex device.

    ``driver`` is a driver spec — a canonical spec string such as
    ``"simx"`` or ``"funcsim:engine=scalar"``, or a :class:`DriverSpec`.
    """

    def __init__(
        self,
        config: VortexConfig | None = None,
        driver: str | DriverSpec = "simx",
    ):
        self.device = VortexDevice(config=config, driver=driver)

    def buffer(self, size: int) -> DeviceBuffer:
        """Allocate an uninitialized device buffer of ``size`` bytes."""
        return self.device.alloc(size)

    def buffer_from(self, array: np.ndarray) -> DeviceBuffer:
        """Allocate a device buffer initialized from a numpy array."""
        return self.device.alloc_array(array)


class Program:
    """A collection of named kernels built for one context.

    Kernels are looked up in the :mod:`repro.kernels` registry — the
    reproduction's stand-in for compiling OpenCL C through POCL.
    """

    def __init__(self, context: Context, kernel_names: Iterable[str]):
        from repro.kernels import KERNELS  # local import to avoid a cycle

        self.context = context
        self._kernels: dict[str, object] = {}
        for name in kernel_names:
            if name not in KERNELS:
                raise KeyError(f"unknown kernel {name!r}; available: {sorted(KERNELS)}")
            self._kernels[name] = KERNELS[name]()

    def kernel(self, name: str) -> KernelLauncher:
        """Return a launcher for kernel ``name``."""
        return KernelLauncher(self.context, self._kernels[name])

    @property
    def kernel_names(self) -> list[str]:
        return sorted(self._kernels)


class KernelLauncher:
    """Binds arguments and launches one kernel over an ND-range."""

    def __init__(self, context: Context, kernel):
        self.context = context
        self.kernel = kernel
        self._args: list[int | DeviceBuffer] = []

    def set_args(self, *args: int | float | DeviceBuffer) -> KernelLauncher:
        """Set the kernel arguments (buffers become device addresses)."""
        self._args = list(args)
        return self

    def enqueue(
        self, global_size: int, options: LaunchOptions | None = None
    ) -> ExecutionReport:
        """Launch the kernel over ``global_size`` work items.

        ``options`` (a :class:`LaunchOptions`) bounds the launch uniformly
        on whichever driver backs the context's device.
        """
        device = self.context.device
        program = self.kernel.build_program()
        device.upload_program(program)
        words = [int(global_size)]
        for arg in self._args:
            words.append(self._encode_arg(arg))
        device.write_kernel_args(words)
        # No explicit entry: options.entry_pc (when set) outranks the
        # uploaded program's entry, like every other launch path.
        return device.launch(options=options)

    @staticmethod
    def _encode_arg(arg: int | float | DeviceBuffer) -> int:
        if isinstance(arg, DeviceBuffer):
            return arg.address
        if isinstance(arg, float):
            from repro.common.bitutils import float_to_bits

            return float_to_bits(arg)
        return int(arg)
