"""Spec-based driver registry: one structured way to name a simulator.

The runtime historically selected backends by string mutation —
``"simx-scalar"``-style suffixes whose arithmetic was re-implemented by the
device facade, the session layer and every test that toggled an engine.
This module replaces that with structured data:

* :class:`DriverSpec` — a parsed ``(simulator, engine, options)`` triple.
  The canonical spec-string syntax is ``"<simulator>"`` or
  ``"<simulator>:key=value[,key=value...]"``; the engine rides in the
  options as ``engine=<name>`` (``"simx:engine=scalar"``).
* :func:`parse_driver_spec` — string / :class:`DriverSpec` → validated
  :class:`DriverSpec`.  The legacy ``"simx-scalar"`` / ``"funcsim-scalar"``
  suffix strings are still accepted (normalized with a
  :class:`DeprecationWarning`).
* :func:`register_driver` — the hook third-party simulators use to plug
  into :class:`~repro.runtime.device.VortexDevice` and the session layer.
* :func:`create_driver` — spec → constructed driver instance.

The built-in SIMX (cycle-level) and FUNCSIM (functional) drivers register
themselves at import time, each with a ``vector`` (default) and ``scalar``
engine.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from collections.abc import Callable, Iterable
from typing import Any

from repro.common.config import VortexConfig
from repro.mem.memory import MainMemory


@dataclass(frozen=True)
class DriverSpec:
    """A structured driver selection: which simulator, which engine, extras.

    ``engine=None`` means "the simulator's default engine"; it is resolved
    at construction time by :func:`create_driver`.  ``options`` carries any
    additional ``key=value`` pairs of the spec string (forwarded verbatim to
    the driver factory), stored as a sorted tuple of pairs so specs stay
    hashable and usable as dataclass defaults.
    """

    simulator: str
    engine: str | None = None
    options: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", tuple(sorted(self.options)))

    @property
    def options_dict(self) -> dict[str, str]:
        return dict(self.options)

    @property
    def driver_name(self) -> str:
        """The canonical spec string (round-trips through :func:`parse_driver_spec`)."""
        pairs = []
        if self.engine is not None:
            pairs.append(("engine", self.engine))
        pairs.extend(self.options)
        if not pairs:
            return self.simulator
        return self.simulator + ":" + ",".join(f"{k}={v}" for k, v in sorted(pairs))

    def with_engine(self, engine: str | None) -> DriverSpec:
        """Return a copy selecting ``engine`` (validated when registered)."""
        spec = replace(self, engine=engine)
        entry = _REGISTRY.get(self.simulator)
        if entry is not None and engine is not None:
            _validate_engine(entry, engine)
        return spec

    def describe(self) -> str:
        return self.driver_name


class UnknownDriverOptionError(ValueError):
    """A driver spec carried an option its simulator does not declare.

    Raised while *parsing* the spec — long before a factory call could
    silently swallow (or crash on) the stray keyword — so a typo like
    ``"simx:trce=vcd"`` fails loudly, listing the valid options.
    """

    def __init__(self, simulator: str, option: str, valid: tuple[str, ...]):
        self.simulator = simulator
        self.option = option
        self.valid = valid
        super().__init__(
            f"unknown option {option!r} for simulator {simulator!r}; "
            f"valid options: {sorted(valid)}"
        )


@dataclass(frozen=True)
class DriverEntry:
    """One registered simulator: factory plus its engine and option axes.

    ``options`` is the declared set of spec option keys (``engine`` is
    always implicit); ``None`` is the third-party escape hatch — a driver
    registered without a declaration accepts any option, preserving the
    pass-through-verbatim contract for factories the registry cannot
    introspect.
    """

    simulator: str
    factory: Callable[..., object]
    engines: tuple[str, ...]
    default_engine: str
    options: tuple[str, ...] | None = None


_REGISTRY: dict[str, DriverEntry] = {}

#: Legacy suffix strings accepted for back-compat, mapped to their specs.
_LEGACY_ALIASES: dict[str, DriverSpec] = {}


def register_driver(
    simulator: str,
    factory: Callable[..., object],
    engines: tuple[str, ...] = ("vector", "scalar"),
    default_engine: str | None = None,
    options: tuple[str, ...] | None = None,
) -> DriverEntry:
    """Register a simulator under ``simulator``.

    ``factory`` is called as ``factory(config, memory, engine=<engine>,
    **options)`` and must return a driver implementing the
    :class:`~repro.engine.protocol.ExecutionEngine` protocol.  ``options``
    declares the spec option keys the factory accepts — unknown keys then
    raise :class:`UnknownDriverOptionError` at parse time; ``None`` (the
    default) skips the check for factories the registry cannot introspect.
    Returns the registry entry (useful for introspection in tests).
    """
    if not simulator or any(ch in simulator for ch in ":,=- "):
        raise ValueError(
            f"invalid simulator name {simulator!r}: must be non-empty and free of ':,=- '"
        )
    engines = tuple(engines)
    if not engines:
        raise ValueError("a driver needs at least one engine")
    default = default_engine if default_engine is not None else engines[0]
    if default not in engines:
        raise ValueError(f"default engine {default!r} is not in {engines}")
    entry = DriverEntry(
        simulator=simulator,
        factory=factory,
        engines=engines,
        default_engine=default,
        options=None if options is None else tuple(options),
    )
    _REGISTRY[simulator] = entry
    return entry


def available_simulators() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def registered_engines(simulator: str) -> tuple[str, ...]:
    return _registry_entry(simulator).engines


def default_engine(simulator: str) -> str:
    """The engine a spec with ``engine=None`` resolves to for ``simulator``."""
    return _registry_entry(simulator).default_engine


def _registry_entry(simulator: str) -> DriverEntry:
    try:
        return _REGISTRY[simulator]
    except KeyError:
        raise ValueError(
            f"unknown simulator {simulator!r}; available: {sorted(_REGISTRY)}"
        ) from None


def _validate_engine(entry: DriverEntry, engine: str) -> None:
    if engine not in entry.engines:
        raise ValueError(
            f"unknown engine {engine!r} for simulator {entry.simulator!r}; "
            f"available: {sorted(entry.engines)}"
        )


def _validate_options(entry: DriverEntry, keys: Iterable[str]) -> None:
    if entry.options is None:
        return
    for key in keys:
        if key not in entry.options:
            raise UnknownDriverOptionError(entry.simulator, key, entry.options)


def parse_driver_spec(spec: str | DriverSpec) -> DriverSpec:
    """Parse and validate a driver spec string (or pass a spec through).

    Accepts the canonical ``"sim"`` / ``"sim:engine=scalar,key=value"``
    syntax and the deprecated legacy suffix strings (``"simx-scalar"``,
    ``"funcsim-scalar"``), which normalize to their structured equivalents
    with a :class:`DeprecationWarning`.
    """
    if isinstance(spec, DriverSpec):
        entry = _registry_entry(spec.simulator)
        if spec.engine is not None:
            _validate_engine(entry, spec.engine)
        _validate_options(entry, spec.options_dict)
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"driver spec must be a string or DriverSpec, got {type(spec).__name__}")

    legacy = _LEGACY_ALIASES.get(spec)
    if legacy is not None:
        warnings.warn(
            f"driver string {spec!r} is deprecated; use {legacy.driver_name!r}",
            DeprecationWarning,
            stacklevel=2,
        )
        return legacy

    simulator, _, option_text = spec.partition(":")
    entry = _registry_entry(simulator)
    engine: str | None = None
    options = {}
    if option_text:
        for item in option_text.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key or not value:
                raise ValueError(
                    f"malformed driver spec {spec!r}: expected "
                    f"'{simulator}:key=value[,key=value...]', got segment {item!r}"
                )
            if key in options or (key == "engine" and engine is not None):
                raise ValueError(f"duplicate option {key!r} in driver spec {spec!r}")
            if key == "engine":
                engine = value
            else:
                options[key] = value
    if engine is not None:
        _validate_engine(entry, engine)
    _validate_options(entry, options)
    return DriverSpec(simulator=simulator, engine=engine, options=tuple(options.items()))


def create_driver(
    spec: str | DriverSpec,
    config: VortexConfig | None = None,
    memory: MainMemory | None = None,
) -> Any:
    """Construct the driver a spec describes.

    ``engine=None`` resolves to the simulator's registered default; extra
    spec options are forwarded to the factory as keyword arguments.
    """
    spec = parse_driver_spec(spec)
    entry = _registry_entry(spec.simulator)
    engine = spec.engine if spec.engine is not None else entry.default_engine
    _validate_engine(entry, engine)
    return entry.factory(config, memory, engine=engine, **spec.options_dict)


def _register_builtin_drivers() -> None:
    # Imported here (not at module top) so the registry stays importable
    # from the driver modules themselves without a cycle.
    from repro.runtime.funcsim import FuncSimDriver
    from repro.runtime.simx import SimxDriver

    register_driver(
        "simx",
        SimxDriver,
        engines=("vector", "scalar"),
        default_engine="vector",
        options=("fastforward", "requests", "trace", "trace_file", "trace_channels"),
    )
    register_driver(
        "funcsim",
        FuncSimDriver,
        engines=("vector", "scalar"),
        default_engine="vector",
        options=(),
    )
    _LEGACY_ALIASES["simx-scalar"] = DriverSpec("simx", engine="scalar")
    _LEGACY_ALIASES["funcsim-scalar"] = DriverSpec("funcsim", engine="scalar")


_register_builtin_drivers()
