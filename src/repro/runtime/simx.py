"""The SIMX driver: cycle-level simulation (paper section 4.5).

SIMX is the driver the paper uses for design-space exploration beyond what
fits on the FPGA (e.g. the Figure 21 memory-scaling study); in this
reproduction it is also the driver behind every timing result (IPC,
bank-utilization and texture-acceleration experiments).
"""

from __future__ import annotations

import time

from repro.common.config import VortexConfig
from repro.core.processor import TimingProcessor
from repro.mem.memory import MainMemory
from repro.runtime.checkpoint import make_envelope, open_envelope
from repro.runtime.launch import LaunchOptions, resolve_options
from repro.runtime.report import ExecutionReport
from repro.trace.bus import TraceBus, TraceSink
from repro.trace.sinks import CsvSink, JsonlSink, MemorySink, VcdSink

#: Default cycle budget when neither ``options`` nor the legacy keyword set one.
DEFAULT_MAX_CYCLES = 20_000_000

#: ``trace=`` spec-option values and the sinks they build (``"mem"`` keeps
#: the events in ``driver.trace_sink.events`` for in-process analysis).
TRACE_MODES = ("off", "vcd", "csv", "jsonl", "mem")


def _build_trace_sink(mode: str, trace_file: str | None) -> TraceSink:
    """Build the sink for a ``trace=`` mode (file formats need ``trace_file``)."""
    if mode == "mem":
        if trace_file is not None:
            raise ValueError("trace=mem keeps events in memory; drop trace_file")
        return MemorySink()
    if trace_file is None:
        raise ValueError(f"trace={mode} writes a file; add trace_file=<path> to the spec")
    if mode == "vcd":
        return VcdSink(trace_file)
    if mode == "csv":
        return CsvSink(trace_file)
    return JsonlSink(trace_file)


def _parse_toggle(name: str, value: object, on_word: str, off_word: str) -> bool:
    """Parse a driver-spec toggle: a bool, or its on/off spelling as a string."""
    if isinstance(value, bool):
        return value
    if value == on_word:
        return True
    if value == off_word:
        return False
    raise ValueError(f"unknown {name} value {value!r} (use {on_word!r} or {off_word!r})")


class SimxDriver:
    """Runs kernels on the cycle-level multi-core processor.

    ``engine`` picks the execution engine inside the timing cores:

    * ``"vector"`` (default) — issued warp instructions execute through the
      vectorized emulator's compiled whole-warp lane plans,
    * ``"scalar"`` — the per-thread reference emulation loop.

    The timing model (scheduler, scoreboard, latencies, caches, MSHRs) is
    identical either way, and so are the reported cycles, IPC and every
    performance counter — ``tests/test_timing_differential.py`` holds both
    engines to that; only host wall-clock differs.

    Two further host-speed knobs share that bit-exactness contract (both
    reachable from driver specs, e.g. ``"simx:fastforward=off"``):

    * ``fastforward`` — ``"on"`` (default) jumps over provably idle cycle
      runs (event-driven fast-forward); ``"off"`` ticks every cycle,
    * ``requests`` — ``"batched"`` (default) resolves warp memory traffic
      through the per-bank batch path; ``"perlane"`` issues one Python
      ``send`` per lane per retry.

    Observability rides on three more spec options (see ``repro.trace``):

    * ``trace`` — ``"off"`` (default), or a sink format: ``"vcd"``,
      ``"csv"``, ``"jsonl"`` (all need ``trace_file``) or ``"mem"``
      (events collected on ``driver.trace_sink.events``),
    * ``trace_file`` — output path for the file formats,
    * ``trace_channels`` — ``"+"``-separated channel filter
      (``trace_channels=scheduler+dcache``); default is every channel.

    Tracing composes with both host-speed knobs: the fast-forward emits
    synthesized skip/replay events, so a traced ``fastforward=on`` run
    produces the same expanded event stream as ``fastforward=off``.
    """

    name = "simx"

    def __init__(
        self,
        config: VortexConfig | None = None,
        memory: MainMemory | None = None,
        engine: str = "vector",
        fastforward: object = "on",
        requests: str = "batched",
        trace: str = "off",
        trace_file: str | None = None,
        trace_channels: str | None = None,
    ):
        self.config = config or VortexConfig()
        self.memory = memory if memory is not None else MainMemory()
        self.engine = engine
        self.fastforward = _parse_toggle("fastforward", fastforward, "on", "off")
        self.batch_requests = _parse_toggle("requests", requests, "batched", "perlane")
        if trace not in TRACE_MODES:
            raise ValueError(f"unknown trace mode {trace!r} (use one of {TRACE_MODES})")
        self.trace_sink: TraceSink | None = None
        self.trace_bus: TraceBus | None = None
        if trace != "off":
            self.trace_sink = _build_trace_sink(trace, trace_file)
            channels = tuple(trace_channels.split("+")) if trace_channels else None
            self.trace_bus = TraceBus([self.trace_sink], channels=channels)
        elif trace_file is not None or trace_channels is not None:
            raise ValueError("trace_file/trace_channels require a trace= mode")
        self.processor = TimingProcessor(
            self.config,
            self.memory,
            engine=engine,
            fast_forward=self.fastforward,
            batch_requests=self.batch_requests,
            trace=self.trace_bus,
        )

    def invalidate_decode_caches(self) -> None:
        """Drop all cached decodes/plans (a new program image was loaded)."""
        for core in self.processor.cores:
            core.invalidate_caches()

    # -- checkpoint/restore ------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when the current launch has run to completion (and drained)."""
        return self.processor.done

    def checkpoint(self) -> dict:
        """A versioned envelope holding the full simulation state.

        Taken at a cycle boundary, so every in-flight cache/DRAM transaction
        is at a well-defined point; a restored run continues cycle- and
        counter-identically.
        """
        return make_envelope(
            kind=self.name,
            config=self.config,
            state={"processor": self.processor.snapshot()},
        )

    def restore(self, envelope: dict) -> None:
        """Restore a :meth:`checkpoint` envelope (validates format + config)."""
        state = open_envelope(envelope, kind=self.name, config=self.config)
        self.processor.restore(state["processor"])

    def run(
        self,
        entry_pc: int | None,
        options: LaunchOptions | None = None,
        *,
        max_cycles: int | None = None,
        stop_cycle: int | None = None,
        resume: bool = False,
    ) -> ExecutionReport:
        """Execute the kernel at ``entry_pc`` to completion.

        ``options`` is the uniform :class:`LaunchOptions` record; the legacy
        ``max_cycles`` keyword is still honoured (and wins over the
        corresponding ``options`` field).  ``max_instructions`` bounds the
        retired warp-instruction count; both budgets raise the typed
        :class:`~repro.core.emulator.SimulationLimitExceeded`.

        ``stop_cycle`` pauses the simulation at that cycle boundary;
        ``resume=True`` continues a paused (or checkpoint-restored) launch
        instead of resetting.  The cycle counter and every performance
        counter carry across pauses, so a chunked run reports exactly what
        the uninterrupted run would.
        """
        options = resolve_options(options, max_cycles=max_cycles)
        start = time.perf_counter()
        cycles = self.processor.run(
            None if resume else entry_pc,
            max_cycles=options.max_cycles or DEFAULT_MAX_CYCLES,
            max_instructions=options.max_instructions,
            stop_cycle=stop_cycle,
        )
        wall_seconds = time.perf_counter() - start
        if self.trace_bus is not None and self.processor.done:
            # Flush file sinks once the launch has fully drained (VCD encodes
            # on close); safe across chunked runs — close is idempotent.
            self.trace_bus.close()
        return ExecutionReport(
            driver=self.name,
            cycles=cycles,
            instructions=self.processor.total_instructions,
            thread_instructions=self.processor.total_thread_instructions,
            counters=self.processor.counters(),
            wall_seconds=wall_seconds,
            engine=f"timing-{self.engine}",
        )
