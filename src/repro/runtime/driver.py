"""The command processor (AFU) and PCIe driver model.

On the FPGA platform the host talks to Vortex through OPAE: it DMAs data
into a shared staging area, the AFU copies it into the board's local
memory, MMIO registers start the kernel, and results travel back the same
way (paper sections 4.1 and 5.1).  This module models that protocol: MMIO
registers, bounded-bandwidth DMA transfers with byte accounting, and the
launch/complete handshake.  The simulation drivers sit underneath it, so an
application using :class:`VortexDevice` exercises the same host/device
protocol regardless of which simulator executes the kernel.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from enum import IntEnum

from repro.common.perf import PerfCounters
from repro.mem.memory import MainMemory
from repro.runtime.launch import LaunchOptions


class DriverError(Exception):
    """Raised on protocol violations (bad MMIO sequence, transfer overflow…)."""


class Mmio(IntEnum):
    """MMIO register offsets exposed by the AFU."""

    STATUS = 0x00
    CONTROL = 0x08
    KERNEL_PC = 0x10
    ARG_ADDRESS = 0x18
    DMA_HOST_ADDR = 0x20
    DMA_DEVICE_ADDR = 0x28
    DMA_SIZE = 0x30
    CYCLE_COUNT = 0x38
    INSTR_COUNT = 0x40


class Status(IntEnum):
    """Values of the STATUS register."""

    IDLE = 0
    RUNNING = 1
    DONE = 2
    ERROR = 3


#: Effective PCIe gen3 x8 payload bandwidth used for transfer-time estimates.
PCIE_BYTES_PER_SECOND = 6.0e9


@dataclass
class TransferRecord:
    """Accounting for one DMA transfer."""

    direction: str  # "h2d" | "d2h"
    device_address: int
    size: int


class CommandProcessor:
    """The AFU: MMIO registers, DMA engine, kernel launch handshake."""

    def __init__(self, memory: MainMemory):
        self.memory = memory
        self._registers: dict[int, int] = {int(reg): 0 for reg in Mmio}
        self._registers[int(Mmio.STATUS)] = int(Status.IDLE)
        self.transfers: list = []
        self.perf = PerfCounters("afu")

    # -- MMIO -----------------------------------------------------------------------

    def mmio_read(self, offset: int) -> int:
        """Read an MMIO register."""
        if offset not in self._registers:
            raise DriverError(f"MMIO read from unknown register {offset:#x}")
        return self._registers[offset]

    def mmio_write(self, offset: int, value: int) -> None:
        """Write an MMIO register."""
        if offset not in self._registers:
            raise DriverError(f"MMIO write to unknown register {offset:#x}")
        self._registers[offset] = value

    @property
    def status(self) -> Status:
        return Status(self._registers[int(Mmio.STATUS)])

    # -- DMA -------------------------------------------------------------------------

    def dma_host_to_device(self, device_address: int, data: bytes) -> None:
        """Copy host data into device memory (the CCI-P staging path)."""
        if self.status == Status.RUNNING:
            raise DriverError("DMA attempted while a kernel is running")
        self.memory.write_bytes(device_address, data)
        self.transfers.append(
            TransferRecord(direction="h2d", device_address=device_address, size=len(data))
        )
        self.perf.incr("h2d_bytes", len(data))

    def dma_device_to_host(self, device_address: int, size: int) -> bytes:
        """Copy device memory back to the host."""
        if self.status == Status.RUNNING:
            raise DriverError("DMA attempted while a kernel is running")
        data = self.memory.read_bytes(device_address, size)
        self.transfers.append(
            TransferRecord(direction="d2h", device_address=device_address, size=size)
        )
        self.perf.incr("d2h_bytes", size)
        return data

    def estimated_transfer_seconds(self) -> float:
        """Wall-clock estimate of all DMA traffic at PCIe gen3 x8 rates."""
        total = self.perf.get("h2d_bytes") + self.perf.get("d2h_bytes")
        return total / PCIE_BYTES_PER_SECOND

    # -- kernel launch -----------------------------------------------------------------

    def launch(
        self,
        sim_driver,
        entry_pc: int,
        arg_address: int | None = None,
        options: LaunchOptions | None = None,
    ):
        """Run a kernel through ``sim_driver`` and update the MMIO state.

        ``options`` (a :class:`LaunchOptions`) is forwarded to the driver's
        ``run`` untouched; its ``arg_address`` field is published through the
        ``ARG_ADDRESS`` MMIO register when the explicit argument is absent.
        """
        if arg_address is None and options is not None:
            arg_address = options.arg_address
        self.mmio_write(int(Mmio.KERNEL_PC), entry_pc)
        if arg_address is not None:
            self.mmio_write(int(Mmio.ARG_ADDRESS), arg_address)
        self.mmio_write(int(Mmio.STATUS), int(Status.RUNNING))
        try:
            report = self._call_driver_run(sim_driver, entry_pc, options)
        except Exception:
            self.mmio_write(int(Mmio.STATUS), int(Status.ERROR))
            raise
        self.mmio_write(int(Mmio.STATUS), int(Status.DONE))
        self.mmio_write(int(Mmio.CYCLE_COUNT), report.cycles)
        self.mmio_write(int(Mmio.INSTR_COUNT), report.instructions)
        self.perf.incr("launches")
        return report

    @staticmethod
    def _call_driver_run(sim_driver, entry_pc: int, options: LaunchOptions | None):
        """Invoke ``sim_driver.run``, tolerating the pre-options protocol.

        Instance-constructed third-party drivers may still implement a
        pre-options signature — ``run(entry_pc)`` or
        ``run(entry_pc, max_cycles=...)`` — so ``options`` is only passed
        to drivers whose ``run`` declares an ``options`` parameter (or
        ``**kwargs``); binding positionally could hand a ``LaunchOptions``
        to a legacy budget parameter.  Dropping options that carry real
        launch parameters raises instead of silently ignoring them.
        """
        parameter = inspect.Parameter
        try:
            parameters = inspect.signature(sim_driver.run).parameters.values()
        except (TypeError, ValueError):  # no introspectable signature: new protocol
            return sim_driver.run(entry_pc, options=options)
        accepts_options = any(
            (
                p.name == "options"
                and p.kind in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY)
            )
            or p.kind is parameter.VAR_KEYWORD
            for p in parameters
        )
        if accepts_options:
            return sim_driver.run(entry_pc, options=options)
        if options is not None and options != LaunchOptions():
            raise DriverError(
                f"driver {type(sim_driver).__name__} does not accept LaunchOptions, "
                f"but launch options were given: {options}"
            )
        return sim_driver.run(entry_pc)
