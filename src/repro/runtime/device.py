"""``VortexDevice`` — the public host-side API.

A device bundles device memory, the command processor (AFU), a buffer
allocator and one of the two simulation drivers behind the single facade
application code and the benchmark harness use:

.. code-block:: python

    device = VortexDevice(config, driver="simx")
    device.upload_program(program)
    buffer = device.alloc(1024)
    buffer.write(np.arange(256, dtype=np.uint32))
    report = device.launch(program.entry)
    result = buffer.read(np.uint32)
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.common.config import VortexConfig
from repro.isa.builder import Program
from repro.mem.memory import MainMemory
from repro.runtime.buffer import BufferAllocator, DeviceBuffer
from repro.runtime.driver import CommandProcessor
from repro.runtime.funcsim import FuncSimDriver
from repro.runtime.report import ExecutionReport
from repro.runtime.simx import SimxDriver

#: Fixed device address holding the pointer to the kernel argument block.
KERNEL_ARG_PTR_ADDR = 0x0FFF_F000

_DRIVERS = {
    "simx": SimxDriver,
    "simx-scalar": lambda config, memory: SimxDriver(config, memory, engine="scalar"),
    "funcsim": FuncSimDriver,
    "funcsim-scalar": lambda config, memory: FuncSimDriver(config, memory, engine="scalar"),
}


class VortexDevice:
    """One Vortex device instance (memory + AFU + simulator driver)."""

    def __init__(
        self,
        config: Optional[VortexConfig] = None,
        driver: Union[str, object] = "simx",
    ):
        self.config = config or VortexConfig()
        self.memory = MainMemory()
        if isinstance(driver, str):
            try:
                driver_cls = _DRIVERS[driver]
            except KeyError:
                raise ValueError(
                    f"unknown driver {driver!r}; available: {sorted(_DRIVERS)}"
                ) from None
            self.driver = driver_cls(self.config, self.memory)
        else:
            self.driver = driver
        self.afu = CommandProcessor(self.memory)
        self.allocator = BufferAllocator()
        self.program: Optional[Program] = None

    # -- program management ----------------------------------------------------------

    def upload_program(self, program: Program) -> None:
        """Copy a kernel image into device memory through the AFU.

        Loading a new image invalidates the driver's decode caches so a
        program loaded over a previous one at the same base is never
        executed from stale decodes.
        """
        self.afu.dma_host_to_device(program.base, program.to_bytes())
        invalidate = getattr(self.driver, "invalidate_decode_caches", None)
        if invalidate is not None:
            invalidate()
        self.program = program

    # -- buffers -----------------------------------------------------------------------

    def alloc(self, size: int, alignment: int = 64) -> DeviceBuffer:
        """Allocate a device buffer."""
        address = self.allocator.allocate(size, alignment)
        return DeviceBuffer(device=self, address=address, size=size)

    def alloc_array(self, array: np.ndarray) -> DeviceBuffer:
        """Allocate a buffer sized for ``array`` and copy it in."""
        buffer = self.alloc(array.nbytes)
        buffer.write(array)
        return buffer

    def write_kernel_args(self, words) -> int:
        """Write the kernel argument block and publish its address.

        The argument block is placed in a dedicated buffer; its device
        address is stored at :data:`KERNEL_ARG_PTR_ADDR`, where the
        device-side runtime's startup code reads it.
        """
        words = list(words)
        block = self.alloc(max(len(words), 1) * 4)
        block.write_words(words)
        self.memory.write_word(KERNEL_ARG_PTR_ADDR, block.address)
        return block.address

    # -- execution ------------------------------------------------------------------------

    def launch(self, entry_pc: Optional[int] = None, arg_address: Optional[int] = None) -> ExecutionReport:
        """Launch the uploaded kernel and wait for completion."""
        if entry_pc is None:
            if self.program is None:
                raise ValueError("no program uploaded and no entry PC given")
            entry_pc = self.program.entry
        return self.afu.launch(self.driver, entry_pc, arg_address)

    # -- convenience ------------------------------------------------------------------------

    def read_words(self, address: int, count: int):
        """Read raw words from device memory (host-side debugging)."""
        return self.memory.read_words(address, count)

    @property
    def driver_name(self) -> str:
        return getattr(self.driver, "name", type(self.driver).__name__)
