"""``VortexDevice`` — the public host-side API.

A device bundles device memory, the command processor (AFU), a buffer
allocator and one simulation driver behind the single facade application
code and the benchmark harness use:

.. code-block:: python

    device = VortexDevice(config, driver="simx")               # default engine
    device = VortexDevice(config, driver="simx:engine=scalar") # spec string
    device = VortexDevice(config, driver=DriverSpec("funcsim", engine="scalar"))
    device.upload_program(program)
    buffer = device.alloc(1024)
    buffer.write(np.arange(256, dtype=np.uint32))
    report = device.launch(program.entry)
    result = buffer.read(np.uint32)

Driver selection goes through the spec registry
(:mod:`repro.runtime.registry`): strings are parsed into a
:class:`DriverSpec`, unknown simulators/engines raise with the available
options listed, and the legacy ``"simx-scalar"`` / ``"funcsim-scalar"``
suffix strings normalize with a :class:`DeprecationWarning`.  Launch
parameters are the uniform :class:`~repro.runtime.launch.LaunchOptions`
record every driver accepts.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.common.config import VortexConfig
from repro.isa.builder import Program
from repro.mem.memory import MainMemory
from repro.runtime.buffer import BufferAllocator, DeviceBuffer
from repro.runtime.checkpoint import make_envelope, open_envelope
from repro.runtime.driver import CommandProcessor
from repro.runtime.launch import LaunchOptions
from repro.runtime.registry import DriverSpec, create_driver, parse_driver_spec
from repro.runtime.report import ExecutionReport

#: Fixed device address holding the pointer to the kernel argument block.
KERNEL_ARG_PTR_ADDR = 0x0FFF_F000


class VortexDevice:
    """One Vortex device instance (memory + AFU + simulator driver)."""

    def __init__(
        self,
        config: VortexConfig | None = None,
        driver: str | DriverSpec | object = "simx",
    ):
        self.config = config or VortexConfig()
        if isinstance(driver, (str, DriverSpec)):
            self.driver_spec = parse_driver_spec(driver)
            self.memory = MainMemory()
            self.driver = create_driver(self.driver_spec, self.config, self.memory)
        else:
            # Pre-constructed driver instance: adopt its memory so the AFU
            # DMAs into the same pages the simulation reads — a driver built
            # with its own MainMemory used to silently simulate on memory
            # the host never wrote.
            self.driver = driver
            driver_memory = getattr(driver, "memory", None)
            self.memory = driver_memory if driver_memory is not None else MainMemory()
            self.driver_spec = DriverSpec(
                simulator=getattr(driver, "name", type(driver).__name__),
                engine=getattr(driver, "engine", None),
            )
        self.afu = CommandProcessor(self.memory)
        self.allocator = BufferAllocator()
        self.program: Program | None = None

    # -- program management ----------------------------------------------------------

    def upload_program(self, program: Program) -> None:
        """Copy a kernel image into device memory through the AFU.

        Loading a new image invalidates the driver's decode caches so a
        program loaded over a previous one at the same base is never
        executed from stale decodes.
        """
        self.afu.dma_host_to_device(program.base, program.to_bytes())
        invalidate = getattr(self.driver, "invalidate_decode_caches", None)
        if invalidate is not None:
            invalidate()
        self.program = program

    # -- buffers -----------------------------------------------------------------------

    def alloc(self, size: int, alignment: int = 64) -> DeviceBuffer:
        """Allocate a device buffer."""
        address = self.allocator.allocate(size, alignment)
        return DeviceBuffer(device=self, address=address, size=size)

    def alloc_array(self, array: np.ndarray) -> DeviceBuffer:
        """Allocate a buffer sized for ``array`` and copy it in."""
        buffer = self.alloc(array.nbytes)
        buffer.write(array)
        return buffer

    def write_kernel_args(self, words) -> int:
        """Write the kernel argument block and publish its address.

        The argument block is placed in a dedicated buffer; its device
        address is stored at :data:`KERNEL_ARG_PTR_ADDR`, where the
        device-side runtime's startup code reads it.
        """
        words = list(words)
        block = self.alloc(max(len(words), 1) * 4)
        block.write_words(words)
        self.memory.write_word(KERNEL_ARG_PTR_ADDR, block.address)
        return block.address

    # -- execution ------------------------------------------------------------------------

    def launch(
        self,
        entry_pc: int | None = None,
        arg_address: int | None = None,
        options: LaunchOptions | None = None,
    ) -> ExecutionReport:
        """Launch the uploaded kernel and wait for completion.

        The entry point resolves in precedence order: the explicit
        ``entry_pc`` argument, then ``options.entry_pc``, then the uploaded
        program's entry.  ``options`` travels through the AFU to the
        driver's ``run`` unchanged, so cycle/instruction budgets behave
        identically on every backend.
        """
        options = options if options is not None else LaunchOptions()
        if arg_address is not None:
            options = replace(options, arg_address=arg_address)
        if entry_pc is None:
            entry_pc = options.entry_pc
        if entry_pc is None:
            if self.program is None:
                raise ValueError("no program uploaded and no entry PC given")
            entry_pc = self.program.entry
        return self.afu.launch(self.driver, entry_pc, options=options)

    # -- checkpoint/restore -----------------------------------------------------------------

    def checkpoint(self) -> dict:
        """A versioned envelope holding the complete device state.

        Bundles the driver's own checkpoint (memory image + simulator
        state), the buffer allocator's bump pointer and the uploaded
        program's metadata.  The envelope is plain picklable data: it can
        cross process boundaries or be written to disk, and
        :meth:`restore` validates its format version and config fingerprint
        before touching any state.
        """
        driver_checkpoint = getattr(self.driver, "checkpoint", None)
        if driver_checkpoint is None:
            raise TypeError(
                f"driver {self.driver_name!r} does not support checkpointing"
            )
        program = self.program
        return make_envelope(
            kind="device",
            config=self.config,
            state={
                "driver": driver_checkpoint(),
                "allocator": self.allocator.snapshot(),
                "program": None
                if program is None
                else {
                    "base": program.base,
                    "words": list(program.words),
                    "symbols": dict(program.symbols),
                    "entry": program.entry,
                },
            },
        )

    def restore(self, envelope: dict) -> None:
        """Restore a :meth:`checkpoint` envelope taken from an identically
        configured device.

        The program image is *not* re-uploaded: its bytes are already part
        of the restored memory image, and the driver's restore invalidates
        every decode/plan cache.  Only the :class:`Program` metadata (entry
        point, symbols) is rebuilt so later ``launch()`` calls resolve.
        """
        state = open_envelope(envelope, kind="device", config=self.config)
        driver_restore = getattr(self.driver, "restore", None)
        if driver_restore is None:
            raise TypeError(f"driver {self.driver_name!r} does not support restore")
        driver_restore(state["driver"])
        self.allocator.restore(state["allocator"])
        program = state["program"]
        self.program = (
            None
            if program is None
            else Program(
                base=program["base"],
                words=list(program["words"]),
                symbols=dict(program["symbols"]),
                entry=program["entry"],
            )
        )

    def launch_resumable(
        self,
        entry_pc: int | None = None,
        options: LaunchOptions | None = None,
        *,
        checkpoint_every: int,
        checkpoint_sink=None,
        resume: bool = False,
    ) -> ExecutionReport:
        """Launch (or resume) the kernel, checkpointing every N units.

        ``checkpoint_every`` is measured in the driver's natural progress
        unit — cycles on the cycle-level driver, instructions on the
        functional one.  After each paused chunk ``checkpoint_sink`` (if
        given) receives the :meth:`checkpoint` envelope.  The run is
        bit-identical to an uninterrupted :meth:`launch`: pauses land on
        cycle/scheduling-round boundaries and all state carries across.
        """
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if entry_pc is None:
            entry_pc = (options.entry_pc if options is not None else None) or (
                self.program.entry if self.program is not None else None
            )
        if entry_pc is None and not resume:
            raise ValueError("no program uploaded and no entry PC given")
        is_timing = hasattr(self.driver.processor, "cycle")
        report = None
        while True:
            if is_timing:
                stop = self.driver.processor.cycle + checkpoint_every
                report = self.driver.run(
                    entry_pc, options=options, stop_cycle=stop, resume=resume
                )
            else:
                report = self.driver.run(
                    entry_pc,
                    options=options,
                    stop_after_instructions=checkpoint_every,
                    resume=resume,
                )
            resume = True
            if self.driver.done:
                return report
            if checkpoint_sink is not None:
                checkpoint_sink(self.checkpoint())

    # -- convenience ------------------------------------------------------------------------

    def read_words(self, address: int, count: int):
        """Read raw words from device memory (host-side debugging)."""
        return self.memory.read_words(address, count)

    @property
    def driver_name(self) -> str:
        """The canonical spec string of this device's driver."""
        return self.driver_spec.driver_name
