"""Structured launch parameters shared by every driver.

Before this module each driver's ``run()`` grew its own keyword set
(``max_cycles`` on SIMX, ``max_instructions`` on FUNCSIM) and
``VortexDevice.launch`` another (``entry_pc``, ``arg_address``), so callers
had to know which backend they were talking to.  :class:`LaunchOptions` is
the one record all of them accept:

* ``max_cycles`` — cycle budget; enforced by cycle-level drivers and
  ignored by functional ones (they do not model time),
* ``max_instructions`` — warp-instruction budget; enforced by both driver
  families,
* ``arg_address`` — kernel argument-block address published through the
  AFU's ``ARG_ADDRESS`` MMIO register,
* ``entry_pc`` — overrides the uploaded program's entry point.

Exceeding a budget raises the usual typed
:class:`~repro.core.emulator.SimulationLimitExceeded`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class LaunchOptions:
    """Uniform launch parameters for ``VortexDevice.launch`` and driver ``run``."""

    max_cycles: int | None = None
    max_instructions: int | None = None
    arg_address: int | None = None
    entry_pc: int | None = None

    def __post_init__(self) -> None:
        for name in ("max_cycles", "max_instructions"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be at least 1, got {value}")

    def merged(self, **overrides: Any) -> LaunchOptions:
        """Return a copy with the non-``None`` overrides applied."""
        updates = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **updates) if updates else self


def resolve_options(options: LaunchOptions | None, **legacy: Any) -> LaunchOptions:
    """Normalize a driver ``run()``'s inputs into one :class:`LaunchOptions`.

    ``legacy`` carries the driver's historical keyword arguments
    (``max_cycles=...`` / ``max_instructions=...``); an explicitly passed
    legacy keyword wins over the corresponding ``options`` field so existing
    call sites keep their exact meaning.
    """
    if options is not None and not isinstance(options, LaunchOptions):
        # Catch pre-redesign positional budgets (run(pc, 500_000)) with a
        # clear error instead of an AttributeError deep in merged().
        raise TypeError(
            f"options must be a LaunchOptions, got {type(options).__name__}; "
            "pass budgets as LaunchOptions(max_cycles=..., max_instructions=...) "
            "or via the legacy keyword argument"
        )
    base = options if options is not None else LaunchOptions()
    return base.merged(**legacy)
