"""Host-side runtime: the driver stack of Figure 9 and the simulation stack
of Figure 8.

* :mod:`repro.runtime.driver` — the command processor (AFU) model: MMIO
  registers, DMA transfers between host and device memory, kernel launch.
* :mod:`repro.runtime.buffer` — device memory allocation and typed buffers.
* :mod:`repro.runtime.simx` / :mod:`repro.runtime.funcsim` — the two
  simulation drivers (cycle-level and functional) behind a common API,
  mirroring the paper's SIMX and RTLSIM/ASE drivers.
* :mod:`repro.runtime.device` — ``VortexDevice``, the public facade
  applications use (upload a program, allocate buffers, launch, read back).
* :mod:`repro.runtime.registry` — the spec-based driver registry
  (:class:`DriverSpec`, ``register_driver``, ``parse_driver_spec``).
* :mod:`repro.runtime.launch` — :class:`LaunchOptions`, the uniform launch
  parameter record every driver accepts.
* :mod:`repro.runtime.opencl` — a minimal OpenCL-style host API layered on
  top of ``VortexDevice`` (the POCL runtime substitution).
"""

from repro.runtime.buffer import BufferAllocator, DeviceBuffer
from repro.runtime.device import VortexDevice, ExecutionReport
from repro.runtime.driver import CommandProcessor, DriverError
from repro.runtime.funcsim import FuncSimDriver
from repro.runtime.launch import LaunchOptions
from repro.runtime.registry import (
    DriverSpec,
    available_simulators,
    create_driver,
    parse_driver_spec,
    register_driver,
)
from repro.runtime.simx import SimxDriver
from repro.runtime.opencl import Context, Program as ClProgram, KernelLauncher

__all__ = [
    "BufferAllocator",
    "DeviceBuffer",
    "VortexDevice",
    "ExecutionReport",
    "CommandProcessor",
    "DriverError",
    "FuncSimDriver",
    "SimxDriver",
    "DriverSpec",
    "LaunchOptions",
    "available_simulators",
    "create_driver",
    "parse_driver_spec",
    "register_driver",
    "Context",
    "ClProgram",
    "KernelLauncher",
]
