"""The functional simulation driver (instruction-level, no timing).

Mirrors the role of the paper's RTLSIM/ASE functional paths: fast
execution used to validate kernels and produce reference outputs that the
cycle-level SIMX driver is checked against.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import VortexConfig
from repro.core.processor import Processor
from repro.mem.memory import MainMemory
from repro.runtime.report import ExecutionReport


class FuncSimDriver:
    """Runs kernels on the functional multi-core processor."""

    name = "funcsim"

    def __init__(self, config: Optional[VortexConfig] = None, memory: Optional[MainMemory] = None):
        self.config = config or VortexConfig()
        self.memory = memory if memory is not None else MainMemory()
        self.processor = Processor(self.config, self.memory)

    def run(self, entry_pc: int, max_instructions: int = 50_000_000) -> ExecutionReport:
        """Execute the kernel at ``entry_pc`` to completion."""
        instructions = self.processor.run(entry_pc, max_instructions=max_instructions)
        thread_instructions = sum(
            core.perf.get("thread_instructions") for core in self.processor.cores
        )
        return ExecutionReport(
            driver=self.name,
            cycles=0,
            instructions=instructions,
            thread_instructions=thread_instructions,
            counters=self.processor.counters(),
        )
