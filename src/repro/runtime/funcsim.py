"""The functional simulation driver (instruction-level, no timing).

Mirrors the role of the paper's RTLSIM/ASE functional paths: fast
execution used to validate kernels and produce reference outputs that the
cycle-level SIMX driver is checked against.

Two execution engines are available behind the same driver API:

* ``"vector"`` (default) — the lane-parallel engine of
  :mod:`repro.engine`: each warp instruction executes over all active
  lanes as a handful of numpy operations.
* ``"scalar"`` — the reference per-thread emulation loop.

Both produce bit-identical architectural results (registers, memory,
retired-instruction counts); the differential test suite holds them to
that invariant.
"""

from __future__ import annotations

import time

from repro.common.config import VortexConfig
from repro.core.processor import Processor
from repro.engine.vector_core import VectorProcessor
from repro.mem.memory import MainMemory
from repro.runtime.checkpoint import make_envelope, open_envelope
from repro.runtime.launch import LaunchOptions, resolve_options
from repro.runtime.report import ExecutionReport

_ENGINES = {
    "vector": VectorProcessor,
    "scalar": Processor,
}

#: Default instruction budget when neither ``options`` nor the legacy keyword set one.
DEFAULT_MAX_INSTRUCTIONS = 50_000_000


class FuncSimDriver:
    """Runs kernels on the functional multi-core processor."""

    name = "funcsim"

    def __init__(
        self,
        config: VortexConfig | None = None,
        memory: MainMemory | None = None,
        engine: str = "vector",
    ):
        try:
            processor_cls = _ENGINES[engine]
        except KeyError:
            raise ValueError(
                f"unknown funcsim engine {engine!r}; available: {sorted(_ENGINES)}"
            ) from None
        self.engine = engine
        self.config = config or VortexConfig()
        self.memory = memory if memory is not None else MainMemory()
        self.processor = processor_cls(self.config, self.memory)
        #: Instructions executed by the current (possibly paused) launch.
        self._run_instructions = 0

    def invalidate_decode_caches(self) -> None:
        """Drop all cached decodes/plans (a new program image was loaded)."""
        for core in self.processor.cores:
            core.emulator.invalidate_decode_cache()

    # -- checkpoint/restore ------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when the current launch has run to completion."""
        return self.processor.done

    def checkpoint(self) -> dict:
        """A versioned envelope holding the full simulation state."""
        return make_envelope(
            kind=self.name,
            config=self.config,
            state={
                "processor": self.processor.snapshot(),
                "run_instructions": self._run_instructions,
            },
        )

    def restore(self, envelope: dict) -> None:
        """Restore a :meth:`checkpoint` envelope (validates format + config)."""
        state = open_envelope(envelope, kind=self.name, config=self.config)
        self.processor.restore(state["processor"])
        self._run_instructions = state["run_instructions"]

    def run(
        self,
        entry_pc: int | None,
        options: LaunchOptions | None = None,
        *,
        max_instructions: int | None = None,
        stop_after_instructions: int | None = None,
        resume: bool = False,
    ) -> ExecutionReport:
        """Execute the kernel at ``entry_pc`` to completion.

        ``options`` is the uniform :class:`LaunchOptions` record; the legacy
        ``max_instructions`` keyword is still honoured (and wins over the
        corresponding ``options`` field).  ``max_cycles`` is ignored here —
        the functional driver does not model time.

        ``stop_after_instructions`` pauses the launch at a scheduling-round
        boundary once that many instructions have executed; ``resume=True``
        continues a paused (or checkpoint-restored) launch instead of
        resetting, and the report's instruction count stays cumulative over
        the whole logical launch — bit-identical to an uninterrupted run.
        """
        options = resolve_options(options, max_instructions=max_instructions)
        start = time.perf_counter()
        if not resume:
            self._run_instructions = 0
        executed = self.processor.run(
            None if resume else entry_pc,
            max_instructions=options.max_instructions or DEFAULT_MAX_INSTRUCTIONS,
            stop_after_instructions=stop_after_instructions,
        )
        self._run_instructions += executed
        wall_seconds = time.perf_counter() - start
        thread_instructions = sum(
            core.perf.get("thread_instructions") for core in self.processor.cores
        )
        return ExecutionReport(
            driver=self.name,
            cycles=0,
            instructions=self._run_instructions,
            thread_instructions=thread_instructions,
            counters=self.processor.counters(),
            wall_seconds=wall_seconds,
            engine=self.engine,
        )
