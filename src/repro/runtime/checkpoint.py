"""Versioned checkpoint envelopes for bit-exact simulator state capture.

Every simulator layer implements the :class:`Snapshotable` protocol —
``snapshot()`` returns a payload of plain Python data (dicts, lists, ints,
bytes), ``restore(payload)`` rebuilds the exact state.  The payloads
compose bottom-up (MSHR → bank → cache → memory subsystem → processor →
driver → device) and the acceptance property holds end to end: a restored
simulation continues counter-identically to one that never paused.

This module owns the *envelope* wrapped around the top-level payloads: a
format version and a config fingerprint (the content digest of the full
:class:`~repro.common.config.VortexConfig` payload), so a checkpoint can
never be restored across format revisions or into a device built with a
different configuration — both are silent state corruption otherwise.
Envelopes are plain dicts: picklable for cross-process hand-off and
stable enough to write to disk.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.common.config import VortexConfig

#: Version of the envelope + payload layout.  Bump on any incompatible
#: change to what ``snapshot()`` emits anywhere in the layer stack.
#: Format 2: the wavefront scheduler snapshot gained the cache-locality
#: policy state (``last_lines``/``current_line``/``hazard_mask``).
SNAPSHOT_FORMAT = 2


@runtime_checkable
class Snapshotable(Protocol):
    """The checkpoint/restore protocol every simulator layer implements."""

    def snapshot(self) -> dict[str, Any]: ...

    def restore(self, payload: dict[str, Any]) -> None: ...


class SnapshotError(ValueError):
    """Base class for checkpoint envelope failures."""


class SnapshotVersionError(SnapshotError):
    """The envelope was written by an incompatible snapshot format."""


class SnapshotConfigMismatch(SnapshotError):
    """The envelope's config fingerprint does not match the restoring device."""


class SnapshotKindError(SnapshotError):
    """The envelope holds a different kind of state than the restorer expects."""


def config_fingerprint(config: VortexConfig) -> str:
    """Content digest of the full config payload (the envelope's identity)."""
    # Imported lazily: serialize pulls in the driver registry, whose driver
    # modules import this module for the envelope helpers.
    from repro.runtime.serialize import config_payload, content_digest

    return content_digest(config_payload(config))


def make_envelope(*, kind: str, config: VortexConfig, state: dict[str, Any]) -> dict[str, Any]:
    """Wrap a snapshot payload in the versioned, fingerprinted envelope.

    ``kind`` names what the payload is a snapshot *of* (``"funcsim"``,
    ``"simx"``, ``"device"``) so a payload can never be fed to the wrong
    restorer.
    """
    return {
        "format": SNAPSHOT_FORMAT,
        "kind": kind,
        "config_fingerprint": config_fingerprint(config),
        "state": state,
    }


def open_envelope(
    envelope: dict[str, Any], *, kind: str, config: VortexConfig
) -> dict[str, Any]:
    """Validate an envelope and return its state payload.

    Raises :class:`SnapshotVersionError` on a format mismatch,
    :class:`SnapshotKindError` when the payload kind differs and
    :class:`SnapshotConfigMismatch` when the restoring configuration's
    fingerprint differs from the one the checkpoint was taken under.
    """
    version = envelope.get("format")
    if version != SNAPSHOT_FORMAT:
        raise SnapshotVersionError(
            f"checkpoint format {version!r} is not supported "
            f"(this build reads format {SNAPSHOT_FORMAT})"
        )
    if envelope.get("kind") != kind:
        raise SnapshotKindError(
            f"checkpoint holds {envelope.get('kind')!r} state, expected {kind!r}"
        )
    fingerprint = config_fingerprint(config)
    if envelope.get("config_fingerprint") != fingerprint:
        raise SnapshotConfigMismatch(
            "checkpoint was taken under a different device configuration "
            f"({envelope.get('config_fingerprint')!r} != {fingerprint!r})"
        )
    state = envelope["state"]
    assert isinstance(state, dict)
    return state
