"""One cache bank: tag store, data-store timing, MSHR and response scheduling.

A bank is single-ported in hardware; the enclosing cache's bank selector
guarantees that at most one cache line is accessed per bank per cycle (the
virtual multi-porting optimization lets several *requests* share that one
line access).  The bank therefore only needs to model tag lookups, LRU
replacement, its MSHR, and the hit-latency delay between acceptance and
response.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.cache.mshr import Mshr
from repro.common.config import CacheConfig
from repro.common.perf import PerfCounters, hot_path


@dataclass
class BankRequest:
    """A request accepted by a bank."""

    address: int
    is_write: bool
    tag: Any
    accept_cycle: int = 0


@dataclass
class _ScheduledResponse:
    ready_cycle: int
    request: BankRequest
    hit: bool


class CacheBank:
    """Tag/data arrays plus MSHR for one bank."""

    #: Counter schema (vxlint VX003).
    COUNTERS = frozenset({"evictions", "fills"})

    #: Construction-time geometry; rebuilt by ``__init__`` (vxlint VX007).
    SNAPSHOT_EXCLUDED = frozenset({"bank_id", "config", "num_sets", "num_ways"})

    def __init__(self, bank_id: int, config: CacheConfig):
        self.bank_id = bank_id
        self.config = config
        self.num_sets = config.num_sets
        self.num_ways = config.num_ways
        # tags[set] maps tag -> last-use counter (LRU bookkeeping).
        self._tags: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._use_counter = 0
        self.mshr = Mshr(config.mshr_size)
        self._pending: list[_ScheduledResponse] = []
        self.perf = PerfCounters(f"bank{bank_id}")

    # -- address helpers -----------------------------------------------------------

    def _set_index(self, line_address: int) -> int:
        return (line_address // self.config.num_banks) % self.num_sets

    def _tag_of(self, line_address: int) -> int:
        return line_address // (self.num_sets * self.config.num_banks)

    # -- tag store ------------------------------------------------------------------

    @hot_path
    def probe(self, line_address: int) -> bool:
        """Tag lookup without side effects (runs on every request attempt).

        Keep the mapping in sync with :meth:`_set_index`/:meth:`_tag_of` —
        this is those two computations inlined (the helper calls are
        measurable at the retry loop's call rate).
        """
        relative = line_address // self.config.num_banks
        return relative // self.num_sets in self._tags[relative % self.num_sets]

    @hot_path
    def touch(self, line_address: int) -> None:
        """Update LRU state for a hit."""
        set_index = self._set_index(line_address)
        tag = self._tag_of(line_address)
        self._use_counter += 1
        self._tags[set_index][tag] = self._use_counter

    def install(self, line_address: int) -> int | None:
        """Install a line, evicting the LRU way if the set is full.

        Returns the evicted line address, or ``None`` when no eviction
        happened.
        """
        set_index = self._set_index(line_address)
        tag = self._tag_of(line_address)
        ways = self._tags[set_index]
        self._use_counter += 1
        evicted = None
        if tag not in ways and len(ways) >= self.num_ways:
            victim_tag = min(ways, key=ways.get)
            del ways[victim_tag]
            evicted = (
                victim_tag * self.num_sets * self.config.num_banks
                + (set_index * self.config.num_banks)
                + self.bank_id
            )
            self.perf.incr("evictions")
        ways[tag] = self._use_counter
        return evicted

    # -- checkpoint/restore ----------------------------------------------------------

    def _encode_request(
        self, request: BankRequest, encode_tag: Callable[[Any], Any]
    ) -> dict:
        return {
            "address": request.address,
            "is_write": request.is_write,
            "tag": encode_tag(request.tag),
            "accept_cycle": request.accept_cycle,
        }

    def _decode_request(self, data: dict, decode_tag: Callable[[Any], Any]) -> BankRequest:
        return BankRequest(
            address=data["address"],
            is_write=data["is_write"],
            tag=decode_tag(data["tag"]),
            accept_cycle=data["accept_cycle"],
        )

    def snapshot(self, encode_tag: Callable[[Any], Any]) -> dict:
        """Serialize tag store, LRU state, MSHR and scheduled responses."""
        return {
            "tags": [dict(ways) for ways in self._tags],
            "use_counter": self._use_counter,
            "mshr": self.mshr.snapshot(
                lambda request: self._encode_request(request, encode_tag)
            ),
            "pending": [
                (entry.ready_cycle, self._encode_request(entry.request, encode_tag), entry.hit)
                for entry in self._pending
            ],
            "perf": self.perf.snapshot(),
        }

    def restore(self, payload: dict, decode_tag: Callable[[Any], Any]) -> None:
        """Restore bank state from a :meth:`snapshot` payload."""
        self._tags = [dict(ways) for ways in payload["tags"]]
        self._use_counter = payload["use_counter"]
        self.mshr.restore(
            payload["mshr"], lambda data: self._decode_request(data, decode_tag)
        )
        self._pending = [
            _ScheduledResponse(
                ready_cycle=ready_cycle,
                request=self._decode_request(data, decode_tag),
                hit=hit,
            )
            for ready_cycle, data, hit in payload["pending"]
        ]
        self.perf.restore(payload["perf"])

    # -- request handling ------------------------------------------------------------

    def schedule_response(self, request: BankRequest, cycle: int, hit: bool) -> None:
        """Queue a response ``hit_latency`` cycles in the future."""
        self._pending.append(
            _ScheduledResponse(ready_cycle=cycle + self.config.hit_latency, request=request, hit=hit)
        )

    def next_response_cycle(self) -> int | None:
        """Earliest cycle a scheduled response completes (``None`` when idle).

        The fast-forward path uses this to prove no response can appear
        during a skipped window; outstanding *misses* need no entry here
        because their fills are visible as lower-level (cache/DRAM) events.
        """
        if not self._pending:
            return None
        return min(entry.ready_cycle for entry in self._pending)

    def collect_responses(self, cycle: int) -> list[tuple[BankRequest, bool]]:
        """Return (request, hit) pairs whose responses complete at ``cycle``."""
        if not self._pending:
            return []
        ready = [entry for entry in self._pending if entry.ready_cycle <= cycle]
        if ready:
            self._pending = [entry for entry in self._pending if entry.ready_cycle > cycle]
        return [(entry.request, entry.hit) for entry in ready]

    def fill(self, line_address: int, cycle: int) -> list[BankRequest]:
        """Handle a returning memory fill: install the line, replay the MSHR.

        Returns the replayed requests (their responses are scheduled by the
        caller so that replay shares the normal response path).
        """
        self.install(line_address)
        waiting = self.mshr.release(line_address)
        self.perf.incr("fills")
        return waiting

    @property
    def pending_responses(self) -> int:
        return len(self._pending)

    @property
    def busy(self) -> bool:
        """True while the bank still owes responses or has outstanding misses."""
        return bool(self._pending) or len(self.mshr) > 0
