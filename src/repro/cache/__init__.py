"""High-bandwidth non-blocking cache subsystem (paper section 4.3).

The cache is multi-banked: the bank selector routes incoming core requests
to banks by address, resolving bank conflicts; each bank has its own MSHR
and a four-stage pipeline (schedule, tag access, data access, response);
virtual multi-porting lets one bank accept several requests per cycle when
they fall on the same cache line; the bank merger coalesces outgoing
responses.  Misses are forwarded to the next level (another cache or the
DRAM model), and the deadlock-avoidance rules of the paper (early-full MSHR
signal, never letting the memory request queue fill) are respected.
"""

from repro.cache.mshr import Mshr, MshrEntry
from repro.cache.bank import CacheBank, BankRequest
from repro.cache.cache import NonBlockingCache, CacheRequest, CacheResponse
from repro.cache.sharedmem import SharedMemory
from repro.cache.hierarchy import MemorySubsystem

__all__ = [
    "Mshr",
    "MshrEntry",
    "CacheBank",
    "BankRequest",
    "NonBlockingCache",
    "CacheRequest",
    "CacheResponse",
    "SharedMemory",
    "MemorySubsystem",
]
