"""Miss status holding registers (MSHR).

Each cache bank owns its own MSHR (the design point the paper adapts from
Asiatici & Ienne): a bounded table of outstanding missed lines, each
holding the list of core requests waiting for that line.  Only the first
miss to a line issues a fill to the next memory level; subsequent misses to
the same line merge into the existing entry, and all of them replay when
the fill returns.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.common.perf import hot_path


@dataclass
class MshrEntry:
    """Outstanding miss state for one cache line."""

    line_address: int
    fill_issued: bool = False
    waiting: list[Any] = field(default_factory=list)


class Mshr:
    """A bounded table of :class:`MshrEntry` keyed by line address."""

    #: Construction-time capacity and its precomputed threshold (vxlint VX007).
    SNAPSHOT_EXCLUDED = frozenset({"capacity", "_almost_full_at"})

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("MSHR capacity must be at least 1")
        self.capacity = capacity
        # Early-full threshold, clamped so a capacity-1 table is not
        # permanently "almost full" (precomputed: checked on every request).
        self._almost_full_at = max(capacity - 1, 1)
        self._entries: dict[int, MshrEntry] = {}
        #: The early-full signal used to avoid the deadlock described in 4.3,
        #: maintained as a plain attribute (occupancy only changes in
        #: :meth:`allocate`/:meth:`release`) because the request paths read it
        #: once per *attempt* — at retry-storm rates a recomputing property is
        #: measurable.  The threshold is clamped to at least one occupied
        #: entry: with ``capacity == 1`` the naive ``capacity - 1`` threshold
        #: would assert even on an empty table, backpressuring every read
        #: forever.
        self.almost_full = False
        self.peak_occupancy = 0
        self.merged = 0
        self.allocations = 0

    # -- capacity ------------------------------------------------------------------

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def __len__(self) -> int:
        return len(self._entries)

    # -- allocation ----------------------------------------------------------------

    @hot_path
    def lookup(self, line_address: int) -> MshrEntry | None:
        return self._entries.get(line_address)

    @hot_path
    def allocate(self, line_address: int, request: Any) -> MshrEntry | None:
        """Add ``request`` to the entry for ``line_address``.

        Returns the entry, or ``None`` when a new entry is needed but the
        table is full.  The caller checks ``fill_issued`` to know whether a
        fill request must be sent to the lower level.
        """
        entry = self._entries.get(line_address)
        if entry is not None:
            entry.waiting.append(request)
            self.merged += 1
            return entry
        if self.full:
            return None
        entry = MshrEntry(line_address=line_address, waiting=[request])
        self._entries[line_address] = entry
        self.allocations += 1
        occupancy = len(self._entries)
        self.almost_full = occupancy >= self._almost_full_at
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        return entry

    # -- checkpoint/restore --------------------------------------------------------

    def snapshot(self, encode_request: Callable[[Any], Any]) -> dict:
        """Serialize the outstanding-miss table (entry order preserved).

        ``encode_request`` maps waiting requests to plain data; the owning
        :class:`~repro.cache.bank.CacheBank` supplies the request codec.
        """
        return {
            "entries": [
                (
                    line,
                    {
                        "fill_issued": entry.fill_issued,
                        "waiting": [encode_request(request) for request in entry.waiting],
                    },
                )
                for line, entry in self._entries.items()
            ],
            "almost_full": self.almost_full,
            "peak_occupancy": self.peak_occupancy,
            "merged": self.merged,
            "allocations": self.allocations,
        }

    def restore(self, payload: dict, decode_request: Callable[[Any], Any]) -> None:
        """Restore the miss table from a :meth:`snapshot` payload."""
        self._entries.clear()
        for line, data in payload["entries"]:
            self._entries[line] = MshrEntry(
                line_address=line,
                fill_issued=data["fill_issued"],
                waiting=[decode_request(request) for request in data["waiting"]],
            )
        self.almost_full = payload["almost_full"]
        self.peak_occupancy = payload["peak_occupancy"]
        self.merged = payload["merged"]
        self.allocations = payload["allocations"]

    def release(self, line_address: int) -> list[Any]:
        """Remove the entry for ``line_address`` and return its waiting requests."""
        entry = self._entries.pop(line_address, None)
        if entry is None:
            return []
        self.almost_full = len(self._entries) >= self._almost_full_at
        return entry.waiting

    def pending_lines(self) -> list[int]:
        return list(self._entries)
