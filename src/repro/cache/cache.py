"""The non-blocking multi-banked cache (Figure 6).

``NonBlockingCache`` implements the front-end bank selector (including the
virtual multi-porting coalescing of same-line requests), the per-bank MSHRs
and response scheduling, and the back-end merger that hands completed
responses back to the requester.  Misses are forwarded through a *lower
port* — either the DRAM model or the next cache level — supplied by the
memory subsystem.

The deadlock-avoidance rules from the paper are honoured at the acceptance
point: a request is refused (and retried by the requester next cycle) when
its bank's MSHR signals early-full or when the lower level cannot accept a
new fill, so neither the MSHR nor the memory request queue can be
overcommitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Any

from repro.cache.bank import BankRequest, CacheBank
from repro.common.config import CacheConfig
from repro.common.perf import PerfCounters, hot_path
from repro.trace.events import NO_WARP


@dataclass
class CacheRequest:
    """A core-side request presented to the cache."""

    address: int
    is_write: bool = False
    tag: Any = None


@dataclass
class CacheResponse:
    """A completed core-side request."""

    address: int
    is_write: bool
    tag: Any
    hit: bool
    cycle: int


class LowerPort:
    """Interface to the next memory level.

    ``request_fill`` asks for a full line (read); ``request_write`` forwards
    a write-through store.  Both return False when the lower level cannot
    accept more traffic this cycle.
    """

    #: True when one refusal implies every further request this cycle is
    #: also refused (a shared queue that only fills during a drain).  The
    #: cache's batch path then skips the call and charges
    #: :meth:`note_skipped_refusal` instead — the refusal-side counters of
    #: the lower level must still advance per attempt.
    sticky_refusal = False

    def request_fill(self, cache: NonBlockingCache, line_address: int) -> bool:
        raise NotImplementedError

    def request_write(self, cache: NonBlockingCache, address: int) -> bool:
        raise NotImplementedError

    def note_skipped_refusal(self, count: int = 1) -> None:
        """Charge the counters ``count`` skipped (provably refused) requests would have."""
        raise NotImplementedError

    def refusal_horizon(self) -> int | None:
        """Cycle until which (exclusively) every request is provably refused.

        ``None`` means no guarantee.  Only a sticky port can promise one: a
        full shared queue refuses everything until its next in-order release,
        which lets the fast-forward treat a retry storm as event-free.
        """
        return None


class NonBlockingCache:
    """Multi-banked, non-blocking, virtually multi-ported cache."""

    #: Counter schema (vxlint VX003): every literal key charged against this
    #: component's ``perf``/``_counters``.  The scalar and batched request
    #: paths must stay within this set — bit-identical counters between them
    #: are the repo-wide contract.
    COUNTERS = frozenset(
        {
            "attempts",
            "accepted",
            "bank_conflicts",
            "mshr_stalls",
            "memq_stalls",
            "read_hits",
            "read_misses",
            "write_hits",
            "write_misses",
            "fills",
            "cycles",
        }
    )

    #: Construction-time wiring and hot-path prebinds (vxlint VX007):
    #: ``lower`` is topology, ``_line_size``/``_num_banks``/``_num_ports``
    #: derive from config and ``_counters`` aliases ``perf._counters``
    #: (serialized under the ``"perf"`` key).
    SNAPSHOT_EXCLUDED = frozenset(
        {
            "config",
            "lower",
            "_line_size",
            "_num_banks",
            "_num_ports",
            "_counters",
            "trace",
            "trace_channel",
            "trace_core",
        }
    )

    def __init__(self, name: str, config: CacheConfig, lower: LowerPort | None = None):
        self.name = name
        self.config = config
        self.lower = lower
        self.banks = [CacheBank(bank_id, config) for bank_id in range(config.num_banks)]
        self.perf = PerfCounters(name)
        self._cycle = 0
        # Observability (attached by MemorySubsystem.attach_trace): one trace
        # event per request *attempt*, mirroring the refusal/hit/miss counter
        # charged for it, so reconciliation holds by construction.
        self.trace: Any = None
        self.trace_channel = ""
        self.trace_core = -1
        # Per-cycle bank selector state: bank -> (first line address, accept count).
        self._accepts_this_cycle: dict[int, tuple[int, int]] = {}
        self._responses: list[CacheResponse] = []
        # Hot-path bindings: :meth:`send_raw` runs once per request *attempt*
        # (the cycle-level core retries refusals every cycle), so the
        # per-attempt constants and the raw counter dict are prebound.
        self._line_size = config.line_size
        self._num_banks = config.num_banks
        self._num_ports = config.num_ports
        self._counters = self.perf._counters

    # -- address helpers ----------------------------------------------------------------

    def line_address(self, address: int) -> int:
        return address // self.config.line_size

    def bank_index(self, address: int) -> int:
        return self.line_address(address) % self.config.num_banks

    # -- front-end: bank selector ----------------------------------------------------------

    @hot_path
    def _arbitration_refusal(self, bank_id: int, line: int, is_write: bool) -> str | None:
        """The one arbitration predicate every request path shares.

        Returns the refusal counter name (``"bank_conflicts"`` /
        ``"mshr_stalls"``) when the bank selector would refuse a request for
        ``line`` this cycle, or ``None`` when it would proceed to the
        hit/miss path.  Side-effect free: the probes (:meth:`can_accept`,
        :meth:`can_accept_batch`) call it directly, :meth:`send_raw` charges
        the returned counter, and :meth:`send_batch` inlines exactly this
        logic (keep them in sync — the batched/per-lane property test in
        ``tests/test_cache.py`` holds them to it).  Lower-level
        backpressure (``memq_stalls``) is not predicted here because probing
        it without side effects would require the lower level's cooperation.
        """
        accepted = self._accepts_this_cycle.get(bank_id)
        if accepted is not None:
            first_line, count = accepted
            if count >= self._num_ports or first_line != line:
                return "bank_conflicts"
        if not is_write and self.banks[bank_id].mshr.almost_full:
            return "mshr_stalls"
        return None

    @hot_path
    def can_accept(self, request: CacheRequest) -> bool:
        """Check whether ``send`` would succeed this cycle (no side effects)."""
        line = request.address // self._line_size
        return self._arbitration_refusal(line % self._num_banks, line, request.is_write) is None

    @hot_path
    def can_accept_batch(self, addresses: Sequence[int], is_write: bool = False) -> list[bool]:
        """Side-effect-free bulk probe: would ``send`` accept each address *now*?

        Every address is judged against the cache's current-cycle accept
        state (the probe mutates nothing, so earlier addresses in the batch
        do not shadow later ones) through the same
        :meth:`_arbitration_refusal` predicate the send paths use.
        """
        line_size = self._line_size
        num_banks = self._num_banks
        refusal = self._arbitration_refusal
        results: list[bool] = []
        for address in addresses:
            line = address // line_size
            results.append(refusal(line % num_banks, line, is_write) is None)
        return results

    def send(self, request: CacheRequest) -> bool:
        """Present one request to the bank selector.

        Returns True when the request is accepted this cycle; the response
        arrives later through :meth:`tick`.  A False return means the
        requester must retry next cycle (bank conflict, MSHR early-full, or
        lower-level backpressure).
        """
        return self.send_raw(request.address, request.is_write, request.tag)

    @hot_path
    def send_raw(self, address: int, is_write: bool, tag: Any) -> bool:
        """:meth:`send` without the :class:`CacheRequest` wrapper.

        The cycle-level core retries refused requests every cycle, so the
        hot path avoids allocating a request record per attempt; a
        :class:`~repro.cache.bank.BankRequest` is only built once the
        request is actually accepted into a bank.
        """
        counters = self._counters
        counters["attempts"] += 1
        trace = self.trace
        line = address // self._line_size
        bank_id = line % self._num_banks
        refusal = self._arbitration_refusal(bank_id, line, is_write)
        if refusal is not None:
            # The key is the predicate's return value, which is drawn from the
            # schema by construction ("bank_conflicts"/"mshr_stalls" literals
            # in _arbitration_refusal) — safe despite being non-literal here.
            counters[refusal] += 1  # vxlint: disable=VX003
            if trace is not None:
                kind = "conflict" if refusal == "bank_conflicts" else "mshr-stall"
                trace.emit(
                    self._cycle,
                    self.trace_core,
                    NO_WARP,
                    self.trace_channel,
                    kind,
                    {"bank": bank_id, "line": line, "write": is_write},
                )
            return False
        bank = self.banks[bank_id]

        hit = bank.probe(line)

        if is_write:
            # Write-through, no-allocate: the store is forwarded to the lower
            # level; a write hit also updates the cached line's LRU state.
            if self.lower is not None and not self.lower.request_write(self, address):
                counters["memq_stalls"] += 1
                if trace is not None:
                    trace.emit(
                        self._cycle,
                        self.trace_core,
                        NO_WARP,
                        self.trace_channel,
                        "refusal",
                        {"bank": bank_id, "line": line, "write": True},
                    )
                return False
            if hit:
                bank.touch(line)
                counters["write_hits"] += 1
            else:
                counters["write_misses"] += 1
            if trace is not None:
                trace.emit(
                    self._cycle,
                    self.trace_core,
                    NO_WARP,
                    self.trace_channel,
                    "hit" if hit else "miss",
                    {"bank": bank_id, "line": line, "write": True},
                )
            bank.schedule_response(
                BankRequest(address=address, is_write=True, tag=tag, accept_cycle=self._cycle),
                self._cycle,
                hit,
            )
        elif hit:
            bank.touch(line)
            bank.schedule_response(
                BankRequest(address=address, is_write=False, tag=tag, accept_cycle=self._cycle),
                self._cycle,
                True,
            )
            counters["read_hits"] += 1
            if trace is not None:
                trace.emit(
                    self._cycle,
                    self.trace_core,
                    NO_WARP,
                    self.trace_channel,
                    "hit",
                    {"bank": bank_id, "line": line, "write": False},
                )
        else:
            existing = bank.mshr.lookup(line)
            if existing is None and self.lower is not None:
                if not self.lower.request_fill(self, line):
                    counters["memq_stalls"] += 1
                    if trace is not None:
                        trace.emit(
                            self._cycle,
                            self.trace_core,
                            NO_WARP,
                            self.trace_channel,
                            "refusal",
                            {"bank": bank_id, "line": line, "write": False},
                        )
                    return False
            entry = bank.mshr.allocate(
                line,
                BankRequest(address=address, is_write=False, tag=tag, accept_cycle=self._cycle),
            )
            if entry is None:
                counters["mshr_stalls"] += 1
                if trace is not None:
                    trace.emit(
                        self._cycle,
                        self.trace_core,
                        NO_WARP,
                        self.trace_channel,
                        "mshr-stall",
                        {"bank": bank_id, "line": line, "write": False},
                    )
                return False
            counters["read_misses"] += 1
            if trace is not None:
                payload = {"bank": bank_id, "line": line, "write": False}
                if existing is not None:
                    payload["merge"] = True
                trace.emit(
                    self._cycle,
                    self.trace_core,
                    NO_WARP,
                    self.trace_channel,
                    "miss",
                    payload,
                )

        accepted = self._accepts_this_cycle.get(bank_id)
        count = 0 if accepted is None else accepted[1]
        self._accepts_this_cycle[bank_id] = (line, count + 1)
        counters["accepted"] += 1
        return True

    @hot_path
    def send_batch(
        self, requests: list[tuple[Any, ...]], budget: int, is_write: bool, tag: Any
    ) -> tuple[int, list[tuple[Any, ...]], int]:
        """Present a whole warp's outstanding requests in one call.

        ``requests`` is a list of ``(address, line, bank_id, ...)`` tuples —
        the line/bank fields are precomputed once per memory instruction by
        the timing core (numpy over the lane trace) instead of re-derived on
        every retry attempt.  Requests are attempted strictly in order while
        ``budget`` (the LSU's per-thread ports) lasts; a refused attempt
        keeps its tuple in the returned retry list and does *not* consume
        budget, exactly like the per-lane ``send_raw`` loop.

        Returns ``(accepted, refused, budget)`` where ``refused`` preserves
        order: refused attempts first, then the un-attempted tail once the
        budget ran out.  Counter updates are aggregated in locals and
        flushed once, but count per-attempt outcomes identically to
        ``send_raw`` — bit-identical counters are the contract
        (``tests/test_cache.py`` holds both paths to it with a property
        test).  The arbitration logic is :meth:`_arbitration_refusal`
        inlined; keep them in sync.
        """
        counters = self._counters
        accepts = self._accepts_this_cycle
        banks = self.banks
        num_ports = self._num_ports
        num_banks = self._num_banks
        lower = self.lower
        cycle = self._cycle
        trace = self.trace
        trace_core = self.trace_core
        trace_channel = self.trace_channel
        # Saturation fast path: once every bank has all its ports taken this
        # cycle, the port check (which precedes every other refusal reason)
        # rejects any further request as a bank conflict without touching any
        # state — so the rest of the batch can be refused in bulk.  This is
        # where the retry wall actually burns host time: a port-limited warp
        # re-attempts each refused lane every cycle, and nearly all of those
        # attempts land on saturated banks.
        full_banks = 0
        for _first_line, count in accepts.values():
            if count >= num_ports:
                full_banks += 1
        if full_banks >= num_banks and budget > 0:
            total = len(requests)
            counters["attempts"] += total
            counters["bank_conflicts"] += total
            if trace is not None:
                for entry in requests:
                    trace.emit(
                        cycle,
                        trace_core,
                        NO_WARP,
                        trace_channel,
                        "conflict",
                        {"bank": entry[2], "line": entry[1], "write": is_write},
                    )
            return 0, requests, budget
        attempts = accepted_count = bank_conflicts = mshr_stalls = memq_stalls = 0
        read_hits = read_misses = write_hits = write_misses = 0
        # Sticky lower-level backpressure: once a DRAM-backed lower port
        # refuses, every further fill/write this cycle is provably refused
        # too (the shared queue only fills during a drain), so the call is
        # skipped and its refusal-side counters charged directly.
        lower_sticky = lower is not None and lower.sticky_refusal
        lower_full = False
        refused: list[tuple[Any, ...]] = []
        index = 0
        total = len(requests)
        while index < total:
            if budget <= 0:
                refused.extend(requests[index:])
                break
            entry = requests[index]
            index += 1
            address = entry[0]
            line = entry[1]
            bank_id = entry[2]
            attempts += 1

            accepted = accepts.get(bank_id)
            if accepted is not None:
                first_line, count = accepted
                if count >= num_ports or first_line != line:
                    bank_conflicts += 1
                    refused.append(entry)
                    if trace is not None:
                        trace.emit(
                            cycle,
                            trace_core,
                            NO_WARP,
                            trace_channel,
                            "conflict",
                            {"bank": bank_id, "line": line, "write": is_write},
                        )
                    continue
            bank = banks[bank_id]
            mshr = bank.mshr
            if not is_write and mshr.almost_full:
                mshr_stalls += 1
                refused.append(entry)
                if trace is not None:
                    trace.emit(
                        cycle,
                        trace_core,
                        NO_WARP,
                        trace_channel,
                        "mshr-stall",
                        {"bank": bank_id, "line": line, "write": False},
                    )
                continue

            if is_write:
                if lower is not None and not lower.request_write(self, address):
                    memq_stalls += 1
                    refused.append(entry)
                    if trace is not None:
                        trace.emit(
                            cycle,
                            trace_core,
                            NO_WARP,
                            trace_channel,
                            "refusal",
                            {"bank": bank_id, "line": line, "write": True},
                        )
                    if lower_sticky:
                        # Sticky lower: no remaining write can be accepted
                        # (every write-through needs the shared lower queue)
                        # and refusals mutate nothing, so the tail is
                        # classified in one pass — saturated-port entries
                        # charge bank conflicts, the rest charge lower
                        # refusals — exactly as the per-entry loop would.
                        # Budget stays positive throughout (only accepts
                        # consume it), so every tail entry counts as an
                        # attempt.
                        tail = requests[index:]
                        attempts += len(tail)
                        skipped = 0
                        for tail_entry in tail:
                            accepted = accepts.get(tail_entry[2])
                            if accepted is not None and (
                                accepted[1] >= num_ports or accepted[0] != tail_entry[1]
                            ):
                                bank_conflicts += 1
                                if trace is not None:
                                    trace.emit(
                                        cycle,
                                        trace_core,
                                        NO_WARP,
                                        trace_channel,
                                        "conflict",
                                        {
                                            "bank": tail_entry[2],
                                            "line": tail_entry[1],
                                            "write": True,
                                        },
                                    )
                            else:
                                skipped += 1
                                if trace is not None:
                                    trace.emit(
                                        cycle,
                                        trace_core,
                                        NO_WARP,
                                        trace_channel,
                                        "refusal",
                                        {
                                            "bank": tail_entry[2],
                                            "line": tail_entry[1],
                                            "write": True,
                                        },
                                    )
                        if skipped:
                            memq_stalls += skipped
                            lower.note_skipped_refusal(skipped)
                        refused.extend(tail)
                        break
                    continue
                hit = bank.probe(line)
                if hit:
                    bank.touch(line)
                    write_hits += 1
                else:
                    write_misses += 1
                if trace is not None:
                    trace.emit(
                        cycle,
                        trace_core,
                        NO_WARP,
                        trace_channel,
                        "hit" if hit else "miss",
                        {"bank": bank_id, "line": line, "write": True},
                    )
                bank.schedule_response(
                    BankRequest(address=address, is_write=True, tag=tag, accept_cycle=cycle),
                    cycle,
                    hit,
                )
            elif bank.probe(line):
                bank.touch(line)
                bank.schedule_response(
                    BankRequest(address=address, is_write=False, tag=tag, accept_cycle=cycle),
                    cycle,
                    True,
                )
                read_hits += 1
                if trace is not None:
                    trace.emit(
                        cycle,
                        trace_core,
                        NO_WARP,
                        trace_channel,
                        "hit",
                        {"bank": bank_id, "line": line, "write": False},
                    )
            else:
                merged = mshr.lookup(line) is not None
                if not merged and lower is not None:
                    if lower_full:
                        lower.note_skipped_refusal()
                        memq_stalls += 1
                        refused.append(entry)
                        if trace is not None:
                            trace.emit(
                                cycle,
                                trace_core,
                                NO_WARP,
                                trace_channel,
                                "refusal",
                                {"bank": bank_id, "line": line, "write": False},
                            )
                        continue
                    if not lower.request_fill(self, line):
                        lower_full = lower_sticky
                        memq_stalls += 1
                        refused.append(entry)
                        if trace is not None:
                            trace.emit(
                                cycle,
                                trace_core,
                                NO_WARP,
                                trace_channel,
                                "refusal",
                                {"bank": bank_id, "line": line, "write": False},
                            )
                        continue
                mshr_entry = mshr.allocate(
                    line,
                    BankRequest(address=address, is_write=False, tag=tag, accept_cycle=cycle),
                )
                if mshr_entry is None:
                    mshr_stalls += 1
                    refused.append(entry)
                    if trace is not None:
                        trace.emit(
                            cycle,
                            trace_core,
                            NO_WARP,
                            trace_channel,
                            "mshr-stall",
                            {"bank": bank_id, "line": line, "write": False},
                        )
                    continue
                read_misses += 1
                if trace is not None:
                    payload = {"bank": bank_id, "line": line, "write": False}
                    if merged:
                        payload["merge"] = True
                    trace.emit(cycle, trace_core, NO_WARP, trace_channel, "miss", payload)

            count = (0 if accepted is None else accepted[1]) + 1
            accepts[bank_id] = (line, count)
            accepted_count += 1
            budget -= 1
            if count >= num_ports:
                full_banks += 1
                if full_banks >= num_banks and budget > 0 and index < total:
                    remaining = total - index
                    attempts += remaining
                    bank_conflicts += remaining
                    if trace is not None:
                        for tail_entry in requests[index:]:
                            trace.emit(
                                cycle,
                                trace_core,
                                NO_WARP,
                                trace_channel,
                                "conflict",
                                {
                                    "bank": tail_entry[2],
                                    "line": tail_entry[1],
                                    "write": is_write,
                                },
                            )
                    refused.extend(requests[index:])
                    break

        # Flush the aggregated counts; only-touched-when-nonzero keeps the
        # counter key sets identical to the per-lane path's.
        if attempts:
            counters["attempts"] += attempts
        if bank_conflicts:
            counters["bank_conflicts"] += bank_conflicts
        if mshr_stalls:
            counters["mshr_stalls"] += mshr_stalls
        if memq_stalls:
            counters["memq_stalls"] += memq_stalls
        if read_hits:
            counters["read_hits"] += read_hits
        if read_misses:
            counters["read_misses"] += read_misses
        if write_hits:
            counters["write_hits"] += write_hits
        if write_misses:
            counters["write_misses"] += write_misses
        if accepted_count:
            counters["accepted"] += accepted_count
        return accepted_count, refused, budget

    # -- checkpoint/restore --------------------------------------------------------------------

    def snapshot(self, encode_tag: Callable[[Any], Any]) -> dict:
        """Serialize clock, per-cycle accept state and every bank.

        ``encode_tag`` maps request tags to plain data (lower-level fill
        tags carry live cache references; the memory subsystem encodes them
        by cache name).  ``_responses`` is legacy drain state that is always
        empty between cycles — asserting it stays empty is cheaper and
        stricter than serializing live response objects.
        """
        if self._responses:
            raise ValueError(f"cache {self.name!r} has undrained responses")
        return {
            "cycle": self._cycle,
            "accepts_this_cycle": dict(self._accepts_this_cycle),
            "banks": [bank.snapshot(encode_tag) for bank in self.banks],
            "perf": self.perf.snapshot(),
        }

    def restore(self, payload: dict, decode_tag: Callable[[Any], Any]) -> None:
        """Restore cache state from a :meth:`snapshot` payload."""
        self._cycle = payload["cycle"]
        self._accepts_this_cycle.clear()
        self._accepts_this_cycle.update(payload["accepts_this_cycle"])
        self._responses.clear()
        for bank, bank_payload in zip(self.banks, payload["banks"]):
            bank.restore(bank_payload, decode_tag)
        self.perf.restore(payload["perf"])

    # -- back-end: fills and responses -------------------------------------------------------

    def fill(self, line_address: int) -> None:
        """A fill for ``line_address`` returned from the lower level."""
        bank = self.banks[line_address % self.config.num_banks]
        replayed = bank.fill(line_address, self._cycle)
        for request in replayed:
            bank.schedule_response(request, self._cycle, False)
        self.perf.incr("fills")
        if self.trace is not None:
            self.trace.emit(
                self._cycle,
                self.trace_core,
                NO_WARP,
                self.trace_channel,
                "fill",
                {"bank": line_address % self.config.num_banks, "line": line_address},
            )

    def tick(self) -> list[CacheResponse]:
        """Advance one cycle; returns the responses completing this cycle."""
        self._cycle += 1
        if self._accepts_this_cycle:
            self._accepts_this_cycle.clear()
        responses: list[CacheResponse] = []
        for bank in self.banks:
            for bank_request, hit in bank.collect_responses(self._cycle):
                responses.append(
                    CacheResponse(
                        address=bank_request.address,
                        is_write=bank_request.is_write,
                        tag=bank_request.tag,
                        hit=hit,
                        cycle=self._cycle,
                    )
                )
        self._counters["cycles"] += 1
        return responses

    # -- fast-forward ------------------------------------------------------------------------

    def write_refusal_horizon(self) -> int | None:
        """Cycle before which every write-through is provably refused.

        A write needs a bank port — free again at the start of every cycle —
        plus a lower-level accept, so the only cross-cycle refusal guarantee
        comes from the lower port's shared queue being full.
        """
        return None if self.lower is None else self.lower.refusal_horizon()

    def next_response_cycle(self) -> int | None:
        """Earliest cycle any bank completes a response (``None`` when idle).

        Outstanding misses are *not* events here: their fills live in the
        lower level's queue (DRAM or the next cache's banks) and are
        reported by that level.
        """
        result: int | None = None
        for bank in self.banks:
            ready = bank.next_response_cycle()
            if ready is not None and (result is None or ready < result):
                result = ready
        return result

    def skip_idle(self, cycles: int) -> None:
        """Advance ``cycles`` provably idle cycles in one jump.

        Only valid when the caller proved (via :meth:`next_response_cycle`)
        that no response completes in the window and no requests arrive —
        each skipped :meth:`tick` would then only advance the clock and the
        ``cycles`` counter.
        """
        self._cycle += cycles
        self._counters["cycles"] += cycles

    # -- statistics -------------------------------------------------------------------------

    @property
    def bank_utilization(self) -> float:
        """Fraction of issued requests that did not experience a bank conflict.

        This matches the paper's Figure 19 definition: 100% means every
        request was accepted without a direct bank conflict, with remaining
        stalls attributable to input queues being full.
        """
        accepted = self.perf.get("accepted")
        conflicts = self.perf.get("bank_conflicts")
        if accepted + conflicts == 0:
            return 1.0
        return accepted / (accepted + conflicts)

    @property
    def hit_rate(self) -> float:
        hits = self.perf.get("read_hits") + self.perf.get("write_hits")
        misses = self.perf.get("read_misses") + self.perf.get("write_misses")
        if hits + misses == 0:
            return 0.0
        return hits / (hits + misses)

    @property
    def busy(self) -> bool:
        """True while any bank still has outstanding work."""
        return any(bank.busy for bank in self.banks)

    def counters(self) -> dict[str, int]:
        """Flat snapshot of the cache's performance counters."""
        return self.perf.as_dict()
