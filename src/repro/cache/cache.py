"""The non-blocking multi-banked cache (Figure 6).

``NonBlockingCache`` implements the front-end bank selector (including the
virtual multi-porting coalescing of same-line requests), the per-bank MSHRs
and response scheduling, and the back-end merger that hands completed
responses back to the requester.  Misses are forwarded through a *lower
port* — either the DRAM model or the next cache level — supplied by the
memory subsystem.

The deadlock-avoidance rules from the paper are honoured at the acceptance
point: a request is refused (and retried by the requester next cycle) when
its bank's MSHR signals early-full or when the lower level cannot accept a
new fill, so neither the MSHR nor the memory request queue can be
overcommitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cache.bank import BankRequest, CacheBank
from repro.common.config import CacheConfig
from repro.common.perf import PerfCounters


@dataclass
class CacheRequest:
    """A core-side request presented to the cache."""

    address: int
    is_write: bool = False
    tag: Any = None


@dataclass
class CacheResponse:
    """A completed core-side request."""

    address: int
    is_write: bool
    tag: Any
    hit: bool
    cycle: int


class LowerPort:
    """Interface to the next memory level.

    ``request_fill`` asks for a full line (read); ``request_write`` forwards
    a write-through store.  Both return False when the lower level cannot
    accept more traffic this cycle.
    """

    def request_fill(self, cache: "NonBlockingCache", line_address: int) -> bool:
        raise NotImplementedError

    def request_write(self, cache: "NonBlockingCache", address: int) -> bool:
        raise NotImplementedError


class NonBlockingCache:
    """Multi-banked, non-blocking, virtually multi-ported cache."""

    def __init__(self, name: str, config: CacheConfig, lower: Optional[LowerPort] = None):
        self.name = name
        self.config = config
        self.lower = lower
        self.banks = [CacheBank(bank_id, config) for bank_id in range(config.num_banks)]
        self.perf = PerfCounters(name)
        self._cycle = 0
        # Per-cycle bank selector state: bank -> (first line address, accept count).
        self._accepts_this_cycle: Dict[int, Tuple[int, int]] = {}
        self._responses: List[CacheResponse] = []
        # Hot-path bindings: :meth:`send_raw` runs once per request *attempt*
        # (the cycle-level core retries refusals every cycle), so the
        # per-attempt constants and the raw counter dict are prebound.
        self._line_size = config.line_size
        self._num_banks = config.num_banks
        self._num_ports = config.num_ports
        self._counters = self.perf._counters

    # -- address helpers ----------------------------------------------------------------

    def line_address(self, address: int) -> int:
        return address // self.config.line_size

    def bank_index(self, address: int) -> int:
        return self.line_address(address) % self.config.num_banks

    # -- front-end: bank selector ----------------------------------------------------------

    def can_accept(self, request: CacheRequest) -> bool:
        """Check whether ``send`` would succeed this cycle (no side effects)."""
        bank_id = self.bank_index(request.address)
        line = self.line_address(request.address)
        accepted = self._accepts_this_cycle.get(bank_id)
        if accepted is not None:
            first_line, count = accepted
            if count >= self.config.num_ports or first_line != line:
                return False
        bank = self.banks[bank_id]
        if bank.mshr.almost_full and not request.is_write:
            return False
        return True

    def send(self, request: CacheRequest) -> bool:
        """Present one request to the bank selector.

        Returns True when the request is accepted this cycle; the response
        arrives later through :meth:`tick`.  A False return means the
        requester must retry next cycle (bank conflict, MSHR early-full, or
        lower-level backpressure).
        """
        return self.send_raw(request.address, request.is_write, request.tag)

    def send_raw(self, address: int, is_write: bool, tag: Any) -> bool:
        """:meth:`send` without the :class:`CacheRequest` wrapper.

        The cycle-level core retries refused requests every cycle, so the
        hot path avoids allocating a request record per attempt; a
        :class:`~repro.cache.bank.BankRequest` is only built once the
        request is actually accepted into a bank.
        """
        counters = self._counters
        counters["attempts"] += 1
        line = address // self._line_size
        bank_id = line % self._num_banks
        bank = self.banks[bank_id]

        accepted = self._accepts_this_cycle.get(bank_id)
        if accepted is not None:
            first_line, count = accepted
            if count >= self._num_ports or first_line != line:
                counters["bank_conflicts"] += 1
                return False

        if not is_write and bank.mshr.almost_full:
            counters["mshr_stalls"] += 1
            return False

        hit = bank.probe(line)

        if is_write:
            # Write-through, no-allocate: the store is forwarded to the lower
            # level; a write hit also updates the cached line's LRU state.
            if self.lower is not None and not self.lower.request_write(self, address):
                counters["memq_stalls"] += 1
                return False
            if hit:
                bank.touch(line)
                counters["write_hits"] += 1
            else:
                counters["write_misses"] += 1
            bank.schedule_response(
                BankRequest(address=address, is_write=True, tag=tag, accept_cycle=self._cycle),
                self._cycle,
                hit,
            )
        elif hit:
            bank.touch(line)
            bank.schedule_response(
                BankRequest(address=address, is_write=False, tag=tag, accept_cycle=self._cycle),
                self._cycle,
                True,
            )
            counters["read_hits"] += 1
        else:
            existing = bank.mshr.lookup(line)
            if existing is None and self.lower is not None:
                if not self.lower.request_fill(self, line):
                    counters["memq_stalls"] += 1
                    return False
            entry = bank.mshr.allocate(
                line,
                BankRequest(address=address, is_write=False, tag=tag, accept_cycle=self._cycle),
            )
            if entry is None:
                counters["mshr_stalls"] += 1
                return False
            counters["read_misses"] += 1

        count = 0 if accepted is None else accepted[1]
        self._accepts_this_cycle[bank_id] = (line, count + 1)
        counters["accepted"] += 1
        return True

    # -- back-end: fills and responses -------------------------------------------------------

    def fill(self, line_address: int) -> None:
        """A fill for ``line_address`` returned from the lower level."""
        bank = self.banks[line_address % self.config.num_banks]
        replayed = bank.fill(line_address, self._cycle)
        for request in replayed:
            bank.schedule_response(request, self._cycle, False)
        self.perf.incr("fills")

    def tick(self) -> List[CacheResponse]:
        """Advance one cycle; returns the responses completing this cycle."""
        self._cycle += 1
        if self._accepts_this_cycle:
            self._accepts_this_cycle.clear()
        responses: List[CacheResponse] = []
        for bank in self.banks:
            for bank_request, hit in bank.collect_responses(self._cycle):
                responses.append(
                    CacheResponse(
                        address=bank_request.address,
                        is_write=bank_request.is_write,
                        tag=bank_request.tag,
                        hit=hit,
                        cycle=self._cycle,
                    )
                )
        self._counters["cycles"] += 1
        return responses

    # -- statistics -------------------------------------------------------------------------

    @property
    def bank_utilization(self) -> float:
        """Fraction of issued requests that did not experience a bank conflict.

        This matches the paper's Figure 19 definition: 100% means every
        request was accepted without a direct bank conflict, with remaining
        stalls attributable to input queues being full.
        """
        accepted = self.perf.get("accepted")
        conflicts = self.perf.get("bank_conflicts")
        if accepted + conflicts == 0:
            return 1.0
        return accepted / (accepted + conflicts)

    @property
    def hit_rate(self) -> float:
        hits = self.perf.get("read_hits") + self.perf.get("write_hits")
        misses = self.perf.get("read_misses") + self.perf.get("write_misses")
        if hits + misses == 0:
            return 0.0
        return hits / (hits + misses)

    @property
    def busy(self) -> bool:
        """True while any bank still has outstanding work."""
        return any(bank.busy for bank in self.banks)

    def counters(self) -> Dict[str, int]:
        """Flat snapshot of the cache's performance counters."""
        return self.perf.as_dict()
