"""The non-blocking multi-banked cache (Figure 6).

``NonBlockingCache`` implements the front-end bank selector (including the
virtual multi-porting coalescing of same-line requests), the per-bank MSHRs
and response scheduling, and the back-end merger that hands completed
responses back to the requester.  Misses are forwarded through a *lower
port* — either the DRAM model or the next cache level — supplied by the
memory subsystem.

The deadlock-avoidance rules from the paper are honoured at the acceptance
point: a request is refused (and retried by the requester next cycle) when
its bank's MSHR signals early-full or when the lower level cannot accept a
new fill, so neither the MSHR nor the memory request queue can be
overcommitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cache.bank import BankRequest, CacheBank
from repro.common.config import CacheConfig
from repro.common.perf import PerfCounters


@dataclass
class CacheRequest:
    """A core-side request presented to the cache."""

    address: int
    is_write: bool = False
    tag: Any = None


@dataclass
class CacheResponse:
    """A completed core-side request."""

    address: int
    is_write: bool
    tag: Any
    hit: bool
    cycle: int


class LowerPort:
    """Interface to the next memory level.

    ``request_fill`` asks for a full line (read); ``request_write`` forwards
    a write-through store.  Both return False when the lower level cannot
    accept more traffic this cycle.
    """

    def request_fill(self, cache: "NonBlockingCache", line_address: int) -> bool:
        raise NotImplementedError

    def request_write(self, cache: "NonBlockingCache", address: int) -> bool:
        raise NotImplementedError


class NonBlockingCache:
    """Multi-banked, non-blocking, virtually multi-ported cache."""

    def __init__(self, name: str, config: CacheConfig, lower: Optional[LowerPort] = None):
        self.name = name
        self.config = config
        self.lower = lower
        self.banks = [CacheBank(bank_id, config) for bank_id in range(config.num_banks)]
        self.perf = PerfCounters(name)
        self._cycle = 0
        # Per-cycle bank selector state: bank -> (first line address, accept count).
        self._accepts_this_cycle: Dict[int, Tuple[int, int]] = {}
        self._responses: List[CacheResponse] = []

    # -- address helpers ----------------------------------------------------------------

    def line_address(self, address: int) -> int:
        return address // self.config.line_size

    def bank_index(self, address: int) -> int:
        return self.line_address(address) % self.config.num_banks

    # -- front-end: bank selector ----------------------------------------------------------

    def can_accept(self, request: CacheRequest) -> bool:
        """Check whether ``send`` would succeed this cycle (no side effects)."""
        bank_id = self.bank_index(request.address)
        line = self.line_address(request.address)
        accepted = self._accepts_this_cycle.get(bank_id)
        if accepted is not None:
            first_line, count = accepted
            if count >= self.config.num_ports or first_line != line:
                return False
        bank = self.banks[bank_id]
        if bank.mshr.almost_full and not request.is_write:
            return False
        return True

    def send(self, request: CacheRequest) -> bool:
        """Present one request to the bank selector.

        Returns True when the request is accepted this cycle; the response
        arrives later through :meth:`tick`.  A False return means the
        requester must retry next cycle (bank conflict, MSHR early-full, or
        lower-level backpressure).
        """
        self.perf.incr("attempts")
        bank_id = self.bank_index(request.address)
        line = self.line_address(request.address)
        bank = self.banks[bank_id]

        accepted = self._accepts_this_cycle.get(bank_id)
        if accepted is not None:
            first_line, count = accepted
            if count >= self.config.num_ports or first_line != line:
                self.perf.incr("bank_conflicts")
                return False

        if bank.mshr.almost_full and not request.is_write:
            self.perf.incr("mshr_stalls")
            return False

        hit = bank.probe(line)
        bank_request = BankRequest(
            address=request.address, is_write=request.is_write, tag=request.tag,
            accept_cycle=self._cycle,
        )

        if request.is_write:
            # Write-through, no-allocate: the store is forwarded to the lower
            # level; a write hit also updates the cached line's LRU state.
            if self.lower is not None and not self.lower.request_write(self, request.address):
                self.perf.incr("memq_stalls")
                return False
            if hit:
                bank.touch(line)
                self.perf.incr("write_hits")
            else:
                self.perf.incr("write_misses")
            bank.schedule_response(bank_request, self._cycle, hit)
        elif hit:
            bank.touch(line)
            bank.schedule_response(bank_request, self._cycle, True)
            self.perf.incr("read_hits")
        else:
            existing = bank.mshr.lookup(line)
            if existing is None and self.lower is not None:
                if not self.lower.request_fill(self, line):
                    self.perf.incr("memq_stalls")
                    return False
            entry = bank.mshr.allocate(line, bank_request)
            if entry is None:
                self.perf.incr("mshr_stalls")
                return False
            self.perf.incr("read_misses")

        count = 0 if accepted is None else accepted[1]
        self._accepts_this_cycle[bank_id] = (line, count + 1)
        self.perf.incr("accepted")
        return True

    # -- back-end: fills and responses -------------------------------------------------------

    def fill(self, line_address: int) -> None:
        """A fill for ``line_address`` returned from the lower level."""
        bank = self.banks[line_address % self.config.num_banks]
        replayed = bank.fill(line_address, self._cycle)
        for request in replayed:
            bank.schedule_response(request, self._cycle, False)
        self.perf.incr("fills")

    def tick(self) -> List[CacheResponse]:
        """Advance one cycle; returns the responses completing this cycle."""
        self._cycle += 1
        self._accepts_this_cycle.clear()
        responses: List[CacheResponse] = []
        for bank in self.banks:
            for bank_request, hit in bank.collect_responses(self._cycle):
                responses.append(
                    CacheResponse(
                        address=bank_request.address,
                        is_write=bank_request.is_write,
                        tag=bank_request.tag,
                        hit=hit,
                        cycle=self._cycle,
                    )
                )
        self.perf.incr("cycles")
        return responses

    # -- statistics -------------------------------------------------------------------------

    @property
    def bank_utilization(self) -> float:
        """Fraction of issued requests that did not experience a bank conflict.

        This matches the paper's Figure 19 definition: 100% means every
        request was accepted without a direct bank conflict, with remaining
        stalls attributable to input queues being full.
        """
        accepted = self.perf.get("accepted")
        conflicts = self.perf.get("bank_conflicts")
        if accepted + conflicts == 0:
            return 1.0
        return accepted / (accepted + conflicts)

    @property
    def hit_rate(self) -> float:
        hits = self.perf.get("read_hits") + self.perf.get("write_hits")
        misses = self.perf.get("read_misses") + self.perf.get("write_misses")
        if hits + misses == 0:
            return 0.0
        return hits / (hits + misses)

    @property
    def busy(self) -> bool:
        """True while any bank still has outstanding work."""
        return any(bank.busy for bank in self.banks)

    def counters(self) -> Dict[str, int]:
        """Flat snapshot of the cache's performance counters."""
        return self.perf.as_dict()
