"""Per-core shared (scratchpad) memory.

The paper's memory system offers an optional shared memory per core that
acts as a software-managed scratchpad (section 4.1.4).  It is banked like
the data cache but always hits; the only timing behaviour is bank-conflict
serialization.  Functionally it is carved out of the global address space
(one window per core) so kernels address it with ordinary loads and stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.perf import PerfCounters, hot_path
from repro.trace.events import NO_WARP

#: Base of the shared-memory window; core ``i`` owns one window of
#: ``SHARED_MEM_STRIDE`` bytes starting at ``SHARED_MEM_BASE + i * stride``.
SHARED_MEM_BASE = 0xFF00_0000
SHARED_MEM_STRIDE = 0x0001_0000


def shared_mem_window(core_id: int) -> tuple[int, int]:
    """Return the (base, limit) of core ``core_id``'s shared-memory window."""
    base = SHARED_MEM_BASE + core_id * SHARED_MEM_STRIDE
    return base, base + SHARED_MEM_STRIDE


def is_shared_address(address: int) -> bool:
    """True when ``address`` falls inside any shared-memory window."""
    return address >= SHARED_MEM_BASE


@dataclass
class SharedResponse:
    """A completed scratchpad access."""

    address: int
    is_write: bool
    tag: Any
    cycle: int


class SharedMemory:
    """Banked scratchpad with single-cycle access and bank-conflict serialization."""

    #: Counter schema (vxlint VX003).
    COUNTERS = frozenset({"attempts", "bank_conflicts", "reads", "writes"})

    #: Construction-time geometry (vxlint VX007).
    SNAPSHOT_EXCLUDED = frozenset({"core_id", "size", "num_banks", "latency", "trace"})

    def __init__(self, core_id: int, size: int, num_banks: int = 4, latency: int = 1):
        self.core_id = core_id
        self.size = size
        self.num_banks = num_banks
        self.latency = latency
        self.base, self.limit = shared_mem_window(core_id)
        self.perf = PerfCounters(f"smem{core_id}")
        # Observability (attached by the owning TimingCore): one ``smem``
        # event per access attempt (conflict / read / write).
        self.trace: Any = None
        self._cycle = 0
        self._accepts_this_cycle: dict[int, int] = {}
        self._pending: list[tuple[int, SharedResponse]] = []

    def contains(self, address: int) -> bool:
        """True when ``address`` belongs to this core's window."""
        return self.base <= address < self.base + self.size

    def bank_index(self, address: int) -> int:
        return (address // 4) % self.num_banks

    @hot_path
    def send(self, address: int, is_write: bool, tag: Any) -> bool:
        """Present one access; False means a bank conflict (retry next cycle)."""
        self.perf.incr("attempts")
        trace = self.trace
        bank = self.bank_index(address)
        if self._accepts_this_cycle.get(bank, 0) >= 1:
            self.perf.incr("bank_conflicts")
            if trace is not None:
                trace.emit(self._cycle, self.core_id, NO_WARP, "smem", "conflict", {"bank": bank})
            return False
        self._accepts_this_cycle[bank] = 1
        response = SharedResponse(address=address, is_write=is_write, tag=tag, cycle=0)
        self._pending.append((self._cycle + self.latency, response))
        self.perf.incr("writes" if is_write else "reads")
        if trace is not None:
            trace.emit(
                self._cycle,
                self.core_id,
                NO_WARP,
                "smem",
                "write" if is_write else "read",
                {"bank": bank},
            )
        return True

    @hot_path
    def send_batch(
        self, requests: list[tuple[Any, ...]], budget: int, is_write: bool, tag: Any
    ) -> tuple[int, list[tuple[Any, ...]], int]:
        """Batched counterpart of :meth:`send` (the timing core's hot path).

        ``requests`` holds ``(address, ...)`` tuples attempted strictly in
        order while ``budget`` lasts; refused attempts keep their tuple in
        the returned retry list without consuming budget, exactly like the
        per-lane loop.  Returns ``(accepted, refused, budget)`` with
        counters aggregated and flushed once, bit-identical to per-lane
        :meth:`send` calls.
        """
        counters = self.perf._counters
        accepts = self._accepts_this_cycle
        pending = self._pending
        num_banks = self.num_banks
        ready_cycle = self._cycle + self.latency
        trace = self.trace
        core_id = self.core_id
        cycle = self._cycle
        accept_kind = "write" if is_write else "read"
        # Saturation fast path: one accept per bank per cycle, so once every
        # bank has accepted, the rest of the batch refuses in bulk.
        if len(accepts) >= num_banks and budget > 0:
            total = len(requests)
            counters["attempts"] += total
            counters["bank_conflicts"] += total
            if trace is not None:
                for entry in requests:
                    trace.emit(
                        cycle,
                        core_id,
                        NO_WARP,
                        "smem",
                        "conflict",
                        {"bank": (entry[0] // 4) % num_banks},
                    )
            return 0, requests, budget
        attempts = accepted_count = bank_conflicts = 0
        refused: list[tuple[Any, ...]] = []
        index = 0
        total = len(requests)
        while index < total:
            if budget <= 0:
                refused.extend(requests[index:])
                break
            entry = requests[index]
            index += 1
            address = entry[0]
            attempts += 1
            bank = (address // 4) % num_banks
            if accepts.get(bank, 0) >= 1:
                bank_conflicts += 1
                refused.append(entry)
                if trace is not None:
                    trace.emit(cycle, core_id, NO_WARP, "smem", "conflict", {"bank": bank})
                continue
            accepts[bank] = 1
            pending.append(
                (ready_cycle, SharedResponse(address=address, is_write=is_write, tag=tag, cycle=0))
            )
            accepted_count += 1
            budget -= 1
            if trace is not None:
                trace.emit(cycle, core_id, NO_WARP, "smem", accept_kind, {"bank": bank})
            if len(accepts) >= num_banks and budget > 0 and index < total:
                remaining = total - index
                attempts += remaining
                bank_conflicts += remaining
                if trace is not None:
                    for tail_entry in requests[index:]:
                        trace.emit(
                            cycle,
                            core_id,
                            NO_WARP,
                            "smem",
                            "conflict",
                            {"bank": (tail_entry[0] // 4) % num_banks},
                        )
                refused.extend(requests[index:])
                break
        if attempts:
            counters["attempts"] += attempts
        if bank_conflicts:
            counters["bank_conflicts"] += bank_conflicts
        if accepted_count:
            counters["writes" if is_write else "reads"] += accepted_count
        return accepted_count, refused, budget

    def tick(self) -> list[SharedResponse]:
        """Advance one cycle; return completed accesses."""
        self._cycle += 1
        if self._accepts_this_cycle:
            self._accepts_this_cycle.clear()
        if not self._pending:
            return []
        ready = [resp for ready_cycle, resp in self._pending if ready_cycle <= self._cycle]
        if ready:
            self._pending = [
                (ready_cycle, resp)
                for ready_cycle, resp in self._pending
                if ready_cycle > self._cycle
            ]
            for resp in ready:
                resp.cycle = self._cycle
        return ready

    # -- checkpoint/restore ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize clock, per-cycle accept state and pending accesses.

        Scratchpad tags are core-local plain tuples (``("op", op_id)``), so
        no tag codec is needed at this layer.
        """
        return {
            "cycle": self._cycle,
            "accepts_this_cycle": dict(self._accepts_this_cycle),
            "pending": [
                (
                    ready_cycle,
                    {
                        "address": response.address,
                        "is_write": response.is_write,
                        "tag": response.tag,
                        "cycle": response.cycle,
                    },
                )
                for ready_cycle, response in self._pending
            ],
            "perf": self.perf.snapshot(),
        }

    def restore(self, payload: dict) -> None:
        """Restore scratchpad state from a :meth:`snapshot` payload."""
        self._cycle = payload["cycle"]
        self._accepts_this_cycle.clear()
        self._accepts_this_cycle.update(payload["accepts_this_cycle"])
        self._pending = [
            (
                ready_cycle,
                SharedResponse(
                    address=data["address"],
                    is_write=data["is_write"],
                    tag=data["tag"],
                    cycle=data["cycle"],
                ),
            )
            for ready_cycle, data in payload["pending"]
        ]
        self.perf.restore(payload["perf"])

    # -- fast-forward ------------------------------------------------------------------

    def next_response_cycle(self) -> int | None:
        """Earliest cycle a pending access completes (``None`` when idle)."""
        if not self._pending:
            return None
        return min(ready_cycle for ready_cycle, _ in self._pending)

    def skip_idle(self, cycles: int) -> None:
        """Advance ``cycles`` provably idle cycles in one jump (no accesses
        pending inside the window, so each skipped tick only moves the clock)."""
        self._cycle += cycles

    @property
    def busy(self) -> bool:
        return bool(self._pending)
