"""The memory hierarchy connecting cores to off-chip memory.

Each core owns an instruction cache and a data cache; cores in a cluster
may share an optional L2, clusters may share an optional L3, and everything
ultimately reaches the DRAM timing model (paper section 4.1.4 and
Figure 4).  ``MemorySubsystem`` wires the levels together, forwards fills
and write-through traffic downward, routes completed fills back upward, and
hands per-core responses to the timing cores every cycle.
"""

from __future__ import annotations

from typing import Any

from repro.cache.cache import CacheRequest, CacheResponse, LowerPort, NonBlockingCache
from repro.common.config import VortexConfig
from repro.common.perf import PerfCounters
from repro.mem.dram import DramModel, MemRequest


class _DramPort(LowerPort):
    """Lower port adapter that forwards cache traffic to the DRAM model."""

    # The DRAM request queue is shared and only fills while caches drain, so
    # one refusal holds for the rest of the cycle; a skipped attempt charges
    # exactly what ``DramModel.send`` charges on refusal.
    sticky_refusal = True

    def __init__(self, dram: DramModel):
        self.dram = dram

    def request_fill(self, cache: NonBlockingCache, line_address: int) -> bool:
        return self.dram.send(
            MemRequest(address=line_address, is_write=False, tag=(cache, line_address))
        )

    def request_write(self, cache: NonBlockingCache, address: int) -> bool:
        return self.dram.send(MemRequest(address=address, is_write=True, tag=None))

    def note_skipped_refusal(self, count: int = 1) -> None:
        self.dram.perf.incr("rejected", count)

    def refusal_horizon(self) -> int | None:
        # A full DRAM queue pops nothing before its head's ready cycle, and
        # it only refills during core drains — so refusal is guaranteed for
        # every cycle strictly before that head release.
        dram = self.dram
        if dram.can_accept:
            return None
        return dram.next_event_cycle()


class _CachePort(LowerPort):
    """Lower port adapter that forwards traffic into another cache level."""

    def __init__(self, lower_cache: NonBlockingCache, line_size: int):
        self.lower_cache = lower_cache
        self.line_size = line_size

    def request_fill(self, cache: NonBlockingCache, line_address: int) -> bool:
        # ``line_address`` is expressed in the *upper* cache's line units.
        byte_address = line_address * cache.config.line_size
        return self.lower_cache.send(
            CacheRequest(address=byte_address, is_write=False, tag=("fill", cache, line_address))
        )

    def request_write(self, cache: NonBlockingCache, address: int) -> bool:
        return self.lower_cache.send(
            CacheRequest(address=address, is_write=True, tag=("wt", cache, address))
        )


class MemorySubsystem:
    """All caches plus the DRAM model for one Vortex processor."""

    #: Construction-time topology (vxlint VX007): the level references are
    #: wiring into ``_levels``, whose caches serialize by name in
    #: :meth:`snapshot`.
    SNAPSHOT_EXCLUDED = frozenset({"config", "l2", "l3", "icaches", "dcaches"})

    def __init__(self, config: VortexConfig):
        self.config = config
        self.dram = DramModel(config.memory)
        self.perf = PerfCounters("memsys")
        dram_port = _DramPort(self.dram)

        # Optional L3 shared by all clusters.
        self.l3: NonBlockingCache | None = None
        if config.enable_l3:
            self.l3 = NonBlockingCache("l3", config.l3cache, lower=dram_port)
        below_l2_port = (
            _CachePort(self.l3, config.l3cache.line_size) if self.l3 is not None else dram_port
        )

        # Optional L2 per cluster.
        self.l2: list[NonBlockingCache | None] = []
        for cluster in range(config.num_clusters):
            if config.enable_l2:
                self.l2.append(
                    NonBlockingCache(f"l2_{cluster}", config.l2cache, lower=below_l2_port)
                )
            else:
                self.l2.append(None)

        # Per-core L1 instruction and data caches.
        self.icaches: list[NonBlockingCache] = []
        self.dcaches: list[NonBlockingCache] = []
        for core_id in range(config.num_cores):
            cluster = core_id // config.cores_per_cluster
            if self.l2[cluster] is not None:
                l1_lower: LowerPort = _CachePort(self.l2[cluster], config.l2cache.line_size)
            else:
                l1_lower = below_l2_port
            self.icaches.append(
                NonBlockingCache(f"icache{core_id}", config.icache, lower=l1_lower)
            )
            self.dcaches.append(
                NonBlockingCache(f"dcache{core_id}", config.dcache, lower=l1_lower)
            )

        # Every cache level, flattened once: the fast-forward event scan and
        # bulk skip run over this list every cycle-jump decision.
        self._levels: list[NonBlockingCache] = list(self.icaches) + list(self.dcaches)
        self._levels += [cache for cache in self.l2 if cache is not None]
        if self.l3 is not None:
            self._levels.append(self.l3)

    # -- observability ---------------------------------------------------------------

    def attach_trace(self, trace: Any) -> None:
        """Wire a :class:`~repro.trace.bus.TraceBus` into every memory level.

        Each component is only attached when its channel is enabled on the
        bus, so a filtered bus keeps the unrelated hot paths on the
        ``trace is None`` fast path.
        """
        self.dram.trace = trace if trace is not None and trace.wants("dram") else None
        for core_id, cache in enumerate(self.icaches):
            cache.trace_channel = "icache"
            cache.trace_core = core_id
            cache.trace = trace if trace is not None and trace.wants("icache") else None
        for core_id, cache in enumerate(self.dcaches):
            cache.trace_channel = "dcache"
            cache.trace_core = core_id
            cache.trace = trace if trace is not None and trace.wants("dcache") else None
        for l2cache in self.l2:
            if l2cache is not None:
                l2cache.trace_channel = "l2"
                l2cache.trace = trace if trace is not None and trace.wants("l2") else None
        if self.l3 is not None:
            self.l3.trace_channel = "l3"
            self.l3.trace = trace if trace is not None and trace.wants("l3") else None

    # -- per-cycle operation ---------------------------------------------------------

    def tick(self) -> dict[tuple[str, int], list[CacheResponse]]:
        """Advance every level one cycle.

        Returns the L1 responses grouped by ``("i" | "d", core_id)`` so the
        timing cores can complete their outstanding operations.
        """
        # DRAM completes first so its fills can propagate upward this cycle.
        for response in self.dram.tick():
            if response.is_write or response.tag is None:
                continue
            cache, line_address = response.tag
            cache.fill(line_address)

        # Lower cache levels tick before upper levels so responses flow upward.
        if self.l3 is not None:
            self._route_internal(self.l3.tick(), self.l3)
        for l2cache in self.l2:
            if l2cache is not None:
                self._route_internal(l2cache.tick(), l2cache)

        results: dict[tuple[str, int], list[CacheResponse]] = {}
        for core_id in range(self.config.num_cores):
            icache_responses = self.icaches[core_id].tick()
            dcache_responses = self.dcaches[core_id].tick()
            if icache_responses:
                results[("i", core_id)] = icache_responses
            if dcache_responses:
                results[("d", core_id)] = dcache_responses
        return results

    def _route_internal(self, responses: list[CacheResponse], level: NonBlockingCache) -> None:
        """Route L2/L3 responses back to the caches that requested them."""
        for response in responses:
            tag = response.tag
            if not isinstance(tag, tuple):
                continue
            kind = tag[0]
            if kind == "fill":
                _, upper_cache, line_address = tag
                upper_cache.fill(line_address)
            # Write-through acknowledgements need no routing.

    # -- checkpoint/restore ------------------------------------------------------------

    def _encode_tag(self, tag: object) -> object:
        """Encode a request tag as plain data (live caches become names).

        Tags are ``None``, ints/strs, or tuples that may embed a live
        :class:`NonBlockingCache` (DRAM fill tags, L2/L3 ``("fill", ...)`` /
        ``("wt", ...)`` tags).  Tuples are re-encoded as marker *lists* —
        unambiguous because no tag contains a list — so the decoder can
        rebuild the exact tuple shape and rebind caches by name.
        """
        if isinstance(tag, tuple):
            return ["tuple", *[self._encode_tag(item) for item in tag]]
        if isinstance(tag, NonBlockingCache):
            return ["cache", tag.name]
        return tag

    def _decode_tag(self, tag: object) -> object:
        """Invert :meth:`_encode_tag`, rebinding cache names to live caches."""
        if isinstance(tag, list):
            if tag[0] == "cache":
                return self._caches_by_name()[tag[1]]
            return tuple(self._decode_tag(item) for item in tag[1:])
        return tag

    def _caches_by_name(self) -> dict[str, NonBlockingCache]:
        return {cache.name: cache for cache in self._levels}

    def snapshot(self) -> dict:
        """Serialize DRAM plus every cache level (keyed by cache name)."""
        return {
            "dram": self.dram.snapshot(self._encode_tag),
            "caches": {
                cache.name: cache.snapshot(self._encode_tag) for cache in self._levels
            },
            "perf": self.perf.snapshot(),
        }

    def restore(self, payload: dict) -> None:
        """Restore the hierarchy from a :meth:`snapshot` payload.

        The subsystem must have been built from the same configuration (the
        driver-level envelope enforces this via the config fingerprint): the
        cache-name key set is the wiring, only the state is restored.
        """
        caches = self._caches_by_name()
        if set(payload["caches"]) != set(caches):
            raise ValueError(
                "cache hierarchy mismatch: snapshot has "
                f"{sorted(payload['caches'])}, subsystem has {sorted(caches)}"
            )
        self.dram.restore(payload["dram"], self._decode_tag)
        for name, cache_payload in payload["caches"].items():
            caches[name].restore(cache_payload, self._decode_tag)
        self.perf.restore(payload["perf"])

    # -- fast-forward ------------------------------------------------------------------

    def next_event_cycle(self) -> int | None:
        """Earliest cycle any memory-side state changes (``None`` = fully idle).

        Every in-flight request is visible either as a scheduled bank
        response at some cache level or as a DRAM queue entry (misses park
        in an MSHR *and* occupy the lower level's queue), so the minimum
        over those two families bounds the next fill, replay or response
        anywhere in the hierarchy.
        """
        result = self.dram.next_event_cycle()
        for cache in self._levels:
            ready = cache.next_response_cycle()
            if ready is not None and (result is None or ready < result):
                result = ready
        return result

    def skip_idle(self, cycles: int) -> None:
        """Advance every level ``cycles`` provably idle cycles in one jump."""
        self.dram.skip_idle(cycles)
        for cache in self._levels:
            cache.skip_idle(cycles)

    # -- inspection -------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while any cache level or the DRAM still has outstanding work."""
        if self.dram.pending:
            return True
        return any(cache.busy for cache in self._levels)

    def dcache(self, core_id: int) -> NonBlockingCache:
        return self.dcaches[core_id]

    def icache(self, core_id: int) -> NonBlockingCache:
        return self.icaches[core_id]

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-component counter snapshot for reports."""
        summary: dict[str, dict[str, int]] = {"dram": self.dram.perf.as_dict()}
        for cache in self.icaches + self.dcaches:
            summary[cache.name] = cache.counters()
        for cache in self.l2:
            if cache is not None:
                summary[cache.name] = cache.counters()
        if self.l3 is not None:
            summary[self.l3.name] = self.l3.counters()
        return summary
