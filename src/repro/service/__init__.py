"""Simulation-as-a-service: async sharded job server + content-addressed cache.

Public surface:

* :class:`SimulationService` / :class:`ServiceConfig` — the asyncio serving
  core (sharded worker fleet, bounded queues, retries, result cache).
* :class:`ServiceClient` — the blocking facade sessions and scripts use.
* :class:`ResultCache` / :class:`CacheStats` — the content-addressed cache.
"""

from repro.service.cache import CachedResult, CacheStats, ResultCache
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, ServiceStats, SimulationService
from repro.service.worker import InlineWorker, JobTimeout, ProcessWorker, WorkerCrash

__all__ = [
    "CacheStats",
    "CachedResult",
    "InlineWorker",
    "JobTimeout",
    "ProcessWorker",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceStats",
    "SimulationService",
    "WorkerCrash",
]
