"""Content-addressed result cache for the simulation service.

The simulators are deterministic (vxlint VX001 enforces it), so a completed
job's outcome is fully determined by its
:meth:`~repro.engine.session.KernelJob.cache_key`.  The cache stores the
*payload* form of the outcome — the
:meth:`~repro.runtime.report.ExecutionReport.to_payload` dict plus the
verification flag — and every hit reconstructs a fresh
:class:`~repro.engine.session.JobResult` from it.  Round-tripping through
the payload is what makes replays bit-identical: the served report is
rebuilt from the exact dict a cold run would serialize to.

Only *deterministic outcomes* are cacheable: successful runs and
verification failures (``passed=False`` with no error — rerunning cannot
change the answer).  Errored results are never stored, so a transient
infrastructure failure can never poison the cache.

Accounting is explicit — :meth:`lookup` and :meth:`store` do not count
anything themselves; the server calls the ``note_*`` hooks so an inflight
dedup is not double-counted as a miss.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.engine.session import JobResult, KernelJob
from repro.runtime.report import ExecutionReport


@dataclass(frozen=True)
class CachedResult:
    """The deterministic portion of a completed job's outcome."""

    passed: bool
    report_payload: dict[str, Any] | None
    #: wall-clock of the run that produced the entry (served back so cached
    #: results still report what the simulation originally cost).
    source_wall_seconds: float

    @classmethod
    def from_result(cls, result: JobResult) -> CachedResult:
        return cls(
            passed=result.passed,
            report_payload=result.report.to_payload() if result.report is not None else None,
            source_wall_seconds=result.wall_seconds,
        )

    def to_result(self, job: KernelJob) -> JobResult:
        """Materialize a served :class:`JobResult` for ``job``.

        ``attempts=0`` records that the backend executed nothing;
        ``wall_seconds`` carries the *original* run's cost (the serve itself
        is effectively free and the batch wall-clock captures it anyway).
        """
        report = (
            ExecutionReport.from_payload(self.report_payload)
            if self.report_payload is not None
            else None
        )
        return JobResult(
            job=job,
            report=report,
            passed=self.passed,
            wall_seconds=self.source_wall_seconds,
            attempts=0,
            cached=True,
        )


@dataclass
class CacheStats:
    """Hit/miss/dedup accounting for one service lifetime."""

    hits: int = 0
    misses: int = 0
    inflight_dedup: int = 0
    uncacheable: int = 0
    stores: int = 0
    evictions: int = 0

    def note_hit(self) -> None:
        self.hits += 1

    def note_miss(self) -> None:
        self.misses += 1

    def note_dedup(self) -> None:
        self.inflight_dedup += 1

    def note_uncacheable(self) -> None:
        self.uncacheable += 1

    @property
    def hit_rate(self) -> float:
        served = self.hits + self.misses + self.inflight_dedup
        return self.hits / served if served else 0.0

    def to_payload(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "inflight_dedup": self.inflight_dedup,
            "uncacheable": self.uncacheable,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """LRU-bounded map from cache key to :class:`CachedResult`."""

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[str, CachedResult] = OrderedDict()

    def lookup(self, key: str) -> CachedResult | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def store(self, key: str, entry: CachedResult) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.stats.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries
