"""Synchronous client facade over :class:`~repro.service.server.SimulationService`.

The session layer (and plain scripts) are synchronous; the service is
asyncio.  :class:`ServiceClient` bridges the two by owning a background
event-loop thread: the service lives entirely on that loop, and the
client's blocking methods marshal work onto it with
``asyncio.run_coroutine_threadsafe``.  One client = one fleet + one result
cache; share a client across :class:`~repro.engine.session.Session`
objects to share the cache.
"""

from __future__ import annotations

import asyncio
import threading
from collections.abc import Callable
from typing import Any

from repro.engine.session import JobResult, KernelJob
from repro.service.server import ServiceConfig, SimulationService


class ServiceClient:
    """Blocking facade over a :class:`SimulationService` on a background loop."""

    def __init__(self, config: ServiceConfig | None = None):
        self._service = SimulationService(config)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        self._closed = False
        self._call(self._service.start)

    def _call(self, factory: Callable[..., Any], *args: Any) -> Any:
        # The coroutine is created only after the closed check, so a call on
        # a closed client raises without leaking a never-awaited coroutine.
        if self._closed:
            raise RuntimeError("ServiceClient is closed")
        return asyncio.run_coroutine_threadsafe(factory(*args), self._loop).result()

    # -- serving ------------------------------------------------------------------------

    def run_jobs(self, jobs: list[KernelJob]) -> list[JobResult]:
        """Serve a batch (blocking), results in submission order."""
        return list(self._call(self._service.run_batch, list(jobs)))

    def run_job(self, job: KernelJob) -> JobResult:
        """Serve one job (blocking)."""
        return self.run_jobs([job])[0]

    # -- introspection ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self._service.num_shards

    @property
    def config(self) -> ServiceConfig:
        return self._service.config

    def stats(self) -> dict[str, Any]:
        """A JSON-ready snapshot of serving + cache statistics."""
        return self._service.stats_payload()

    def worker_pids(self) -> list[int | None]:
        return self._service.worker_pids()

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the fleet and the background loop (idempotent)."""
        if self._closed:
            return
        try:
            self._call(self._service.close)
        finally:
            self._closed = True
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop.close()

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
