"""Worker protocol for the simulation service's sharded process fleet.

Each shard owns one :class:`ProcessWorker`: a dedicated child process
connected by a duplex pipe, processing one job at a time.  The protocol is
hand-rolled (rather than a ``ProcessPoolExecutor``) because the server
needs capabilities a pool hides:

* **kill-on-timeout** — a job that exceeds its budget is abandoned by
  terminating the worker process (the only way to interrupt a compute-bound
  simulation), surfaced as :class:`JobTimeout`;
* **crash detection** — a worker dying mid-job closes the pipe, surfaced as
  :class:`WorkerCrash` so the server can retry the job on a respawned
  worker;
* **warm per-worker state** — a :class:`WarmPool` lives inside the worker
  process and keeps kernel instances (and therefore their assembled program
  images, ~0.7 ms each) warm across jobs.

Warm-pool scope — devices warm-start from pristine checkpoints: re-running
a kernel on a dirty :class:`~repro.runtime.device.VortexDevice` produces
*wrong* results (measured: 15009 vs 1721 cycles for the same job), because
the allocator high-water mark shifts buffer addresses, timing-model caches
start warm and performance counters accumulate.  Instead of rebuilding the
device per job, the pool builds one device per (config, driver) point,
takes its :meth:`~repro.runtime.device.VortexDevice.checkpoint` while
still pristine, and *restores* that envelope before every reuse — the
versioned restore rewinds every layer (memory pages, register files,
caches, MSHRs, counters, allocator) to the exact post-construction state,
so the bit-identical replay the content-addressed cache depends on is
preserved by construction (``benchmarks/service_smoke.py`` measures it).
The expensive, result-neutral state (program assembly, process warm-up)
stays warm either way.

Workers prefer the ``fork`` start method: it inherits the parent's warm
imports (faster spawn) and, in tests, inherited module state serves as a
fault-injection seam (:data:`_FAULT_INJECTOR`).  Where processes cannot be
created at all, :class:`InlineWorker` degrades to in-process execution with
the same interface (minus kill-on-timeout).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from collections.abc import Callable
from multiprocessing.connection import Connection
from typing import Any

from repro.engine.session import JobResult, KernelJob

#: Test seam: when not ``None``, called with each job inside the worker
#: before execution.  With the ``fork`` start method a monkeypatched value
#: is inherited by newly spawned workers, letting tests inject crashes
#: (e.g. ``os._exit``) deterministically without touching the protocol.
_FAULT_INJECTOR: Callable[[KernelJob], None] | None = None


class WorkerCrash(RuntimeError):
    """The worker process died (or its pipe broke) while a job was in flight."""


class JobTimeout(RuntimeError):
    """A job exceeded its time budget and its worker was terminated."""


class WarmPool:
    """Per-worker warm state reused across jobs (see module docstring)."""

    def __init__(self) -> None:
        self._kernels: dict[str, Any] = {}
        #: One (device, pristine checkpoint) pair per (config, driver) point.
        self._devices: dict[tuple[str, str], tuple[Any, dict]] = {}
        self.warm_hits = 0
        #: Jobs served by restoring a pooled device from its pristine
        #: checkpoint instead of constructing a new one.
        self.restore_hits = 0

    def kernel(self, name: str) -> Any:
        """The (warm) kernel instance for ``name``; assembles on first use."""
        from repro.kernels import KERNELS

        instance = self._kernels.get(name)
        if instance is None:
            instance = KERNELS[name]()
            instance.build_program()
            self._kernels[name] = instance
        else:
            self.warm_hits += 1
        return instance

    def device(self, job: KernelJob) -> Any:
        """A pristine device for ``job``'s (config, driver) point.

        The first job at a point constructs the device and captures its
        pristine checkpoint; later jobs restore that envelope, rewinding
        every simulator layer to the exact post-construction state.
        """
        from repro.runtime.checkpoint import config_fingerprint
        from repro.runtime.device import VortexDevice

        key = (config_fingerprint(job.config), job.spec.driver_name)
        entry = self._devices.get(key)
        if entry is None:
            device = VortexDevice(job.config, driver=job.spec)
            self._devices[key] = (device, device.checkpoint())
            return device
        device, pristine = entry
        device.restore(pristine)
        self.restore_hits += 1
        return device

    def run_job(self, job: KernelJob) -> JobResult:
        """Execute ``job`` on a pristine warm-started device.

        Mirrors :func:`repro.engine.session.execute_job` exactly except the
        kernel instance (with its cached program image) and the device (via
        pristine-checkpoint restore) are reused.  Restart-midpoint jobs
        delegate straight to :func:`~repro.engine.session.execute_job`: the
        restore leg's whole point is exercising fresh-device checkpoint
        transport, which warm reuse would short-circuit.
        """
        if job.restart_midpoint:
            from repro.engine.session import execute_job

            return execute_job(job)
        started = time.time()
        clock = time.perf_counter()
        try:
            kernel = self.kernel(job.kernel)
            device = self.device(job)
            run = kernel.run(device, size=job.size, verify=job.verify, options=job.options)
            wall = time.perf_counter() - clock
            return JobResult(
                job=job,
                report=run.report,
                passed=run.passed,
                wall_seconds=wall,
                started_at=started,
                finished_at=time.time(),
            )
        except Exception as exc:
            wall = time.perf_counter() - clock
            return JobResult(
                job=job,
                wall_seconds=wall,
                started_at=started,
                finished_at=time.time(),
                error=f"{type(exc).__name__}: {exc}",
                error_type=type(exc).__name__,
            )


def worker_main(conn: Connection) -> None:
    """Entry point of a worker process: serve jobs off ``conn`` until told to stop."""
    pool = WarmPool()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            conn.close()
            return
        if kind == "ping":
            conn.send(("pong",))
            continue
        # ("run", job)
        job: KernelJob = message[1]
        if _FAULT_INJECTOR is not None:
            _FAULT_INJECTOR(job)
        result = pool.run_job(job)
        try:
            conn.send(("done", result))
        except (BrokenPipeError, OSError):
            return


def _start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class ProcessWorker:
    """Parent-side handle on one worker process (one job in flight at a time)."""

    def __init__(self) -> None:
        ctx = multiprocessing.get_context(_start_method())
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(target=worker_main, args=(child_conn,), daemon=True)
        with warnings.catch_warnings():
            # Python 3.12 warns on fork()ing a process that has threads (the
            # service client's event-loop thread).  The worker only runs
            # self-contained simulation code off a pipe, so the fork is safe.
            warnings.simplefilter("ignore", DeprecationWarning)
            self._process.start()
        child_conn.close()
        self.jobs_served = 0

    @property
    def pid(self) -> int | None:
        return self._process.pid

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    def request(self, job: KernelJob, timeout: float | None) -> JobResult:
        """Run ``job`` on the worker, blocking up to ``timeout`` seconds.

        Raises :class:`WorkerCrash` if the worker dies mid-job and
        :class:`JobTimeout` (after terminating the worker — the handle is
        dead either way and must be replaced) when the budget elapses.
        """
        try:
            self._conn.send(("run", job))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrash(f"worker pid={self.pid} pipe closed on send: {exc}") from exc
        try:
            if not self._conn.poll(timeout):
                self.terminate()
                raise JobTimeout(
                    f"job {job.describe()!r} exceeded {timeout}s on worker pid={self.pid}"
                )
            message = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrash(f"worker pid={self.pid} died mid-job: {exc}") from exc
        result: JobResult = message[1]
        self.jobs_served += 1
        return result

    def terminate(self) -> None:
        """Kill the worker process immediately (used on timeout/shutdown)."""
        if self._process.is_alive():
            self._process.kill()
        self._process.join(timeout=5.0)
        self._conn.close()

    def stop(self) -> None:
        """Ask the worker to exit cleanly, then reap it."""
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=5.0)
        self._conn.close()


class InlineWorker:
    """Degraded in-process stand-in for :class:`ProcessWorker`.

    Used where the platform cannot create processes at all.  Same
    ``request`` interface; ``timeout`` cannot be enforced (a thread cannot
    be killed) and crashes cannot be isolated — documented trade-off of the
    fallback, not of the service design.
    """

    def __init__(self) -> None:
        self._pool = WarmPool()
        self.jobs_served = 0

    @property
    def pid(self) -> int | None:
        return os.getpid()

    @property
    def alive(self) -> bool:
        return True

    def request(self, job: KernelJob, timeout: float | None) -> JobResult:
        if _FAULT_INJECTOR is not None:
            _FAULT_INJECTOR(job)
        result = self._pool.run_job(job)
        self.jobs_served += 1
        return result

    def terminate(self) -> None:
        pass

    def stop(self) -> None:
        pass


def create_worker(mode: str = "auto") -> ProcessWorker | InlineWorker:
    """Build a worker: ``"process"``, ``"inline"``, or ``"auto"`` (try process)."""
    if mode == "inline":
        return InlineWorker()
    if mode == "process":
        return ProcessWorker()
    if mode != "auto":
        raise ValueError(f"unknown worker mode {mode!r}")
    try:
        return ProcessWorker()
    except (OSError, ImportError):
        return InlineWorker()
