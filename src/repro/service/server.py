"""The asyncio simulation service: sharded dispatch, retries, result cache.

:class:`SimulationService` is the serving core behind
``Session(executor="service")``.  A submitted
:class:`~repro.engine.session.KernelJob` flows through four stages:

1. **Identity** — :meth:`KernelJob.cache_key` computes the job's canonical
   content hash (program bytes + config + resolved spec + options).  Jobs
   whose key cannot be computed (unknown kernel) are uncacheable and go
   straight to a worker, which reports the deterministic failure.
2. **Cache / dedup** — a key already completed is served from the
   content-addressed :class:`~repro.service.cache.ResultCache`
   (bit-identical payload replay); a key currently *in flight* awaits the
   existing execution instead of enqueueing a duplicate.
3. **Sharding + backpressure** — the key routes to a fixed shard
   (``int(key[:8], 16) % num_shards``, so identical jobs serialize onto the
   same worker and its warm state), through a bounded ``asyncio.Queue``:
   when a shard's queue is full, ``submit`` *blocks* — backpressure
   propagates to the client instead of buffering unboundedly.
4. **Execution + retry** — the shard's consumer runs the job on its worker
   with a per-job timeout.  Infrastructure failures
   (:class:`~repro.service.worker.WorkerCrash`,
   :class:`~repro.service.worker.JobTimeout`) respawn the worker and retry
   with exponential backoff up to ``max_attempts``; *deterministic* job
   failures (the worker answered with an error) are returned immediately —
   retrying cannot change a deterministic outcome, and they are never
   cached, so a failure cannot poison the cache either.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from repro.engine.session import JobResult, KernelJob
from repro.service.cache import CachedResult, ResultCache
from repro.service.worker import (
    InlineWorker,
    JobTimeout,
    ProcessWorker,
    WorkerCrash,
    create_worker,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`SimulationService`."""

    #: Worker shards (= processes = max jobs simulating concurrently).
    num_shards: int = 4
    #: Bounded per-shard queue depth; a full queue blocks ``submit``.
    queue_depth: int = 16
    #: Per-job wall-clock budget in seconds (the worker is killed past it).
    job_timeout: float | None = 120.0
    #: Total execution attempts per job (1 first try + retries).
    max_attempts: int = 3
    #: Base backoff before retry ``n`` waits ``retry_backoff * 2**(n-1)``.
    retry_backoff: float = 0.05
    #: ``"process"`` | ``"inline"`` | ``"auto"`` (process, falling back).
    worker_mode: str = "auto"
    #: Result-cache capacity (entries).
    cache_entries: int = 4096

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


@dataclass
class ServiceStats:
    """Serving-side accounting (cache accounting lives on the cache)."""

    submitted: int = 0
    executed: int = 0
    retries: int = 0
    worker_crashes: int = 0
    timeouts: int = 0
    respawns: int = 0
    deterministic_failures: int = 0

    def to_payload(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "timeouts": self.timeouts,
            "respawns": self.respawns,
            "deterministic_failures": self.deterministic_failures,
        }


@dataclass
class _Shard:
    """One worker, its bounded queue, and its consumer task."""

    index: int
    worker: ProcessWorker | InlineWorker
    queue: asyncio.Queue[tuple[KernelJob, str | None, asyncio.Future[JobResult]]]
    consumer: asyncio.Task[None] | None = None
    enqueued: int = field(default=0)


class SimulationService:
    """Async sharded job server with a content-addressed result cache.

    Lifecycle: ``await start()`` brings up the worker fleet, then
    :meth:`submit` / :meth:`run_batch` serve jobs until ``await close()``.
    Also usable as an async context manager.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.cache = ResultCache(max_entries=self.config.cache_entries)
        self.stats = ServiceStats()
        self._shards: list[_Shard] = []
        self._inflight: dict[str, asyncio.Future[JobResult]] = {}
        self._round_robin = 0
        self._started = False

    # -- lifecycle ----------------------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        loop = asyncio.get_running_loop()
        for index in range(self.config.num_shards):
            worker = await loop.run_in_executor(None, create_worker, self.config.worker_mode)
            shard = _Shard(
                index=index,
                worker=worker,
                queue=asyncio.Queue(maxsize=self.config.queue_depth),
            )
            shard.consumer = asyncio.ensure_future(self._consume(shard))
            self._shards.append(shard)
        self._started = True

    async def close(self) -> None:
        for shard in self._shards:
            if shard.consumer is not None:
                shard.consumer.cancel()
        for shard in self._shards:
            if shard.consumer is not None:
                try:
                    await shard.consumer
                except asyncio.CancelledError:
                    pass
        loop = asyncio.get_running_loop()
        for shard in self._shards:
            await loop.run_in_executor(None, shard.worker.stop)
        self._shards = []
        self._started = False

    async def __aenter__(self) -> SimulationService:
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    @property
    def num_shards(self) -> int:
        return len(self._shards) or self.config.num_shards

    def worker_pids(self) -> list[int | None]:
        """The live worker pids, by shard (``None`` for inline fallbacks)."""
        return [shard.worker.pid for shard in self._shards]

    def stats_payload(self) -> dict[str, Any]:
        payload = self.stats.to_payload()
        payload["cache"] = self.cache.stats.to_payload()
        payload["num_shards"] = self.num_shards
        return payload

    # -- submission ---------------------------------------------------------------------

    @staticmethod
    def _job_key(job: KernelJob) -> str | None:
        """The job's cache key, or ``None`` when it has none (uncacheable)."""
        try:
            return job.cache_key()
        except Exception:
            return None

    def _shard_for(self, key: str | None) -> _Shard:
        if key is not None:
            index = int(key[:8], 16) % len(self._shards)
        else:
            index = self._round_robin % len(self._shards)
            self._round_robin += 1
        return self._shards[index]

    async def submit(self, job: KernelJob) -> JobResult:
        """Serve one job: cache hit, inflight dedup, or enqueue + await.

        Blocks (asynchronously) when the target shard's queue is full —
        this is the backpressure bound.
        """
        if not self._started:
            await self.start()
        self.stats.submitted += 1
        key = self._job_key(job)
        if key is None:
            self.cache.stats.note_uncacheable()
            return await self._enqueue(job, None)
        cached = self.cache.lookup(key)
        if cached is not None:
            self.cache.stats.note_hit()
            return cached.to_result(job)
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.cache.stats.note_dedup()
            primary = await asyncio.shield(inflight)
            return self._replay_for(primary, job)
        self.cache.stats.note_miss()
        return await self._enqueue(job, key)

    async def run_batch(self, jobs: list[KernelJob]) -> list[JobResult]:
        """Serve a batch concurrently, results in submission order."""
        return list(await asyncio.gather(*(self.submit(job) for job in jobs)))

    def _replay_for(self, primary: JobResult, job: KernelJob) -> JobResult:
        """A dedup follower's result: the primary's outcome for *this* job."""
        if primary.error is not None:
            # The primary failed; the follower reports the same failure
            # (deterministic) without pretending it executed.
            return JobResult(
                job=job,
                error=primary.error,
                error_type=primary.error_type,
                attempts=0,
                cached=True,
            )
        return CachedResult.from_result(primary).to_result(job)

    async def _enqueue(self, job: KernelJob, key: str | None) -> JobResult:
        loop = asyncio.get_running_loop()
        future: asyncio.Future[JobResult] = loop.create_future()
        if key is not None:
            self._inflight[key] = future
        shard = self._shard_for(key)
        try:
            await shard.queue.put((job, key, future))
        except BaseException:
            if key is not None and self._inflight.get(key) is future:
                del self._inflight[key]
            raise
        shard.enqueued += 1
        try:
            return await asyncio.shield(future)
        finally:
            if key is not None and self._inflight.get(key) is future:
                del self._inflight[key]

    # -- execution ----------------------------------------------------------------------

    async def _consume(self, shard: _Shard) -> None:
        """Shard consumer: drain the queue, one job at a time, with retries."""
        while True:
            job, key, future = await shard.queue.get()
            try:
                result = await self._execute_with_retry(shard, job)
            except asyncio.CancelledError:
                if not future.done():
                    future.cancel()
                raise
            except Exception as exc:  # defensive: consumer must never die
                result = JobResult(
                    job=job,
                    error=f"{type(exc).__name__}: {exc}",
                    error_type=type(exc).__name__,
                )
            if key is not None and result.error is None:
                # Only deterministic outcomes (success or a verification
                # failure) enter the cache; errors never do.
                self.cache.store(key, CachedResult.from_result(result))
            if not future.done():
                future.set_result(result)
            shard.queue.task_done()

    async def _execute_with_retry(self, shard: _Shard, job: KernelJob) -> JobResult:
        loop = asyncio.get_running_loop()
        last_error: Exception | None = None
        for attempt in range(1, self.config.max_attempts + 1):
            try:
                result = await loop.run_in_executor(
                    None, shard.worker.request, job, self.config.job_timeout
                )
            except (WorkerCrash, JobTimeout) as exc:
                last_error = exc
                if isinstance(exc, JobTimeout):
                    self.stats.timeouts += 1
                else:
                    self.stats.worker_crashes += 1
                await self._respawn(shard)
                if attempt < self.config.max_attempts:
                    self.stats.retries += 1
                    await asyncio.sleep(self.config.retry_backoff * 2 ** (attempt - 1))
                continue
            self.stats.executed += 1
            result.attempts = attempt
            if result.error is not None:
                self.stats.deterministic_failures += 1
            return result
        assert last_error is not None
        return JobResult(
            job=job,
            error=f"{type(last_error).__name__}: {last_error}",
            error_type=type(last_error).__name__,
            attempts=self.config.max_attempts,
        )

    async def _respawn(self, shard: _Shard) -> None:
        """Replace a dead/killed worker with a fresh one."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, shard.worker.terminate)
        shard.worker = await loop.run_in_executor(
            None, create_worker, self.config.worker_mode
        )
        self.stats.respawns += 1
