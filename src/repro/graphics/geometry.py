"""The geometry stage: vertex transform, clipping and the viewport mapping.

In the Vortex system this stage runs on the *host* processor so the
accelerator can spend all of its resources on rasterization (paper
section 5.5); here it is ordinary numpy code operating on
:class:`Vertex` records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np


@dataclass
class Vertex:
    """One input vertex: position plus interpolated attributes."""

    position: tuple[float, float, float, float]
    color: tuple[float, float, float, float] = (1.0, 1.0, 1.0, 1.0)
    uv: tuple[float, float] = (0.0, 0.0)

    def as_array(self) -> np.ndarray:
        return np.asarray(self.position, dtype=np.float64)


@dataclass
class ScreenVertex:
    """A vertex after perspective divide and viewport transform."""

    x: float
    y: float
    z: float  # depth in [0, 1]
    w: float  # original clip-space w (for perspective-correct interpolation)
    color: tuple[float, float, float, float]
    uv: tuple[float, float]


class Matrix4:
    """Column-vector 4x4 transforms used by the vertex stage."""

    @staticmethod
    def identity() -> np.ndarray:
        return np.eye(4, dtype=np.float64)

    @staticmethod
    def translation(x: float, y: float, z: float) -> np.ndarray:
        matrix = np.eye(4, dtype=np.float64)
        matrix[:3, 3] = (x, y, z)
        return matrix

    @staticmethod
    def scale(x: float, y: float, z: float) -> np.ndarray:
        return np.diag((x, y, z, 1.0)).astype(np.float64)

    @staticmethod
    def rotation_z(angle: float) -> np.ndarray:
        matrix = np.eye(4, dtype=np.float64)
        matrix[0, 0] = math.cos(angle)
        matrix[0, 1] = -math.sin(angle)
        matrix[1, 0] = math.sin(angle)
        matrix[1, 1] = math.cos(angle)
        return matrix

    @staticmethod
    def rotation_y(angle: float) -> np.ndarray:
        matrix = np.eye(4, dtype=np.float64)
        matrix[0, 0] = math.cos(angle)
        matrix[0, 2] = math.sin(angle)
        matrix[2, 0] = -math.sin(angle)
        matrix[2, 2] = math.cos(angle)
        return matrix

    @staticmethod
    def perspective(fov_y: float, aspect: float, near: float, far: float) -> np.ndarray:
        """A right-handed perspective projection (OpenGL convention)."""
        if near <= 0 or far <= near:
            raise ValueError("invalid near/far planes")
        f = 1.0 / math.tan(fov_y / 2.0)
        matrix = np.zeros((4, 4), dtype=np.float64)
        matrix[0, 0] = f / aspect
        matrix[1, 1] = f
        matrix[2, 2] = (far + near) / (near - far)
        matrix[2, 3] = (2.0 * far * near) / (near - far)
        matrix[3, 2] = -1.0
        return matrix

    @staticmethod
    def orthographic(left: float, right: float, bottom: float, top: float,
                     near: float = -1.0, far: float = 1.0) -> np.ndarray:
        matrix = np.eye(4, dtype=np.float64)
        matrix[0, 0] = 2.0 / (right - left)
        matrix[1, 1] = 2.0 / (top - bottom)
        matrix[2, 2] = -2.0 / (far - near)
        matrix[0, 3] = -(right + left) / (right - left)
        matrix[1, 3] = -(top + bottom) / (top - bottom)
        matrix[2, 3] = -(far + near) / (far - near)
        return matrix


#: A programmable vertex shader maps one Vertex to clip-space position +
#: attributes; the default shader applies the bound MVP matrix.
VertexShader = Callable[[Vertex, np.ndarray], tuple[np.ndarray, Vertex]]


def default_vertex_shader(vertex: Vertex, mvp: np.ndarray) -> tuple[np.ndarray, Vertex]:
    """Transform the position by the model-view-projection matrix."""
    clip = mvp @ vertex.as_array()
    return clip, vertex


class GeometryStage:
    """Vertex shading, trivial clipping and the viewport transform."""

    def __init__(self, width: int, height: int, shader: VertexShader | None = None):
        self.width = width
        self.height = height
        self.shader = shader or default_vertex_shader
        self.mvp = Matrix4.identity()

    def set_mvp(self, matrix: np.ndarray) -> None:
        self.mvp = np.asarray(matrix, dtype=np.float64)

    # -- per-vertex processing ------------------------------------------------------------

    def process_vertex(self, vertex: Vertex) -> ScreenVertex | None:
        """Run the vertex shader and viewport-map one vertex.

        Returns ``None`` when the vertex lands behind the eye (w <= 0); the
        triangle assembly stage drops primitives containing such vertices
        (near-plane clipping by rejection, documented in DESIGN.md).
        """
        clip, attributes = self.shader(vertex, self.mvp)
        w = float(clip[3])
        if w <= 1e-9:
            return None
        ndc = clip[:3] / w
        x = (ndc[0] * 0.5 + 0.5) * (self.width - 1)
        y = (1.0 - (ndc[1] * 0.5 + 0.5)) * (self.height - 1)
        z = ndc[2] * 0.5 + 0.5
        return ScreenVertex(
            x=float(x), y=float(y), z=float(z), w=w,
            color=attributes.color, uv=attributes.uv,
        )

    def assemble_triangles(
        self, vertices: Sequence[Vertex]
    ) -> list[tuple[ScreenVertex, ScreenVertex, ScreenVertex]]:
        """Process a vertex stream into screen-space triangles.

        Triangles with any rejected vertex, or falling completely outside
        the viewport, are culled here — the clipping role of the geometry
        stage in Figure 2.
        """
        screen = [self.process_vertex(vertex) for vertex in vertices]
        triangles = []
        for index in range(0, len(screen) - 2, 3):
            tri = screen[index : index + 3]
            if any(vertex is None for vertex in tri):
                continue
            if self._outside_viewport(tri):
                continue
            triangles.append(tuple(tri))
        return triangles

    def _outside_viewport(self, tri) -> bool:
        xs = [vertex.x for vertex in tri]
        ys = [vertex.y for vertex in tri]
        if max(xs) < 0 or min(xs) > self.width - 1:
            return True
        if max(ys) < 0 or min(ys) > self.height - 1:
            return True
        if all(vertex.z < 0.0 for vertex in tri) or all(vertex.z > 1.0 for vertex in tri):
            return True
        return False
