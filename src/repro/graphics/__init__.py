"""The software 3D-graphics pipeline (paper sections 2, 4.2 and 5.5).

Vortex follows Larrabee: the rendering pipeline is implemented in software
— geometry processing on the host, tile-based rasterization and fragment
processing as data-parallel work — with only texture sampling accelerated
in hardware through the ``tex`` instruction.  This package implements that
pipeline:

* :mod:`repro.graphics.framebuffer` — color/depth/stencil render targets,
* :mod:`repro.graphics.geometry`   — vertex transform, clipping, viewport,
* :mod:`repro.graphics.tiles`      — tile binning (tile-based rendering),
* :mod:`repro.graphics.raster`     — point/line/triangle rasterization with
  barycentric attribute interpolation,
* :mod:`repro.graphics.fragment`   — depth/stencil/alpha/fog/blend,
* :mod:`repro.graphics.pipeline`   — an OpenGL-ES-style context tying the
  stages together, with texture sampling routed through the same
  :class:`~repro.texture.sampler.TextureSampler` the hardware unit uses.
"""

from repro.graphics.framebuffer import Framebuffer
from repro.graphics.geometry import Vertex, Matrix4, GeometryStage
from repro.graphics.tiles import TileGrid
from repro.graphics.raster import Rasterizer, Fragment, FragmentBatch
from repro.graphics.fragment import FragmentOps, CompareFunc, BlendMode
from repro.graphics.pipeline import GraphicsContext, PrimitiveType, GRAPHICS_ENGINES

__all__ = [
    "Framebuffer",
    "Vertex",
    "Matrix4",
    "GeometryStage",
    "TileGrid",
    "Rasterizer",
    "Fragment",
    "FragmentBatch",
    "FragmentOps",
    "CompareFunc",
    "BlendMode",
    "GraphicsContext",
    "PrimitiveType",
    "GRAPHICS_ENGINES",
]
