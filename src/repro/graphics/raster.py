"""Rasterization: point, line and triangle primitives.

Triangles use the standard edge-function formulation with
perspective-correct barycentric interpolation of depth, color and texture
coordinates; lines use a DDA walk; points write single fragments.  The
rasterizer produces :class:`Fragment` records that the fragment-processing
stage (depth/stencil/alpha/fog/blend) consumes — the same split as the
paper's software rendering pipeline, where fragments are the unit of
data-parallel work handed to the compute kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from repro.graphics.geometry import ScreenVertex
from repro.graphics.tiles import Tile


@dataclass
class Fragment:
    """One candidate pixel produced by rasterization.

    ``duv_dx``/``duv_dy`` hold the per-quad screen-space finite differences
    of the texture coordinates (zero unless the rasterizer was asked for
    derivatives); the pipeline turns them into a mipmap level of detail.
    """

    x: int
    y: int
    depth: float
    color: tuple[float, float, float, float]
    uv: tuple[float, float]
    duv_dx: tuple[float, float] = (0.0, 0.0)
    duv_dy: tuple[float, float] = (0.0, 0.0)


@dataclass
class FragmentBatch:
    """A batch of fragments with unique pixels, as parallel arrays.

    Produced by the vectorized rasterization paths and consumed by
    :meth:`~repro.graphics.fragment.FragmentOps.process_many`; the arrays
    are index-aligned (entry ``i`` of each is one fragment).  Every (x, y)
    pair in one batch is distinct, so batched read-modify-write framebuffer
    operations (blending, depth) are order-equivalent to the scalar
    per-fragment loop.
    """

    xs: np.ndarray  # int lane of pixel x coordinates
    ys: np.ndarray  # int lane of pixel y coordinates
    depth: np.ndarray  # float64 interpolated depths
    color: np.ndarray  # (N, 4) float64 RGBA
    uv: np.ndarray  # (N, 2) float64 texture coordinates
    duv_dx: np.ndarray | None = None  # (N, 2) per-quad uv finite differences along x
    duv_dy: np.ndarray | None = None  # (N, 2) per-quad uv finite differences along y

    def __len__(self) -> int:
        return int(self.xs.shape[0])


def _edge(ax: float, ay: float, bx: float, by: float, px: float, py: float) -> float:
    """Signed area of the (a, b, p) triangle (the edge function)."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def _interp_uv(v0, v1, v2, area: float, inv_w, px, py):
    """Perspective-correct uv at arbitrary sample positions.

    ``px``/``py`` may be python floats (scalar rasterizer) or float64
    arrays (vectorized rasterizer); every operation is written once so both
    callers evaluate the exact same IEEE-754 expression sequence.  Sample
    positions where the interpolated 1/w denominator is not positive
    (behind the eye — only reachable for the off-triangle helper pixels of
    a derivative quad) fall back to a denominator of 1 to stay finite.
    """
    w0 = (v2.x - v1.x) * (py - v1.y) - (v2.y - v1.y) * (px - v1.x)
    w1 = (v0.x - v2.x) * (py - v2.y) - (v0.y - v2.y) * (px - v2.x)
    w2 = (v1.x - v0.x) * (py - v0.y) - (v1.y - v0.y) * (px - v0.x)
    b0 = w0 / area
    b1 = w1 / area
    b2 = w2 / area
    denom = (b0 * inv_w[0] + b1 * inv_w[1]) + b2 * inv_w[2]
    # `not denom > 0.0` (rather than `denom <= 0.0`) so NaN denominators
    # take the fallback in the scalar branch exactly as np.where does in
    # the array branch — both engines must agree bit for bit.
    if isinstance(denom, np.ndarray):
        denom = np.where(denom > 0.0, denom, 1.0)
    elif not denom > 0.0:
        denom = 1.0
    p0 = b0 * inv_w[0] / denom
    p1 = b1 * inv_w[1] / denom
    p2 = b2 * inv_w[2] / denom
    u = (p0 * v0.uv[0] + p1 * v1.uv[0]) + p2 * v2.uv[0]
    v = (p0 * v0.uv[1] + p1 * v1.uv[1]) + p2 * v2.uv[1]
    return u, v


def _quad_derivatives(v0, v1, v2, area: float, inv_w, qx, qy):
    """Finite-difference uv derivatives over a 2x2 fragment quad.

    ``qx``/``qy`` are the pixel-centre coordinates of each quad's top-left
    pixel (scalars or arrays).  The uv attribute is evaluated at that
    corner and at its +x / +y neighbours — helper pixels participate even
    when the triangle does not cover them, exactly like the hardware quad —
    and the two differences are shared by every fragment of the quad.
    Returns ``((du_dx, dv_dx), (du_dy, dv_dy))``.
    """
    u00, v00 = _interp_uv(v0, v1, v2, area, inv_w, qx, qy)
    u10, v10 = _interp_uv(v0, v1, v2, area, inv_w, qx + 1.0, qy)
    u01, v01 = _interp_uv(v0, v1, v2, area, inv_w, qx, qy + 1.0)
    return (u10 - u00, v10 - v00), (u01 - u00, v01 - v00)


def _edge_accepts_zero(ax: float, ay: float, bx: float, by: float) -> bool:
    """Top-left fill rule: does a pixel exactly on edge (a -> b) belong to it?

    With screen y growing downward and the winding normalized so the area
    is positive, the edges of a triangle run clockwise on screen.  A pixel
    centre that lies exactly on an edge is owned by the triangle whose edge
    is a *top* edge (horizontal, pointing in +x) or a *left* edge (pointing
    in -y); the adjacent triangle sees the same edge with the opposite
    direction and rejects it, so shared-edge pixels are shaded exactly once.
    """
    dy = by - ay
    return dy < 0 or (dy == 0 and bx - ax > 0)


class Rasterizer:
    """Generates fragments for screen-space primitives.

    With ``perspective_depth`` the interpolated depth uses the same
    perspective-correct 1/w weights as color and uv instead of the
    screen-space linear barycentrics (the classic w-buffer-style option).
    """

    def __init__(self, width: int, height: int, perspective_depth: bool = False):
        self.width = width
        self.height = height
        self.perspective_depth = perspective_depth
        self.fragments_generated = 0
        self.triangles_culled = 0

    # -- triangles ----------------------------------------------------------------------

    def triangle_bbox(self, tri: tuple[ScreenVertex, ...]) -> tuple[float, float, float, float]:
        xs = [vertex.x for vertex in tri]
        ys = [vertex.y for vertex in tri]
        return min(xs), min(ys), max(xs), max(ys)

    def rasterize_triangle(
        self,
        v0: ScreenVertex,
        v1: ScreenVertex,
        v2: ScreenVertex,
        tile: Tile | None = None,
        derivatives: bool = False,
    ) -> Iterator[Fragment]:
        """Yield the fragments a triangle covers (optionally limited to a tile).

        With ``derivatives`` every fragment carries the per-quad
        finite-difference uv derivatives of its 2x2 fragment quad.
        """
        area = _edge(v0.x, v0.y, v1.x, v1.y, v2.x, v2.y)
        if abs(area) < 1e-9:
            self.triangles_culled += 1
            return
        # Consistent winding: flip so the area is positive.
        if area < 0:
            v1, v2 = v2, v1
            area = -area

        min_x = max(int(min(v0.x, v1.x, v2.x)), tile.x0 if tile else 0)
        max_x = min(int(max(v0.x, v1.x, v2.x)) + 1, (tile.x1 if tile else self.width) - 1)
        min_y = max(int(min(v0.y, v1.y, v2.y)), tile.y0 if tile else 0)
        max_y = min(int(max(v0.y, v1.y, v2.y)) + 1, (tile.y1 if tile else self.height) - 1)
        if min_x > max_x or min_y > max_y:
            return

        inv_w = (1.0 / v0.w, 1.0 / v1.w, 1.0 / v2.w)
        # Top-left fill rule: pixels exactly on an edge (w == 0) belong to
        # at most one of the two triangles sharing that edge.
        accept0 = _edge_accepts_zero(v1.x, v1.y, v2.x, v2.y)
        accept1 = _edge_accepts_zero(v2.x, v2.y, v0.x, v0.y)
        accept2 = _edge_accepts_zero(v0.x, v0.y, v1.x, v1.y)
        for y in range(min_y, max_y + 1):
            for x in range(min_x, max_x + 1):
                px, py = x + 0.5, y + 0.5
                w0 = _edge(v1.x, v1.y, v2.x, v2.y, px, py)
                w1 = _edge(v2.x, v2.y, v0.x, v0.y, px, py)
                w2 = _edge(v0.x, v0.y, v1.x, v1.y, px, py)
                if w0 < 0 or w1 < 0 or w2 < 0:
                    continue
                if (
                    (w0 == 0 and not accept0)
                    or (w1 == 0 and not accept1)
                    or (w2 == 0 and not accept2)
                ):
                    continue
                b0, b1, b2 = w0 / area, w1 / area, w2 / area
                # Perspective-correct interpolation via 1/w weighting.
                denom = b0 * inv_w[0] + b1 * inv_w[1] + b2 * inv_w[2]
                if denom <= 0:
                    continue
                p0 = b0 * inv_w[0] / denom
                p1 = b1 * inv_w[1] / denom
                p2 = b2 * inv_w[2] / denom
                if self.perspective_depth:
                    depth = p0 * v0.z + p1 * v1.z + p2 * v2.z
                else:
                    depth = b0 * v0.z + b1 * v1.z + b2 * v2.z
                color = tuple(
                    p0 * v0.color[c] + p1 * v1.color[c] + p2 * v2.color[c] for c in range(4)
                )
                uv = (
                    p0 * v0.uv[0] + p1 * v1.uv[0] + p2 * v2.uv[0],
                    p0 * v0.uv[1] + p1 * v1.uv[1] + p2 * v2.uv[1],
                )
                duv_dx = duv_dy = (0.0, 0.0)
                if derivatives:
                    quad_x = float(x & ~1) + 0.5
                    quad_y = float(y & ~1) + 0.5
                    duv_dx, duv_dy = _quad_derivatives(
                        v0, v1, v2, area, inv_w, quad_x, quad_y
                    )
                self.fragments_generated += 1
                yield Fragment(
                    x=x, y=y, depth=depth, color=color, uv=uv,
                    duv_dx=duv_dx, duv_dy=duv_dy,
                )

    def rasterize_triangle_batch(
        self,
        v0: ScreenVertex,
        v1: ScreenVertex,
        v2: ScreenVertex,
        tile: Tile | None = None,
        derivatives: bool = False,
    ) -> FragmentBatch | None:
        """Vectorized :meth:`rasterize_triangle`: the whole pixel grid at once.

        Evaluates the three edge functions over the tile's pixel grid as
        float64 arrays and interpolates depth/color/uv for every covered
        pixel in one shot.  The arithmetic mirrors the scalar loop operation
        for operation (same IEEE-754 order), so the fragments are
        bit-identical and in the same row-major order; counters
        (``fragments_generated``, ``triangles_culled``) advance identically.
        Returns ``None`` when the triangle produces no fragments.
        """
        area = _edge(v0.x, v0.y, v1.x, v1.y, v2.x, v2.y)
        if abs(area) < 1e-9:
            self.triangles_culled += 1
            return None
        if area < 0:
            v1, v2 = v2, v1
            area = -area

        min_x = max(int(min(v0.x, v1.x, v2.x)), tile.x0 if tile else 0)
        max_x = min(int(max(v0.x, v1.x, v2.x)) + 1, (tile.x1 if tile else self.width) - 1)
        min_y = max(int(min(v0.y, v1.y, v2.y)), tile.y0 if tile else 0)
        max_y = min(int(max(v0.y, v1.y, v2.y)) + 1, (tile.y1 if tile else self.height) - 1)
        if min_x > max_x or min_y > max_y:
            return None

        px = np.arange(min_x, max_x + 1, dtype=np.float64) + 0.5  # (W,)
        py = np.arange(min_y, max_y + 1, dtype=np.float64)[:, None] + 0.5  # (H, 1)
        w0 = (v2.x - v1.x) * (py - v1.y) - (v2.y - v1.y) * (px - v1.x)
        w1 = (v0.x - v2.x) * (py - v2.y) - (v0.y - v2.y) * (px - v2.x)
        w2 = (v1.x - v0.x) * (py - v0.y) - (v1.y - v0.y) * (px - v0.x)
        accept0 = _edge_accepts_zero(v1.x, v1.y, v2.x, v2.y)
        accept1 = _edge_accepts_zero(v2.x, v2.y, v0.x, v0.y)
        accept2 = _edge_accepts_zero(v0.x, v0.y, v1.x, v1.y)
        covered = (
            ((w0 > 0) if not accept0 else (w0 >= 0))
            & ((w1 > 0) if not accept1 else (w1 >= 0))
            & ((w2 > 0) if not accept2 else (w2 >= 0))
        )
        if not covered.any():
            return None
        iy, ix = np.nonzero(covered)  # row-major, matching the scalar loop order

        inv_w = (1.0 / v0.w, 1.0 / v1.w, 1.0 / v2.w)
        b0 = w0[covered] / area
        b1 = w1[covered] / area
        b2 = w2[covered] / area
        denom = (b0 * inv_w[0] + b1 * inv_w[1]) + b2 * inv_w[2]
        visible = denom > 0
        if not visible.all():
            b0, b1, b2, denom = b0[visible], b1[visible], b2[visible], denom[visible]
            iy, ix = iy[visible], ix[visible]
        if b0.shape[0] == 0:
            return None
        p0 = b0 * inv_w[0] / denom
        p1 = b1 * inv_w[1] / denom
        p2 = b2 * inv_w[2] / denom
        if self.perspective_depth:
            depth = (p0 * v0.z + p1 * v1.z) + p2 * v2.z
        else:
            depth = (b0 * v0.z + b1 * v1.z) + b2 * v2.z
        color = np.empty((b0.shape[0], 4), dtype=np.float64)
        for channel in range(4):
            color[:, channel] = (
                p0 * v0.color[channel] + p1 * v1.color[channel]
            ) + p2 * v2.color[channel]
        uv = np.empty((b0.shape[0], 2), dtype=np.float64)
        uv[:, 0] = (p0 * v0.uv[0] + p1 * v1.uv[0]) + p2 * v2.uv[0]
        uv[:, 1] = (p0 * v0.uv[1] + p1 * v1.uv[1]) + p2 * v2.uv[1]
        xs = ix + min_x
        ys = iy + min_y
        duv_dx = duv_dy = None
        if derivatives:
            # One derivative pair per 2x2 quad, evaluated at the quad's
            # top-left pixel centre as float64 planes — same expressions,
            # same order as the scalar per-fragment helper.  Quadmates
            # redundantly evaluate the same corner, but de-duplicating via
            # np.unique measures ~40% slower at tile-batch sizes (the sort
            # and gathers cost more than the shorter evaluation saves).
            quad_x = (xs & ~1).astype(np.float64) + 0.5
            quad_y = (ys & ~1).astype(np.float64) + 0.5
            dx, dy = _quad_derivatives(v0, v1, v2, area, inv_w, quad_x, quad_y)
            duv_dx = np.empty((b0.shape[0], 2), dtype=np.float64)
            duv_dy = np.empty((b0.shape[0], 2), dtype=np.float64)
            duv_dx[:, 0], duv_dx[:, 1] = dx
            duv_dy[:, 0], duv_dy[:, 1] = dy
        self.fragments_generated += int(b0.shape[0])
        return FragmentBatch(
            xs=xs, ys=ys, depth=depth, color=color, uv=uv,
            duv_dx=duv_dx, duv_dy=duv_dy,
        )

    # -- lines and points -----------------------------------------------------------------

    def rasterize_line(self, v0: ScreenVertex, v1: ScreenVertex) -> Iterator[Fragment]:
        """Yield fragments along a line using a DDA walk.

        The walk takes ``ceil(max(|dx|, |dy|))`` steps from ``t = 0`` to
        ``t = 1`` inclusive, so the major axis advances by at most one pixel
        per step and no pixel is skipped; consecutive steps that round to
        the same pixel are collapsed, so no pixel is emitted twice either
        (the historical ``int(max) + 1`` / ``range(steps + 1)`` bound
        emitted a duplicate endpoint fragment that double-blended, and
        rounding ties duplicated interior pixels).  The walk is monotonic
        along both axes, so equal pixels are always consecutive and the
        emitted pixels are all distinct.
        """
        dx = v1.x - v0.x
        dy = v1.y - v0.y
        steps = math.ceil(max(abs(dx), abs(dy)))
        previous = None
        for step in range(steps + 1):
            t = step / steps if steps else 0.0
            x = int(round(v0.x + dx * t))
            y = int(round(v0.y + dy * t))
            if (x, y) == previous:
                continue
            previous = (x, y)
            if not (0 <= x < self.width and 0 <= y < self.height):
                continue
            depth = v0.z + (v1.z - v0.z) * t
            color = tuple(v0.color[c] + (v1.color[c] - v0.color[c]) * t for c in range(4))
            uv = (v0.uv[0] + (v1.uv[0] - v0.uv[0]) * t, v0.uv[1] + (v1.uv[1] - v0.uv[1]) * t)
            self.fragments_generated += 1
            yield Fragment(x=x, y=y, depth=depth, color=color, uv=uv)

    def rasterize_point(self, v0: ScreenVertex) -> Iterator[Fragment]:
        """Yield the single fragment of a point primitive."""
        x, y = int(round(v0.x)), int(round(v0.y))
        if 0 <= x < self.width and 0 <= y < self.height:
            self.fragments_generated += 1
            yield Fragment(x=x, y=y, depth=v0.z, color=v0.color, uv=v0.uv)
