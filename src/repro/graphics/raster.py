"""Rasterization: point, line and triangle primitives.

Triangles use the standard edge-function formulation with
perspective-correct barycentric interpolation of depth, color and texture
coordinates; lines use a DDA walk; points write single fragments.  The
rasterizer produces :class:`Fragment` records that the fragment-processing
stage (depth/stencil/alpha/fog/blend) consumes — the same split as the
paper's software rendering pipeline, where fragments are the unit of
data-parallel work handed to the compute kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.graphics.geometry import ScreenVertex
from repro.graphics.tiles import Tile


@dataclass
class Fragment:
    """One candidate pixel produced by rasterization."""

    x: int
    y: int
    depth: float
    color: Tuple[float, float, float, float]
    uv: Tuple[float, float]


def _edge(ax: float, ay: float, bx: float, by: float, px: float, py: float) -> float:
    """Signed area of the (a, b, p) triangle (the edge function)."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


class Rasterizer:
    """Generates fragments for screen-space primitives."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self.fragments_generated = 0
        self.triangles_culled = 0

    # -- triangles ----------------------------------------------------------------------

    def triangle_bbox(self, tri: Tuple[ScreenVertex, ...]) -> Tuple[float, float, float, float]:
        xs = [vertex.x for vertex in tri]
        ys = [vertex.y for vertex in tri]
        return min(xs), min(ys), max(xs), max(ys)

    def rasterize_triangle(
        self,
        v0: ScreenVertex,
        v1: ScreenVertex,
        v2: ScreenVertex,
        tile: Optional[Tile] = None,
    ) -> Iterator[Fragment]:
        """Yield the fragments a triangle covers (optionally limited to a tile)."""
        area = _edge(v0.x, v0.y, v1.x, v1.y, v2.x, v2.y)
        if abs(area) < 1e-9:
            self.triangles_culled += 1
            return
        # Consistent winding: flip so the area is positive.
        if area < 0:
            v1, v2 = v2, v1
            area = -area

        min_x = max(int(min(v0.x, v1.x, v2.x)), tile.x0 if tile else 0)
        max_x = min(int(max(v0.x, v1.x, v2.x)) + 1, (tile.x1 if tile else self.width) - 1)
        min_y = max(int(min(v0.y, v1.y, v2.y)), tile.y0 if tile else 0)
        max_y = min(int(max(v0.y, v1.y, v2.y)) + 1, (tile.y1 if tile else self.height) - 1)
        if min_x > max_x or min_y > max_y:
            return

        inv_w = (1.0 / v0.w, 1.0 / v1.w, 1.0 / v2.w)
        for y in range(min_y, max_y + 1):
            for x in range(min_x, max_x + 1):
                px, py = x + 0.5, y + 0.5
                w0 = _edge(v1.x, v1.y, v2.x, v2.y, px, py)
                w1 = _edge(v2.x, v2.y, v0.x, v0.y, px, py)
                w2 = _edge(v0.x, v0.y, v1.x, v1.y, px, py)
                if w0 < 0 or w1 < 0 or w2 < 0:
                    continue
                b0, b1, b2 = w0 / area, w1 / area, w2 / area
                # Perspective-correct interpolation via 1/w weighting.
                denom = b0 * inv_w[0] + b1 * inv_w[1] + b2 * inv_w[2]
                if denom <= 0:
                    continue
                p0 = b0 * inv_w[0] / denom
                p1 = b1 * inv_w[1] / denom
                p2 = b2 * inv_w[2] / denom
                depth = b0 * v0.z + b1 * v1.z + b2 * v2.z
                color = tuple(
                    p0 * v0.color[c] + p1 * v1.color[c] + p2 * v2.color[c] for c in range(4)
                )
                uv = (
                    p0 * v0.uv[0] + p1 * v1.uv[0] + p2 * v2.uv[0],
                    p0 * v0.uv[1] + p1 * v1.uv[1] + p2 * v2.uv[1],
                )
                self.fragments_generated += 1
                yield Fragment(x=x, y=y, depth=depth, color=color, uv=uv)

    # -- lines and points -----------------------------------------------------------------

    def rasterize_line(self, v0: ScreenVertex, v1: ScreenVertex) -> Iterator[Fragment]:
        """Yield fragments along a line using a DDA walk."""
        dx = v1.x - v0.x
        dy = v1.y - v0.y
        steps = int(max(abs(dx), abs(dy))) + 1
        for step in range(steps + 1):
            t = step / steps if steps else 0.0
            x = int(round(v0.x + dx * t))
            y = int(round(v0.y + dy * t))
            if not (0 <= x < self.width and 0 <= y < self.height):
                continue
            depth = v0.z + (v1.z - v0.z) * t
            color = tuple(v0.color[c] + (v1.color[c] - v0.color[c]) * t for c in range(4))
            uv = (v0.uv[0] + (v1.uv[0] - v0.uv[0]) * t, v0.uv[1] + (v1.uv[1] - v0.uv[1]) * t)
            self.fragments_generated += 1
            yield Fragment(x=x, y=y, depth=depth, color=color, uv=uv)

    def rasterize_point(self, v0: ScreenVertex) -> Iterator[Fragment]:
        """Yield the single fragment of a point primitive."""
        x, y = int(round(v0.x)), int(round(v0.y))
        if 0 <= x < self.width and 0 <= y < self.height:
            self.fragments_generated += 1
            yield Fragment(x=x, y=y, depth=v0.z, color=v0.color, uv=v0.uv)
