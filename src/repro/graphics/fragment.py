"""Fragment processing: depth, stencil, alpha and fog tests plus blending.

This is the per-fragment tail of the pipeline (paper section 5.5: "fragment
processing including depth, stencil, fog, and alpha tests"), applied after
the optional texture stage has produced the fragment's color.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.graphics.framebuffer import (
    Framebuffer,
    pack_colors,
    unpack_color,
    unpack_colors,
)
from repro.graphics.raster import Fragment, FragmentBatch


class CompareFunc(Enum):
    """Comparison functions shared by the depth, alpha and stencil tests."""

    NEVER = "never"
    LESS = "less"
    LEQUAL = "lequal"
    EQUAL = "equal"
    GREATER = "greater"
    GEQUAL = "gequal"
    NOTEQUAL = "notequal"
    ALWAYS = "always"

    def apply(self, value: float, reference: float) -> bool:
        if self is CompareFunc.NEVER:
            return False
        if self is CompareFunc.LESS:
            return value < reference
        if self is CompareFunc.LEQUAL:
            return value <= reference
        if self is CompareFunc.EQUAL:
            return value == reference
        if self is CompareFunc.GREATER:
            return value > reference
        if self is CompareFunc.GEQUAL:
            return value >= reference
        if self is CompareFunc.NOTEQUAL:
            return value != reference
        return True

    def apply_many(self, values: np.ndarray, reference: float) -> np.ndarray:
        """Vectorized :meth:`apply`: one boolean per entry of ``values``."""
        if self is CompareFunc.NEVER:
            return np.zeros(values.shape[0], dtype=bool)
        if self is CompareFunc.ALWAYS:
            return np.ones(values.shape[0], dtype=bool)
        op = _COMPARE_UFUNCS[self]
        return op(values, reference)


#: numpy comparators backing :meth:`CompareFunc.apply_many`.
_COMPARE_UFUNCS = {
    CompareFunc.LESS: np.less,
    CompareFunc.LEQUAL: np.less_equal,
    CompareFunc.EQUAL: np.equal,
    CompareFunc.GREATER: np.greater,
    CompareFunc.GEQUAL: np.greater_equal,
    CompareFunc.NOTEQUAL: np.not_equal,
}


class BlendMode(Enum):
    """Framebuffer blend modes."""

    REPLACE = "replace"
    ALPHA = "alpha"  # src*alpha + dst*(1-alpha)
    ADDITIVE = "additive"


@dataclass
class FogState:
    """Linear fog: the fragment color fades to ``color`` with depth."""

    enabled: bool = False
    color: tuple[float, float, float] = (0.5, 0.5, 0.5)
    start: float = 0.0
    end: float = 1.0

    def factor(self, depth: float) -> float:
        """Blend factor toward the fog color (0 = no fog, 1 = full fog)."""
        if not self.enabled or self.end <= self.start:
            return 0.0
        return min(max((depth - self.start) / (self.end - self.start), 0.0), 1.0)


@dataclass
class FragmentOps:
    """Configurable per-fragment pipeline applied to a framebuffer."""

    depth_test: bool = True
    depth_func: CompareFunc = CompareFunc.LESS
    depth_write: bool = True
    alpha_test: bool = False
    alpha_func: CompareFunc = CompareFunc.GREATER
    alpha_ref: float = 0.0
    stencil_test: bool = False
    stencil_func: CompareFunc = CompareFunc.ALWAYS
    stencil_ref: int = 0
    blend: BlendMode = BlendMode.REPLACE
    fog: FogState = field(default_factory=FogState)

    # Statistics (useful in tests and the example renderer).
    fragments_in: int = 0
    fragments_written: int = 0
    depth_kills: int = 0
    alpha_kills: int = 0
    stencil_kills: int = 0

    def process(self, framebuffer: Framebuffer, fragment: Fragment,
                color: tuple[float, float, float, float] | None = None) -> bool:
        """Apply the fragment pipeline; returns True when the pixel was written."""
        self.fragments_in += 1
        x, y = fragment.x, fragment.y
        if not framebuffer.contains(x, y):
            return False
        color = color if color is not None else fragment.color

        if self.alpha_test and not self.alpha_func.apply(color[3], self.alpha_ref):
            self.alpha_kills += 1
            return False

        if self.stencil_test and not self.stencil_func.apply(
            float(framebuffer.stencil[y, x]), float(self.stencil_ref)
        ):
            self.stencil_kills += 1
            return False

        if self.depth_test and not self.depth_func.apply(
            fragment.depth, float(framebuffer.depth[y, x])
        ):
            self.depth_kills += 1
            return False

        shaded = self._apply_fog(color, fragment.depth)
        final = self._blend(framebuffer, x, y, shaded)
        framebuffer.write_pixel(x, y, final)
        if self.depth_test and self.depth_write:
            framebuffer.depth[y, x] = fragment.depth
        if self.stencil_test:
            framebuffer.stencil[y, x] = self.stencil_ref & 0xFF
        self.fragments_written += 1
        return True

    def process_many(
        self,
        framebuffer: Framebuffer,
        batch: FragmentBatch,
        color: np.ndarray | None = None,
    ) -> int:
        """Vectorized :meth:`process` over a unique-pixel fragment batch.

        Applies the alpha/stencil/depth tests as cumulative numpy masks
        (kill counters advance exactly as the scalar per-fragment sequence
        would), then fog, blending and the framebuffer writes as array
        operations.  Requires the batch's pixels to be distinct — the
        rasterization paths guarantee that — so the batched read-modify-
        write against the framebuffer matches the sequential loop.  Returns
        the number of fragments written.
        """
        count = len(batch)
        self.fragments_in += count
        if count == 0:
            return 0
        xs, ys, depth = batch.xs, batch.ys, batch.depth
        color = batch.color if color is None else color

        in_bounds = (xs >= 0) & (xs < framebuffer.width) & (ys >= 0) & (ys < framebuffer.height)
        if not in_bounds.all():
            xs, ys = xs[in_bounds], ys[in_bounds]
            depth, color = depth[in_bounds], color[in_bounds]
            if xs.shape[0] == 0:
                return 0

        alive = np.ones(xs.shape[0], dtype=bool)
        if self.alpha_test:
            passed = self.alpha_func.apply_many(color[:, 3], self.alpha_ref)
            self.alpha_kills += int(np.count_nonzero(alive & ~passed))
            alive &= passed
        if self.stencil_test:
            stencil = framebuffer.stencil[ys, xs].astype(np.float64)
            passed = self.stencil_func.apply_many(stencil, float(self.stencil_ref))
            self.stencil_kills += int(np.count_nonzero(alive & ~passed))
            alive &= passed
        if self.depth_test:
            passed = self.depth_func.apply_many(depth, framebuffer.depth[ys, xs])
            self.depth_kills += int(np.count_nonzero(alive & ~passed))
            alive &= passed
        if not alive.all():
            xs, ys = xs[alive], ys[alive]
            depth, color = depth[alive], color[alive]
            if xs.shape[0] == 0:
                return 0

        shaded = self._apply_fog_many(color, depth)
        framebuffer.color[ys, xs] = self._blend_many(framebuffer, xs, ys, shaded)
        if self.depth_test and self.depth_write:
            framebuffer.depth[ys, xs] = depth
        if self.stencil_test:
            framebuffer.stencil[ys, xs] = self.stencil_ref & 0xFF
        written = int(xs.shape[0])
        self.fragments_written += written
        return written

    # -- helpers ------------------------------------------------------------------------

    def _apply_fog(self, color, depth: float):
        factor = self.fog.factor(depth)
        if factor == 0.0:
            return color
        return (
            color[0] * (1 - factor) + self.fog.color[0] * factor,
            color[1] * (1 - factor) + self.fog.color[1] * factor,
            color[2] * (1 - factor) + self.fog.color[2] * factor,
            color[3],
        )

    def _blend(self, framebuffer: Framebuffer, x: int, y: int, color):
        src = tuple(min(max(channel, 0.0), 1.0) for channel in color)
        if self.blend is BlendMode.REPLACE:
            blended = src
        else:
            dst_bytes = unpack_color(int(framebuffer.color[y, x]))
            dst = tuple(channel / 255.0 for channel in dst_bytes)
            if self.blend is BlendMode.ALPHA:
                alpha = src[3]
                blended = tuple(src[c] * alpha + dst[c] * (1 - alpha) for c in range(3)) + (src[3],)
            else:  # ADDITIVE
                blended = tuple(min(src[c] + dst[c], 1.0) for c in range(3)) + (src[3],)
        return tuple(int(round(channel * 255)) for channel in blended)

    # -- vectorized helpers --------------------------------------------------------------

    def _apply_fog_many(self, color: np.ndarray, depth: np.ndarray) -> np.ndarray:
        fog = self.fog
        if not fog.enabled or fog.end <= fog.start:
            return color
        factor = np.clip((depth - fog.start) / (fog.end - fog.start), 0.0, 1.0)
        fogged = np.empty_like(color)
        one_minus = 1 - factor
        for channel in range(3):
            fogged[:, channel] = color[:, channel] * one_minus + fog.color[channel] * factor
        fogged[:, 3] = color[:, 3]
        # factor == 0 returns the input color untouched in the scalar path.
        untouched = factor == 0.0
        if untouched.any():
            fogged[untouched] = color[untouched]
        return fogged

    def _blend_many(self, framebuffer: Framebuffer, xs, ys, color: np.ndarray) -> np.ndarray:
        """Blend a batch against the framebuffer; returns packed RGBA8 words."""
        src = np.clip(color, 0.0, 1.0)
        if self.blend is BlendMode.REPLACE:
            blended = src
        else:
            dst = unpack_colors(framebuffer.color[ys, xs]) / 255.0
            blended = np.empty_like(src)
            if self.blend is BlendMode.ALPHA:
                alpha = src[:, 3]
                one_minus = 1 - alpha
                for channel in range(3):
                    blended[:, channel] = (
                        src[:, channel] * alpha + dst[:, channel] * one_minus
                    )
            else:  # ADDITIVE
                blended[:, :3] = np.minimum(src[:, :3] + dst[:, :3], 1.0)
            blended[:, 3] = src[:, 3]
        return pack_colors(np.rint(blended * 255).astype(np.uint32))
