"""Render targets: color, depth and stencil buffers.

The frame buffer lives in host memory (the paper renders into a buffer in
the device's local memory and scans it out over PCIe; for the reproduction
the numpy arrays play that role and can be copied to a device buffer when a
kernel consumes them).
"""

from __future__ import annotations

import numpy as np

from repro.texture.formats import TexFormat, decode_texels, pack_rgba8_many

RGBA = tuple[int, int, int, int]


def pack_color(color: RGBA) -> int:
    """Pack an (r, g, b, a) byte tuple into the RGBA8 word stored per pixel."""
    r, g, b, a = (int(channel) & 0xFF for channel in color)
    return r | (g << 8) | (b << 16) | (a << 24)


def unpack_color(word: int) -> RGBA:
    """Unpack an RGBA8 word."""
    return (word & 0xFF, (word >> 8) & 0xFF, (word >> 16) & 0xFF, (word >> 24) & 0xFF)


def pack_colors(channels: np.ndarray) -> np.ndarray:
    """Vectorized :func:`pack_color`: ``(N, 4)`` byte channels -> uint32 words.

    The framebuffer stores the same RGBA8888 layout the texture sampler
    produces, so this delegates to the one bit-layout implementation in
    :mod:`repro.texture.formats`.
    """
    return pack_rgba8_many(channels.astype(np.uint32, copy=False) & np.uint32(0xFF))


def unpack_colors(words: np.ndarray) -> np.ndarray:
    """Vectorized :func:`unpack_color`: uint32 words -> ``(N, 4)`` byte channels."""
    return decode_texels(TexFormat.RGBA8, words)


class Framebuffer:
    """Color + depth + stencil attachment set."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("framebuffer dimensions must be positive")
        self.width = width
        self.height = height
        self.color = np.zeros((height, width), dtype=np.uint32)
        self.depth = np.ones((height, width), dtype=np.float32)
        self.stencil = np.zeros((height, width), dtype=np.uint8)

    # -- clears -----------------------------------------------------------------------

    def clear_color(self, color: RGBA = (0, 0, 0, 255)) -> None:
        self.color.fill(pack_color(color))

    def clear_depth(self, value: float = 1.0) -> None:
        self.depth.fill(np.float32(value))

    def clear_stencil(self, value: int = 0) -> None:
        self.stencil.fill(value & 0xFF)

    def clear(self, color: RGBA = (0, 0, 0, 255), depth: float = 1.0, stencil: int = 0) -> None:
        """Clear all attachments."""
        self.clear_color(color)
        self.clear_depth(depth)
        self.clear_stencil(stencil)

    # -- pixel access ------------------------------------------------------------------

    def contains(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def write_pixel(self, x: int, y: int, color: RGBA) -> None:
        self.color[y, x] = pack_color(color)

    def read_pixel(self, x: int, y: int) -> RGBA:
        return unpack_color(int(self.color[y, x]))

    # -- export -------------------------------------------------------------------------

    def to_rgba_array(self) -> np.ndarray:
        """Return the color attachment as an (H, W, 4) uint8 array."""
        return self.color.view(np.uint8).reshape(self.height, self.width, 4).copy()

    def to_device_words(self) -> np.ndarray:
        """Return the color attachment as a flat uint32 array (device layout)."""
        return self.color.reshape(-1).copy()

    def nonblack_pixels(self) -> int:
        """Number of pixels whose RGB channels are not all zero (test helper)."""
        return int(np.count_nonzero(self.color & 0x00FFFFFF))
