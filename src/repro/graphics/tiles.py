"""Tile binning for tile-based rendering (paper section 2 and 5.5).

The rasterizer follows Larrabee's tile-rendering algorithm: the screen is
divided into fixed-size tiles, the host bins each screen-space triangle
into the tiles its bounding box overlaps, and rasterization then proceeds
tile by tile — on real Vortex each tile becomes a task for ``spawn_tasks``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Tile:
    """One screen tile."""

    index: int
    x0: int
    y0: int
    x1: int  # exclusive
    y1: int  # exclusive

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0


class TileGrid:
    """Screen subdivision plus the per-tile triangle bins."""

    def __init__(self, width: int, height: int, tile_size: int = 16):
        if tile_size < 1:
            raise ValueError("tile size must be positive")
        self.width = width
        self.height = height
        self.tile_size = tile_size
        self.tiles_x = (width + tile_size - 1) // tile_size
        self.tiles_y = (height + tile_size - 1) // tile_size
        self.tiles: list[Tile] = []
        for ty in range(self.tiles_y):
            for tx in range(self.tiles_x):
                index = ty * self.tiles_x + tx
                self.tiles.append(
                    Tile(
                        index=index,
                        x0=tx * tile_size,
                        y0=ty * tile_size,
                        x1=min((tx + 1) * tile_size, width),
                        y1=min((ty + 1) * tile_size, height),
                    )
                )
        self._bins: dict[int, list[int]] = {tile.index: [] for tile in self.tiles}

    def __len__(self) -> int:
        return len(self.tiles)

    # -- binning -----------------------------------------------------------------------

    def clear(self) -> None:
        for bin_list in self._bins.values():
            bin_list.clear()

    def bin_bbox(self, triangle_id: int, min_x: float, min_y: float, max_x: float, max_y: float) -> int:
        """Assign ``triangle_id`` to every tile its bounding box overlaps.

        Returns the number of tiles the triangle was binned into.
        """
        if max_x < 0 or max_y < 0 or min_x > self.width - 1 or min_y > self.height - 1:
            return 0
        first_tx = max(int(min_x) // self.tile_size, 0)
        first_ty = max(int(min_y) // self.tile_size, 0)
        last_tx = min(int(max_x) // self.tile_size, self.tiles_x - 1)
        last_ty = min(int(max_y) // self.tile_size, self.tiles_y - 1)
        count = 0
        for ty in range(first_ty, last_ty + 1):
            for tx in range(first_tx, last_tx + 1):
                self._bins[ty * self.tiles_x + tx].append(triangle_id)
                count += 1
        return count

    def triangles_in(self, tile: Tile) -> list[int]:
        """Triangle ids binned into ``tile``."""
        return list(self._bins[tile.index])

    def occupied_tiles(self) -> list[Tile]:
        """Tiles with at least one binned triangle (the tiles worth rasterizing)."""
        return [tile for tile in self.tiles if self._bins[tile.index]]

    def bin_statistics(self) -> dict[str, float]:
        """Summary statistics used by tests and the rendering example."""
        sizes = [len(self._bins[tile.index]) for tile in self.tiles]
        occupied = [size for size in sizes if size]
        return {
            "tiles": float(len(self.tiles)),
            "occupied": float(len(occupied)),
            "max_bin": float(max(sizes) if sizes else 0),
            "mean_bin": float(sum(sizes) / len(sizes)) if sizes else 0.0,
        }
