"""The OpenGL-ES-style rendering context.

``GraphicsContext`` ties the stages together the way the Vortex graphics
API does (paper section 5.5): geometry processing on the host, tile
binning, per-tile rasterization, an optional texture stage routed through
the same :class:`~repro.texture.sampler.TextureSampler` model the hardware
texture unit uses, and the fragment pipeline writing into a
:class:`~repro.graphics.framebuffer.Framebuffer`.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graphics.fragment import FragmentOps
from repro.graphics.framebuffer import Framebuffer, unpack_colors
from repro.graphics.geometry import GeometryStage, Matrix4, Vertex
from repro.graphics.raster import FragmentBatch, Rasterizer
from repro.graphics.tiles import TileGrid
from repro.mem.memory import MainMemory
from repro.texture.formats import TexFilter, TexFormat, TexWrap
from repro.texture.sampler import TextureSampler, TextureState


class PrimitiveType(Enum):
    """Primitive topologies supported by the rasterizer."""

    POINTS = "points"
    LINES = "lines"
    TRIANGLES = "triangles"


class TextureBinding:
    """A bound 2D texture, stored through the same memory + sampler path the
    hardware texture unit uses so host rendering and device rendering share
    one filtering implementation."""

    def __init__(self, image: np.ndarray, filter_mode: TexFilter = TexFilter.BILINEAR,
                 wrap: TexWrap = TexWrap.REPEAT):
        if image.ndim != 3 or image.shape[2] != 4 or image.dtype != np.uint8:
            raise ValueError("textures must be (H, W, 4) uint8 arrays")
        height, width = image.shape[:2]
        if width & (width - 1) or height & (height - 1):
            raise ValueError("texture dimensions must be powers of two")
        self._memory = MainMemory()
        self._memory.write_bytes(0, image.tobytes())
        self.state = TextureState(
            address=0,
            width_log2=width.bit_length() - 1,
            height_log2=height.bit_length() - 1,
            fmt=TexFormat.RGBA8,
            wrap=wrap,
            filter_mode=filter_mode,
            mip_offsets=[0] * 12,
        )
        self._sampler = TextureSampler(self._memory)

    def sample(self, u: float, v: float) -> Tuple[float, float, float, float]:
        """Sample the texture; returns a normalized RGBA tuple."""
        word = self._sampler.sample(self.state, u, v, 0)
        return (
            (word & 0xFF) / 255.0,
            ((word >> 8) & 0xFF) / 255.0,
            ((word >> 16) & 0xFF) / 255.0,
            ((word >> 24) & 0xFF) / 255.0,
        )

    def sample_many(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Batched :meth:`sample`: normalized ``(N, 4)`` float64 RGBA rows."""
        words = self._sampler.sample_many(self.state, us, vs, 0)
        return unpack_colors(words) / 255.0


#: Rendering engines selectable on :class:`GraphicsContext`.  ``scalar`` is
#: the per-fragment Python reference; ``vector`` batches each (tile,
#: triangle) pair through the numpy rasterizer, sampler and fragment ops —
#: same split as the execution engines in :mod:`repro.engine`, and held to
#: the same invariant: pixel-identical framebuffers.
GRAPHICS_ENGINES = ("scalar", "vector")


class GraphicsContext:
    """A minimal OpenGL-ES-style immediate-mode context."""

    def __init__(self, width: int, height: int, tile_size: int = 16,
                 engine: str = "scalar"):
        if engine not in GRAPHICS_ENGINES:
            raise ValueError(
                f"unknown graphics engine {engine!r}; available: {GRAPHICS_ENGINES}"
            )
        self.engine = engine
        self.framebuffer = Framebuffer(width, height)
        self.geometry = GeometryStage(width, height)
        self.tiles = TileGrid(width, height, tile_size)
        self.rasterizer = Rasterizer(width, height)
        self.fragment_ops = FragmentOps()
        self.texture: Optional[TextureBinding] = None
        self.draw_calls = 0

    # -- state -----------------------------------------------------------------------

    def set_mvp(self, matrix: np.ndarray) -> None:
        """Set the model-view-projection matrix used by the vertex stage."""
        self.geometry.set_mvp(matrix)

    def bind_texture(self, image: Optional[np.ndarray],
                     filter_mode: TexFilter = TexFilter.BILINEAR,
                     wrap: TexWrap = TexWrap.REPEAT) -> None:
        """Bind (or unbind with ``None``) the fragment texture."""
        self.texture = None if image is None else TextureBinding(image, filter_mode, wrap)

    def clear(self, color=(0, 0, 0, 255), depth: float = 1.0) -> None:
        self.framebuffer.clear(color=color, depth=depth)

    # -- drawing ------------------------------------------------------------------------

    def draw(self, vertices: Sequence[Vertex],
             primitive: PrimitiveType = PrimitiveType.TRIANGLES) -> int:
        """Draw a vertex stream; returns the number of fragments written."""
        self.draw_calls += 1
        written_before = self.fragment_ops.fragments_written
        if primitive is PrimitiveType.TRIANGLES:
            self._draw_triangles(vertices)
        elif primitive is PrimitiveType.LINES:
            self._draw_lines(vertices)
        else:
            self._draw_points(vertices)
        return self.fragment_ops.fragments_written - written_before

    def _shade(self, fragment) -> Tuple[float, float, float, float]:
        """Run the (fixed-function) fragment shader: vertex color x texture."""
        color = fragment.color
        if self.texture is not None:
            texel = self.texture.sample(fragment.uv[0], fragment.uv[1])
            color = tuple(color[c] * texel[c] for c in range(4))
        return color

    def _shade_many(self, batch) -> np.ndarray:
        """Vectorized :meth:`_shade` over a fragment batch."""
        if self.texture is None:
            return batch.color
        texels = self.texture.sample_many(batch.uv[:, 0], batch.uv[:, 1])
        return batch.color * texels

    def _draw_triangles(self, vertices: Sequence[Vertex]) -> None:
        triangles = self.geometry.assemble_triangles(vertices)
        # Tile binning (tile-based rendering, Larrabee-style).
        self.tiles.clear()
        for triangle_id, tri in enumerate(triangles):
            bbox = self.rasterizer.triangle_bbox(tri)
            self.tiles.bin_bbox(triangle_id, *bbox)
        vectorized = self.engine == "vector"
        for tile in self.tiles.occupied_tiles():
            for triangle_id in self.tiles.triangles_in(tile):
                v0, v1, v2 = triangles[triangle_id]
                if vectorized:
                    batch = self.rasterizer.rasterize_triangle_batch(v0, v1, v2, tile=tile)
                    if batch is not None:
                        self.fragment_ops.process_many(
                            self.framebuffer, batch, self._shade_many(batch)
                        )
                else:
                    for fragment in self.rasterizer.rasterize_triangle(v0, v1, v2, tile=tile):
                        self.fragment_ops.process(
                            self.framebuffer, fragment, self._shade(fragment)
                        )

    def _process_primitive_fragments(self, fragments) -> None:
        """Run one primitive's fragments through the fragment pipeline.

        On the vector engine the fragments are batched (one DDA walk or
        point never visits the same pixel twice, so the unique-pixel
        requirement of :meth:`FragmentOps.process_many` holds); distinct
        primitives still execute in order so overlaps between them blend
        sequentially, as on the scalar engine.
        """
        if self.engine == "vector":
            fragments = list(fragments)
            if not fragments:
                return
            batch = FragmentBatch(
                xs=np.array([f.x for f in fragments], dtype=np.intp),
                ys=np.array([f.y for f in fragments], dtype=np.intp),
                depth=np.array([f.depth for f in fragments], dtype=np.float64),
                color=np.array([f.color for f in fragments], dtype=np.float64),
                uv=np.array([f.uv for f in fragments], dtype=np.float64),
            )
            self.fragment_ops.process_many(self.framebuffer, batch, self._shade_many(batch))
        else:
            for fragment in fragments:
                self.fragment_ops.process(self.framebuffer, fragment, self._shade(fragment))

    def _draw_lines(self, vertices: Sequence[Vertex]) -> None:
        screen = [self.geometry.process_vertex(vertex) for vertex in vertices]
        for index in range(0, len(screen) - 1, 2):
            v0, v1 = screen[index], screen[index + 1]
            if v0 is None or v1 is None:
                continue
            self._process_primitive_fragments(self.rasterizer.rasterize_line(v0, v1))

    def _draw_points(self, vertices: Sequence[Vertex]) -> None:
        for vertex in vertices:
            screen = self.geometry.process_vertex(vertex)
            if screen is None:
                continue
            self._process_primitive_fragments(self.rasterizer.rasterize_point(screen))
