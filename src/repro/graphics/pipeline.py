"""The OpenGL-ES-style rendering context.

``GraphicsContext`` ties the stages together the way the Vortex graphics
API does (paper section 5.5): geometry processing on the host, tile
binning, per-tile rasterization, an optional texture stage routed through
the same :class:`~repro.texture.sampler.TextureSampler` model the hardware
texture unit uses, and the fragment pipeline writing into a
:class:`~repro.graphics.framebuffer.Framebuffer`.
"""

from __future__ import annotations

from enum import Enum
from collections.abc import Sequence

import numpy as np

from repro.graphics.fragment import FragmentOps
from repro.graphics.framebuffer import Framebuffer, unpack_colors
from repro.graphics.geometry import GeometryStage, Vertex
from repro.graphics.raster import FragmentBatch, Rasterizer
from repro.graphics.tiles import TileGrid
from repro.isa.csr import NUM_TEX_LODS
from repro.mem.memory import MainMemory
from repro.texture.address import derivative_lod
from repro.texture.formats import TexFilter, TexFormat, TexWrap
from repro.texture.sampler import TextureSampler, TextureState


class PrimitiveType(Enum):
    """Primitive topologies supported by the rasterizer."""

    POINTS = "points"
    LINES = "lines"
    TRIANGLES = "triangles"


def _box_downsample(image: np.ndarray) -> np.ndarray:
    """Halve an (H, W, 4) uint8 image with a rounding 2x2 box filter.

    Once a dimension reaches 1 the filter degenerates to averaging pairs
    along the other axis, so the chain walks all the way down to 1x1.
    """
    height, width = image.shape[:2]
    wide = image.astype(np.uint16)
    if height > 1 and width > 1:
        block = wide[0::2, 0::2] + wide[0::2, 1::2] + wide[1::2, 0::2] + wide[1::2, 1::2]
        return ((block + 2) >> 2).astype(np.uint8)
    if width > 1:
        pair = wide[:, 0::2] + wide[:, 1::2]
    else:
        pair = wide[0::2, :] + wide[1::2, :]
    return ((pair + 1) >> 1).astype(np.uint8)


class TextureBinding:
    """A bound 2D texture, stored through the same memory + sampler path the
    hardware texture unit uses so host rendering and device rendering share
    one filtering implementation."""

    def __init__(self, image: np.ndarray, filter_mode: TexFilter = TexFilter.BILINEAR,
                 wrap: TexWrap = TexWrap.REPEAT):
        if image.ndim != 3 or image.shape[2] != 4 or image.dtype != np.uint8:
            raise ValueError("textures must be (H, W, 4) uint8 arrays")
        height, width = image.shape[:2]
        if width & (width - 1) or height & (height - 1):
            raise ValueError("texture dimensions must be powers of two")
        self.width = width
        self.height = height
        self._memory = MainMemory()
        self._memory.write_bytes(0, image.tobytes())
        self.state = TextureState(
            address=0,
            width_log2=width.bit_length() - 1,
            height_log2=height.bit_length() - 1,
            fmt=TexFormat.RGBA8,
            wrap=wrap,
            filter_mode=filter_mode,
            mip_offsets=[0],
        )
        self._sampler = TextureSampler(self._memory)

    @property
    def mip_count(self) -> int:
        """Number of addressable mip levels (1 until mipmaps are generated)."""
        return len(self.state.mip_offsets)

    def generate_mipmaps(self) -> int:
        """Build the mip chain with a 2x2 box filter and program the offsets.

        Levels are laid out back to back after the base image in the
        binding's memory (exactly how a kernel would place them before
        writing the MIPOFF CSRs), halving each dimension down to 1x1 —
        capped at the :data:`~repro.isa.csr.NUM_TEX_LODS` levels the CSR
        block can describe.  Returns the number of levels.
        """
        base = np.frombuffer(
            self._memory.read_bytes(0, self.height * self.width * 4), dtype=np.uint8
        ).reshape(self.height, self.width, 4)
        levels = [base]
        while levels[-1].shape[:2] != (1, 1) and len(levels) < NUM_TEX_LODS:
            levels.append(_box_downsample(levels[-1]))
        offsets = []
        offset = 0
        for level in levels:
            offsets.append(offset)
            offset += level.nbytes
        self._memory.write_bytes(
            levels[0].nbytes, b"".join(level.tobytes() for level in levels[1:])
        )
        self.state.mip_offsets = offsets
        return len(levels)

    def lod_many(self, duv_dx: np.ndarray, duv_dy: np.ndarray) -> np.ndarray:
        """Per-fragment level of detail from screen-space uv derivatives."""
        return derivative_lod(duv_dx, duv_dy, self.width, self.height)

    def sample(self, u: float, v: float, lod: float = 0.0) -> tuple[float, float, float, float]:
        """Sample the texture; returns a normalized RGBA tuple."""
        word = self._sampler.sample(self.state, u, v, lod)
        return (
            (word & 0xFF) / 255.0,
            ((word >> 8) & 0xFF) / 255.0,
            ((word >> 16) & 0xFF) / 255.0,
            ((word >> 24) & 0xFF) / 255.0,
        )

    def sample_many(self, us: np.ndarray, vs: np.ndarray, lods=0.0) -> np.ndarray:
        """Batched :meth:`sample`: normalized ``(N, 4)`` float64 RGBA rows."""
        words = self._sampler.sample_many(self.state, us, vs, lods)
        return unpack_colors(words) / 255.0


#: Rendering engines selectable on :class:`GraphicsContext`.  ``scalar`` is
#: the per-fragment Python reference; ``vector`` batches each (tile,
#: triangle) pair through the numpy rasterizer, sampler and fragment ops —
#: same split as the execution engines in :mod:`repro.engine`, and held to
#: the same invariant: pixel-identical framebuffers.
GRAPHICS_ENGINES = ("scalar", "vector")


class GraphicsContext:
    """A minimal OpenGL-ES-style immediate-mode context.

    ``perspective_depth`` switches the rasterizer's depth interpolation to
    the perspective-correct 1/w weighting (color and uv always use it).
    """

    def __init__(self, width: int, height: int, tile_size: int = 16,
                 engine: str = "scalar", perspective_depth: bool = False):
        if engine not in GRAPHICS_ENGINES:
            raise ValueError(
                f"unknown graphics engine {engine!r}; available: {GRAPHICS_ENGINES}"
            )
        self.engine = engine
        self.perspective_depth = perspective_depth
        self.framebuffer = Framebuffer(width, height)
        self.geometry = GeometryStage(width, height)
        self.tiles = TileGrid(width, height, tile_size)
        self.rasterizer = Rasterizer(width, height, perspective_depth=perspective_depth)
        self.fragment_ops = FragmentOps()
        self.texture: TextureBinding | None = None
        self.draw_calls = 0

    # -- state -----------------------------------------------------------------------

    def set_mvp(self, matrix: np.ndarray) -> None:
        """Set the model-view-projection matrix used by the vertex stage."""
        self.geometry.set_mvp(matrix)

    def bind_texture(self, image: np.ndarray | None,
                     filter_mode: TexFilter = TexFilter.BILINEAR,
                     wrap: TexWrap = TexWrap.REPEAT,
                     mipmaps: bool = False) -> None:
        """Bind (or unbind with ``None``) the fragment texture.

        With ``mipmaps`` the binding generates its box-filtered mip chain
        and fragments select their level of detail from the rasterizer's
        per-quad uv derivatives (trilinear filtering blends the two
        adjacent levels; point/bilinear use the truncated level).
        """
        self.texture = None if image is None else TextureBinding(image, filter_mode, wrap)
        if self.texture is not None and mipmaps:
            self.texture.generate_mipmaps()

    def clear(self, color=(0, 0, 0, 255), depth: float = 1.0) -> None:
        self.framebuffer.clear(color=color, depth=depth)

    # -- drawing ------------------------------------------------------------------------

    def draw(self, vertices: Sequence[Vertex],
             primitive: PrimitiveType = PrimitiveType.TRIANGLES) -> int:
        """Draw a vertex stream; returns the number of fragments written."""
        self.draw_calls += 1
        written_before = self.fragment_ops.fragments_written
        if primitive is PrimitiveType.TRIANGLES:
            self._draw_triangles(vertices)
        elif primitive is PrimitiveType.LINES:
            self._draw_lines(vertices)
        else:
            self._draw_points(vertices)
        return self.fragment_ops.fragments_written - written_before

    @property
    def _needs_derivatives(self) -> bool:
        """Derivative LOD is live once the bound texture has a mip chain."""
        return self.texture is not None and self.texture.mip_count > 1

    def _shade(self, fragment) -> tuple[float, float, float, float]:
        """Run the (fixed-function) fragment shader: vertex color x texture."""
        color = fragment.color
        if self.texture is not None:
            lod = 0.0
            if self.texture.mip_count > 1:
                # One-fragment batch through the same exact-arithmetic LOD
                # function the vector engine uses, so the levels agree
                # bit for bit.
                lod = float(
                    self.texture.lod_many(
                        np.array([fragment.duv_dx], dtype=np.float64),
                        np.array([fragment.duv_dy], dtype=np.float64),
                    )[0]
                )
            texel = self.texture.sample(fragment.uv[0], fragment.uv[1], lod)
            color = tuple(color[c] * texel[c] for c in range(4))
        return color

    def _shade_many(self, batch) -> np.ndarray:
        """Vectorized :meth:`_shade` over a fragment batch."""
        if self.texture is None:
            return batch.color
        lods = 0.0
        if self.texture.mip_count > 1 and batch.duv_dx is not None:
            lods = self.texture.lod_many(batch.duv_dx, batch.duv_dy)
        texels = self.texture.sample_many(batch.uv[:, 0], batch.uv[:, 1], lods)
        return batch.color * texels

    def _draw_triangles(self, vertices: Sequence[Vertex]) -> None:
        triangles = self.geometry.assemble_triangles(vertices)
        # Tile binning (tile-based rendering, Larrabee-style).
        self.tiles.clear()
        for triangle_id, tri in enumerate(triangles):
            bbox = self.rasterizer.triangle_bbox(tri)
            self.tiles.bin_bbox(triangle_id, *bbox)
        vectorized = self.engine == "vector"
        derivatives = self._needs_derivatives
        for tile in self.tiles.occupied_tiles():
            for triangle_id in self.tiles.triangles_in(tile):
                v0, v1, v2 = triangles[triangle_id]
                if vectorized:
                    batch = self.rasterizer.rasterize_triangle_batch(
                        v0, v1, v2, tile=tile, derivatives=derivatives
                    )
                    if batch is not None:
                        self.fragment_ops.process_many(
                            self.framebuffer, batch, self._shade_many(batch)
                        )
                else:
                    for fragment in self.rasterizer.rasterize_triangle(
                        v0, v1, v2, tile=tile, derivatives=derivatives
                    ):
                        self.fragment_ops.process(
                            self.framebuffer, fragment, self._shade(fragment)
                        )

    def _process_primitive_fragments(self, fragments) -> None:
        """Run one primitive's fragments through the fragment pipeline.

        On the vector engine the fragments are batched (one DDA walk or
        point never visits the same pixel twice, so the unique-pixel
        requirement of :meth:`FragmentOps.process_many` holds); distinct
        primitives still execute in order so overlaps between them blend
        sequentially, as on the scalar engine.
        """
        if self.engine == "vector":
            fragments = list(fragments)
            if not fragments:
                return
            batch = FragmentBatch(
                xs=np.array([f.x for f in fragments], dtype=np.intp),
                ys=np.array([f.y for f in fragments], dtype=np.intp),
                depth=np.array([f.depth for f in fragments], dtype=np.float64),
                color=np.array([f.color for f in fragments], dtype=np.float64),
                uv=np.array([f.uv for f in fragments], dtype=np.float64),
                duv_dx=np.array([f.duv_dx for f in fragments], dtype=np.float64),
                duv_dy=np.array([f.duv_dy for f in fragments], dtype=np.float64),
            )
            self.fragment_ops.process_many(self.framebuffer, batch, self._shade_many(batch))
        else:
            for fragment in fragments:
                self.fragment_ops.process(self.framebuffer, fragment, self._shade(fragment))

    def _draw_lines(self, vertices: Sequence[Vertex]) -> None:
        screen = [self.geometry.process_vertex(vertex) for vertex in vertices]
        for index in range(0, len(screen) - 1, 2):
            v0, v1 = screen[index], screen[index + 1]
            if v0 is None or v1 is None:
                continue
            self._process_primitive_fragments(self.rasterizer.rasterize_line(v0, v1))

    def _draw_points(self, vertices: Sequence[Vertex]) -> None:
        for vertex in vertices:
            screen = self.geometry.process_vertex(vertex)
            if screen is None:
                continue
            self._process_primitive_fragments(self.rasterizer.rasterize_point(screen))
