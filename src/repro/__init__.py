"""Vortex reproduction: a RISC-V SIMT GPGPU system in Python.

This package reproduces the system described in "Vortex: Extending the
RISC-V ISA for GPGPU and 3D-Graphics Research" (MICRO 2021): the six
instruction ISA extension, the SIMT microarchitecture with its
high-bandwidth non-blocking cache subsystem and texture units, the
host-side driver/runtime stack with an OpenCL-style API, a software
tile-based graphics pipeline, and the benchmark harness regenerating the
paper's evaluation tables and figures.

Typical entry points:

* :class:`repro.runtime.VortexDevice` -- upload a kernel, allocate buffers,
  launch, read results (choose the ``simx`` cycle-level or ``funcsim``
  functional driver).
* :mod:`repro.kernels` -- the Rodinia-style and texture benchmark kernels.
* :class:`repro.runtime.Context` -- the OpenCL-style host API.
* :class:`repro.graphics.GraphicsContext` -- the OpenGL-ES-style renderer.
* :mod:`repro.synthesis` -- the calibrated FPGA area/frequency model.
"""

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    SCHEDULER_POLICIES,
    TextureConfig,
    VortexConfig,
)
from repro.engine.session import (
    BatchReport,
    DifferentialReport,
    JobQueue,
    JobResult,
    KernelJob,
    Session,
)
from repro.runtime.device import VortexDevice
from repro.runtime.launch import LaunchOptions
from repro.runtime.registry import DriverSpec, parse_driver_spec, register_driver
from repro.runtime.report import ExecutionReport

__version__ = "1.0.0"

#: Service-layer exports resolved lazily so importing :mod:`repro` does not
#: pull in the asyncio/multiprocessing serving stack.
_SERVICE_EXPORTS = ("SimulationService", "ServiceConfig", "ServiceClient")


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        import repro.service

        return getattr(repro.service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "MemoryConfig",
    "SCHEDULER_POLICIES",
    "TextureConfig",
    "VortexConfig",
    "VortexDevice",
    "ExecutionReport",
    "DriverSpec",
    "LaunchOptions",
    "parse_driver_spec",
    "register_driver",
    "Session",
    "JobQueue",
    "JobResult",
    "KernelJob",
    "BatchReport",
    "DifferentialReport",
    "SimulationService",
    "ServiceConfig",
    "ServiceClient",
    "__version__",
]
