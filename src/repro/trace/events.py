"""Typed, versioned trace event records.

One :class:`TraceEvent` is one microarchitectural occurrence on one cycle:
a scheduler decision, a scoreboard acquire, a cache bank hit, a DRAM
response.  Events are deliberately tiny and uniform — ``(cycle, core,
warp, channel, kind, payload)`` — so every sink (VCD, CSV, JSONL, an
in-memory list) and every analyzer (:mod:`repro.trace.attribution`, the
``python -m repro.trace`` CLI) speaks the same record.

The format is versioned (:data:`TRACE_VERSION`): every sink stamps the
version into its header and every parser checks it, so a trace written by
one revision of the simulator is never silently misread by another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Trace format version stamped into every sink header.
TRACE_VERSION = 1

#: The channels the timing stack emits on.  ``trace_channels`` spec options
#: are validated against this tuple.
CHANNELS = (
    "scheduler",  # per-core per-cycle issue/stall/masked/idle (+ stall reason)
    "scoreboard",  # hazard-register acquire/release
    "barrier",  # BarrierTable arrive/release
    "core",  # commit/redirect + synthesized fast-forward skip markers
    "icache",  # per-bank hit/miss/merge/conflict/refusal/fill
    "dcache",
    "smem",  # shared-memory bank read/write/conflict
    "l2",
    "l3",
    "dram",  # off-chip responses
)

#: ``warp`` value for events that are not warp-scoped (cache banks, DRAM).
NO_WARP = -1


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped microarchitectural event.

    ``payload`` carries kind-specific plain data (ints/bools/strings only,
    so every sink can serialize it canonically).  Equality is structural —
    the determinism tests compare whole event streams with ``==``.
    """

    cycle: int
    core: int
    warp: int
    channel: str
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)

    def key(self) -> tuple[int, int, int, str, str, str]:
        """A canonical sortable identity (payload serialized by repr)."""
        return (
            self.cycle,
            self.core,
            self.warp,
            self.channel,
            self.kind,
            repr(sorted(self.payload.items())),
        )


def expand_skips(events: list[TraceEvent]) -> list[TraceEvent]:
    """Normalize a stream for fast-forward comparison.

    Fast-forward runs mark each analytically skipped window with a
    synthesized ``core/skip`` record (so traces stay cycle-complete and a
    reader can tell "nothing happened here" from "tracing was off"), then
    replay the window's per-cycle scheduler/refusal events exactly as the
    ticked path would have emitted them.  Dropping the markers therefore
    yields the ticked stream bit-for-bit; a stable per-cycle sort keeps
    multi-core interleavings comparable.
    """
    kept = [event for event in events if not (event.channel == "core" and event.kind == "skip")]
    return sorted(kept, key=lambda event: (event.cycle, event.core))


__all__ = ["TRACE_VERSION", "CHANNELS", "NO_WARP", "TraceEvent", "expand_skips"]
