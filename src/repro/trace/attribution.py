"""Stall attribution and counter reconciliation over trace streams.

Two consumers drive this module:

* ``benchmarks/scheduler_forensics.py`` folds a trace into per-policy
  per-warp stall/switch breakdowns (:func:`attribute_stalls`) to explain
  *why* scheduler policies differ — the scheduler channel emits exactly
  one event per core per cycle, so the per-kind deltas between two
  policies sum to their cycle-count gap exactly.
* The trace smoke gate cross-checks a full (unfiltered) event stream
  against the simulator's own aggregate counters (:func:`reconcile`):
  every per-reason stall event total must equal the corresponding
  ``PerfCounters`` value bit-exactly, for both engines and both
  fast-forward settings.  A non-empty mismatch list means the
  instrumentation and the counters have drifted apart.
"""

from __future__ import annotations

from typing import Any

from repro.trace.events import TraceEvent

#: Channels whose events reconcile against ``NonBlockingCache`` counters.
CACHE_CHANNELS = ("icache", "dcache", "l2", "l3")


def summarize(events: list[TraceEvent]) -> dict[str, Any]:
    """Compact overview of a trace: span, population, per-channel kinds."""
    per_channel: dict[str, dict[str, int]] = {}
    cores: set[int] = set()
    warps: set[int] = set()
    first: int | None = None
    last: int | None = None
    for event in events:
        bucket = per_channel.setdefault(event.channel, {})
        bucket[event.kind] = bucket.get(event.kind, 0) + 1
        if event.core >= 0:
            cores.add(event.core)
        if event.warp >= 0:
            warps.add(event.warp)
        if first is None or event.cycle < first:
            first = event.cycle
        if last is None or event.cycle > last:
            last = event.cycle
    return {
        "events": len(events),
        "cycles": [first, last],
        "cores": sorted(cores),
        "warps": sorted(warps),
        "channels": {
            channel: dict(sorted(kinds.items()))
            for channel, kinds in sorted(per_channel.items())
        },
    }


def attribute_stalls(events: list[TraceEvent]) -> dict[int, dict[str, Any]]:
    """Fold the scheduler channel into per-core, per-warp breakdowns.

    The scheduler channel carries exactly one event per core per cycle
    (``issue`` / ``stall`` with a reason / ``masked`` / ``idle``), so each
    core's ``cycles`` here equals its cycle counter and the per-kind
    counts partition it.  ``switches`` counts consecutive issues from
    different warps — the context-switch traffic a policy induces.
    """
    per_core: dict[int, dict[str, Any]] = {}
    last_issued: dict[int, int] = {}
    for event in events:
        if event.channel != "scheduler":
            continue
        core = per_core.setdefault(
            event.core,
            {
                "cycles": 0,
                "issues": 0,
                "switches": 0,
                "idle": 0,
                "masked": 0,
                "stalls": {},
                "warps": {},
            },
        )
        core["cycles"] += 1
        if event.kind == "issue":
            core["issues"] += 1
            previous = last_issued.get(event.core)
            if previous is not None and previous != event.warp:
                core["switches"] += 1
            last_issued[event.core] = event.warp
            warp = core["warps"].setdefault(event.warp, {"issues": 0, "stalls": {}})
            warp["issues"] += 1
        elif event.kind == "stall":
            reason = event.payload.get("reason", "unknown")
            core["stalls"][reason] = core["stalls"].get(reason, 0) + 1
            warp = core["warps"].setdefault(event.warp, {"issues": 0, "stalls": {}})
            warp["stalls"][reason] = warp["stalls"].get(reason, 0) + 1
        elif event.kind == "idle":
            core["idle"] += 1
        else:
            core["masked"] += 1
    return per_core


def observed_counters(events: list[TraceEvent]) -> dict[str, dict[str, int]]:
    """Aggregate an event stream into the counter shapes :func:`reconcile`
    compares (``core0/scheduler`` → ``{"issue": n, "stall/scoreboard": n,
    ...}``).  Synthesized ``core/skip`` markers are not occurrences and
    are dropped."""
    observed: dict[str, dict[str, int]] = {}

    def bump(key: str, kind: str) -> None:
        bucket = observed.setdefault(key, {})
        bucket[kind] = bucket.get(kind, 0) + 1

    for event in events:
        channel = event.channel
        key = f"core{event.core}/{channel}" if event.core >= 0 else channel
        kind = event.kind
        if channel == "core":
            if kind == "skip":
                continue
            bump(key, kind)
        elif channel == "scheduler":
            if kind == "stall":
                bump(key, f"stall/{event.payload.get('reason', 'unknown')}")
            else:
                bump(key, kind)
            bump(key, "total")
        elif channel == "barrier":
            bump(key, "arrive-stalled" if not event.payload.get("released") else "arrive-released")
        elif channel == "smem":
            bump(key, kind)
            bump(key, "total")
        elif channel in CACHE_CHANNELS:
            bump(key, kind)
            if kind != "fill":
                bump(key, "total")
            if kind == "miss" and event.payload.get("merge"):
                bump(key, "merge")
        else:
            bump(key, kind)
    return observed


def collect_reconciliation_counters(processor: Any) -> dict[str, dict[str, int]]:
    """Read the live aggregate counters a full trace must reproduce.

    Takes the live ``TimingProcessor`` (not an ``ExecutionReport``): the
    scheduler, shared-memory, scoreboard and per-bank MSHR counters this
    needs are not all surfaced in report payloads.
    """
    expected: dict[str, dict[str, int]] = {}
    for core in processor.cores:
        cid = core.core_id
        expected[f"core{cid}/scheduler"] = {
            "issue": core.perf.get("instructions"),
            "stall/scoreboard": core.perf.get("scoreboard_stalls"),
            "stall/ibuffer": core.perf.get("ifetch_misses"),
            "idle": core.perf.get("idle_cycles"),
            "total": core.perf.get("cycles"),
        }
        expected[f"core{cid}/scoreboard"] = {
            "acquire": core.scoreboard.perf.get("reservations"),
        }
        expected[f"core{cid}/barrier"] = {
            "arrive-stalled": core.func.perf.get("barrier_stalls"),
        }
        expected[f"core{cid}/core"] = {
            "commit": core.perf.get("mem_ops_completed"),
            "redirect": core.perf.get("taken_branches"),
        }
        expected[f"core{cid}/smem"] = {
            "conflict": core.smem.perf.get("bank_conflicts"),
            "read": core.smem.perf.get("reads"),
            "write": core.smem.perf.get("writes"),
            "total": core.smem.perf.get("attempts"),
        }
    memsys = processor.memsys
    caches: list[tuple[str, int, Any]] = []
    for cid, cache in enumerate(memsys.icaches):
        caches.append(("icache", cid, cache))
    for cid, cache in enumerate(memsys.dcaches):
        caches.append(("dcache", cid, cache))
    for cache in memsys.l2:
        if cache is not None:
            caches.append(("l2", -1, cache))
    if memsys.l3 is not None:
        caches.append(("l3", -1, memsys.l3))
    for channel, cid, cache in caches:
        key = f"core{cid}/{channel}" if cid >= 0 else channel
        bucket = expected.setdefault(
            key,
            {
                "conflict": 0,
                "mshr-stall": 0,
                "refusal": 0,
                "hit": 0,
                "miss": 0,
                "fill": 0,
                "merge": 0,
                "total": 0,
            },
        )
        bucket["conflict"] += cache.perf.get("bank_conflicts")
        bucket["mshr-stall"] += cache.perf.get("mshr_stalls")
        bucket["refusal"] += cache.perf.get("memq_stalls")
        bucket["hit"] += cache.perf.get("read_hits") + cache.perf.get("write_hits")
        bucket["miss"] += cache.perf.get("read_misses") + cache.perf.get("write_misses")
        bucket["fill"] += cache.perf.get("fills")
        bucket["merge"] += sum(bank.mshr.merged for bank in cache.banks)
        bucket["total"] += cache.perf.get("attempts")
    expected["dram"] = {"response": memsys.dram.perf.get("responses")}
    return expected


def reconcile(events: list[TraceEvent], processor: Any) -> list[str]:
    """Cross-check a *full, unfiltered* trace against the live counters.

    Returns human-readable mismatch lines (empty list == bit-exact).
    A channel-filtered trace will legitimately under-count — reconcile
    only streams recorded without ``trace_channels`` restrictions.
    """
    expected = collect_reconciliation_counters(processor)
    observed = observed_counters(events)
    mismatches = []
    for key, bucket in sorted(expected.items()):
        seen = observed.get(key, {})
        for kind, value in sorted(bucket.items()):
            got = seen.get(kind, 0)
            if got != value:
                mismatches.append(f"{key}: {kind} events {got} != counter {value}")
    return mismatches


__all__ = [
    "CACHE_CHANNELS",
    "summarize",
    "attribute_stalls",
    "observed_counters",
    "collect_reconciliation_counters",
    "reconcile",
]
