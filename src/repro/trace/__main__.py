"""Trace CLI: ``python -m repro.trace {summarize,convert,diff}``.

* ``summarize TRACE`` — per-channel event counts plus the scheduler
  stall/switch attribution, as JSON on stdout.
* ``convert SRC DEST --format {csv,jsonl,vcd}`` — re-encode a lossless
  trace (CSV/JSONL) into any sink format, including VCD for waveform
  viewers.
* ``diff LEFT RIGHT`` — compare two traces after expanding synthesized
  fast-forward skip markers; exit 1 when the streams differ.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.trace.attribution import attribute_stalls, summarize
from repro.trace.events import TraceEvent, expand_skips
from repro.trace.sinks import CsvSink, JsonlSink, VcdSink, load_trace

_SINKS = {"csv": CsvSink, "jsonl": JsonlSink, "vcd": VcdSink}


def _render(event: TraceEvent) -> str:
    payload = json.dumps(event.payload, sort_keys=True) if event.payload else ""
    return (
        f"cycle={event.cycle} core={event.core} warp={event.warp} "
        f"{event.channel}/{event.kind} {payload}".rstrip()
    )


def _cmd_summarize(args: argparse.Namespace) -> int:
    events = load_trace(args.trace)
    payload = summarize(events)
    payload["attribution"] = {
        f"core{core}": data for core, data in sorted(attribute_stalls(events).items())
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    events = load_trace(args.source)
    sink = _SINKS[args.format](args.dest)
    for event in events:
        sink.write(event)
    sink.close()
    print(f"wrote {len(events)} events to {args.dest} ({args.format})")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    left = expand_skips(load_trace(args.left))
    right = expand_skips(load_trace(args.right))
    if left == right:
        print(f"traces match: {len(left)} events (skip markers expanded)")
        return 0
    shown = 0
    for index, (one, other) in enumerate(zip(left, right)):
        if one != other:
            print(f"event {index}:\n  < {_render(one)}\n  > {_render(other)}")
            shown += 1
            if shown >= args.limit:
                print("  ... (further diffs elided)")
                break
    if len(left) != len(right):
        print(f"event counts differ: {len(left)} vs {len(right)}")
    print("traces differ")
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.trace", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser("summarize", help="per-channel counts + stall attribution")
    cmd.add_argument("trace", help="CSV or JSONL trace file")
    cmd.set_defaults(handler=_cmd_summarize)

    cmd = commands.add_parser("convert", help="re-encode a trace into another format")
    cmd.add_argument("source", help="CSV or JSONL trace file")
    cmd.add_argument("dest", help="output path")
    cmd.add_argument("--format", choices=sorted(_SINKS), required=True)
    cmd.set_defaults(handler=_cmd_convert)

    cmd = commands.add_parser("diff", help="compare two traces (skip markers expanded)")
    cmd.add_argument("left", help="CSV or JSONL trace file")
    cmd.add_argument("right", help="CSV or JSONL trace file")
    cmd.add_argument("--limit", type=int, default=10, help="max differing events to print")
    cmd.set_defaults(handler=_cmd_diff)

    args = parser.parse_args(argv)
    return int(args.handler(args))


if __name__ == "__main__":
    sys.exit(main())
