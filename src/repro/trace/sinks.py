"""Trace sinks and their parsers: VCD, CSV, JSONL, in-memory.

Every textual format carries the trace format version in its header
(:data:`~repro.trace.events.TRACE_VERSION`) and has a matching parser so
the CLI and the round-trip property tests can read traces back:

* **CSV** (``parse_csv``) — one row per event, payload JSON-encoded with
  sorted keys; lossless.
* **JSONL** (``parse_jsonl``) — one object per line after a header
  record; lossless.
* **VCD** (``parse_vcd``) — value-change dump for waveform viewers: one
  32-bit wire per (core, channel) whose value encodes ``(kind, warp)``.
  VCD is *change-based*, so coincident same-wire events collapse to the
  last one per cycle; :func:`vcd_changes` is the pure reference for that
  lossy projection and the round-trip property is
  ``parse_vcd(encode(events)) == vcd_changes(events)``.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, TextIO

from repro.trace.events import TRACE_VERSION, TraceEvent

# ---------------------------------------------------------------------------
# In-memory


class MemorySink:
    """Collects events into a python list (``driver.trace_bus`` exposes it)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def write(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        return None


# ---------------------------------------------------------------------------
# CSV

_CSV_HEADER_COMMENT = f"# repro-trace v{TRACE_VERSION}"
_CSV_COLUMNS = ("cycle", "core", "warp", "channel", "kind", "payload")


class CsvSink:
    """Streams events to a CSV file (header comment carries the version)."""

    def __init__(self, target: str | Path | TextIO):
        if isinstance(target, (str, Path)):
            self._file: TextIO = open(target, "w", encoding="utf-8", newline="")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self._file.write(_CSV_HEADER_COMMENT + "\n")
        self._writer = csv.writer(self._file)
        self._writer.writerow(_CSV_COLUMNS)

    def write(self, event: TraceEvent) -> None:
        payload = json.dumps(event.payload, sort_keys=True) if event.payload else ""
        self._writer.writerow(
            (event.cycle, event.core, event.warp, event.channel, event.kind, payload)
        )

    def close(self) -> None:
        if self._owns_file:
            self._file.close()
        else:
            self._file.flush()


def parse_csv(text: str) -> list[TraceEvent]:
    """Parse :class:`CsvSink` output back into events (lossless)."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith("# repro-trace v"):
        raise ValueError("not a repro-trace CSV: missing version header")
    version = int(lines[0].rsplit("v", 1)[1])
    if version != TRACE_VERSION:
        raise ValueError(f"unsupported trace version {version} (expected {TRACE_VERSION})")
    reader = csv.reader(io.StringIO("\n".join(lines[1:])))
    header = next(reader, None)
    if tuple(header or ()) != _CSV_COLUMNS:
        raise ValueError(f"unexpected CSV columns: {header}")
    events = []
    for row in reader:
        if not row:
            continue
        cycle, core, warp, channel, kind, payload = row
        events.append(
            TraceEvent(
                cycle=int(cycle),
                core=int(core),
                warp=int(warp),
                channel=channel,
                kind=kind,
                payload=json.loads(payload) if payload else {},
            )
        )
    return events


# ---------------------------------------------------------------------------
# JSONL


class JsonlSink:
    """Streams events as one JSON object per line after a header record."""

    def __init__(self, target: str | Path | TextIO):
        if isinstance(target, (str, Path)):
            self._file: TextIO = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        header = {"format": "repro-trace", "version": TRACE_VERSION}
        self._file.write(json.dumps(header, sort_keys=True) + "\n")

    def write(self, event: TraceEvent) -> None:
        record = {
            "cycle": event.cycle,
            "core": event.core,
            "warp": event.warp,
            "channel": event.channel,
            "kind": event.kind,
        }
        if event.payload:
            record["payload"] = event.payload
        self._file.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        if self._owns_file:
            self._file.close()
        else:
            self._file.flush()


def parse_jsonl(text: str) -> list[TraceEvent]:
    """Parse :class:`JsonlSink` output back into events (lossless)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("not a repro-trace JSONL: empty input")
    header = json.loads(lines[0])
    if header.get("format") != "repro-trace":
        raise ValueError("not a repro-trace JSONL: missing format header")
    if header.get("version") != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {header.get('version')} (expected {TRACE_VERSION})"
        )
    events = []
    for line in lines[1:]:
        record = json.loads(line)
        events.append(
            TraceEvent(
                cycle=record["cycle"],
                core=record["core"],
                warp=record["warp"],
                channel=record["channel"],
                kind=record["kind"],
                payload=record.get("payload", {}),
            )
        )
    return events


# ---------------------------------------------------------------------------
# VCD

#: Change record: ``(cycle, core, channel, kind, warp)``.
VcdChange = tuple[int, int, str, str, int]


def vcd_changes(events: list[TraceEvent]) -> list[VcdChange]:
    """The pure change-projection a VCD dump records.

    VCD wires carry one value per time step: coincident events on the same
    (core, channel) wire within one cycle collapse to the *last* one, and a
    value identical to the wire's previous value emits no change.  Payloads
    are not representable on a wire and are dropped (use CSV/JSONL for
    lossless capture).  Within one cycle, changes are ordered by
    ``(core, channel)`` — the writer's deterministic wire order.
    """
    changes: list[VcdChange] = []
    last: dict[tuple[int, str], tuple[str, int]] = {}
    pending: dict[tuple[int, str], tuple[str, int]] = {}
    current_cycle: int | None = None

    def flush() -> None:
        if current_cycle is None:
            return
        for (core, channel) in sorted(pending):
            value = pending[(core, channel)]
            if last.get((core, channel)) != value:
                changes.append((current_cycle, core, channel, value[0], value[1]))
                last[(core, channel)] = value
        pending.clear()

    for event in events:
        if event.cycle != current_cycle:
            flush()
            current_cycle = event.cycle
        pending[(event.core, event.channel)] = (event.kind, event.warp)
    flush()
    return changes


def _vcd_ident(index: int) -> str:
    """Deterministic short VCD identifier for wire ``index`` (base-94)."""
    chars = ""
    index += 1
    while index:
        index, digit = divmod(index - 1, 94)
        chars = chr(33 + digit) + chars
    return chars


class VcdSink:
    """Buffers events and writes a value-change dump on :meth:`close`.

    The kind→code mapping and the wire table are embedded as JSON in a
    ``$comment`` section so :func:`parse_vcd` (and third-party tooling)
    can decode values without out-of-band knowledge.  The ``$date`` field
    is a fixed string — traces must be byte-deterministic.
    """

    def __init__(self, target: str | Path | TextIO):
        self._target = target
        self.events: list[TraceEvent] = []
        self._closed = False

    def write(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        text = encode_vcd(self.events)
        if isinstance(self._target, (str, Path)):
            Path(self._target).write_text(text, encoding="utf-8")
        else:
            self._target.write(text)
            self._target.flush()


def encode_vcd(events: list[TraceEvent]) -> str:
    """Render ``events`` as a VCD document (pure; used by :class:`VcdSink`)."""
    changes = vcd_changes(events)
    kinds = sorted({event.kind for event in events})
    kind_codes = {kind: code + 1 for code, kind in enumerate(kinds)}
    wires = sorted({(event.core, event.channel) for event in events})
    wire_ids = {wire: _vcd_ident(index) for index, wire in enumerate(wires)}
    meta = {
        "format": "repro-trace",
        "version": TRACE_VERSION,
        "kinds": kind_codes,
        "wires": [[core, channel, wire_ids[(core, channel)]] for core, channel in wires],
    }
    out = io.StringIO()
    out.write("$date repro-trace $end\n")
    out.write(f"$version repro.trace v{TRACE_VERSION} $end\n")
    out.write("$timescale 1ns $end\n")
    out.write(f"$comment {json.dumps(meta, sort_keys=True)} $end\n")
    out.write("$scope module repro $end\n")
    for core, channel in wires:
        out.write(f"$var wire 32 {wire_ids[(core, channel)]} core{core}_{channel} $end\n")
    out.write("$upscope $end\n")
    out.write("$enddefinitions $end\n")
    current_cycle: int | None = None
    for cycle, core, channel, kind, warp in changes:
        if cycle != current_cycle:
            out.write(f"#{cycle}\n")
            current_cycle = cycle
        value = (kind_codes[kind] << 8) | ((warp + 2) & 0xFF)
        out.write(f"b{value:b} {wire_ids[(core, channel)]}\n")
    return out.getvalue()


def parse_vcd(text: str) -> list[VcdChange]:
    """Parse :func:`encode_vcd` output back into change records."""
    meta: dict[str, Any] | None = None
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("$comment "):
            meta = json.loads(line[len("$comment ") : -len(" $end")])
            break
    if meta is None or meta.get("format") != "repro-trace":
        raise ValueError("not a repro-trace VCD: missing $comment metadata")
    if meta.get("version") != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {meta.get('version')} (expected {TRACE_VERSION})"
        )
    code_kinds = {code: kind for kind, code in meta["kinds"].items()}
    wires = {ident: (core, channel) for core, channel, ident in meta["wires"]}
    changes: list[VcdChange] = []
    cycle = 0
    in_definitions = True
    for line in text.splitlines():
        line = line.strip()
        if in_definitions:
            if line == "$enddefinitions $end":
                in_definitions = False
            continue
        if line.startswith("#"):
            cycle = int(line[1:])
        elif line.startswith("b"):
            bits, ident = line[1:].split()
            value = int(bits, 2)
            kind = code_kinds[value >> 8]
            warp = (value & 0xFF) - 2
            core, channel = wires[ident]
            changes.append((cycle, core, channel, kind, warp))
    return changes


# ---------------------------------------------------------------------------
# Format sniffing (CLI entry point)


def load_trace(path: str | Path) -> list[TraceEvent]:
    """Load a CSV or JSONL trace, sniffing the format from the header.

    VCD is intentionally excluded: its projection is lossy (no payloads),
    so analyzers work from the lossless formats; use :func:`parse_vcd`
    directly to inspect a waveform dump.
    """
    text = Path(path).read_text(encoding="utf-8")
    head = text.lstrip()[:1]
    if head == "#":
        return parse_csv(text)
    if head == "{":
        return parse_jsonl(text)
    raise ValueError(f"{path}: unrecognized trace format (expected repro-trace CSV or JSONL)")


__all__ = [
    "MemorySink",
    "CsvSink",
    "JsonlSink",
    "VcdSink",
    "parse_csv",
    "parse_jsonl",
    "parse_vcd",
    "encode_vcd",
    "vcd_changes",
    "load_trace",
    "VcdChange",
]
