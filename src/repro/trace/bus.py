"""The trace bus: one emission point fanning out to pluggable sinks.

A :class:`TraceBus` is constructed by the driver (``"simx:trace=vcd"``)
and handed to every instrumented component.  Components keep the
tracing-off hot path allocation-free by holding ``trace = None`` when no
bus is attached and guarding every emission::

    trace = self.trace
    if trace is not None:
        trace.emit(self.cycle, self.core_id, warp, "scheduler", "issue", {...})

vxlint rule VX008 statically enforces that guard inside ``@hot_path``
functions.  Channel filtering (``trace_channels=scheduler+dcache``)
happens inside :meth:`TraceBus.emit`, so it only costs anything when
tracing is already on.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.trace.events import CHANNELS, TraceEvent


class TraceSink(Protocol):
    """Anything that can receive a stream of events (see :mod:`.sinks`)."""

    def write(self, event: TraceEvent) -> None: ...

    def close(self) -> None: ...


class TraceBus:
    """Fan-out point for simulator trace events.

    ``channels``, when given, restricts emission to that subset of
    :data:`~repro.trace.events.CHANNELS`; ``None`` records everything.
    """

    def __init__(
        self,
        sinks: list[TraceSink],
        channels: list[str] | tuple[str, ...] | None = None,
    ):
        if channels is not None:
            unknown = sorted(set(channels) - set(CHANNELS))
            if unknown:
                raise ValueError(
                    f"unknown trace channel(s) {unknown}; available: {sorted(CHANNELS)}"
                )
        self.sinks = list(sinks)
        self.channels: frozenset[str] | None = (
            frozenset(channels) if channels is not None else None
        )
        self.events_emitted = 0

    def wants(self, channel: str) -> bool:
        """True when ``channel`` passes the filter (used at attach time)."""
        return self.channels is None or channel in self.channels

    def emit(
        self,
        cycle: int,
        core: int,
        warp: int,
        channel: str,
        kind: str,
        payload: dict[str, Any] | None = None,
    ) -> None:
        """Record one event on every sink (subject to the channel filter)."""
        if self.channels is not None and channel not in self.channels:
            return
        event = TraceEvent(
            cycle=cycle,
            core=core,
            warp=warp,
            channel=channel,
            kind=kind,
            payload=payload if payload is not None else {},
        )
        self.events_emitted += 1
        for sink in self.sinks:
            sink.write(event)

    def close(self) -> None:
        """Flush and close every sink."""
        for sink in self.sinks:
            sink.close()


__all__ = ["TraceBus", "TraceSink"]
