"""``repro.trace`` — the simulator-wide observability subsystem.

A :class:`~repro.trace.bus.TraceBus` fans typed, versioned
:class:`~repro.trace.events.TraceEvent` records out to pluggable sinks
(VCD for waveform viewers, CSV/JSONL for analysis, an in-memory list for
tests).  The timing stack emits on it when a driver is built with the
``trace=`` spec option (``"simx:trace=vcd,trace_file=run.vcd"``); with
tracing off every component holds ``trace = None`` and the hot path
stays allocation-free (vxlint VX008 enforces the guard).

Analysis lives in :mod:`repro.trace.attribution` (stall attribution +
counter reconciliation) and the ``python -m repro.trace`` CLI
(summarize / convert / diff).
"""

from repro.trace.attribution import (
    attribute_stalls,
    collect_reconciliation_counters,
    observed_counters,
    reconcile,
    summarize,
)
from repro.trace.bus import TraceBus, TraceSink
from repro.trace.events import CHANNELS, NO_WARP, TRACE_VERSION, TraceEvent, expand_skips
from repro.trace.sinks import (
    CsvSink,
    JsonlSink,
    MemorySink,
    VcdSink,
    encode_vcd,
    load_trace,
    parse_csv,
    parse_jsonl,
    parse_vcd,
    vcd_changes,
)

__all__ = [
    "TRACE_VERSION",
    "CHANNELS",
    "NO_WARP",
    "TraceEvent",
    "TraceBus",
    "TraceSink",
    "expand_skips",
    "MemorySink",
    "CsvSink",
    "JsonlSink",
    "VcdSink",
    "parse_csv",
    "parse_jsonl",
    "parse_vcd",
    "encode_vcd",
    "vcd_changes",
    "load_trace",
    "summarize",
    "attribute_stalls",
    "observed_counters",
    "collect_reconciliation_counters",
    "reconcile",
]
