"""Warp (wavefront) state: per-thread register files, PC, thread mask.

A warp is the unit the scheduler picks every cycle; all of its active
threads execute the same instruction.  Vortex keeps scalar 32-bit register
files per thread (Table 1), banked per warp in hardware; here each warp
owns one numpy array per register class, laid out register-major
(``uint32[NUM_REGISTERS, num_threads]``) so that one architectural
register's lane vector — the value of ``x5`` across every thread of the
warp — is a contiguous row.  The scalar accessors used by the functional
emulator read single elements; the vectorized execution engine
(:mod:`repro.engine`) operates on whole rows under the thread mask.
"""

from __future__ import annotations

import numpy as np

from repro.common.bitutils import mask, to_uint32
from repro.core.ipdom import IpdomStack

NUM_REGISTERS = 32

#: Cache of active-lane index vectors keyed by (num_threads, tmask); thread
#: masks repeat heavily (full mask, single thread, split halves), so every
#: warp shares the same immutable index arrays.
_LANE_CACHE: dict[tuple[int, int], np.ndarray] = {}


def active_lane_indices(num_threads: int, tmask: int) -> np.ndarray:
    """Indices of the set bits of ``tmask`` as an immutable numpy vector."""
    key = (num_threads, tmask)
    lanes = _LANE_CACHE.get(key)
    if lanes is None:
        lanes = np.array(
            [t for t in range(num_threads) if (tmask >> t) & 1], dtype=np.intp
        )
        lanes.setflags(write=False)
        _LANE_CACHE[key] = lanes
    return lanes


class RegisterFile:
    """Integer + floating-point registers for every thread of one warp.

    Storage is register-major: ``int_row(i)`` / ``fp_row(i)`` return the
    32-bit lane vector of one architectural register (a numpy view, shape
    ``(num_threads,)``).  Row 0 of the integer file is the hardwired zero
    register: it is never written, so reads of the row are always zero.
    """

    def __init__(self, num_threads: int):
        self.num_threads = num_threads
        self._int_regs = np.zeros((NUM_REGISTERS, num_threads), dtype=np.uint32)
        self._fp_regs = np.zeros((NUM_REGISTERS, num_threads), dtype=np.uint32)

    # -- scalar access (functional emulator) ---------------------------------------

    def read_int(self, thread: int, index: int) -> int:
        """Read integer register ``index`` of ``thread`` (x0 reads as zero)."""
        if index == 0:
            return 0
        return int(self._int_regs[index, thread])

    def write_int(self, thread: int, index: int, value: int) -> None:
        """Write integer register ``index`` of ``thread`` (writes to x0 are dropped)."""
        if index == 0:
            return
        self._int_regs[index, thread] = to_uint32(value)

    def read_float(self, thread: int, index: int) -> int:
        """Read floating-point register ``index`` (raw binary32 bits)."""
        return int(self._fp_regs[index, thread])

    def write_float(self, thread: int, index: int, value: int) -> None:
        """Write floating-point register ``index`` (raw binary32 bits)."""
        self._fp_regs[index, thread] = to_uint32(value)

    def broadcast_int(self, index: int, value: int) -> None:
        """Write the same value to one integer register of every thread."""
        if index == 0:
            return
        self._int_regs[index] = to_uint32(value)

    # -- lane-vector access (vectorized engine) ------------------------------------

    def int_row(self, index: int) -> np.ndarray:
        """Lane vector of integer register ``index`` (mutable view; never row 0)."""
        return self._int_regs[index]

    def fp_row(self, index: int) -> np.ndarray:
        """Lane vector of floating-point register ``index`` (mutable view)."""
        return self._fp_regs[index]

    # -- checkpoint/restore ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize both register classes as raw little-endian bytes."""
        return {
            "int": self._int_regs.tobytes(),
            "fp": self._fp_regs.tobytes(),
        }

    def restore(self, payload: dict) -> None:
        """Restore register contents from a :meth:`snapshot` payload."""
        shape = (NUM_REGISTERS, self.num_threads)
        self._int_regs[:] = np.frombuffer(payload["int"], dtype=np.uint32).reshape(shape)
        self._fp_regs[:] = np.frombuffer(payload["fp"], dtype=np.uint32).reshape(shape)


class Warp:
    """One wavefront: PC, thread mask, activity state and register files."""

    #: Identity/geometry plus mask-derived fields the ``tmask`` setter
    #: rebuilds on restore (vxlint VX007).
    SNAPSHOT_EXCLUDED = frozenset(
        {"warp_id", "num_threads", "active_count", "full", "lanes"}
    )

    def __init__(self, warp_id: int, num_threads: int, ipdom_depth: int = 32):
        self.warp_id = warp_id
        self.num_threads = num_threads
        self.pc = 0
        self.active = False
        self.regs = RegisterFile(num_threads)
        self.ipdom = IpdomStack(depth=ipdom_depth)
        #: set while the warp waits at a barrier; cleared by the barrier table.
        self.at_barrier = False
        #: cumulative retired instruction count (warp-level).
        self.instructions = 0
        #: per-PC execution plans built by the vectorized engine (cleared on
        #: decode-cache invalidation).
        self.plan_cache: dict[int, object] = {}
        #: per-PC timing plans built by the vectorized cycle-level engine
        #: (architectural plan + the per-instruction facts the timing model
        #: charges); cleared together with :attr:`plan_cache`.
        self.timing_plan_cache: dict[int, object] = {}
        self.tmask = 0

    # -- thread mask helpers -----------------------------------------------------

    @property
    def tmask(self) -> int:
        return self._tmask

    @tmask.setter
    def tmask(self, value: int) -> None:
        self._tmask = value
        self.active_count = bin(value).count("1")
        self.full = value == mask(self.num_threads)
        self.lanes = active_lane_indices(self.num_threads, value)

    @property
    def full_mask(self) -> int:
        """Mask with every hardware thread of the warp enabled."""
        return mask(self.num_threads)

    def active_threads(self) -> list[int]:
        """Indices of the currently active threads."""
        return [t for t in range(self.num_threads) if (self.tmask >> t) & 1]

    def num_active_threads(self) -> int:
        return bin(self.tmask & self.full_mask).count("1")

    def set_thread_count(self, count: int) -> None:
        """Implement ``tmc count``: activate the ``count`` lowest threads."""
        count = max(0, min(count, self.num_threads))
        self.tmask = mask(count)
        if count == 0:
            self.active = False

    def set_tmask(self, tmask: int) -> None:
        """Set an explicit thread mask (used by split/join)."""
        self.tmask = tmask & self.full_mask
        if self.tmask == 0:
            self.active = False

    # -- lifecycle ------------------------------------------------------------------

    def spawn(self, pc: int, tmask: int | None = None) -> None:
        """Activate the warp at ``pc`` (used at reset and by ``wspawn``)."""
        self.pc = pc
        self.tmask = self.full_mask if tmask is None else (tmask & self.full_mask)
        self.active = True
        self.at_barrier = False
        self.ipdom.clear()

    def halt(self) -> None:
        """Deactivate the warp."""
        self.active = False
        self.tmask = 0

    # -- checkpoint/restore ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize the warp's architectural state.

        The plan caches (and the lane/count fields derived from the thread
        mask) are deliberately excluded: they are pure functions of program
        bytes and mask value, rebuilt lazily after restore.
        """
        return {
            "pc": self.pc,
            "active": self.active,
            "at_barrier": self.at_barrier,
            "instructions": self.instructions,
            "tmask": self._tmask,
            "regs": self.regs.snapshot(),
            "ipdom": self.ipdom.snapshot(),
        }

    def restore(self, payload: dict) -> None:
        """Restore the warp from a :meth:`snapshot` payload.

        Assigning through the ``tmask`` property rebuilds the derived mask
        state (active count, full flag, lane indices); the plan caches are
        dropped because the restored memory image may hold a different
        program than the one the caches were built against.
        """
        self.pc = payload["pc"]
        self.active = payload["active"]
        self.at_barrier = payload["at_barrier"]
        self.instructions = payload["instructions"]
        self.tmask = payload["tmask"]
        self.regs.restore(payload["regs"])
        self.ipdom.restore(payload["ipdom"])
        self.plan_cache.clear()
        self.timing_plan_cache.clear()

    @property
    def schedulable(self) -> bool:
        """True when the warp can be picked by the scheduler."""
        return self.active and not self.at_barrier and self._tmask != 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Warp(id={self.warp_id}, pc={self.pc:#x}, tmask={self.tmask:#x}, "
            f"active={self.active}, at_barrier={self.at_barrier})"
        )
