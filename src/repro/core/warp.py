"""Warp (wavefront) state: per-thread register files, PC, thread mask.

A warp is the unit the scheduler picks every cycle; all of its active
threads execute the same instruction.  Vortex keeps scalar 32-bit register
files per thread (Table 1), banked per warp in hardware; here each warp
simply owns ``num_threads`` integer and floating-point register arrays.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.bitutils import mask, to_uint32
from repro.core.ipdom import IpdomStack

NUM_REGISTERS = 32


class RegisterFile:
    """Integer + floating-point registers for every thread of one warp."""

    def __init__(self, num_threads: int):
        self.num_threads = num_threads
        self._int_regs: List[List[int]] = [[0] * NUM_REGISTERS for _ in range(num_threads)]
        self._fp_regs: List[List[int]] = [[0] * NUM_REGISTERS for _ in range(num_threads)]

    def read_int(self, thread: int, index: int) -> int:
        """Read integer register ``index`` of ``thread`` (x0 reads as zero)."""
        if index == 0:
            return 0
        return self._int_regs[thread][index]

    def write_int(self, thread: int, index: int, value: int) -> None:
        """Write integer register ``index`` of ``thread`` (writes to x0 are dropped)."""
        if index == 0:
            return
        self._int_regs[thread][index] = to_uint32(value)

    def read_float(self, thread: int, index: int) -> int:
        """Read floating-point register ``index`` (raw binary32 bits)."""
        return self._fp_regs[thread][index]

    def write_float(self, thread: int, index: int, value: int) -> None:
        """Write floating-point register ``index`` (raw binary32 bits)."""
        self._fp_regs[thread][index] = to_uint32(value)

    def broadcast_int(self, index: int, value: int) -> None:
        """Write the same value to one integer register of every thread."""
        for thread in range(self.num_threads):
            self.write_int(thread, index, value)


class Warp:
    """One wavefront: PC, thread mask, activity state and register files."""

    def __init__(self, warp_id: int, num_threads: int, ipdom_depth: int = 32):
        self.warp_id = warp_id
        self.num_threads = num_threads
        self.pc = 0
        self.tmask = 0
        self.active = False
        self.regs = RegisterFile(num_threads)
        self.ipdom = IpdomStack(depth=ipdom_depth)
        #: set while the warp waits at a barrier; cleared by the barrier table.
        self.at_barrier = False
        #: cumulative retired instruction count (warp-level).
        self.instructions = 0

    # -- thread mask helpers -----------------------------------------------------

    @property
    def full_mask(self) -> int:
        """Mask with every hardware thread of the warp enabled."""
        return mask(self.num_threads)

    def active_threads(self) -> List[int]:
        """Indices of the currently active threads."""
        return [t for t in range(self.num_threads) if (self.tmask >> t) & 1]

    def num_active_threads(self) -> int:
        return bin(self.tmask & self.full_mask).count("1")

    def set_thread_count(self, count: int) -> None:
        """Implement ``tmc count``: activate the ``count`` lowest threads."""
        count = max(0, min(count, self.num_threads))
        self.tmask = mask(count)
        if count == 0:
            self.active = False

    def set_tmask(self, tmask: int) -> None:
        """Set an explicit thread mask (used by split/join)."""
        self.tmask = tmask & self.full_mask
        if self.tmask == 0:
            self.active = False

    # -- lifecycle ------------------------------------------------------------------

    def spawn(self, pc: int, tmask: Optional[int] = None) -> None:
        """Activate the warp at ``pc`` (used at reset and by ``wspawn``)."""
        self.pc = pc
        self.tmask = self.full_mask if tmask is None else (tmask & self.full_mask)
        self.active = True
        self.at_barrier = False
        self.ipdom.clear()

    def halt(self) -> None:
        """Deactivate the warp."""
        self.active = False
        self.tmask = 0

    @property
    def schedulable(self) -> bool:
        """True when the warp can be picked by the scheduler."""
        return self.active and not self.at_barrier and self.tmask != 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Warp(id={self.warp_id}, pc={self.pc:#x}, tmask={self.tmask:#x}, "
            f"active={self.active}, at_barrier={self.at_barrier})"
        )
