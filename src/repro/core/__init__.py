"""The Vortex SIMT core microarchitecture (paper section 4.1).

The package is split into the *functional* pieces shared by both simulator
drivers (warp state, IPDOM stack, the warp-level instruction emulator,
barrier table) and the *timing* pieces used by the cycle-level SIMX driver
(wavefront scheduler, scoreboard, execution units, the five-stage pipeline,
and the multi-core processor with its cache hierarchy).
"""

from repro.core.warp import RegisterFile, Warp
from repro.core.ipdom import IpdomStack, IpdomEntry
from repro.core.barrier import BarrierTable
from repro.core.emulator import WarpEmulator, StepResult, EmulationError
from repro.core.scheduler import WavefrontScheduler
from repro.core.scoreboard import Scoreboard
from repro.core.core import SimtCore
from repro.core.timing import TimingCore
from repro.core.processor import Processor, TimingProcessor

__all__ = [
    "RegisterFile",
    "Warp",
    "IpdomStack",
    "IpdomEntry",
    "BarrierTable",
    "WarpEmulator",
    "StepResult",
    "EmulationError",
    "WavefrontScheduler",
    "Scoreboard",
    "SimtCore",
    "TimingCore",
    "Processor",
    "TimingProcessor",
]
