"""The wavefront scheduler (paper section 4.1.1).

The scheduler keeps four wavefront masks:

* ``active``  — wavefronts that exist (spawned and not yet terminated),
* ``stalled`` — wavefronts that must not be scheduled temporarily (waiting
  on a long-latency operation or on backpressure),
* ``barrier`` — wavefronts waiting at a barrier,
* ``visible`` — the working set of the hierarchical (two-level) scheduling
  policy: each cycle one wavefront is picked from the visible mask and
  removed; when the visible mask empties it is refilled from the active
  wavefronts that are neither stalled nor at a barrier.

``policy`` selects which selection policy :meth:`select` implements (the
design-space axis of :data:`repro.common.config.SCHEDULER_POLICIES`):

* ``"round-robin"`` — the paper's hierarchical two-level policy above,
* ``"greedy-then-oldest"`` — keep issuing the last-selected wavefront while
  it stays schedulable, otherwise fall back to the least-recently-issued
  ready wavefront,
* ``"loose-round-robin"`` — plain round-robin over the schedulable mask,
  with no two-level working set: a wavefront that becomes ready is eligible
  immediately instead of waiting for the next refill.
* ``"cache-locality"`` — informed by the trace forensics on the
  greedy-then-oldest pathology: prefer the least-recently-issued ready
  wavefront whose last memory access touched the current D$ line, and skip
  wavefronts whose previous issue attempt hit a scoreboard hazard (greedy
  burns the whole memory latency re-selecting exactly those).  The timing
  core feeds the policy through the :meth:`~WavefrontScheduler.note_hazard`
  / :meth:`~WavefrontScheduler.note_issued` /
  :meth:`~WavefrontScheduler.note_memory_issue` hooks, which update cheap
  bit-mask state unconditionally so every policy sees identical inputs.

All policies are fully deterministic.
"""

from __future__ import annotations

from repro.common.bitutils import mask
from repro.common.config import SCHEDULER_POLICIES
from repro.common.perf import PerfCounters, hot_path


class WavefrontScheduler:
    """Wavefront scheduler for one core (policy-selectable)."""

    #: Counter schema (vxlint VX003).
    COUNTERS = frozenset({"idle_cycles", "refills", "selections", "switches"})

    #: Construction-time policy wiring (vxlint VX007): ``_select`` is the
    #: bound policy method, a pure function of ``policy``.
    SNAPSHOT_EXCLUDED = frozenset({"num_warps", "policy", "_select"})

    def __init__(self, num_warps: int, policy: str = "round-robin"):
        if policy not in SCHEDULER_POLICIES:
            raise ValueError(
                f"unknown scheduler policy {policy!r}; available: {sorted(SCHEDULER_POLICIES)}"
            )
        self.num_warps = num_warps
        self.policy = policy
        self.active_mask = 0
        self.stalled_mask = 0
        self.barrier_mask = 0
        self.visible_mask = 0
        self.perf = PerfCounters("scheduler")
        self._last_selected: int | None = None
        # Last-issue order for greedy-then-oldest: stamp[w] is the monotonic
        # selection index warp w last issued at (0 = never issued, so cold
        # warps are oldest and ties break toward the lowest warp id).
        self._issue_stamps: list[int] = [0] * num_warps
        self._next_stamp = 1
        # Locality/hazard hints maintained by the note_* hooks (consulted
        # only by the cache-locality policy, updated under every policy so
        # switching policies never changes the hook-call sequence).
        self._last_lines: list[int] = [-1] * num_warps
        self._current_line = -1
        self._hazard_mask = 0
        self._select = {
            "round-robin": self._select_round_robin,
            "greedy-then-oldest": self._select_greedy_then_oldest,
            "loose-round-robin": self._select_loose_round_robin,
            "cache-locality": self._select_cache_locality,
        }[policy]

    # -- mask maintenance -----------------------------------------------------------

    def set_active(self, warp_id: int, active: bool) -> None:
        """Mark a wavefront as existing / terminated."""
        bit = 1 << warp_id
        if active:
            self.active_mask |= bit
        else:
            self.active_mask &= ~bit
            self.visible_mask &= ~bit

    def set_stalled(self, warp_id: int, stalled: bool) -> None:
        """Stall / release a wavefront (long-latency operation outstanding)."""
        bit = 1 << warp_id
        if stalled:
            self.stalled_mask |= bit
            self.visible_mask &= ~bit
        else:
            self.stalled_mask &= ~bit

    def set_at_barrier(self, warp_id: int, waiting: bool) -> None:
        """Mark / clear a wavefront as waiting at a barrier."""
        bit = 1 << warp_id
        if waiting:
            self.barrier_mask |= bit
            self.visible_mask &= ~bit
        else:
            self.barrier_mask &= ~bit

    def set_masks(self, active_mask: int, stalled_mask: int, barrier_mask: int) -> None:
        """Replace all three masks in one call (the per-cycle resync path).

        Equivalent to calling the individual setters for every wavefront:
        wavefronts that became unschedulable leave the visible working set,
        which is exactly the pruning :meth:`select` performs.
        """
        self.active_mask = active_mask
        self.stalled_mask = stalled_mask
        self.barrier_mask = barrier_mask
        self.visible_mask &= active_mask & ~stalled_mask & ~barrier_mask

    # -- issue-feedback hooks ---------------------------------------------------------

    @hot_path
    def note_hazard(self, warp_id: int) -> None:
        """The core's issue attempt for ``warp_id`` hit a scoreboard hazard."""
        self._hazard_mask |= 1 << warp_id

    @hot_path
    def note_issued(self, warp_id: int) -> None:
        """``warp_id`` issued an instruction (clears its hazard hint)."""
        self._hazard_mask &= ~(1 << warp_id)

    @hot_path
    def note_memory_issue(self, warp_id: int, line: int) -> None:
        """``warp_id`` issued a memory operation on D$ line ``line``."""
        self._last_lines[warp_id] = line
        self._current_line = line

    # -- checkpoint/restore -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize every selection-relevant field.

        The policy dispatch (``_select``) is constructor-derived; everything
        the three policies consult — the four masks, the last-selected
        wavefront and the greedy-then-oldest issue stamps — is captured so a
        restored scheduler replays selections identically.
        """
        return {
            "active_mask": self.active_mask,
            "stalled_mask": self.stalled_mask,
            "barrier_mask": self.barrier_mask,
            "visible_mask": self.visible_mask,
            "last_selected": self._last_selected,
            "issue_stamps": list(self._issue_stamps),
            "next_stamp": self._next_stamp,
            "last_lines": list(self._last_lines),
            "current_line": self._current_line,
            "hazard_mask": self._hazard_mask,
            "perf": self.perf.snapshot(),
        }

    def restore(self, payload: dict) -> None:
        """Restore scheduler state from a :meth:`snapshot` payload."""
        self.active_mask = payload["active_mask"]
        self.stalled_mask = payload["stalled_mask"]
        self.barrier_mask = payload["barrier_mask"]
        self.visible_mask = payload["visible_mask"]
        self._last_selected = payload["last_selected"]
        self._issue_stamps = list(payload["issue_stamps"])
        self._next_stamp = payload["next_stamp"]
        self._last_lines = list(payload["last_lines"])
        self._current_line = payload["current_line"]
        self._hazard_mask = payload["hazard_mask"]
        self.perf.restore(payload["perf"])

    # -- fast-forward -----------------------------------------------------------------

    def skip_idle(self, cycles: int) -> None:
        """Account ``cycles`` scheduler-idle cycles in one jump.

        Equivalent to ``cycles`` calls to :meth:`select` with an empty
        schedulable mask: every policy then only increments
        ``idle_cycles`` — no selection state (visible mask, last-selected,
        issue stamps) is touched, so bulk-advancing the counter is exact.
        """
        self.perf.incr("idle_cycles", cycles)

    # -- selection -------------------------------------------------------------------

    @hot_path
    def _schedulable_mask(self) -> int:
        return self.active_mask & ~self.stalled_mask & ~self.barrier_mask & mask(self.num_warps)

    def select(self) -> int | None:
        """Pick the wavefront to fetch this cycle, or ``None`` if none is ready."""
        return self._select()

    @hot_path
    def _select_round_robin(self) -> int | None:
        """The hierarchical two-level policy: wavefronts are drained from the
        visible mask one per cycle; when it is empty it is refilled from the
        schedulable wavefronts."""
        if self.visible_mask & ~self._schedulable_mask():
            # Wavefronts that became unschedulable leave the working set.
            self.visible_mask &= self._schedulable_mask()
        if not self.visible_mask:
            self.visible_mask = self._schedulable_mask()
            if not self.visible_mask:
                self.perf.incr("idle_cycles")
                return None
            self.perf.incr("refills")
        # Round-robin starting after the last selected wavefront.
        start = 0 if self._last_selected is None else (self._last_selected + 1) % self.num_warps
        for offset in range(self.num_warps):
            warp_id = (start + offset) % self.num_warps
            if (self.visible_mask >> warp_id) & 1:
                self.visible_mask &= ~(1 << warp_id)
                self._last_selected = warp_id
                self.perf.incr("selections")
                return warp_id
        return None  # pragma: no cover - unreachable, mask was non-zero

    @hot_path
    def _select_greedy_then_oldest(self) -> int | None:
        """Greedy-then-oldest: stick with the current wavefront until it
        stalls, then switch to the least-recently-issued ready one."""
        ready = self._schedulable_mask()
        if not ready:
            self.perf.incr("idle_cycles")
            return None
        last = self._last_selected
        if last is not None and (ready >> last) & 1:
            warp_id = last
        else:
            # The genexp/lambda only run on the *switch* path (greedy keeps
            # reissuing the same wavefront on the common path), so the
            # allocation is per-switch, not per-cycle.
            stamps = self._issue_stamps
            warp_id = min(
                (w for w in range(self.num_warps) if (ready >> w) & 1),  # vxlint: disable=VX004
                key=lambda w: (stamps[w], w),  # vxlint: disable=VX004
            )
            self.perf.incr("switches")
        self._issue_stamps[warp_id] = self._next_stamp
        self._next_stamp += 1
        self._last_selected = warp_id
        self.perf.incr("selections")
        return warp_id

    @hot_path
    def _select_loose_round_robin(self) -> int | None:
        """Loose round-robin: the next ready wavefront after the last issued
        one, with no two-level visible working set."""
        ready = self._schedulable_mask()
        if not ready:
            self.perf.incr("idle_cycles")
            return None
        start = 0 if self._last_selected is None else (self._last_selected + 1) % self.num_warps
        for offset in range(self.num_warps):
            warp_id = (start + offset) % self.num_warps
            if (ready >> warp_id) & 1:
                self._last_selected = warp_id
                self.perf.incr("selections")
                return warp_id
        return None  # pragma: no cover - unreachable, mask was non-zero

    @hot_path
    def _select_cache_locality(self) -> int | None:
        """Cache-locality-aware: least-recently-issued ready wavefront on the
        current D$ line, avoiding wavefronts with a pending hazard hint.

        The hazard exclusion is the load-bearing half (the trace forensics
        attribute nearly the whole greedy-then-oldest gap to re-selecting
        scoreboard-blocked warps); the line affinity then keeps consecutive
        issues on the same cache line when several warps qualify.
        """
        ready = self._schedulable_mask()
        if not ready:
            self.perf.incr("idle_cycles")
            return None
        pool = ready & ~self._hazard_mask
        if not pool:
            pool = ready
        stamps = self._issue_stamps
        lines = self._last_lines
        line = self._current_line
        best = -1
        best_stamp = 0
        if line >= 0:
            for warp_id in range(self.num_warps):
                if (pool >> warp_id) & 1 and lines[warp_id] == line:
                    if best < 0 or stamps[warp_id] < best_stamp:
                        best = warp_id
                        best_stamp = stamps[warp_id]
        if best < 0:
            for warp_id in range(self.num_warps):
                if (pool >> warp_id) & 1:
                    if best < 0 or stamps[warp_id] < best_stamp:
                        best = warp_id
                        best_stamp = stamps[warp_id]
        if best != self._last_selected:
            self.perf.incr("switches")
        self._issue_stamps[best] = self._next_stamp
        self._next_stamp += 1
        self._last_selected = best
        self.perf.incr("selections")
        return best

    # -- inspection -------------------------------------------------------------------

    @property
    def any_active(self) -> bool:
        return self.active_mask != 0

    @property
    def all_stalled(self) -> bool:
        """True when wavefronts exist but none can be scheduled."""
        return self.active_mask != 0 and self._schedulable_mask() == 0
