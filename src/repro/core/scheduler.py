"""The wavefront scheduler (paper section 4.1.1).

The scheduler keeps four wavefront masks:

* ``active``  — wavefronts that exist (spawned and not yet terminated),
* ``stalled`` — wavefronts that must not be scheduled temporarily (waiting
  on a long-latency operation or on backpressure),
* ``barrier`` — wavefronts waiting at a barrier,
* ``visible`` — the working set of the hierarchical (two-level) scheduling
  policy: each cycle one wavefront is picked from the visible mask and
  removed; when the visible mask empties it is refilled from the active
  wavefronts that are neither stalled nor at a barrier.
"""

from __future__ import annotations

from typing import Optional

from repro.common.bitutils import mask
from repro.common.perf import PerfCounters


class WavefrontScheduler:
    """Hierarchical wavefront scheduler for one core."""

    def __init__(self, num_warps: int):
        self.num_warps = num_warps
        self.active_mask = 0
        self.stalled_mask = 0
        self.barrier_mask = 0
        self.visible_mask = 0
        self.perf = PerfCounters("scheduler")
        self._last_selected: Optional[int] = None

    # -- mask maintenance -----------------------------------------------------------

    def set_active(self, warp_id: int, active: bool) -> None:
        """Mark a wavefront as existing / terminated."""
        bit = 1 << warp_id
        if active:
            self.active_mask |= bit
        else:
            self.active_mask &= ~bit
            self.visible_mask &= ~bit

    def set_stalled(self, warp_id: int, stalled: bool) -> None:
        """Stall / release a wavefront (long-latency operation outstanding)."""
        bit = 1 << warp_id
        if stalled:
            self.stalled_mask |= bit
            self.visible_mask &= ~bit
        else:
            self.stalled_mask &= ~bit

    def set_at_barrier(self, warp_id: int, waiting: bool) -> None:
        """Mark / clear a wavefront as waiting at a barrier."""
        bit = 1 << warp_id
        if waiting:
            self.barrier_mask |= bit
            self.visible_mask &= ~bit
        else:
            self.barrier_mask &= ~bit

    def set_masks(self, active_mask: int, stalled_mask: int, barrier_mask: int) -> None:
        """Replace all three masks in one call (the per-cycle resync path).

        Equivalent to calling the individual setters for every wavefront:
        wavefronts that became unschedulable leave the visible working set,
        which is exactly the pruning :meth:`select` performs.
        """
        self.active_mask = active_mask
        self.stalled_mask = stalled_mask
        self.barrier_mask = barrier_mask
        self.visible_mask &= active_mask & ~stalled_mask & ~barrier_mask

    # -- selection -------------------------------------------------------------------

    def _schedulable_mask(self) -> int:
        return self.active_mask & ~self.stalled_mask & ~self.barrier_mask & mask(self.num_warps)

    def select(self) -> Optional[int]:
        """Pick the wavefront to fetch this cycle, or ``None`` if none is ready.

        Implements the two-level policy: wavefronts are drained from the
        visible mask one per cycle; when it is empty it is refilled from the
        schedulable wavefronts.
        """
        if self.visible_mask & ~self._schedulable_mask():
            # Wavefronts that became unschedulable leave the working set.
            self.visible_mask &= self._schedulable_mask()
        if not self.visible_mask:
            self.visible_mask = self._schedulable_mask()
            if not self.visible_mask:
                self.perf.incr("idle_cycles")
                return None
            self.perf.incr("refills")
        # Round-robin starting after the last selected wavefront.
        start = 0 if self._last_selected is None else (self._last_selected + 1) % self.num_warps
        for offset in range(self.num_warps):
            warp_id = (start + offset) % self.num_warps
            if (self.visible_mask >> warp_id) & 1:
                self.visible_mask &= ~(1 << warp_id)
                self._last_selected = warp_id
                self.perf.incr("selections")
                return warp_id
        return None  # pragma: no cover - unreachable, mask was non-zero

    # -- inspection -------------------------------------------------------------------

    @property
    def any_active(self) -> bool:
        return self.active_mask != 0

    @property
    def all_stalled(self) -> bool:
        """True when wavefronts exist but none can be scheduled."""
        return self.active_mask != 0 and self._schedulable_mask() == 0
