"""The immediate post-dominator (IPDOM) stack (paper section 4.1.2).

Each warp owns one IPDOM stack.  ``split`` pushes up to two entries — the
original thread mask as a fall-through, and (when the predicate diverges)
the false-predicate threads together with the PC they must re-execute from —
and ``join`` pops one entry, restoring the saved mask and, for non
fall-through entries, redirecting the warp to the saved PC.
"""

from __future__ import annotations

from dataclasses import dataclass


class IpdomOverflow(Exception):
    """Raised when a warp diverges deeper than the hardware stack allows."""


class IpdomUnderflow(Exception):
    """Raised when ``join`` executes with an empty stack."""


@dataclass(frozen=True)
class IpdomEntry:
    """One saved divergence context."""

    tmask: int
    pc: int | None = None  # ``None`` marks a fall-through entry

    @property
    def is_fallthrough(self) -> bool:
        return self.pc is None


class IpdomStack:
    """A bounded stack of divergence contexts."""

    #: Construction-time depth bound (vxlint VX007).
    SNAPSHOT_EXCLUDED = frozenset({"depth"})

    def __init__(self, depth: int = 32):
        if depth < 1:
            raise ValueError("IPDOM stack depth must be positive")
        self.depth = depth
        self._entries: list[IpdomEntry] = []
        self.max_occupancy = 0

    def push(self, tmask: int, pc: int | None = None) -> None:
        """Push a divergence context."""
        if len(self._entries) >= self.depth:
            raise IpdomOverflow(f"IPDOM stack exceeded its depth of {self.depth}")
        self._entries.append(IpdomEntry(tmask=tmask, pc=pc))
        self.max_occupancy = max(self.max_occupancy, len(self._entries))

    def pop(self) -> IpdomEntry:
        """Pop the most recent divergence context."""
        if not self._entries:
            raise IpdomUnderflow("join executed with an empty IPDOM stack")
        return self._entries.pop()

    def peek(self) -> IpdomEntry:
        if not self._entries:
            raise IpdomUnderflow("peek on an empty IPDOM stack")
        return self._entries[-1]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def empty(self) -> bool:
        return not self._entries

    def clear(self) -> None:
        self._entries.clear()

    # -- checkpoint/restore --------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize the divergence contexts (bottom of stack first)."""
        return {
            "entries": [(entry.tmask, entry.pc) for entry in self._entries],
            "max_occupancy": self.max_occupancy,
        }

    def restore(self, payload: dict) -> None:
        """Restore the stack from a :meth:`snapshot` payload."""
        self._entries = [IpdomEntry(tmask=tmask, pc=pc) for tmask, pc in payload["entries"]]
        self.max_occupancy = payload["max_occupancy"]
