"""Register scoreboard.

The in-order pipeline issues at most one instruction per warp per cycle and
must not issue an instruction whose source or destination registers are
still owned by an older in-flight instruction of the same warp.  The
scoreboard tracks busy registers per (warp, register file) and is also the
structure whose size the synthesis area model charges per wavefront
(section 6.2.1 lists it among the per-wavefront costs).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.common.perf import PerfCounters

#: Register-file selectors.
INT_REGS = "x"
FP_REGS = "f"


class Scoreboard:
    """Tracks in-flight destination registers per warp."""

    #: Counter schema (vxlint VX003).
    COUNTERS = frozenset({"reservations"})

    #: Construction-time warp count (vxlint VX007).
    SNAPSHOT_EXCLUDED = frozenset({"num_warps"})

    def __init__(self, num_warps: int):
        self.num_warps = num_warps
        self._busy: dict[int, set[tuple[str, int]]] = {warp: set() for warp in range(num_warps)}
        self.perf = PerfCounters("scoreboard")

    @staticmethod
    def _key(register: int, floating: bool) -> tuple[str, int]:
        return (FP_REGS if floating else INT_REGS, register)

    def is_busy(self, warp_id: int, register: int, floating: bool = False) -> bool:
        """True when ``register`` has a pending writeback for ``warp_id``."""
        if register == 0 and not floating:
            return False
        return self._key(register, floating) in self._busy[warp_id]

    def any_busy(self, warp_id: int, registers: Iterable[tuple[int, bool]]) -> bool:
        """True when any of the (register, floating) pairs is busy."""
        return any(self.is_busy(warp_id, register, floating) for register, floating in registers)

    def reserve(self, warp_id: int, register: int, floating: bool = False) -> None:
        """Mark a destination register as having a pending writeback."""
        if register == 0 and not floating:
            return
        self._busy[warp_id].add(self._key(register, floating))
        self.perf.incr("reservations")

    def release(self, warp_id: int, register: int, floating: bool = False) -> None:
        """Clear a pending writeback."""
        if register == 0 and not floating:
            return
        self._busy[warp_id].discard(self._key(register, floating))

    def busy_count(self, warp_id: int) -> int:
        """Number of registers with pending writebacks for ``warp_id``."""
        return len(self._busy[warp_id])

    def clear(self) -> None:
        for warp_id in self._busy:
            self._busy[warp_id].clear()

    # -- checkpoint/restore --------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize the busy sets (sorted: set order is not deterministic)."""
        return {
            "busy": {warp_id: sorted(keys) for warp_id, keys in self._busy.items()},
            "perf": self.perf.snapshot(),
        }

    def restore(self, payload: dict) -> None:
        """Restore the busy sets from a :meth:`snapshot` payload."""
        for warp_id in self._busy:
            self._busy[warp_id] = {
                (kind, register) for kind, register in payload["busy"][warp_id]
            }
        self.perf.restore(payload["perf"])
