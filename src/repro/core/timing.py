"""The cycle-level (SIMX) core model.

``TimingCore`` wraps the functional :class:`~repro.core.core.SimtCore` —
which provides the architectural state and the instruction semantics — with
the timing behaviour of the Vortex microarchitecture:

* the wavefront scheduler picks one warp per cycle (two-level policy),
* the core is in-order and single-issue; register dependencies are enforced
  by the scoreboard,
* execution units have per-class latencies (ALU, MUL, DIV, FPU, FDIV/FSQRT,
  SFU),
* loads, stores and texture fetches travel through the non-blocking
  multi-banked data cache (or the shared-memory scratchpad), with the
  per-thread parallelism, bank conflicts and MSHR behaviour of section 4.3,
* instruction fetches warm the instruction cache at line granularity,
* taken branches pay a front-end redirect penalty.

This is intentionally an *instruction-granular* timing model in the style
of the paper's own SIMX driver rather than an RTL-faithful pipeline; the
design-space trends the paper reports (Figures 14, 18, 19, 20, 21) emerge
from the scheduler, scoreboard, latencies and the cache/memory system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cache.cache import CacheRequest, CacheResponse, NonBlockingCache
from repro.cache.sharedmem import SHARED_MEM_BASE, SharedMemory, is_shared_address
from repro.common.config import VortexConfig
from repro.common.perf import PerfCounters, hot_path
from repro.core.core import SimtCore
from repro.core.scheduler import WavefrontScheduler
from repro.core.scoreboard import Scoreboard
from repro.isa.instructions import ExecUnit
from repro.trace.events import NO_WARP

#: Extra cycles a warp waits after a taken branch (front-end redirect).
BRANCH_PENALTY = 2


@dataclass
class _PendingMemOp:
    """A memory (or texture) instruction waiting for its cache responses.

    ``to_send`` holds one entry per outstanding request.  On the per-lane
    path entries are ``(address, to_smem)``; on the batched path they are
    ``(address, line, bank_id, to_smem)`` with the cache geometry
    precomputed once at charge time so retry cycles never re-derive it.
    """

    op_id: int
    warp_id: int
    rd: int
    rd_float: bool
    writes_rd: bool
    kind: str  # "load" | "tex"
    to_send: list[tuple[Any, ...]] = field(default_factory=list)
    outstanding: int = 0
    extra_latency: int = 0


class TimingCore:
    """Cycle-level model of one Vortex core.

    ``engine`` selects how the embedded functional core executes the issued
    instruction: ``"vector"`` (default) steps whole-warp lane plans through
    the vectorized emulator (:meth:`VectorWarpEmulator.step_timing`);
    ``"scalar"`` keeps the per-thread reference emulation.  The timing model
    itself — scheduler, scoreboard, latencies, caches, MSHRs — is shared and
    charged from identical per-instruction facts, so both engines produce
    bit-identical cycles, IPC and performance counters.
    """

    #: Counter schema (vxlint VX003): the keys this core charges on its own
    #: ``perf``.  Cross-component charges (the skip-idle refusal replay into
    #: the dcache) use the dcache's declared keys.
    COUNTERS = frozenset(
        {
            "cycles",
            "idle_cycles",
            "instructions",
            "thread_instructions",
            "taken_branches",
            "scoreboard_stalls",
            "ifetch_misses",
            "loads",
            "stores",
            "tex_ops",
            "mem_ops_completed",
        }
    )

    def __init__(
        self,
        core_id: int,
        config: VortexConfig,
        memory: Any,
        memsys: Any,
        processor: Any = None,
        engine: str = "vector",
        batch_requests: bool = True,
        trace: Any = None,
    ):
        if engine not in ("scalar", "vector"):
            raise ValueError(f"unknown timing engine {engine!r} (use 'scalar' or 'vector')")
        self.core_id = core_id
        self.config = config
        self.engine = engine
        #: Send memory/texture traffic through the batched per-bank path
        #: (default) instead of per-lane ``send`` calls; bit-identical in
        #: cycles and counters, only host wall-clock differs.
        self.batch_requests = batch_requests
        if engine == "vector":
            # Imported lazily: repro.engine.vector_core imports the processor
            # module, which imports this one.
            from repro.engine.vector_core import VectorSimtCore

            self.func = VectorSimtCore(core_id, config, memory, processor=processor)
        else:
            self.func = SimtCore(core_id, config, memory, processor=processor)
        self.scheduler = WavefrontScheduler(
            config.core.num_warps, policy=config.core.scheduler_policy
        )
        self.scoreboard = Scoreboard(config.core.num_warps)
        self.icache: NonBlockingCache = memsys.icache(core_id)
        self.dcache: NonBlockingCache = memsys.dcache(core_id)
        self.smem = SharedMemory(core_id, config.core.shared_mem_size)
        self.perf = PerfCounters(f"timing_core{core_id}")
        self.cycle = 0
        #: The trace bus (``None`` when tracing is off — every emission site
        #: guards on that, keeping the hot path allocation-free; vxlint VX008).
        self.trace = trace
        if trace is not None and trace.wants("smem"):
            self.smem.trace = trace
        if trace is not None and trace.wants("barrier"):
            self.func.barriers.on_event = self._trace_barrier

        core_cfg = config.core
        self._unit_latency = {
            ExecUnit.ALU: 1,
            ExecUnit.SFU: 1,
            ExecUnit.MUL: core_cfg.imul_latency,
            ExecUnit.DIV: core_cfg.idiv_latency,
            ExecUnit.FPU: core_cfg.fpu_latency,
            ExecUnit.FDIV: core_cfg.fdiv_latency,
        }

        # Timing state.
        self._warp_ready_cycle: dict[int, int] = {w: 0 for w in range(core_cfg.num_warps)}
        self._writebacks: list[tuple[int, int, int, bool]] = []  # (cycle, warp, rd, float)
        self._pending_ops: dict[int, _PendingMemOp] = {}
        self._store_queue: list[tuple[int, bool]] = []  # fire-and-forget stores
        self._next_op_id = 0
        self._warm_ilines: set[int] = set()
        self._pending_ifetch: dict[int, int] = {}  # warp_id -> line address awaited
        self._ifetch_to_send: list[tuple[int, int]] = []  # (warp_id, line byte address)
        # Per-PC cache of the registers the decoded instruction touches
        # (purely a function of the decode; dropped with the decode cache).
        self._registers_by_pc: dict[int, list[tuple[int, bool]] | None] = {}
        # Cache geometry prebound for the batched request precompute and the
        # fast-forward stall probe.
        self._dcache_line_size = self.dcache.config.line_size
        self._dcache_num_banks = self.dcache.config.num_banks
        self._icache_line_size = config.icache.line_size

    # -- lifecycle ---------------------------------------------------------------------

    def reset(self, entry_pc: int) -> None:
        """Reset architectural and timing state; warp 0 starts at ``entry_pc``."""
        self.func.reset(entry_pc)
        self.cycle = 0
        self.scoreboard.clear()
        self._writebacks.clear()
        self._pending_ops.clear()
        self._store_queue.clear()
        self._warm_ilines.clear()
        self._pending_ifetch.clear()
        self._ifetch_to_send.clear()
        self._registers_by_pc.clear()
        for warp_id in self._warp_ready_cycle:
            self._warp_ready_cycle[warp_id] = 0

    def invalidate_caches(self) -> None:
        """Drop decode-derived caches (a new program image was loaded)."""
        self.func.emulator.invalidate_decode_cache()
        self._registers_by_pc.clear()

    # -- checkpoint/restore ----------------------------------------------------------

    #: Attributes deliberately outside the snapshot (vxlint VX007):
    #: configuration identity, constructor-derived lookup tables, references
    #: owned and serialized by the memory subsystem, and the per-PC register
    #: cache (a pure function of the decode, rebuilt lazily).
    SNAPSHOT_EXCLUDED = frozenset(
        {
            "core_id",
            "config",
            "engine",
            "batch_requests",
            "icache",
            "dcache",
            "trace",
            "_unit_latency",
            "_registers_by_pc",
            "_dcache_line_size",
            "_dcache_num_banks",
            "_icache_line_size",
        }
    )

    def snapshot(self) -> dict:
        """Serialize the core's timing state plus the embedded functional core.

        The instruction/data caches are referenced, not owned: the memory
        subsystem serializes them.  Pending-operation dicts are emitted as
        ordered lists — op ids are allocated monotonically, so list order
        reproduces the oldest-first drain order exactly.
        """
        return {
            "func": self.func.snapshot(),
            "scheduler": self.scheduler.snapshot(),
            "scoreboard": self.scoreboard.snapshot(),
            "smem": self.smem.snapshot(),
            "perf": self.perf.snapshot(),
            "cycle": self.cycle,
            "warp_ready_cycle": dict(self._warp_ready_cycle),
            "writebacks": [list(entry) for entry in self._writebacks],
            "pending_ops": [
                {
                    "op_id": op.op_id,
                    "warp_id": op.warp_id,
                    "rd": op.rd,
                    "rd_float": op.rd_float,
                    "writes_rd": op.writes_rd,
                    "kind": op.kind,
                    "to_send": [list(entry) for entry in op.to_send],
                    "outstanding": op.outstanding,
                    "extra_latency": op.extra_latency,
                }
                for op in self._pending_ops.values()
            ],
            "store_queue": [list(entry) for entry in self._store_queue],
            "next_op_id": self._next_op_id,
            "warm_ilines": sorted(self._warm_ilines),
            "pending_ifetch": dict(self._pending_ifetch),
            "ifetch_to_send": [list(entry) for entry in self._ifetch_to_send],
        }

    def restore(self, payload: dict) -> None:
        """Restore from a :meth:`snapshot` payload.

        The functional core's restore invalidates the decode caches; the
        per-PC register cache derived from the same decode is dropped here.
        """
        self.func.restore(payload["func"])
        self.scheduler.restore(payload["scheduler"])
        self.scoreboard.restore(payload["scoreboard"])
        self.smem.restore(payload["smem"])
        self.perf.restore(payload["perf"])
        self.cycle = payload["cycle"]
        self._warp_ready_cycle = {
            int(warp_id): ready for warp_id, ready in payload["warp_ready_cycle"].items()
        }
        self._writebacks = [tuple(entry) for entry in payload["writebacks"]]
        self._pending_ops = {}
        for op_payload in payload["pending_ops"]:
            op = _PendingMemOp(
                op_id=op_payload["op_id"],
                warp_id=op_payload["warp_id"],
                rd=op_payload["rd"],
                rd_float=op_payload["rd_float"],
                writes_rd=op_payload["writes_rd"],
                kind=op_payload["kind"],
                to_send=[tuple(entry) for entry in op_payload["to_send"]],
                outstanding=op_payload["outstanding"],
                extra_latency=op_payload["extra_latency"],
            )
            self._pending_ops[op.op_id] = op
        self._store_queue = [tuple(entry) for entry in payload["store_queue"]]
        self._next_op_id = payload["next_op_id"]
        self._warm_ilines = set(payload["warm_ilines"])
        self._pending_ifetch = {
            int(warp_id): line for warp_id, line in payload["pending_ifetch"].items()
        }
        self._ifetch_to_send = [tuple(entry) for entry in payload["ifetch_to_send"]]
        self._registers_by_pc.clear()

    # -- helpers -------------------------------------------------------------------------

    @property
    def warps(self) -> list[Any]:
        return self.func.warps

    @property
    def done(self) -> bool:
        """True when every warp terminated and all outstanding work drained."""
        return (
            self.func.done
            and not self._pending_ops
            and not self._writebacks
            and not self._store_queue
            and not self._ifetch_to_send
            and not self._pending_ifetch
        )

    @hot_path
    def _sync_scheduler_masks(self) -> None:
        active_mask = stalled_mask = barrier_mask = 0
        cycle = self.cycle
        ready_cycles = self._warp_ready_cycle
        pending_ifetch = self._pending_ifetch
        for warp in self.func.warps:
            bit = 1 << warp.warp_id
            if warp.active:
                active_mask |= bit
            if warp.at_barrier:
                barrier_mask |= bit
            if ready_cycles[warp.warp_id] > cycle or warp.warp_id in pending_ifetch:
                stalled_mask |= bit
        self.scheduler.set_masks(active_mask, stalled_mask, barrier_mask)

    @hot_path
    def _instruction_registers(self, warp: Any) -> list[tuple[int, bool]] | None:
        """Registers read/written by the warp's next instruction (for hazard checks).

        The result depends only on the decoded instruction, so it is cached
        per PC (hazard checks re-run every issue attempt, including stall
        retries).
        """
        pc = warp.pc
        cached = self._registers_by_pc.get(pc, False)
        if cached is not False:
            return cached
        registers = self._compute_instruction_registers(pc)
        self._registers_by_pc[pc] = registers
        return registers

    def _compute_instruction_registers(self, pc: int) -> list[tuple[int, bool]] | None:
        try:
            instr = self.func.emulator.fetch(pc)
        except Exception:
            return None
        spec = instr.spec
        registers: list[tuple[int, bool]] = []
        if "rs1" in spec.syntax or spec.syntax and spec.syntax[-1] == "mem":
            registers.append((instr.rs1, spec.rs1_float))
        if "rs2" in spec.syntax:
            registers.append((instr.rs2, spec.rs2_float))
        if "rs3" in spec.syntax:
            registers.append((instr.rs3, spec.rs3_float))
        if spec.writes_rd:
            registers.append((instr.rd, spec.rd_float))
        return registers

    # -- per-cycle operation ----------------------------------------------------------------

    def tick(
        self,
        icache_responses: list[CacheResponse] | None = None,
        dcache_responses: list[CacheResponse] | None = None,
    ) -> None:
        """Advance the core by one cycle."""
        self.cycle += 1
        self.func.csr.tick()
        self.perf.incr("cycles")

        self._process_writebacks()
        self._process_icache_responses(icache_responses or [])
        self._process_dcache_responses(dcache_responses or [])
        self._process_smem_responses()
        self._drain_requests()

        self._sync_scheduler_masks()
        warp_id = self.scheduler.select()
        if warp_id is None:
            self.perf.incr("idle_cycles")
            trace = self.trace
            if trace is not None:
                trace.emit(
                    self.cycle, self.core_id, NO_WARP, "scheduler", "idle",
                    self._trace_mask_payload(),
                )
            return
        warp = self.func.warps[warp_id]
        if not warp.schedulable:
            trace = self.trace
            if trace is not None:
                trace.emit(self.cycle, self.core_id, warp_id, "scheduler", "masked")
            return
        self._issue(warp)

    def _trace_mask_payload(self) -> dict[str, int]:
        """Scheduler-mask payload of an ``idle`` event (tracing-on only)."""
        scheduler = self.scheduler
        ifetch_mask = 0
        for warp_id in self._pending_ifetch:
            ifetch_mask |= 1 << warp_id
        return {
            "active": scheduler.active_mask,
            "stalled": scheduler.stalled_mask,
            "barrier": scheduler.barrier_mask,
            "ifetch": ifetch_mask,
        }

    def _trace_barrier(
        self, barrier_id: int, expected: int, participant: Any, released: list[Any]
    ) -> None:
        """BarrierTable ``on_event`` hook (installed only when tracing)."""
        trace = self.trace
        if trace is None:  # pragma: no cover - hook installed only when tracing
            return
        trace.emit(
            self.cycle,
            self.core_id,
            getattr(participant, "warp_id", NO_WARP),
            "barrier",
            "arrive",
            {"barrier": barrier_id, "expected": expected, "released": len(released)},
        )

    # -- completion paths --------------------------------------------------------------------

    def _process_writebacks(self) -> None:
        if not self._writebacks:
            return
        remaining = []
        trace = self.trace
        for ready_cycle, warp_id, rd, rd_float in self._writebacks:
            if ready_cycle <= self.cycle:
                self.scoreboard.release(warp_id, rd, rd_float)
                if trace is not None and (rd != 0 or rd_float):
                    trace.emit(
                        self.cycle, self.core_id, warp_id, "scoreboard", "release",
                        {"register": rd, "float": rd_float},
                    )
            else:
                remaining.append((ready_cycle, warp_id, rd, rd_float))
        self._writebacks = remaining

    def _process_icache_responses(self, responses: list[CacheResponse]) -> None:
        for response in responses:
            tag = response.tag
            if not (isinstance(tag, tuple) and tag and tag[0] == "ifetch"):
                continue
            _, warp_id, line_address = tag
            self._warm_ilines.add(line_address)
            if self._pending_ifetch.get(warp_id) == line_address:
                del self._pending_ifetch[warp_id]

    def _process_dcache_responses(self, responses: list[CacheResponse]) -> None:
        for response in responses:
            tag = response.tag
            if not (isinstance(tag, tuple) and tag and tag[0] == "op"):
                continue
            op = self._pending_ops.get(tag[1])
            if op is None:
                continue
            op.outstanding -= 1
            self._maybe_complete_op(op)

    def _process_smem_responses(self) -> None:
        for response in self.smem.tick():
            tag = response.tag
            if not (isinstance(tag, tuple) and tag and tag[0] == "op"):
                continue
            op = self._pending_ops.get(tag[1])
            if op is None:
                continue
            op.outstanding -= 1
            self._maybe_complete_op(op)

    def _maybe_complete_op(self, op: _PendingMemOp) -> None:
        if op.outstanding > 0 or op.to_send:
            return
        ready = self.cycle + 1 + op.extra_latency
        if op.writes_rd:
            self._writebacks.append((ready, op.warp_id, op.rd, op.rd_float))
        del self._pending_ops[op.op_id]
        self.perf.incr("mem_ops_completed")
        trace = self.trace
        if trace is not None:
            trace.emit(
                self.cycle, self.core_id, op.warp_id, "core", "commit",
                {"op": op.op_id, "kind": op.kind},
            )

    # -- request draining ----------------------------------------------------------------------

    @hot_path
    def _drain_requests(self) -> None:
        """Send as many queued cache/scratchpad requests as accepted this cycle."""
        # Instruction-cache fills first (front end priority).
        if self._ifetch_to_send:
            still_waiting: list[tuple[int, int]] = []
            for warp_id, line_byte_address in self._ifetch_to_send:
                request = CacheRequest(
                    address=line_byte_address,
                    is_write=False,
                    tag=("ifetch", warp_id, line_byte_address // self.config.icache.line_size),
                )
                if not self.icache.send(request):
                    still_waiting.append((warp_id, line_byte_address))
            self._ifetch_to_send = still_waiting

        # Data-side requests: at most ``num_threads`` sends per cycle (the LSU's
        # per-thread ports), oldest operation first.  ``_pending_ops`` is
        # insertion-ordered by construction (op ids are allocated
        # monotonically), so plain iteration is oldest-first; operations
        # merely waiting on outstanding responses have nothing to send.
        budget = self.config.core.num_threads
        if self.batch_requests:
            if self._pending_ops:
                for op in list(self._pending_ops.values()):
                    if budget <= 0:
                        break
                    if op.to_send:
                        budget = self._send_for_op_batched(op, budget)
            if budget > 0 and self._store_queue:
                self._store_queue, budget, _ = self._send_batch_segments(
                    self._store_queue, budget, True, None
                )
            return
        if self._pending_ops:
            for op in list(self._pending_ops.values()):
                if budget <= 0:
                    break
                if op.to_send:
                    budget = self._send_for_op(op, budget)
        if budget > 0 and self._store_queue:
            remaining_stores: list[tuple[int, bool]] = []
            for address, to_smem in self._store_queue:
                if budget <= 0:
                    remaining_stores.append((address, to_smem))
                    continue
                accepted = self._send_data_request(address, True, None, to_smem)
                if accepted:
                    budget -= 1
                else:
                    remaining_stores.append((address, to_smem))
            self._store_queue = remaining_stores

    @hot_path
    def _send_for_op(self, op: _PendingMemOp, budget: int) -> int:
        remaining: list[tuple[int, bool]] = []
        for index, (address, to_smem) in enumerate(op.to_send):
            if budget <= 0:
                remaining.extend(op.to_send[index:])
                break
            accepted = self._send_data_request(address, False, ("op", op.op_id), to_smem)
            if accepted:
                op.outstanding += 1
                budget -= 1
            else:
                remaining.append((address, to_smem))
        op.to_send = remaining
        self._maybe_complete_op(op)
        return budget

    @hot_path
    def _send_data_request(self, address: int, is_write: bool, tag: Any, to_smem: bool) -> bool:
        if to_smem:
            return self.smem.send(address, is_write, tag)
        return self.dcache.send_raw(address, is_write, tag)

    # -- batched request path ---------------------------------------------------------------

    @hot_path
    def _send_for_op_batched(self, op: _PendingMemOp, budget: int) -> int:
        refused, budget, accepted = self._send_batch_segments(
            op.to_send, budget, False, ("op", op.op_id)
        )
        op.to_send = refused
        op.outstanding += accepted
        self._maybe_complete_op(op)
        return budget

    @hot_path
    def _send_batch_segments(
        self, entries: list[tuple[Any, ...]], budget: int, is_write: bool, tag: Any
    ) -> tuple[list[tuple[Any, ...]], int, int]:
        """Send ``(address, line, bank, to_smem)`` entries in order through
        the per-destination batch paths.

        Consecutive same-destination entries go down in one ``send_batch``
        call (one call per warp memory instruction in the common all-global
        case); the live budget threads through so the global attempt order
        and budget-cutoff point match the per-lane loop bit for bit.
        Returns ``(refused, budget, accepted)`` with ``refused`` preserving
        retry order.
        """
        refused: list[tuple[Any, ...]] = []
        accepted_total = 0
        index = 0
        total = len(entries)
        while index < total:
            if budget <= 0:
                refused.extend(entries[index:])
                break
            to_smem = entries[index][3]
            end = index + 1
            while end < total and entries[end][3] == to_smem:
                end += 1
            segment = entries if index == 0 and end == total else entries[index:end]
            if to_smem:
                accepted, seg_refused, budget = self.smem.send_batch(
                    segment, budget, is_write, tag
                )
            else:
                accepted, seg_refused, budget = self.dcache.send_batch(
                    segment, budget, is_write, tag
                )
            accepted_total += accepted
            if seg_refused:
                refused.extend(seg_refused)
            index = end
        return refused, budget, accepted_total

    def _request_entries(self, addresses: Any) -> list[tuple[Any, ...]]:
        """Precompute ``(address, line, bank, to_smem)`` for a lane trace.

        Runs once per memory instruction (not per retry attempt); wide
        traces go through numpy, narrow ones through a plain loop (numpy's
        per-call overhead loses below a handful of lanes).  ``.tolist()``
        keeps every field a Python int so downstream dict keys and tags
        behave exactly like the per-lane path's.
        """
        line_size = self._dcache_line_size
        num_banks = self._dcache_num_banks
        if len(addresses) >= 8:
            array = np.asarray(addresses, dtype=np.int64)
            lines = array // line_size
            return list(
                zip(
                    addresses,
                    lines.tolist(),
                    (lines % num_banks).tolist(),
                    (array >= SHARED_MEM_BASE).tolist(),
                )
            )
        entries: list[tuple[Any, ...]] = []
        for address in addresses:
            line = address // line_size
            entries.append((address, line, line % num_banks, address >= SHARED_MEM_BASE))
        return entries

    # -- issue ----------------------------------------------------------------------------------

    @hot_path
    def _issue(self, warp: Any) -> None:
        # Instruction fetch: cold lines go through the instruction cache.
        line_size = self.config.icache.line_size
        iline = warp.pc // line_size
        if iline not in self._warm_ilines:
            trace = self.trace
            if warp.warp_id not in self._pending_ifetch:
                self._pending_ifetch[warp.warp_id] = iline
                self._ifetch_to_send.append((warp.warp_id, iline * line_size))
                self.perf.incr("ifetch_misses")
                if trace is not None:
                    trace.emit(
                        self.cycle, self.core_id, warp.warp_id, "scheduler", "stall",
                        {"reason": "ibuffer"},
                    )
            elif trace is not None:
                # Defensive: a warp with an ifetch in flight is mask-stalled
                # and should not reach here; keep the channel cycle-complete.
                trace.emit(self.cycle, self.core_id, warp.warp_id, "scheduler", "masked")
            return

        # Scoreboard hazard check on the registers the instruction touches.
        registers = self._instruction_registers(warp)
        if registers is not None and self.scoreboard.any_busy(warp.warp_id, registers):
            self.perf.incr("scoreboard_stalls")
            self.scheduler.note_hazard(warp.warp_id)
            trace = self.trace
            if trace is not None:
                trace.emit(
                    self.cycle, self.core_id, warp.warp_id, "scheduler", "stall",
                    {"reason": "scoreboard"},
                )
            return

        pc = warp.pc
        if self.engine == "vector":
            result = self.func.step_warp_timing(warp)
        else:
            result = self.func.step_warp(warp)
        self.perf.incr("instructions")
        self.perf.incr("thread_instructions", result.active_thread_count)
        self._warp_ready_cycle[warp.warp_id] = self.cycle + 1
        self.scheduler.note_issued(warp.warp_id)
        trace = self.trace
        if trace is not None:
            trace.emit(
                self.cycle, self.core_id, warp.warp_id, "scheduler", "issue", {"pc": pc}
            )
        self._charge_timing(warp, result)

    def _charge_timing(self, warp: Any, result: Any) -> None:
        """Charge one executed instruction (a scalar :class:`StepResult` or a
        vectorized :class:`~repro.engine.vector_emulator.TimingStep` — both
        expose ``instr``, ``taken_branch`` and ``request_addresses``)."""
        spec = result.instr.spec
        unit = spec.unit

        if result.taken_branch:
            self._warp_ready_cycle[warp.warp_id] = self.cycle + 1 + BRANCH_PENALTY
            self.perf.incr("taken_branches")
            trace = self.trace
            if trace is not None:
                trace.emit(
                    self.cycle, self.core_id, warp.warp_id, "core", "redirect",
                    {"pc": warp.pc},
                )

        if unit in (ExecUnit.LSU, ExecUnit.TEX):
            self._charge_memory(warp, result)
            return

        latency = self._unit_latency.get(unit, 1)
        if spec.writes_rd and latency > 1:
            self.scoreboard.reserve(warp.warp_id, result.instr.rd, spec.rd_float)
            trace = self.trace
            if trace is not None and (result.instr.rd != 0 or spec.rd_float):
                trace.emit(
                    self.cycle, self.core_id, warp.warp_id, "scoreboard", "acquire",
                    {"register": result.instr.rd, "float": spec.rd_float},
                )
            self._writebacks.append(
                (self.cycle + latency, warp.warp_id, result.instr.rd, spec.rd_float)
            )

    def _charge_memory(self, warp: Any, result: Any) -> None:
        spec = result.instr.spec
        is_store = spec.is_store
        addresses = result.request_addresses or []
        if addresses:
            self.scheduler.note_memory_issue(
                warp.warp_id, int(addresses[0]) // self._dcache_line_size
            )
        if self.batch_requests:
            to_send = self._request_entries(addresses)
        else:
            to_send = [(address, is_shared_address(address)) for address in addresses]
        if is_store:
            self._store_queue.extend(to_send)
            self.perf.incr("stores", len(addresses))
            return

        op = _PendingMemOp(
            op_id=self._next_op_id,
            warp_id=warp.warp_id,
            rd=result.instr.rd,
            rd_float=spec.rd_float,
            writes_rd=spec.writes_rd,
            kind="tex" if spec.unit == ExecUnit.TEX else "load",
            to_send=to_send,
        )
        self._next_op_id += 1
        if spec.unit == ExecUnit.TEX and self.func.tex_unit is not None:
            op.extra_latency = self.func.tex_unit.issue_latency(len(addresses))
            self.perf.incr("tex_ops")
        else:
            self.perf.incr("loads", len(addresses))
        if not op.to_send:
            # A load with no active threads (fully masked) completes immediately.
            if op.writes_rd:
                self._writebacks.append((self.cycle + 1, op.warp_id, op.rd, op.rd_float))
            return
        if op.writes_rd:
            self.scoreboard.reserve(op.warp_id, op.rd, op.rd_float)
            trace = self.trace
            if trace is not None and (op.rd != 0 or op.rd_float):
                trace.emit(
                    self.cycle, self.core_id, op.warp_id, "scoreboard", "acquire",
                    {"register": op.rd, "float": op.rd_float},
                )
        self._pending_ops[op.op_id] = op

    # -- fast-forward -----------------------------------------------------------------------------

    @hot_path
    def _warp_would_stall(self, warp: Any) -> bool:
        """True when issuing ``warp`` now would only charge a scoreboard stall.

        Mirrors the front half of :meth:`_issue`: the wavefront must be
        func-schedulable (a selected all-masked warp does nothing — and
        charges nothing), its instruction line must be warm (a cold line
        starts an ifetch — a state change) and the hazard check must hit (a
        miss executes the instruction).  While this holds and nothing else
        changes, each tick selects the warp and increments
        ``scoreboard_stalls`` — a deterministic pattern :meth:`skip_idle`
        can replay in bulk.
        """
        if not warp.schedulable:
            return False
        if warp.pc // self._icache_line_size not in self._warm_ilines:
            return False
        registers = self._instruction_registers(warp)
        return registers is not None and self.scoreboard.any_busy(warp.warp_id, registers)

    @hot_path
    def next_event_cycle(self) -> int | None:
        """Earliest cycle at which this core does real work (``None`` = idle).

        Used by the processor's event-driven fast-forward: when every core
        and the memory subsystem report an event strictly beyond cycle
        ``C + 1``, the cycles in between are provably stall ticks.  Any
        pending send forces an event next cycle (retry attempts increment
        perf counters every tick), and a schedulable warp that would
        actually issue likewise executes next cycle.  A schedulable warp
        that would merely charge a scoreboard stall is *not* an event: its
        unblocking writeback/response is, and until then each tick's
        select-and-stall is replayed exactly by :meth:`skip_idle`.
        """
        cycle = self.cycle
        if self._ifetch_to_send:
            return cycle + 1
        for op in self._pending_ops.values():
            if op.to_send:
                return cycle + 1
        if self._store_queue:
            # Pending stores normally force an event next cycle (every retry
            # attempt charges counters *and* may be accepted).  The exception
            # is a pure refusal storm: all entries target the data cache and
            # its lower queue is provably full until some later cycle — then
            # each tick's drain refuses the whole queue with a constant
            # counter delta that :meth:`skip_idle` replays in bulk, and the
            # queue's release (the DRAM head pop) is already an event in the
            # memory subsystem's scan.
            horizon = self.dcache.write_refusal_horizon()
            if horizon is None or horizon <= cycle + 1:
                return cycle + 1
            for entry in self._store_queue:
                if entry[-1]:  # a scratchpad store would be accepted
                    return cycle + 1
        result: int | None = None
        ready_cycles = self._warp_ready_cycle
        pending_ifetch = self._pending_ifetch
        for warp in self.func.warps:
            if not warp.active or warp.at_barrier or warp.warp_id in pending_ifetch:
                continue
            wake = ready_cycles[warp.warp_id]
            if wake <= cycle:
                if not self._warp_would_stall(warp):
                    return cycle + 1
                continue
            if result is None or wake < result:
                result = wake
        for ready, _warp_id, _rd, _rd_float in self._writebacks:
            wake = ready if ready > cycle else cycle + 1
            if result is None or wake < result:
                result = wake
        smem_ready = self.smem.next_response_cycle()
        if smem_ready is not None:
            wake = smem_ready if smem_ready > cycle else cycle + 1
            if result is None or wake < result:
                result = wake
        return result

    def skip_idle(self, cycles: int) -> None:
        """Advance ``cycles`` provably event-free cycles in one jump.

        Equivalent to ``cycles`` ticks in which nothing is sent and nothing
        completes.  The clock, CSR cycle counter and cycle counters advance
        in bulk; the scheduler interaction of each skipped tick is replayed
        for real: if any wavefront is schedulable it is — provably, per
        :meth:`next_event_cycle` — scoreboard-blocked, so every tick selects
        one wavefront (mutating the policy's selection state exactly as a
        ticked run would) and charges one ``scoreboard_stalls``; otherwise
        every tick is a scheduler-idle cycle.

        With tracing on, a synthesized ``core/skip`` marker stamps the
        window and the per-cycle scheduler/refusal events are emitted
        exactly as the ticked path would have — ``expand_skips`` on the
        resulting stream reproduces the fastforward-off trace bit for bit.
        """
        base = self.cycle
        self.cycle += cycles
        self.func.csr.tick(cycles)
        perf = self.perf
        perf.incr("cycles", cycles)
        self.smem.skip_idle(cycles)
        trace = self.trace
        if trace is not None:
            trace.emit(base + 1, self.core_id, NO_WARP, "core", "skip", {"cycles": cycles})
        if self._store_queue:
            # Pending stores only survive into a skip as a pure refusal storm
            # (per :meth:`next_event_cycle`): every skipped tick re-attempts
            # the whole queue against a provably full lower queue.  Banks are
            # port-free at the start of each fresh cycle and nothing else
            # accepts inside the window, so no entry ever charges a bank
            # conflict — every attempt is a lower-level refusal.
            refusals = len(self._store_queue) * cycles
            self.dcache.perf.incr("attempts", refusals)
            self.dcache.perf.incr("memq_stalls", refusals)
            self.dcache.lower.note_skipped_refusal(refusals)
            if self.dcache.trace is not None:
                self._trace_skip_refusals(base, cycles)
        self._sync_scheduler_masks()
        scheduler = self.scheduler
        if scheduler.active_mask & ~scheduler.stalled_mask & ~scheduler.barrier_mask:
            select = scheduler.select
            note_hazard = scheduler.note_hazard
            for offset in range(cycles):
                warp_id = select()
                if warp_id is None:  # pragma: no cover - mask was non-empty
                    continue
                note_hazard(warp_id)
                if trace is not None:
                    trace.emit(
                        base + 1 + offset, self.core_id, warp_id, "scheduler", "stall",
                        {"reason": "scoreboard"},
                    )
            perf.incr("scoreboard_stalls", cycles)
        else:
            perf.incr("idle_cycles", cycles)
            scheduler.skip_idle(cycles)
            if trace is not None:
                payload = self._trace_mask_payload()
                for offset in range(cycles):
                    trace.emit(
                        base + 1 + offset, self.core_id, NO_WARP, "scheduler", "idle",
                        payload,
                    )

    def _trace_skip_refusals(self, base: int, cycles: int) -> None:
        """Replay the per-attempt refusal events of a store-refusal storm.

        The counter math above stays bulk; these events mirror what the
        ticked drain would emit — every queue entry attempts once per cycle
        and is refused by the full lower queue (never a bank conflict, per
        the storm argument in :meth:`skip_idle`).
        """
        dcache = self.dcache
        dtrace = dcache.trace
        if dtrace is None:  # pragma: no cover - checked by the caller
            return
        channel = dcache.trace_channel
        core = dcache.trace_core
        line_size = self._dcache_line_size
        num_banks = self._dcache_num_banks
        entries = []
        for entry in self._store_queue:
            if len(entry) >= 4:  # batched entries carry (address, line, bank, to_smem)
                entries.append((entry[2], entry[1]))
            else:  # per-lane entries are (address, to_smem)
                line = entry[0] // line_size
                entries.append((line % num_banks, line))
        for offset in range(cycles):
            cycle = base + 1 + offset
            for bank, line in entries:
                dtrace.emit(
                    cycle, core, NO_WARP, channel, "refusal",
                    {"bank": bank, "line": line, "write": True},
                )

    # -- metrics -----------------------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Thread-instructions committed per cycle (the paper's IPC metric)."""
        return self.perf.ratio("thread_instructions", "cycles")

    @property
    def warp_ipc(self) -> float:
        """Warp-instructions committed per cycle."""
        return self.perf.ratio("instructions", "cycles")
