"""Warp-level instruction emulation.

``WarpEmulator`` executes one instruction for one warp, updating the warp's
architectural state (registers, PC, thread mask, IPDOM stack) and the
device memory, and returning a :class:`StepResult` describing what happened
— which execution unit the instruction belongs to, the per-thread memory
addresses it touched, whether a branch was taken, whether the warp stalled
on a barrier.  The functional driver uses only the architectural effects;
the cycle-level driver (SIMX) replays the same emulation inside its
pipeline model and uses the :class:`StepResult` to charge latencies, cache
accesses and structural hazards.

Dispatch is through a per-mnemonic handler table precomputed at class
definition time (one dictionary lookup per instruction), not through
per-unit if-chains; the vectorized engine in :mod:`repro.engine` extends
the same class with whole-warp lane plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.arch.alu import ALU_OPS, BRANCH_OPS, div_op, mul_op
from repro.arch.fpu import fpu_op
from repro.common.bitutils import sext, to_uint32
from repro.isa.decoder import DecodedInstruction, decode
from repro.isa.instructions import SPEC_BY_MNEMONIC, ExecUnit
from repro.core.warp import Warp
from repro.texture.unit import TexWarpResult

if TYPE_CHECKING:
    from repro.core.core import SimtCore


class EmulationError(Exception):
    """Raised when a warp executes something the model cannot handle."""


class SimulationLimitExceeded(EmulationError):
    """Raised when a simulation hits its configured run limit.

    Shared by the functional drivers (``max_instructions``) and the
    cycle-level SIMX driver (``max_cycles``) so callers can catch one typed
    error regardless of the engine.  ``kind`` is ``"instructions"`` or
    ``"cycles"``; ``limit`` is the configured bound.
    """

    def __init__(self, kind: str, limit: int, message: str | None = None):
        self.kind = kind
        self.limit = limit
        super().__init__(message or f"simulation exceeded the {kind} limit ({limit})")


@dataclass
class MemAccess:
    """One per-thread memory access performed by an instruction."""

    thread: int
    address: int
    size: int
    is_write: bool


@dataclass
class StepResult:
    """Everything the timing model needs to know about one executed instruction."""

    warp_id: int
    pc: int
    next_pc: int
    instr: DecodedInstruction
    tmask: int
    unit: str
    mem_accesses: list[MemAccess] = field(default_factory=list)
    tex_result: TexWarpResult | None = None
    taken_branch: bool = False
    warp_halted: bool = False
    stalled_at_barrier: bool = False
    spawned_warps: int = 0
    divergent_branch: bool = False

    @property
    def active_thread_count(self) -> int:
        return bin(self.tmask).count("1")

    @property
    def mnemonic(self) -> str:
        return self.instr.mnemonic

    @property
    def request_addresses(self) -> list[int]:
        """The per-request memory addresses, in issue order.

        This is the interface the cycle-level core charges cache traffic
        from; the vectorized timing step (:class:`repro.engine.vector_emulator.TimingStep`)
        exposes the same attribute without materializing ``MemAccess`` records.
        """
        return [access.address for access in self.mem_accesses]


#: Load mnemonic -> (access size, signed).  ``lw``/``flw`` are word loads.
_LOAD_SPECS: dict[str, tuple[int, bool]] = {
    "lw": (4, False),
    "flw": (4, False),
    "lh": (2, True),
    "lhu": (2, False),
    "lb": (1, True),
    "lbu": (1, False),
}

#: Store mnemonic -> access size.
_STORE_SPECS: dict[str, int] = {"sw": 4, "fsw": 4, "sh": 2, "sb": 1}


class WarpEmulator:
    """Executes instructions for the warps of one core."""

    def __init__(self, core: SimtCore):
        """``core`` supplies memory, the CSR file, the texture unit, the warp
        list, and the wspawn/barrier callbacks (see :class:`repro.core.core.SimtCore`)."""
        self.core = core
        self._decode_cache: dict[int, DecodedInstruction] = {}

    # -- fetch / decode -------------------------------------------------------------

    def fetch(self, pc: int) -> DecodedInstruction:
        """Fetch and decode the instruction at ``pc`` (decode results are cached)."""
        cached = self._decode_cache.get(pc)
        if cached is not None:
            return cached
        word = self.core.memory.read_word(pc)
        try:
            instr = decode(word)
        except Exception as exc:
            raise EmulationError(f"cannot decode word {word:#010x} at pc {pc:#x}: {exc}") from exc
        self._decode_cache[pc] = instr
        return instr

    def invalidate_decode_cache(self) -> None:
        """Drop cached decodes (needed if a new program image is loaded)."""
        self._decode_cache.clear()
        for warp in getattr(self.core, "warps", ()):
            warp.plan_cache.clear()
            warp.timing_plan_cache.clear()

    # -- execution --------------------------------------------------------------------

    def step(self, warp: Warp) -> StepResult:
        """Execute the next instruction of ``warp``."""
        if not warp.schedulable:
            raise EmulationError(f"warp {warp.warp_id} is not schedulable")
        pc = warp.pc
        instr = self.fetch(pc)
        result = StepResult(
            warp_id=warp.warp_id,
            pc=pc,
            next_pc=pc + 4,
            instr=instr,
            tmask=warp.tmask,
            unit=instr.spec.unit,
        )
        handler = self._MNEMONIC_HANDLERS.get(instr.mnemonic)
        if handler is None:
            raise EmulationError(f"unhandled instruction {instr.mnemonic}")
        handler(self, warp, instr, result)
        warp.pc = result.next_pc
        warp.instructions += 1
        return result

    # -- operand helpers ----------------------------------------------------------------

    @staticmethod
    def _read(warp: Warp, thread: int, index: int, floating: bool) -> int:
        if floating:
            return warp.regs.read_float(thread, index)
        return warp.regs.read_int(thread, index)

    @staticmethod
    def _write(warp: Warp, thread: int, index: int, value: int, floating: bool) -> None:
        if floating:
            warp.regs.write_float(thread, index, value)
        else:
            warp.regs.write_int(thread, index, value)

    def _write_rd(self, warp: Warp, instr: DecodedInstruction, thread: int, value: int) -> None:
        self._write(warp, thread, instr.rd, value, instr.spec.rd_float)

    def _first_active_thread(self, warp: Warp) -> int:
        active = warp.active_threads()
        if not active:
            raise EmulationError(f"warp {warp.warp_id} has no active threads")
        return active[0]

    # -- ALU-class handlers ----------------------------------------------------------------

    def _exec_lui(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        value = to_uint32(instr.imm)
        for thread in warp.active_threads():
            self._write_rd(warp, instr, thread, value)

    def _exec_auipc(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        value = to_uint32(result.pc + instr.imm)
        for thread in warp.active_threads():
            self._write_rd(warp, instr, thread, value)

    def _exec_alu_imm(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        op = ALU_OPS[instr.mnemonic]
        imm = to_uint32(instr.imm)
        regs = warp.regs
        rs1 = instr.rs1
        for thread in warp.active_threads():
            self._write_rd(warp, instr, thread, op(regs.read_int(thread, rs1), imm))

    def _exec_alu_reg(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        op = ALU_OPS[instr.mnemonic]
        regs = warp.regs
        rs1, rs2 = instr.rs1, instr.rs2
        for thread in warp.active_threads():
            value = op(regs.read_int(thread, rs1), regs.read_int(thread, rs2))
            self._write_rd(warp, instr, thread, value)

    def _exec_mul(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        regs = warp.regs
        for thread in warp.active_threads():
            value = mul_op(
                instr.mnemonic, regs.read_int(thread, instr.rs1), regs.read_int(thread, instr.rs2)
            )
            self._write_rd(warp, instr, thread, value)

    def _exec_div(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        regs = warp.regs
        for thread in warp.active_threads():
            value = div_op(
                instr.mnemonic, regs.read_int(thread, instr.rs1), regs.read_int(thread, instr.rs2)
            )
            self._write_rd(warp, instr, thread, value)

    def _exec_branch(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        op = BRANCH_OPS[instr.mnemonic]
        regs = warp.regs
        decisions = []
        for thread in warp.active_threads():
            decisions.append(
                op(regs.read_int(thread, instr.rs1), regs.read_int(thread, instr.rs2))
            )
        taken = decisions[0]
        if any(decision != taken for decision in decisions):
            result.divergent_branch = True
            self.core.perf.incr("divergent_branches")
        if taken:
            result.next_pc = to_uint32(result.pc + instr.imm)
            result.taken_branch = True

    def _exec_jump(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        return_address = to_uint32(result.pc + 4)
        if instr.mnemonic == "jal":
            result.next_pc = to_uint32(result.pc + instr.imm)
        else:  # jalr
            thread = self._first_active_thread(warp)
            base = warp.regs.read_int(thread, instr.rs1)
            result.next_pc = to_uint32(base + instr.imm) & ~1
        result.taken_branch = True
        if instr.rd != 0:
            for thread in warp.active_threads():
                self._write_rd(warp, instr, thread, return_address)

    # -- FPU ---------------------------------------------------------------------------------

    def _exec_fpu(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        for thread in warp.active_threads():
            rs1 = self._read(warp, thread, instr.rs1, instr.spec.rs1_float)
            rs2 = self._read(warp, thread, instr.rs2, instr.spec.rs2_float)
            rs3 = self._read(warp, thread, instr.rs3, instr.spec.rs3_float)
            value = fpu_op(instr.mnemonic, rs1, rs2, rs3)
            self._write_rd(warp, instr, thread, value)

    # -- LSU ---------------------------------------------------------------------------------

    def _exec_load(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        memory = self.core.memory
        size, signed = _LOAD_SPECS[instr.mnemonic]
        for thread in warp.active_threads():
            base = warp.regs.read_int(thread, instr.rs1)
            address = to_uint32(base + instr.imm)
            if size == 4:
                value = memory.read_word(address)
            elif size == 2:
                value = memory.read_half(address)
            else:
                value = memory.read_byte(address)
            if signed:
                value = to_uint32(sext(value, size * 8))
            self._write_rd(warp, instr, thread, value)
            result.mem_accesses.append(
                MemAccess(thread=thread, address=address, size=size, is_write=False)
            )

    def _exec_store(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        memory = self.core.memory
        size = _STORE_SPECS[instr.mnemonic]
        for thread in warp.active_threads():
            base = warp.regs.read_int(thread, instr.rs1)
            address = to_uint32(base + instr.imm)
            value = self._read(warp, thread, instr.rs2, instr.spec.rs2_float)
            if size == 4:
                memory.write_word(address, value)
            elif size == 2:
                memory.write_half(address, value)
            else:
                memory.write_byte(address, value)
            result.mem_accesses.append(
                MemAccess(thread=thread, address=address, size=size, is_write=True)
            )

    # -- SFU ---------------------------------------------------------------------------------

    def _exec_tmc(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        thread = self._first_active_thread(warp)
        count = warp.regs.read_int(thread, instr.rs1)
        warp.set_thread_count(count)
        if not warp.active:
            result.warp_halted = True

    def _exec_wspawn(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        thread = self._first_active_thread(warp)
        count = warp.regs.read_int(thread, instr.rs1)
        target_pc = warp.regs.read_int(thread, instr.rs2)
        result.spawned_warps = self.core.handle_wspawn(count, target_pc)

    def _exec_bar(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        thread = self._first_active_thread(warp)
        barrier_id = warp.regs.read_int(thread, instr.rs1)
        count = warp.regs.read_int(thread, instr.rs2)
        result.stalled_at_barrier = self.core.handle_barrier(warp, barrier_id, count)

    def _exec_fence(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        self.core.handle_fence()

    def _exec_ecall(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        warp.halt()
        result.warp_halted = True

    def _exec_csr(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        csr_file = self.core.csr
        mnemonic = instr.mnemonic
        immediate_form = mnemonic.endswith("i")
        warp_mask = self.core.active_warp_mask() if hasattr(self.core, "active_warp_mask") else 0
        first_thread = self._first_active_thread(warp)

        def operand(thread: int) -> int:
            if immediate_form:
                return instr.imm & 0x1F
            return warp.regs.read_int(thread, instr.rs1)

        old_values = {}
        for thread in warp.active_threads():
            old_values[thread] = csr_file.read(
                instr.csr,
                thread_id=thread,
                warp_id=warp.warp_id,
                thread_mask=warp.tmask,
                warp_mask=warp_mask,
            )

        write_value = operand(first_thread)
        base = old_values[first_thread]
        if mnemonic in ("csrrw", "csrrwi"):
            csr_file.write(instr.csr, write_value)
        elif mnemonic in ("csrrs", "csrrsi"):
            if write_value:
                csr_file.write(instr.csr, base | write_value)
        elif mnemonic in ("csrrc", "csrrci"):
            if write_value:
                csr_file.write(instr.csr, base & ~write_value)

        if instr.rd != 0:
            for thread in warp.active_threads():
                self._write(warp, thread, instr.rd, old_values[thread], False)

    def _exec_split(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        original = warp.tmask
        taken_mask = 0
        for thread in warp.active_threads():
            predicate = warp.regs.read_int(thread, instr.rs1)
            if predicate:
                taken_mask |= 1 << thread
        not_taken_mask = original & ~taken_mask
        warp.ipdom.push(original, pc=None)
        if taken_mask and not_taken_mask:
            warp.ipdom.push(not_taken_mask, pc=result.pc + 4)
            warp.set_tmask(taken_mask)
            self.core.perf.incr("divergent_splits")
        else:
            self.core.perf.incr("uniform_splits")

    def _exec_join(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        entry = warp.ipdom.pop()
        warp.set_tmask(entry.tmask)
        if not entry.is_fallthrough:
            result.next_pc = entry.pc
            result.taken_branch = True

    # -- TEX ---------------------------------------------------------------------------------

    def _exec_tex(self, warp: Warp, instr: DecodedInstruction, result: StepResult) -> None:
        tex_unit = self.core.tex_unit
        if tex_unit is None:
            raise EmulationError("tex executed but the core has no texture unit")
        operands: list[tuple[int, int, int] | None] = []
        for thread in range(warp.num_threads):
            if (warp.tmask >> thread) & 1:
                operands.append(
                    (
                        warp.regs.read_float(thread, instr.rs1),
                        warp.regs.read_float(thread, instr.rs2),
                        warp.regs.read_float(thread, instr.rs3),
                    )
                )
            else:
                operands.append(None)
        tex_result = tex_unit.sample_warp(self.core.csr, instr.tex_stage, operands)
        for thread in range(warp.num_threads):
            if (warp.tmask >> thread) & 1:
                warp.regs.write_int(thread, instr.rd, tex_result.colors[thread])
        result.tex_result = tex_result
        for address in tex_result.unique_addresses:
            result.mem_accesses.append(
                MemAccess(thread=0, address=address, size=4, is_write=False)
            )

    # -- handler table -----------------------------------------------------------------------

    @classmethod
    def _build_handler_table(cls) -> dict[str, Callable]:
        """Precompute the mnemonic -> handler table from the ISA spec table."""
        special = {
            "lui": cls._exec_lui,
            "auipc": cls._exec_auipc,
            "jal": cls._exec_jump,
            "jalr": cls._exec_jump,
            "tmc": cls._exec_tmc,
            "wspawn": cls._exec_wspawn,
            "split": cls._exec_split,
            "join": cls._exec_join,
            "bar": cls._exec_bar,
            "fence": cls._exec_fence,
            "ecall": cls._exec_ecall,
        }
        table: dict[str, Callable] = {}
        for mnemonic, spec in SPEC_BY_MNEMONIC.items():
            if mnemonic in special:
                table[mnemonic] = special[mnemonic]
            elif spec.is_branch:
                table[mnemonic] = cls._exec_branch
            elif spec.is_load:
                table[mnemonic] = cls._exec_load
            elif spec.is_store:
                table[mnemonic] = cls._exec_store
            elif spec.group == "Zicsr":
                table[mnemonic] = cls._exec_csr
            elif spec.unit in (ExecUnit.FPU, ExecUnit.FDIV):
                table[mnemonic] = cls._exec_fpu
            elif spec.unit == ExecUnit.MUL:
                table[mnemonic] = cls._exec_mul
            elif spec.unit == ExecUnit.DIV:
                table[mnemonic] = cls._exec_div
            elif spec.unit == ExecUnit.TEX:
                table[mnemonic] = cls._exec_tex
            elif mnemonic in ALU_OPS:
                if spec.fmt.value == "I":
                    table[mnemonic] = cls._exec_alu_imm
                else:
                    table[mnemonic] = cls._exec_alu_reg
            else:  # pragma: no cover - every spec entry is classified above
                raise EmulationError(f"no handler for mnemonic {mnemonic}")
        return table

    _MNEMONIC_HANDLERS: dict[str, Callable] = {}


WarpEmulator._MNEMONIC_HANDLERS = WarpEmulator._build_handler_table()
