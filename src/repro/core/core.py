"""The functional SIMT core.

``SimtCore`` composes the warp state, the warp-level emulator, the barrier
table, the CSR file and the texture unit into a core that can run a kernel
to completion at instruction granularity (this is what the FUNCSIM driver
uses, and what the cycle-level TimingCore embeds for its architectural
state).  Multi-core functional execution is provided by
:class:`repro.core.processor.Processor`.
"""

from __future__ import annotations

from typing import Any

from repro.common.config import VortexConfig
from repro.common.perf import PerfCounters
from repro.core.barrier import BarrierTable, is_global_barrier
from repro.core.emulator import EmulationError, SimulationLimitExceeded, StepResult, WarpEmulator
from repro.core.warp import Warp
from repro.arch.csr import CsrFile
from repro.texture.unit import TextureUnit


class SimtCore:
    """One Vortex core executing at instruction (functional) granularity."""

    #: Emulator to instantiate; the vectorized engine substitutes its own.
    emulator_cls = WarpEmulator

    #: Counter schema (vxlint VX003).  The divergence counters are charged by
    #: the emulators (scalar and vector) onto this core's ``perf``.
    COUNTERS = frozenset(
        {
            "wspawns",
            "barrier_stalls",
            "fences",
            "instructions",
            "thread_instructions",
            "divergent_branches",
            "divergent_splits",
            "uniform_splits",
        }
    )

    #: Construction-time wiring (vxlint VX007): memory serializes at the
    #: processor level, the processor backref is topology.
    SNAPSHOT_EXCLUDED = frozenset({"core_id", "config", "memory", "processor"})

    def __init__(
        self,
        core_id: int,
        config: VortexConfig,
        memory: Any,
        processor: Any = None,
    ):
        self.core_id = core_id
        self.config = config
        self.memory = memory
        self.processor = processor
        core_cfg = config.core
        self.warps: list[Warp] = [
            Warp(warp_id, core_cfg.num_threads, ipdom_depth=core_cfg.ipdom_depth)
            for warp_id in range(core_cfg.num_warps)
        ]
        self.csr = CsrFile(
            core_id=core_id,
            num_warps=core_cfg.num_warps,
            num_threads=core_cfg.num_threads,
            num_cores=config.num_cores,
        )
        self.tex_unit = TextureUnit(memory, config.texture) if config.texture.enabled else None
        self.barriers = BarrierTable(core_cfg.num_barriers)
        self.perf = PerfCounters(f"core{core_id}")
        self.emulator = self.emulator_cls(self)

    # -- lifecycle -----------------------------------------------------------------

    def reset(self, entry_pc: int) -> None:
        """Reset the core: warp 0 / thread 0 starts at ``entry_pc``."""
        for warp in self.warps:
            warp.halt()
            warp.ipdom.clear()
            warp.at_barrier = False
            warp.instructions = 0
        self.warps[0].spawn(entry_pc, tmask=1)
        self.emulator.invalidate_decode_cache()

    # -- checkpoint/restore --------------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize the core's architectural state.

        Barrier participants are this core's warp objects; they are encoded
        as warp ids and rebound on restore.  The emulator's decode cache is
        derived from memory contents and excluded (invalidated on restore).
        """
        return {
            "warps": [warp.snapshot() for warp in self.warps],
            "csr": self.csr.snapshot(),
            "barriers": self.barriers.snapshot(lambda warp: warp.warp_id),
            "perf": self.perf.snapshot(),
            "tex_perf": self.tex_unit.perf.snapshot() if self.tex_unit is not None else None,
        }

    def restore(self, payload: dict) -> None:
        """Restore the core from a :meth:`snapshot` payload."""
        for warp, warp_payload in zip(self.warps, payload["warps"]):
            warp.restore(warp_payload)
        self.csr.restore(payload["csr"])
        self.barriers.restore(payload["barriers"], lambda warp_id: self.warps[warp_id])
        self.perf.restore(payload["perf"])
        if self.tex_unit is not None:
            if payload["tex_perf"] is not None:
                self.tex_unit.perf.restore(payload["tex_perf"])
            self.tex_unit.invalidate_state_cache()
        self.emulator.invalidate_decode_cache()

    # -- callbacks used by the emulator ------------------------------------------------

    def handle_wspawn(self, count: int, pc: int) -> int:
        """Activate wavefronts 1..count-1 at ``pc`` (warp 0 keeps executing)."""
        count = min(count, len(self.warps))
        spawned = 0
        for warp in self.warps[1:count]:
            if not warp.active:
                warp.spawn(pc, tmask=1)
                spawned += 1
        self.perf.incr("wspawns")
        return spawned

    def handle_barrier(self, warp: Warp, barrier_id: int, count: int) -> bool:
        """Handle a ``bar`` execution; returns True when the warp must stall."""
        if is_global_barrier(barrier_id) and self.processor is not None:
            return self.processor.global_barrier_arrive(self, warp, barrier_id, count)
        released = self.barriers.arrive(barrier_id, count, warp)
        if warp in released:
            for released_warp in released:
                released_warp.at_barrier = False
            return False
        warp.at_barrier = True
        self.perf.incr("barrier_stalls")
        return True

    def handle_fence(self) -> None:
        """Memory fence: flush outstanding accesses (no-op at functional level)."""
        self.perf.incr("fences")

    def active_warp_mask(self) -> int:
        """Bitmask of currently active wavefronts (exposed through a CSR)."""
        mask_value = 0
        for warp in self.warps:
            if warp.active:
                mask_value |= 1 << warp.warp_id
        return mask_value

    # -- execution -----------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when every wavefront has terminated."""
        return all(not warp.active for warp in self.warps)

    @property
    def deadlocked(self) -> bool:
        """True when wavefronts exist but all of them are stalled at barriers."""
        active = [warp for warp in self.warps if warp.active]
        return bool(active) and all(warp.at_barrier for warp in active)

    def schedulable_warps(self) -> list[Warp]:
        """Wavefronts that can execute an instruction right now."""
        return [warp for warp in self.warps if warp.schedulable]

    def step_warp(self, warp: Warp) -> StepResult:
        """Execute one instruction of ``warp`` and update counters."""
        result = self.emulator.step(warp)
        self.perf.incr("instructions")
        self.perf.incr("thread_instructions", result.active_thread_count)
        self.csr.retire(1)
        return result

    def step_warp_timing(self, warp: Warp) -> Any:
        """Execute one instruction of ``warp`` through the lane-plan timing path.

        Same bookkeeping as :meth:`step_warp` (per-core counters, ``instret``)
        but the emulation goes through the vectorized emulator's compiled
        timing plans; only cores whose emulator provides ``step_timing``
        (:class:`repro.engine.vector_core.VectorSimtCore`) support this.
        Returns a :class:`repro.engine.vector_emulator.TimingStep`.
        """
        step = self.emulator.step_timing(warp)
        self.perf.incr("instructions")
        self.perf.incr("thread_instructions", step.active_thread_count)
        self.csr.retire(1)
        return step

    def run(self, max_instructions: int = 10_000_000) -> int:
        """Run until all wavefronts terminate; returns instructions executed.

        Wavefronts are interleaved round-robin at instruction granularity so
        that intra-core barriers behave as they do in hardware.
        """
        executed = 0
        while not self.done:
            progressed = False
            for warp in self.warps:
                if not warp.schedulable:
                    continue
                self.step_warp(warp)
                executed += 1
                progressed = True
                if executed >= max_instructions:
                    raise SimulationLimitExceeded(
                        "instructions",
                        max_instructions,
                        f"core {self.core_id} exceeded the instruction limit "
                        f"({max_instructions}); possible runaway kernel",
                    )
            if not progressed:
                if self.deadlocked and self.processor is None:
                    raise EmulationError(
                        f"core {self.core_id} deadlocked: all active wavefronts "
                        "are waiting at barriers"
                    )
                break
        return executed
