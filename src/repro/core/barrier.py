"""Wavefront barriers (paper section 4.1.3).

A barrier table keeps, per barrier id, the number of wavefronts still
expected and the mask of wavefronts currently stalled on it.  When the
expected count is reached the stalled wavefronts are released.  The same
structure is used for the per-core (local) barriers and — with warp ids
replaced by (core, warp) pairs — for the global barriers selected by the
MSB of the barrier id in multi-core configurations.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any, Dict

#: Barrier ids with this bit set have global (inter-core) scope.
GLOBAL_BARRIER_FLAG = 1 << 31


def is_global_barrier(barrier_id: int) -> bool:
    """Return True when ``barrier_id`` selects a global barrier."""
    return bool(barrier_id & GLOBAL_BARRIER_FLAG)


def local_barrier_index(barrier_id: int) -> int:
    """Strip the scope flag, leaving the table index."""
    return barrier_id & ~GLOBAL_BARRIER_FLAG


class BarrierCountMismatch(ValueError):
    """A participant arrived at a filling barrier with a different expected count.

    The first arrival's count is authoritative for the whole barrier round;
    a latecomer disagreeing about the count is a kernel bug that would either
    early-release the barrier or strand the earlier waiters, so it is
    surfaced instead of silently clobbering the count.
    """


@dataclass
class _BarrierEntry:
    """State of one in-progress barrier.

    ``waiting`` is an insertion-ordered dict used as an ordered set:
    participants (warps, or (core, warp) pairs) hash by identity, so a real
    ``set`` would release them in address order — nondeterministic across
    processes.  Dict order is arrival order, which is fully determined by
    the simulation.
    """

    expected: int = 0
    waiting: dict[Any, None] = field(default_factory=dict)


class BarrierTable:
    """Barrier bookkeeping for one scope (a core, or the whole processor)."""

    #: Construction-time table size (vxlint VX007).
    SNAPSHOT_EXCLUDED = frozenset({"num_barriers", "on_event"})

    def __init__(self, num_barriers: int = 16):
        self.num_barriers = num_barriers
        self._entries: dict[int, _BarrierEntry] = {}
        self.arrivals = 0
        self.releases = 0
        self.mismatches = 0
        # Observability hook (attached by the owning timing core when tracing
        # the ``barrier`` channel): called exactly once per successful arrival
        # as ``on_event(index, expected, participant, released)``.
        self.on_event: Callable[[int, int, Any, list[Any]], None] | None = None

    def arrive(self, barrier_id: int, expected: int, participant: Any) -> list[Any]:
        """Register ``participant`` at ``barrier_id`` expecting ``expected`` arrivals.

        Returns the list of participants to release (empty while the barrier
        is still filling; all of them — including the current participant —
        once the expected count is reached).  A barrier with ``expected <= 1``
        releases immediately.

        The first arrival's ``expected`` is authoritative until the barrier
        releases; a later arrival with a different count raises
        :class:`BarrierCountMismatch` (after bumping ``mismatches``).
        """
        index = local_barrier_index(barrier_id) % max(self.num_barriers, 1)
        self.arrivals += 1
        entry = self._entries.get(index)
        if entry is not None and entry.expected != expected:
            self.mismatches += 1
            raise BarrierCountMismatch(
                f"barrier {index}: arrival expects {expected} participants but the "
                f"barrier is filling toward {entry.expected} "
                f"({len(entry.waiting)} already waiting)"
            )
        if expected <= 1:
            self.releases += 1
            if self.on_event is not None:
                self.on_event(index, expected, participant, [participant])
            return [participant]
        if entry is None:
            entry = _BarrierEntry(expected=expected)
            self._entries[index] = entry
        entry.waiting[participant] = None
        if len(entry.waiting) >= entry.expected:
            released = list(entry.waiting)
            del self._entries[index]
            self.releases += len(released)
            if self.on_event is not None:
                self.on_event(index, expected, participant, released)
            return released
        if self.on_event is not None:
            self.on_event(index, expected, participant, [])
        return []

    # -- checkpoint/restore --------------------------------------------------------

    def snapshot(self, encode_participant: Callable[[Any], Any]) -> dict:
        """Serialize the in-progress barriers, preserving arrival order.

        Participants are live objects (warps, or (core, warp, warp-object)
        triples); the owning scope supplies ``encode_participant`` to map
        them to plain indices and rebinds them on restore.
        """
        return {
            "entries": [
                (
                    index,
                    entry.expected,
                    [encode_participant(participant) for participant in entry.waiting],
                )
                for index, entry in self._entries.items()
            ],
            "arrivals": self.arrivals,
            "releases": self.releases,
            "mismatches": self.mismatches,
        }

    def restore(self, payload: dict, decode_participant: Callable[[Any], Any]) -> None:
        """Restore barrier state from a :meth:`snapshot` payload."""
        self._entries.clear()
        for index, expected, waiting in payload["entries"]:
            entry = _BarrierEntry(expected=expected)
            for encoded in waiting:
                entry.waiting[decode_participant(encoded)] = None
            self._entries[index] = entry
        self.arrivals = payload["arrivals"]
        self.releases = payload["releases"]
        self.mismatches = payload["mismatches"]

    def waiting_on(self, barrier_id: int) -> list[Any]:
        """Participants currently stalled on ``barrier_id``."""
        index = local_barrier_index(barrier_id) % max(self.num_barriers, 1)
        entry = self._entries.get(index)
        return list(entry.waiting) if entry else []

    @property
    def any_waiting(self) -> bool:
        """True when at least one participant is stalled at any barrier."""
        return any(entry.waiting for entry in self._entries.values())

    def pending_barriers(self) -> list[int]:
        """Barrier indices currently holding stalled participants."""
        return sorted(index for index, entry in self._entries.items() if entry.waiting)
