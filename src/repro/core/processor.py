"""Multi-core Vortex processors.

``Processor`` is the functional (instruction-granular) multi-core model
used by the FUNCSIM driver; ``TimingProcessor`` is the cycle-level model
used by the SIMX driver.  Both share the same device memory, support the
global (inter-core) barriers selected by the MSB of the barrier id, and
expose the performance counters the benchmark harness reports.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cache.hierarchy import MemorySubsystem
from repro.common.config import VortexConfig
from repro.common.perf import PerfCounters
from repro.core.barrier import BarrierTable
from repro.core.core import SimtCore
from repro.core.emulator import EmulationError, SimulationLimitExceeded
from repro.core.timing import TimingCore
from repro.mem.memory import MainMemory


class _GlobalBarrierMixin:
    """Global-barrier bookkeeping shared by both processor models."""

    #: Provided by the concrete processor (the mixin rebinds barrier
    #: participants to these cores' warps on restore).
    cores: list[Any]

    def _init_global_barriers(self, num_barriers: int = 16) -> None:
        self._global_barriers = BarrierTable(num_barriers)

    def global_barrier_arrive(self, core: Any, warp: Any, barrier_id: int, count: int) -> bool:
        """Register ``warp`` of ``core`` at a global barrier.

        Returns True when the warp must stall.  ``count`` is the total number
        of wavefronts (across all cores) expected at the barrier.
        """
        participant = (core.core_id, warp.warp_id, warp)
        released = self._global_barriers.arrive(barrier_id, count, participant)
        if any(entry[2] is warp for entry in released):
            for _, _, released_warp in released:
                released_warp.at_barrier = False
            return False
        warp.at_barrier = True
        return True

    def _snapshot_global_barriers(self) -> dict:
        """Serialize ``_global_barriers``; participants become (core, warp) id pairs."""
        return self._global_barriers.snapshot(
            lambda participant: [participant[0], participant[1]]
        )

    def _restore_global_barriers(self, payload: dict) -> None:
        """Restore ``_global_barriers``, rebinding id pairs to live warp objects."""

        def decode(encoded: Any) -> tuple[int, int, Any]:
            core_id, warp_id = encoded
            return (core_id, warp_id, self.cores[core_id].warps[warp_id])

        self._global_barriers.restore(payload, decode)


class Processor(_GlobalBarrierMixin):
    """Functional multi-core processor (the FUNCSIM driver's engine)."""

    #: Core model to instantiate; the vectorized engine substitutes its own.
    core_cls = SimtCore

    #: Counter schema (vxlint VX003): processor-level totals.
    COUNTERS = frozenset({"instructions", "cycles"})

    def __init__(self, config: VortexConfig | None = None, memory: MainMemory | None = None):
        self.config = config or VortexConfig()
        self.memory = memory or MainMemory()
        self.cores: list[SimtCore] = [
            self.core_cls(core_id, self.config, self.memory, processor=self)
            for core_id in range(self.config.num_cores)
        ]
        self.perf = PerfCounters("processor")
        self._init_global_barriers()

    def reset(self, entry_pc: int) -> None:
        """Reset every core; each starts warp 0 / thread 0 at ``entry_pc``."""
        for core in self.cores:
            core.reset(entry_pc)

    @property
    def done(self) -> bool:
        return all(core.done for core in self.cores)

    def run(
        self,
        entry_pc: int | None = None,
        max_instructions: int = 50_000_000,
        stop_after_instructions: int | None = None,
    ) -> int:
        """Run to completion; returns total instructions executed.

        Cores and wavefronts are interleaved at instruction granularity so
        that inter-core (global) barriers make forward progress.

        ``stop_after_instructions`` pauses the run at the first scheduling
        *round* boundary at which at least that many instructions have been
        executed (by this call).  Stopping mid-round would change where the
        interleaving resumes, so the round always completes; a paused run is
        continued with another ``run()`` call (no ``entry_pc``) and is
        bit-identical to an uninterrupted one.
        """
        if entry_pc is not None:
            self.reset(entry_pc)
        executed = 0
        while not self.done:
            progressed = False
            for core in self.cores:
                for warp in core.warps:
                    if not warp.schedulable:
                        continue
                    core.step_warp(warp)
                    executed += 1
                    progressed = True
                    if executed >= max_instructions:
                        raise SimulationLimitExceeded(
                            "instructions",
                            max_instructions,
                            f"processor exceeded the instruction limit ({max_instructions})",
                        )
            if not progressed:
                raise EmulationError(
                    "processor deadlocked: active wavefronts exist but none can execute"
                )
            if stop_after_instructions is not None and executed >= stop_after_instructions:
                break
        self.perf.incr("instructions", executed)
        return executed

    # -- checkpoint/restore ---------------------------------------------------------------

    #: Configuration identity; fixed at construction (vxlint VX007).
    SNAPSHOT_EXCLUDED = frozenset({"config"})

    def snapshot(self) -> dict:
        """Serialize the processor: memory image, every core, global barriers."""
        return {
            "memory": self.memory.snapshot(),
            "cores": [core.snapshot() for core in self.cores],
            "global_barriers": self._snapshot_global_barriers(),
            "perf": self.perf.snapshot(),
        }

    def restore(self, payload: dict) -> None:
        """Restore the processor from a :meth:`snapshot` payload."""
        self.memory.restore(payload["memory"])
        for core, core_payload in zip(self.cores, payload["cores"]):
            core.restore(core_payload)
        self._restore_global_barriers(payload["global_barriers"])
        self.perf.restore(payload["perf"])

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-core counter snapshot."""
        return {f"core{core.core_id}": core.perf.as_dict() for core in self.cores}


class TimingProcessor(_GlobalBarrierMixin):
    """Cycle-level multi-core processor (the SIMX driver's engine).

    ``engine`` selects the execution engine inside every
    :class:`~repro.core.timing.TimingCore`: ``"vector"`` (default) runs the
    issued instructions through compiled whole-warp lane plans,
    ``"scalar"`` through the per-thread reference emulator.  Cycles, IPC and
    all performance counters are bit-identical between the two.
    """

    def __init__(
        self,
        config: VortexConfig | None = None,
        memory: MainMemory | None = None,
        engine: str = "vector",
        fast_forward: bool = True,
        batch_requests: bool = True,
        trace: Any = None,
    ):
        self.config = config or VortexConfig()
        self.memory = memory or MainMemory()
        self.memsys = MemorySubsystem(self.config)
        self.engine = engine
        #: Event-driven cycle fast-forward: jump over provably idle cycle
        #: runs instead of ticking through them (bit-identical results).
        self.fast_forward = fast_forward
        #: Observability bus (:class:`~repro.trace.bus.TraceBus` or None):
        #: threaded into every core and memory level at construction.
        self.trace = trace
        self.memsys.attach_trace(trace)
        self.cores: list[TimingCore] = [
            TimingCore(
                core_id,
                self.config,
                self.memory,
                self.memsys,
                processor=self,
                engine=engine,
                batch_requests=batch_requests,
                trace=trace,
            )
            for core_id in range(self.config.num_cores)
        ]
        self.perf = PerfCounters("timing_processor")
        self.cycle = 0
        self._init_global_barriers()

    def reset(self, entry_pc: int) -> None:
        """Reset every core and the cycle counter."""
        for core in self.cores:
            core.reset(entry_pc)
        self.cycle = 0

    @property
    def done(self) -> bool:
        return all(core.done for core in self.cores) and not self.memsys.busy

    def tick(self) -> None:
        """Advance the whole processor by one cycle."""
        self.cycle += 1
        responses = self.memsys.tick()
        for core in self.cores:
            core.tick(
                icache_responses=responses.get(("i", core.core_id)),
                dcache_responses=responses.get(("d", core.core_id)),
            )

    # -- checkpoint/restore ---------------------------------------------------------------

    #: Configuration identity and run-mode flags; fixed at construction
    #: (vxlint VX007).
    SNAPSHOT_EXCLUDED = frozenset({"config", "engine", "fast_forward", "trace"})

    def snapshot(self) -> dict:
        """Serialize the whole cycle-level processor at a cycle boundary."""
        return {
            "memory": self.memory.snapshot(),
            "memsys": self.memsys.snapshot(),
            "cores": [core.snapshot() for core in self.cores],
            "global_barriers": self._snapshot_global_barriers(),
            "perf": self.perf.snapshot(),
            "cycle": self.cycle,
        }

    def restore(self, payload: dict) -> None:
        """Restore the processor from a :meth:`snapshot` payload."""
        self.memory.restore(payload["memory"])
        self.memsys.restore(payload["memsys"])
        for core, core_payload in zip(self.cores, payload["cores"]):
            core.restore(core_payload)
        self._restore_global_barriers(payload["global_barriers"])
        self.perf.restore(payload["perf"])
        self.cycle = payload["cycle"]

    def adopt_architectural(self, payload: dict) -> None:
        """Adopt a functional :class:`Processor` snapshot as the architectural
        starting point of a cold timing simulation.

        This is the funcsim→SIMX bridge of sampled simulation: memory, warp
        state (PCs, masks, registers, IPDOM stacks), CSRs and barriers come
        from the functional checkpoint; all timing state — cycle counter,
        caches, MSHRs, scoreboard, scheduler, in-flight queues — stays cold,
        exactly as after a reset (the standard cold-start approximation).
        The scheduler needs no explicit seeding: every tick re-derives its
        masks from the warps' architectural ``active``/``at_barrier`` flags.
        """
        self.memory.restore(payload["memory"])
        for core, core_payload in zip(self.cores, payload["cores"]):
            core.func.restore(core_payload)
            core.invalidate_caches()
        self._restore_global_barriers(payload["global_barriers"])

    def run(
        self,
        entry_pc: int | None = None,
        max_cycles: int = 20_000_000,
        max_instructions: int | None = None,
        stop_cycle: int | None = None,
    ) -> int:
        """Run to completion; returns the elapsed cycle count.

        ``stop_cycle`` pauses the run once ``cycle`` reaches that value (a
        cycle boundary, so every in-flight transaction is at a well-defined
        point).  A paused run is continued with another ``run()`` call (no
        ``entry_pc``); the only per-run state not carried over is the
        deadlock watchdog's no-progress streak, which restarts at zero —
        counter-neutral, it can only delay the watchdog exception.
        """
        if entry_pc is not None:
            self.reset(entry_pc)
        idle_cycles = 0
        # Lane-plan execution legitimately produces IEEE invalid/overflow
        # conditions inside masked numpy expressions (the scalar reference
        # silences them per operation); silence them for the whole run.
        with np.errstate(all="ignore"):
            while not self.done:
                if stop_cycle is not None and self.cycle >= stop_cycle:
                    break
                instructions_before = self.total_instructions
                self.tick()
                if self.cycle >= max_cycles:
                    raise SimulationLimitExceeded(
                        "cycles",
                        max_cycles,
                        f"timing simulation exceeded {max_cycles} cycles",
                    )
                # ``>=`` mirrors the functional Processor's budget semantics,
                # so LaunchOptions(max_instructions=N) behaves identically on
                # both driver families.
                if max_instructions is not None and self.total_instructions >= max_instructions:
                    raise SimulationLimitExceeded(
                        "instructions",
                        max_instructions,
                        f"timing simulation exceeded {max_instructions} warp instructions",
                    )
                # Deadlock watchdog: no instruction retired for a long stretch while
                # cores still have active wavefronts and no memory traffic is pending.
                if self.total_instructions == instructions_before and not self.memsys.busy:
                    idle_cycles += 1
                    if idle_cycles > 200_000:
                        raise EmulationError(
                            "timing simulation made no progress for 200000 cycles"
                        )
                else:
                    idle_cycles = 0
                if self.fast_forward:
                    skip = self._idle_cycles_to_skip(max_cycles)
                    if skip and stop_cycle is not None:
                        # Never jump past the requested pause point: the
                        # skipped cycles are provably idle either way, so
                        # capping changes nothing but where the run stops.
                        skip = min(skip, stop_cycle - self.cycle)
                    if skip > 0:
                        self._skip_idle(skip)
                        # Mirror the per-tick watchdog bookkeeping above: a
                        # skipped cycle retires nothing, so it counts toward
                        # the no-progress window unless memory traffic is in
                        # flight (in which case each tick would have reset it).
                        if not self.memsys.busy:
                            idle_cycles += skip
                        else:
                            idle_cycles = 0
        self.perf.set("cycles", self.cycle)
        return self.cycle

    # -- fast-forward ---------------------------------------------------------------------

    def _idle_cycles_to_skip(self, max_cycles: int) -> int:
        """Number of provably idle cycles after the current one (0 = none).

        Every core and the memory subsystem report the earliest cycle their
        state can change; when the minimum lies strictly beyond ``cycle + 1``
        the ticks in between perform no work at all — no sends, no retries,
        no completions, no scheduler selections — and can be replayed as a
        bulk counter update.  Capped so the cycle-limit exception still
        fires at exactly the same cycle as the ticked run.
        """
        floor = self.cycle + 1
        next_event: int | None = None
        for core in self.cores:
            event = core.next_event_cycle()
            if event is not None:
                if event <= floor:
                    return 0
                if next_event is None or event < next_event:
                    next_event = event
        mem_event = self.memsys.next_event_cycle()
        if mem_event is not None:
            if mem_event <= floor:
                return 0
            if next_event is None or mem_event < next_event:
                next_event = mem_event
        if next_event is None:
            # Fully idle with no future event: the watchdog must keep
            # counting tick by tick toward its deadlock report.
            return 0
        skip = min(next_event - floor, max_cycles - floor)
        return skip if skip > 0 else 0

    def _skip_idle(self, cycles: int) -> None:
        """Advance the whole processor ``cycles`` idle cycles in one jump."""
        self.cycle += cycles
        self.memsys.skip_idle(cycles)
        for core in self.cores:
            core.skip_idle(cycles)

    # -- metrics -------------------------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        """Warp-instructions retired across all cores."""
        return sum(core.perf.get("instructions") for core in self.cores)

    @property
    def total_thread_instructions(self) -> int:
        """Thread-instructions retired across all cores."""
        return sum(core.perf.get("thread_instructions") for core in self.cores)

    @property
    def ipc(self) -> float:
        """Aggregate thread-instructions per cycle (the paper's IPC metric)."""
        if self.cycle == 0:
            return 0.0
        return self.total_thread_instructions / self.cycle

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-core and per-cache counter snapshot."""
        summary = {f"core{core.core_id}": core.perf.as_dict() for core in self.cores}
        summary.update(self.memsys.counters())
        return summary
