"""Performance smoke benchmark: vectorized vs scalar FUNCSIM wall-clock.

Runs ``vecadd`` and ``sgemm`` on both functional engines across a few
warp/thread geometries, interleaving scalar and vector repetitions
(best-of-N) so machine noise hits both sides equally, checks that the
architectural results are bit-identical, and records everything into
``BENCH_engine.json`` at the repository root.

Run with::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--reps N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.common.config import VortexConfig
from repro.kernels import KERNELS
from repro.runtime.device import VortexDevice

#: (kernel, problem size) pairs measured by the smoke benchmark.
WORKLOADS = (("vecadd", 8192), ("sgemm", 24 * 24))

#: Warp/thread geometries: the paper's 4W-4T baseline plus wider Table-3
#: style points where lane-parallel execution shines.
GEOMETRIES = ((4, 4), (4, 8), (8, 8))


def _architectural_state(device):
    cores = device.driver.processor.cores
    warps = [
        (warp.regs._int_regs.copy(), warp.regs._fp_regs.copy(), warp.instructions)
        for core in cores
        for warp in core.warps
    ]
    return warps, device.memory.page_snapshot()


def _run_once(driver, kernel, size, warps, threads):
    config = VortexConfig().with_warps_threads(warps, threads)
    device = VortexDevice(config, driver=driver)
    start = time.perf_counter()
    run = KERNELS[kernel]().run(device, size=size)
    wall = time.perf_counter() - start
    if not run.passed:
        raise AssertionError(f"{kernel} failed verification on {driver}")
    return wall, run.report, _architectural_state(device)


def measure(kernel, size, warps, threads, reps):
    scalar_best = vector_best = float("inf")
    scalar_state = vector_state = None
    report = None
    for _ in range(reps):
        wall, _, scalar_state = _run_once("funcsim-scalar", kernel, size, warps, threads)
        scalar_best = min(scalar_best, wall)
        wall, report, vector_state = _run_once("funcsim", kernel, size, warps, threads)
        vector_best = min(vector_best, wall)

    identical = scalar_state[1] == vector_state[1] and all(
        np.array_equal(s[0], v[0]) and np.array_equal(s[1], v[1]) and s[2] == v[2]
        for s, v in zip(scalar_state[0], vector_state[0])
    )
    return {
        "kernel": kernel,
        "size": size,
        "warps": warps,
        "threads": threads,
        "instructions": report.instructions,
        "scalar_seconds": round(scalar_best, 4),
        "vector_seconds": round(vector_best, 4),
        "speedup": round(scalar_best / vector_best, 2),
        "identical_architectural_state": bool(identical),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=5, help="repetitions per engine (best-of)")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_engine.json",
    )
    args = parser.parse_args()
    if args.reps < 1:
        parser.error("--reps must be at least 1")

    results = []
    for kernel, size in WORKLOADS:
        for warps, threads in GEOMETRIES:
            row = measure(kernel, size, warps, threads, args.reps)
            results.append(row)
            print(
                f"{kernel:8s} size={size:6d} {warps}W-{threads}T "
                f"scalar={row['scalar_seconds']:7.3f}s vector={row['vector_seconds']:7.3f}s "
                f"speedup={row['speedup']:5.2f}x identical={row['identical_architectural_state']}"
            )

    baseline = [r for r in results if (r["warps"], r["threads"]) == (4, 4)]
    payload = {
        "benchmark": "funcsim vectorized engine vs scalar reference (best-of-%d)" % args.reps,
        "generated_by": "benchmarks/perf_smoke.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
        "baseline_4w4t_speedups": {r["kernel"]: r["speedup"] for r in baseline},
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")

    failed = [r for r in results if not r["identical_architectural_state"]]
    if failed:
        raise SystemExit(f"architectural mismatch in: {[r['kernel'] for r in failed]}")


if __name__ == "__main__":
    main()
