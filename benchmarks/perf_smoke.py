"""Performance smoke benchmark: vectorized vs scalar wall-clock.

Runs ``vecadd`` and ``sgemm`` on both functional engines across a few
warp/thread geometries, a textured-triangle render on both graphics
engines, and a cycle-level (SIMX) workload on both timing engines,
interleaving scalar and vector repetitions (best-of-N) so machine noise
hits both sides equally, checks that the architectural/pixel/counter
results are bit-identical, and records everything into
``BENCH_engine.json``, ``BENCH_graphics.json`` and ``BENCH_timing.json``
at the repository root.

Run with::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--reps N] [--out PATH]
        [--graphics-out PATH] [--timing-out PATH] [--skip-engine]
        [--skip-graphics] [--skip-timing]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.common.config import CacheConfig, MemoryConfig, VortexConfig
from repro.graphics.fragment import BlendMode
from repro.graphics.geometry import Matrix4, Vertex
from repro.graphics.pipeline import GraphicsContext
from repro.kernels import KERNELS
from repro.runtime.device import VortexDevice
from repro.texture.formats import TexFilter, TexWrap

#: (kernel, problem size) pairs measured by the smoke benchmark.
WORKLOADS = (("vecadd", 8192), ("sgemm", 24 * 24))

#: Warp/thread geometries: the paper's 4W-4T baseline plus wider Table-3
#: style points where lane-parallel execution shines.
GEOMETRIES = ((4, 4), (4, 8), (8, 8))


def _architectural_state(device: VortexDevice) -> tuple[list[Any], Any]:
    cores = device.driver.processor.cores
    warps = [
        (warp.regs._int_regs.copy(), warp.regs._fp_regs.copy(), warp.instructions)
        for core in cores
        for warp in core.warps
    ]
    return warps, device.memory.page_snapshot()


def _run_once(
    driver: str, kernel: str, size: int, warps: int, threads: int
) -> tuple[float, Any, tuple[list[Any], Any]]:
    config = VortexConfig().with_warps_threads(warps, threads)
    device = VortexDevice(config, driver=driver)
    start = time.perf_counter()
    run = KERNELS[kernel]().run(device, size=size)
    wall = time.perf_counter() - start
    if not run.passed:
        raise AssertionError(f"{kernel} failed verification on {driver}")
    return wall, run.report, _architectural_state(device)


def measure(kernel: str, size: int, warps: int, threads: int, reps: int) -> dict[str, Any]:
    scalar_best = vector_best = float("inf")
    scalar_state = vector_state = None
    report = None
    for _ in range(reps):
        wall, _, scalar_state = _run_once("funcsim:engine=scalar", kernel, size, warps, threads)
        scalar_best = min(scalar_best, wall)
        wall, report, vector_state = _run_once("funcsim", kernel, size, warps, threads)
        vector_best = min(vector_best, wall)

    identical = scalar_state[1] == vector_state[1] and all(
        np.array_equal(s[0], v[0]) and np.array_equal(s[1], v[1]) and s[2] == v[2]
        for s, v in zip(scalar_state[0], vector_state[0])
    )
    return {
        "kernel": kernel,
        "size": size,
        "warps": warps,
        "threads": threads,
        "instructions": report.instructions,
        "scalar_seconds": round(scalar_best, 4),
        "vector_seconds": round(vector_best, 4),
        "speedup": round(scalar_best / vector_best, 2),
        "identical_architectural_state": bool(identical),
    }


# -- graphics: textured-triangle renders, scalar vs vector pipeline ---------------------

#: Render-target size, texture size and triangle count of the scenarios.
GRAPHICS_SIZE = 160
GRAPHICS_TEXTURE = 64
GRAPHICS_TRIANGLES = 24

#: Graphics render scenarios: (name, filter mode, generate mipmaps).  The
#: trilinear scenario exercises the derivative-LOD path end to end: the
#: rasterizer's per-quad uv derivatives select the mip level and the
#: sampler blends two levels of the generated chain per fragment.
GRAPHICS_SCENARIOS = (
    ("textured_triangles_alpha_blend_bilinear", TexFilter.BILINEAR, False),
    ("textured_triangles_trilinear_mipmapped", TexFilter.TRILINEAR, True),
)


def _graphics_scene() -> tuple[np.ndarray, list[Vertex]]:
    """Deterministic vertex stream + texture for the render scenarios."""
    rng = np.random.default_rng(41)
    texture = rng.integers(0, 256, size=(GRAPHICS_TEXTURE, GRAPHICS_TEXTURE, 4),
                           dtype=np.uint8)
    texture[..., 3] = 255
    vertices = []
    for index in range(GRAPHICS_TRIANGLES):
        z = (index / (GRAPHICS_TRIANGLES - 1)) - 0.5
        for _ in range(3):
            x, y = rng.uniform(-1.1, 1.1, size=2)
            color = tuple(rng.uniform(0.2, 1.0, size=3)) + (0.8,)
            uv = tuple(rng.uniform(-0.5, 1.5, size=2))
            vertices.append(Vertex(position=(x, y, z, 1.0), color=color, uv=uv))
    return texture, vertices


def _render_once(
    engine: str,
    texture: np.ndarray,
    vertices: list[Vertex],
    filter_mode: TexFilter,
    mipmaps: bool,
) -> tuple[float, GraphicsContext]:
    ctx = GraphicsContext(GRAPHICS_SIZE, GRAPHICS_SIZE, tile_size=16, engine=engine)
    ctx.set_mvp(Matrix4.orthographic(-1, 1, -1, 1))
    ctx.clear(color=(10, 10, 30, 255))
    ctx.fragment_ops.blend = BlendMode.ALPHA
    ctx.bind_texture(texture, filter_mode=filter_mode, wrap=TexWrap.REPEAT,
                     mipmaps=mipmaps)
    start = time.perf_counter()
    ctx.draw(vertices)
    wall = time.perf_counter() - start
    return wall, ctx


def measure_graphics_scenario(
    name: str, filter_mode: TexFilter, mipmaps: bool, reps: int
) -> dict[str, Any]:
    """Best-of-N textured-triangle render on both graphics engines."""
    texture, vertices = _graphics_scene()
    scalar_best = vector_best = float("inf")
    scalar_ctx = vector_ctx = None
    for _ in range(reps):
        wall, scalar_ctx = _render_once("scalar", texture, vertices, filter_mode, mipmaps)
        scalar_best = min(scalar_best, wall)
        wall, vector_ctx = _render_once("vector", texture, vertices, filter_mode, mipmaps)
        vector_best = min(vector_best, wall)

    identical = (
        np.array_equal(scalar_ctx.framebuffer.color, vector_ctx.framebuffer.color)
        and np.array_equal(
            scalar_ctx.framebuffer.depth.view(np.uint32),
            vector_ctx.framebuffer.depth.view(np.uint32),
        )
        and scalar_ctx.fragment_ops.fragments_written
        == vector_ctx.fragment_ops.fragments_written
    )
    fragments = scalar_ctx.fragment_ops.fragments_in
    return {
        "scenario": name,
        "framebuffer": [GRAPHICS_SIZE, GRAPHICS_SIZE],
        "texture": [GRAPHICS_TEXTURE, GRAPHICS_TEXTURE],
        "triangles": GRAPHICS_TRIANGLES,
        "filter": filter_mode.name.lower(),
        "mipmaps": bool(mipmaps),
        "fragments": fragments,
        "fragments_written": scalar_ctx.fragment_ops.fragments_written,
        "scalar_seconds": round(scalar_best, 4),
        "vector_seconds": round(vector_best, 4),
        "scalar_fragments_per_second": round(fragments / scalar_best, 1),
        "vector_fragments_per_second": round(fragments / vector_best, 1),
        "speedup": round(scalar_best / vector_best, 2),
        "identical_framebuffers": bool(identical),
    }


# -- timing (SIMX): cycle-level core, scalar vs vectorized execution engine ----------------

#: SIMX smoke scenarios: (name, kernel, size, warps, threads).  Wide-thread
#: configurations are where the whole-warp lane plans pay off; the timing
#: model (scheduler, scoreboard, caches, MSHRs) is identical on both sides.
TIMING_SCENARIOS = (
    ("simx_sfilter_4w32t", "sfilter", 24 * 24, 4, 32),
    ("simx_sgemm_4w32t", "sgemm", 20 * 20, 4, 32),
)


def _timing_config(warps: int, threads: int) -> VortexConfig:
    """A hit-friendly multi-bank/multi-port configuration.

    Wide virtual porting keeps the cache request retry traffic (which both
    engines pay identically) from drowning out the execute stage — the
    emulation-bound regime the vectorization targets.
    """
    return VortexConfig(
        dcache=CacheConfig(size=64 * 1024, num_banks=8, num_ports=8),
        memory=MemoryConfig(latency=10, bandwidth=8),
    ).with_warps_threads(warps, threads)


def _run_timing_once(
    driver: str, kernel: str, size: int, config: VortexConfig
) -> tuple[float, Any]:
    device = VortexDevice(config, driver=driver)
    start = time.perf_counter()
    run = KERNELS[kernel]().run(device, size=size)
    wall = time.perf_counter() - start
    if not run.passed:
        raise AssertionError(f"{kernel} failed verification on {driver}")
    return wall, run.report


def measure_timing_scenario(
    name: str, kernel: str, size: int, warps: int, threads: int, reps: int
) -> dict[str, Any]:
    """Best-of-N SIMX run on both timing engines + counter identity check."""
    config = _timing_config(warps, threads)
    scalar_best = vector_best = float("inf")
    scalar_report = vector_report = None
    for _ in range(reps):
        wall, scalar_report = _run_timing_once("simx:engine=scalar", kernel, size, config)
        scalar_best = min(scalar_best, wall)
        wall, vector_report = _run_timing_once("simx", kernel, size, config)
        vector_best = min(vector_best, wall)

    identical = (
        scalar_report.cycles == vector_report.cycles
        and scalar_report.instructions == vector_report.instructions
        and scalar_report.thread_instructions == vector_report.thread_instructions
        and scalar_report.counters == vector_report.counters
    )
    return {
        "scenario": name,
        "kernel": kernel,
        "size": size,
        "warps": warps,
        "threads": threads,
        "cycles": scalar_report.cycles,
        "instructions": scalar_report.instructions,
        "ipc": round(scalar_report.ipc, 4),
        "scalar_seconds": round(scalar_best, 4),
        "vector_seconds": round(vector_best, 4),
        "scalar_cycles_per_second": round(scalar_report.cycles / scalar_best, 1),
        "vector_cycles_per_second": round(vector_report.cycles / vector_best, 1),
        "speedup": round(scalar_best / vector_best, 2),
        "identical_counters": bool(identical),
    }


# -- retry wall: batched request path + fast-forward vs the per-lane ticked path ----------

#: Port-limited retry-wall scenarios: (name, kernel, size, warps, threads).
#: One dcache port against 32-thread warps is the regime where the per-lane
#: request loop made ~88 Python send attempts per cycle.
RETRY_WALL_SCENARIOS = (
    ("simx_sgemm_1p32t", "sgemm", 16 * 16, 8, 32),
    ("simx_sfilter_1p32t", "sfilter", 16 * 16, 8, 32),
)

#: The pre-optimization request path: per-lane sends, every cycle ticked.
RETRY_WALL_BASELINE_DRIVER = "simx:fastforward=off,requests=perlane"


def _retry_wall_config(warps: int, threads: int) -> VortexConfig:
    """Deep inside the retry wall: one virtual port, long-latency memory.

    The single port serializes each warp's 32 lanes into bank-conflict
    retries and the long fill latency keeps the write-through queue
    backed up against DRAM — the regime the batched per-bank path and the
    event-driven fast-forward attack.
    """
    return VortexConfig(
        dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=1),
        memory=MemoryConfig(latency=800, bandwidth=4),
    ).with_warps_threads(warps, threads)


def measure_retry_wall_scenario(
    name: str, kernel: str, size: int, warps: int, threads: int, reps: int
) -> dict[str, Any]:
    """Best-of-N: optimized path (batched + fast-forward) vs per-lane ticked.

    Both runs use the vectorized execution engine — the axis measured here
    is the request/fast-forward path, not the engine — and the reports must
    be bit-identical in cycles and every perf counter.
    """
    from repro.engine.session import diff_execution_reports

    config = _retry_wall_config(warps, threads)
    baseline_best = optimized_best = float("inf")
    baseline_report = optimized_report = None
    for _ in range(reps):
        wall, baseline_report = _run_timing_once(
            RETRY_WALL_BASELINE_DRIVER, kernel, size, config
        )
        baseline_best = min(baseline_best, wall)
        wall, optimized_report = _run_timing_once("simx", kernel, size, config)
        optimized_best = min(optimized_best, wall)

    mismatches = diff_execution_reports(baseline_report, optimized_report)
    return {
        "scenario": name,
        "kernel": kernel,
        "size": size,
        "warps": warps,
        "threads": threads,
        "cycles": optimized_report.cycles,
        "instructions": optimized_report.instructions,
        "ipc": round(optimized_report.ipc, 4),
        "baseline_driver": RETRY_WALL_BASELINE_DRIVER,
        "baseline_seconds": round(baseline_best, 4),
        "optimized_seconds": round(optimized_best, 4),
        "baseline_cycles_per_second": round(baseline_report.cycles / baseline_best, 1),
        "optimized_cycles_per_second": round(optimized_report.cycles / optimized_best, 1),
        "speedup": round(baseline_best / optimized_best, 2),
        "identical_counters": not mismatches,
    }


# -- scheduler policies: the wavefront-scheduling design-space axis -----------------------

#: Scenario swept across every scheduler policy: (kernel, size, warps, threads).
#: Stall-heavy enough (one dcache port, long memory latency) that the
#: policies actually diverge.
POLICY_SCENARIO = ("sgemm", 24 * 24, 8, 4)


def run_scheduler_policy_sweep() -> list[dict[str, Any]]:
    """Cycle counts of the policy axis (deterministic — safe to commit).

    Runs the policy scenario on the vectorized timing engine under every
    :data:`~repro.common.config.SCHEDULER_POLICIES` entry and reports
    cycles/IPC per policy.  The schedules must be pairwise distinct —
    otherwise the axis sweeps nothing.
    """
    from repro.common.config import SCHEDULER_POLICIES

    kernel, size, warps, threads = POLICY_SCENARIO
    base = VortexConfig(
        dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=1),
        memory=MemoryConfig(latency=100, bandwidth=1),
    ).with_warps_threads(warps, threads)
    rows = []
    for policy in SCHEDULER_POLICIES:
        device = VortexDevice(base.with_scheduler_policy(policy), driver="simx")
        run = KERNELS[kernel]().run(device, size=size)
        if not run.passed:
            raise AssertionError(f"{kernel} failed verification under policy {policy}")
        rows.append(
            {
                "policy": policy,
                "kernel": kernel,
                "size": size,
                "warps": warps,
                "threads": threads,
                "cycles": run.report.cycles,
                "ipc": round(run.report.ipc, 4),
            }
        )
        print(
            f"policy {policy:20s} cycles={run.report.cycles:7d} "
            f"ipc={run.report.ipc:6.3f}"
        )
    cycles = [row["cycles"] for row in rows]
    if len(set(cycles)) != len(cycles):
        raise SystemExit(f"scheduler policies produced coinciding schedules: {rows}")
    return rows


def run_timing_benchmark(reps: int, out_path: Path) -> None:
    results = []
    for name, kernel, size, warps, threads in TIMING_SCENARIOS:
        row = measure_timing_scenario(name, kernel, size, warps, threads, reps)
        results.append(row)
        print(
            f"timing {row['scenario']:24s} cycles={row['cycles']:7d} "
            f"scalar={row['scalar_seconds']:7.3f}s vector={row['vector_seconds']:7.3f}s "
            f"({row['scalar_cycles_per_second']:,.0f} vs "
            f"{row['vector_cycles_per_second']:,.0f} cycles/s) "
            f"speedup={row['speedup']:5.2f}x identical={row['identical_counters']}"
        )
    for name, kernel, size, warps, threads in RETRY_WALL_SCENARIOS:
        row = measure_retry_wall_scenario(name, kernel, size, warps, threads, reps)
        results.append(row)
        print(
            f"timing {row['scenario']:24s} cycles={row['cycles']:7d} "
            f"perlane={row['baseline_seconds']:7.3f}s batched+ff={row['optimized_seconds']:7.3f}s "
            f"({row['baseline_cycles_per_second']:,.0f} vs "
            f"{row['optimized_cycles_per_second']:,.0f} cycles/s) "
            f"speedup={row['speedup']:5.2f}x identical={row['identical_counters']}"
        )
    payload = {
        "benchmark": f"vectorized SIMX timing core vs scalar reference (best-of-{reps})",
        "generated_by": "benchmarks/perf_smoke.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
        "scheduler_policy_sweep": run_scheduler_policy_sweep(),
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    failed = [r["scenario"] for r in results if not r["identical_counters"]]
    if failed:
        raise SystemExit(f"timing engines produced different counters in: {failed}")


def run_engine_benchmark(reps: int, out_path: Path) -> None:
    results = []
    for kernel, size in WORKLOADS:
        for warps, threads in GEOMETRIES:
            row = measure(kernel, size, warps, threads, reps)
            results.append(row)
            print(
                f"{kernel:8s} size={size:6d} {warps}W-{threads}T "
                f"scalar={row['scalar_seconds']:7.3f}s vector={row['vector_seconds']:7.3f}s "
                f"speedup={row['speedup']:5.2f}x identical={row['identical_architectural_state']}"
            )

    baseline = [r for r in results if (r["warps"], r["threads"]) == (4, 4)]
    payload = {
        "benchmark": f"funcsim vectorized engine vs scalar reference (best-of-{reps})",
        "generated_by": "benchmarks/perf_smoke.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
        "baseline_4w4t_speedups": {r["kernel"]: r["speedup"] for r in baseline},
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out_path}")

    failed = [r for r in results if not r["identical_architectural_state"]]
    if failed:
        raise SystemExit(f"architectural mismatch in: {[r['kernel'] for r in failed]}")


def run_graphics_benchmark(reps: int, out_path: Path) -> None:
    results = []
    for name, filter_mode, mipmaps in GRAPHICS_SCENARIOS:
        row = measure_graphics_scenario(name, filter_mode, mipmaps, reps)
        results.append(row)
        print(
            f"graphics {row['scenario']:40s} {row['fragments']} fragments "
            f"scalar={row['scalar_seconds']:7.3f}s vector={row['vector_seconds']:7.3f}s "
            f"({row['scalar_fragments_per_second']:,.0f} vs "
            f"{row['vector_fragments_per_second']:,.0f} frags/s) "
            f"speedup={row['speedup']:5.2f}x identical={row['identical_framebuffers']}"
        )
    payload = {
        "benchmark": f"vectorized graphics pipeline vs scalar reference (best-of-{reps})",
        "generated_by": "benchmarks/perf_smoke.py",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    failed = [r["scenario"] for r in results if not r["identical_framebuffers"]]
    if failed:
        raise SystemExit(f"graphics engines produced different framebuffers in: {failed}")


def main() -> None:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=5, help="repetitions per engine (best-of)")
    parser.add_argument("--out", type=Path, default=root / "BENCH_engine.json")
    parser.add_argument("--graphics-out", type=Path, default=root / "BENCH_graphics.json")
    parser.add_argument("--timing-out", type=Path, default=root / "BENCH_timing.json")
    parser.add_argument("--skip-engine", action="store_true",
                        help="skip the funcsim engine workloads")
    parser.add_argument("--skip-graphics", action="store_true",
                        help="skip the graphics render scenario")
    parser.add_argument("--skip-timing", action="store_true",
                        help="skip the cycle-level (SIMX) scenario")
    args = parser.parse_args()
    if args.reps < 1:
        parser.error("--reps must be at least 1")

    if not args.skip_engine:
        run_engine_benchmark(args.reps, args.out)
    if not args.skip_graphics:
        run_graphics_benchmark(args.reps, args.graphics_out)
    if not args.skip_timing:
        run_timing_benchmark(args.reps, args.timing_out)


if __name__ == "__main__":
    main()
