"""Table 5: synthesis of the virtually multi-ported 4-bank data cache."""

from benchmarks.harness import print_table
from repro.synthesis.area_model import CacheSynthesisModel, TABLE5_POINTS


def test_table5_cache_synthesis(benchmark):
    model = CacheSynthesisModel()
    table = benchmark.pedantic(model.table5, rounds=1, iterations=1)

    rows = []
    for ports, estimate in sorted(table.items()):
        published = CacheSynthesisModel.published(ports)
        rows.append(
            [
                f"{ports}-port",
                f"{estimate['lut']:.0f} / {published['lut']}",
                f"{estimate['regs']:.0f} / {published['regs']}",
                f"{estimate['bram']:.0f} / {published['bram']}",
                f"{estimate['fmax']:.0f} / {published['fmax']}",
            ]
        )
    print_table(
        "Table 5 — virtual multi-ported 4-bank cache (model / paper)",
        ["Ports", "LUT", "Regs", "BRAM", "fmax"],
        rows,
    )

    # Shape: the port increase from 1 to 2 adds ~9% logic, 1 to 4 ~25%,
    # BRAM stays constant, frequency degrades slightly.
    base = table[1]["lut"]
    assert 1.05 < table[2]["lut"] / base < 1.13
    assert 1.2 < table[4]["lut"] / base < 1.3
    assert table[1]["bram"] == table[4]["bram"]
    assert table[4]["fmax"] < table[1]["fmax"]
    for ports in TABLE5_POINTS:
        published = CacheSynthesisModel.published(ports)
        assert abs(table[ports]["lut"] - published["lut"]) / published["lut"] < 0.05
