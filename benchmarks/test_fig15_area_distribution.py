"""Figure 15: area distribution across the processor's components."""

from benchmarks.harness import print_table
from repro.synthesis.components import COMPONENT_FRACTIONS, area_breakdown, dominant_components


def test_fig15_area_distribution(benchmark):
    breakdown = benchmark.pedantic(lambda: area_breakdown(num_cores=8), rounds=1, iterations=1)

    total = sum(breakdown.values())
    rows = [
        [component, f"{alms:,.0f}", f"{100 * alms / total:.0f}%"]
        for component, alms in sorted(breakdown.items(), key=lambda item: -item[1])
    ]
    print_table("Figure 15 — area distribution (8-core Arria 10)", ["Component", "ALMs", "Share"], rows)

    # Shape: the paper reports the area is occupied primarily by the texture
    # units and caches, with the FPU small thanks to the hard DSP blocks.
    assert set(dominant_components(8, top=2)) == {"caches", "texture_units"}
    assert breakdown["fpu"] < 0.5 * breakdown["caches"]
    assert abs(sum(COMPONENT_FRACTIONS.values()) - 1.0) < 1e-9
