"""Checkpoint/restore smoke benchmark: warm-start, replay identity, sampling.

Three measurements, one payload (``BENCH_checkpoint.json``), every row
carrying an ``identical_counters`` flag that CI gates with
``benchmarks/check_regression.py --require-identical``:

* **warm_start** — restoring a device from its pristine checkpoint (the
  service :class:`~repro.service.worker.WarmPool` path) versus
  constructing a fresh one, with the proof that a job run on the restored
  device is bit-identical to one run on a brand-new device.
* **restore_replay** — run-to-midpoint → checkpoint → pickle round-trip →
  restore into a fresh device → finish, diffed counter-by-counter against
  a straight-through run on both drivers.
* **sampled** — the funcsim→SIMX :class:`~repro.runtime.sampling.SampledRun`
  executed twice (interval counters must be deterministic) and compared to
  a full cycle-level run for wall-clock and cycle-estimate context.

Run with::

    PYTHONPATH=src python benchmarks/checkpoint_smoke.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.common.config import CacheConfig, CoreConfig, MemoryConfig, VortexConfig
from repro.engine.session import (
    KernelJob,
    diff_execution_reports,
    execute_job,
    execute_job_restart,
)
from repro.runtime.device import VortexDevice
from repro.runtime.sampling import SampledRun

CONFIG = VortexConfig(
    num_cores=1,
    core=CoreConfig(num_warps=4, num_threads=4),
    dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=1),
    memory=MemoryConfig(latency=100, bandwidth=1),
)

#: (kernel, size) points for the restore-replay identity rows.
REPLAY_POINTS = (("vecadd", 256), ("sgemm", 8 * 8), ("sfilter", 8 * 8))


def measure_warm_start(repeats: int = 5) -> dict:
    """Pristine-checkpoint restore versus device rebuild."""
    device = VortexDevice(CONFIG, driver="simx")
    pristine = device.checkpoint()

    start = time.perf_counter()
    for _ in range(repeats):
        VortexDevice(CONFIG, driver="simx")
    rebuild_seconds = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    for _ in range(repeats):
        device.restore(pristine)
    restore_seconds = (time.perf_counter() - start) / repeats

    # Identity: a job on the restored device matches one on a new device.
    job = KernelJob(kernel="vecadd", config=CONFIG, driver="simx", size=256)
    reference = execute_job(job)
    from repro.service.worker import WarmPool

    pool = WarmPool()
    pool.run_job(job)
    warm = pool.run_job(job)  # second run goes through the restore path
    identical = (
        reference.ok
        and warm.ok
        and not diff_execution_reports(reference.report, warm.report)
    )
    return {
        "scenario": "warm_start",
        "rebuild_seconds": rebuild_seconds,
        "restore_seconds": restore_seconds,
        "restore_speedup": rebuild_seconds / restore_seconds if restore_seconds else None,
        "restore_hits": pool.restore_hits,
        "identical_counters": identical,
        "errors": [e for e in (reference.error, warm.error) if e],
    }


def measure_restore_replay(kernel: str, size: int, driver: str) -> dict:
    """Midpoint checkpoint/restore versus straight-through, fully diffed."""
    job = KernelJob(kernel=kernel, config=CONFIG, driver=driver, size=size)
    straight = execute_job(job)
    restarted = execute_job_restart(job)
    mismatches: list[str] = []
    if straight.report is not None and restarted.report is not None:
        mismatches = diff_execution_reports(straight.report, restarted.report)
    identical = straight.ok and restarted.ok and not mismatches
    return {
        "scenario": f"restore_replay_{kernel}_{driver}",
        "cycles": getattr(straight.report, "cycles", None),
        "instructions": getattr(straight.report, "instructions", None),
        "identical_counters": identical,
        "mismatches": mismatches,
        "errors": [e for e in (straight.error, restarted.error) if e],
    }


def measure_sampled(kernel: str = "sgemm", size: int = 8 * 8) -> dict:
    """Sampled-simulation determinism plus wall-clock versus full SIMX."""
    kwargs = dict(sample_period=400, interval_cycles=800)
    first = SampledRun(kernel, CONFIG, size, **kwargs).run()
    second = SampledRun(kernel, CONFIG, size, **kwargs).run()
    deterministic = first.passed and second.passed and len(first.intervals) == len(
        second.intervals
    )
    if deterministic:
        for a, b in zip(first.intervals, second.intervals):
            if (
                (a.cycles, a.instructions, a.thread_instructions) != (b.cycles, b.instructions, b.thread_instructions)
                or a.counters != b.counters
            ):
                deterministic = False
                break

    start = time.perf_counter()
    full = execute_job(KernelJob(kernel=kernel, config=CONFIG, driver="simx", size=size))
    full_seconds = time.perf_counter() - start
    return {
        "scenario": f"sampled_{kernel}",
        "identical_counters": deterministic,
        "sampled_wall_seconds": first.wall_seconds,
        "full_simx_wall_seconds": full_seconds,
        "speedup": full_seconds / first.wall_seconds if first.wall_seconds else None,
        "intervals": len(first.intervals),
        "sampled_instructions": first.sampled_instructions,
        "total_instructions": first.total_instructions,
        "estimated_cycles": first.estimated_cycles,
        "actual_cycles": getattr(full.report, "cycles", None),
        "errors": [full.error] if full.error else [],
    }


def main(argv: list[str] | None = None) -> int:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=root / "BENCH_checkpoint.json")
    args = parser.parse_args(argv)

    rows = [measure_warm_start()]
    for kernel, size in REPLAY_POINTS:
        for driver in ("simx", "funcsim"):
            rows.append(measure_restore_replay(kernel, size, driver))
    rows.append(measure_sampled())

    identical = all(row["identical_counters"] for row in rows)
    payload = {
        "benchmark": "checkpoint/restore: warm-start, replay identity, sampled simulation",
        "generated_by": "benchmarks/checkpoint_smoke.py",
        "identical_counters": identical,
        "results": rows,
    }
    for row in rows:
        status = "identical" if row["identical_counters"] else "MISMATCH"
        print(f"  {row['scenario']:32s} {status}")
        for mismatch in row.get("mismatches", []):
            print(f"    - {mismatch}")

    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    if not identical:
        print("checkpoint smoke FAILED: restore path diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
