"""Session-level differential smoke: a small grid on both timing engines.

Runs a 5-job ``Session.run_differential`` grid — the paper's baseline
geometry, a multi-port cache point, a greedy-then-oldest scheduler point,
and the L2/L2+L3 hierarchy axis (multi-level fills under the fast-forward
path) — diffs **every** performance counter between the scalar and
vectorized timing engines, writes the report payload as JSON, and exits
non-zero on any mismatch.  CI consumes the payload with
``benchmarks/check_regression.py --require-identical``.

Each grid point also runs a third, checkpoint/restore leg
(``checkpoint_legs=True``): the vector run re-executed via run-to-midpoint
→ checkpoint → restore-into-a-fresh-device → finish, diffed against the
straight-through vector run.  A serializer that silently drops state in
any layer (MSHRs, scoreboard, in-flight memory ops, barrier tables...)
surfaces here as a counter mismatch.

Run with::

    PYTHONPATH=src python benchmarks/session_differential_smoke.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.common.config import CacheConfig, MemoryConfig, VortexConfig
from repro.engine.session import KernelJob, Session


def smoke_jobs() -> list:
    """The 5-job differential grid."""
    base = VortexConfig(
        dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=1),
        memory=MemoryConfig(latency=100, bandwidth=1),
    )
    return [
        KernelJob(kernel="sgemm", config=base, size=8 * 8, label="sgemm_baseline"),
        KernelJob(
            kernel="sfilter",
            config=base.with_dcache_ports(2),
            size=8 * 8,
            label="sfilter_2port",
        ),
        KernelJob(
            kernel="vecadd",
            config=base.with_scheduler_policy("greedy-then-oldest"),
            size=128,
            label="vecadd_gto_policy",
        ),
        KernelJob(
            kernel="sgemm",
            config=base.with_cache_hierarchy(enable_l2=True),
            size=8 * 8,
            label="sgemm_l2",
        ),
        KernelJob(
            kernel="sfilter",
            config=base.with_cache_hierarchy(enable_l2=True, enable_l3=True),
            size=8 * 8,
            label="sfilter_l2l3",
        ),
    ]


def main(argv: list[str] | None = None) -> int:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=root / "BENCH_session_differential.json")
    parser.add_argument(
        "--executor",
        default="thread",
        choices=("process", "thread", "serial"),
        help="session executor for the sweep (default: thread)",
    )
    args = parser.parse_args(argv)

    session = Session(executor=args.executor)
    report = session.run_differential(smoke_jobs(), checkpoint_legs=True)
    print(report.summary())
    for result in report.results:
        status = "identical" if result.identical_counters else "MISMATCH"
        cycles = result.vector.report.cycles if result.vector.report else "-"
        print(f"  {result.describe():24s} cycles={cycles} {status}")
        for mismatch in result.mismatches:
            print(f"    - {mismatch}")

    args.out.write_text(json.dumps(report.to_payload(), indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    if not report.identical_counters:
        print("differential smoke FAILED: engines diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
