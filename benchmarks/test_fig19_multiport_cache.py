"""Figure 19: the effect of virtual multi-port caches on bank utilization
and IPC (single 4W-4T core, 4-bank data cache)."""

from benchmarks.harness import print_table, run_kernel

FIG19_KERNELS = ("sgemm", "vecadd", "sfilter", "saxpy", "nearn")
PORT_COUNTS = (1, 2, 4)


def _bank_utilization(report) -> float:
    dcache = report.counters["dcache0"]
    accepted = dcache.get("accepted", 0)
    conflicts = dcache.get("bank_conflicts", 0)
    if accepted + conflicts == 0:
        return 1.0
    return accepted / (accepted + conflicts)


def _collect():
    results = {}
    for kernel in FIG19_KERNELS:
        for ports in PORT_COUNTS:
            report = run_kernel(kernel, dcache_ports=ports)
            results[(kernel, ports)] = (_bank_utilization(report), report.ipc)
    return results


def test_fig19_multiport_cache(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for kernel in FIG19_KERNELS:
        row = [kernel]
        for ports in PORT_COUNTS:
            utilization, ipc = results[(kernel, ports)]
            row.append(f"{100 * utilization:.0f}% / {ipc:.2f}")
        rows.append(row)
    print_table(
        "Figure 19 — bank utilization / IPC per virtual-port count",
        ["Kernel"] + [f"{ports}-port" for ports in PORT_COUNTS],
        rows,
    )

    for kernel in FIG19_KERNELS:
        util_by_port = [results[(kernel, ports)][0] for ports in PORT_COUNTS]
        ipc_by_port = [results[(kernel, ports)][1] for ports in PORT_COUNTS]
        # Shape: adding virtual ports never reduces bank utilization, and the
        # 4-port configuration removes essentially all direct conflicts.
        assert util_by_port[-1] >= util_by_port[0] - 1e-9, kernel
        assert util_by_port[-1] > 0.95, kernel
        # IPC does not degrade when ports are added.
        assert ipc_by_port[-1] >= 0.95 * ipc_by_port[0], kernel
    # The kernels with the most bank conflicts at 1 port gain the most utilization.
    gains = {k: results[(k, 4)][0] - results[(k, 1)][0] for k in FIG19_KERNELS}
    most_conflicted = min(FIG19_KERNELS, key=lambda k: results[(k, 1)][0])
    assert gains[most_conflicted] == max(gains.values())
