"""Figure 14: IPC of the core design-space configurations (single core).

The paper sweeps five warp/thread configurations over sgemm, vecadd,
sfilter, saxpy and nearn and reports thread-instructions per cycle.
"""


from benchmarks.harness import print_table, run_kernel
from repro.common.config import CORE_DESIGN_POINTS

FIG14_KERNELS = ("sgemm", "vecadd", "sfilter", "saxpy", "nearn")


def _collect():
    results = {}
    for label, (warps, threads) in CORE_DESIGN_POINTS.items():
        for kernel in FIG14_KERNELS:
            report = run_kernel(kernel, num_warps=warps, num_threads=threads)
            results[(label, kernel)] = report.ipc
    return results


def test_fig14_core_config_ipc(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for label in CORE_DESIGN_POINTS:
        rows.append([label] + [results[(label, kernel)] for kernel in FIG14_KERNELS])
    print_table("Figure 14 — IPC per core configuration", ["Config"] + list(FIG14_KERNELS), rows)

    # Shape checks from section 6.2.1:
    #  - 2W-8T (more threads) beats 4W-4T on sgemm,
    #  - 8W-2T (fewer threads) loses IPC relative to 4W-4T on sgemm,
    #  - 8-thread configurations have the highest peak IPC overall.
    assert results[("2W-8T", "sgemm")] > results[("4W-4T", "sgemm")]
    assert results[("8W-2T", "sgemm")] < results[("4W-4T", "sgemm")]
    best_config = max(CORE_DESIGN_POINTS, key=lambda label: max(results[(label, k)] for k in FIG14_KERNELS))
    assert CORE_DESIGN_POINTS[best_config][1] == 8
    # IPC never exceeds the thread count of the configuration.
    for (label, _kernel), ipc in results.items():
        assert 0 < ipc <= CORE_DESIGN_POINTS[label][1]
