"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section: it runs the relevant experiment on the SIMX
(cycle-level) driver, prints the rows/series the paper reports side by side
with the published values, and asserts the qualitative shape (who wins, how
the trend moves).  Experiments are cached per configuration so a benchmark
invocation never repeats a simulation.
"""

from __future__ import annotations

from functools import lru_cache
from collections.abc import Iterable

from repro.common.config import CacheConfig, MemoryConfig, VortexConfig
from repro.kernels import KERNELS
from repro.kernels.texture import hardware_texture_kernel, software_texture_kernel
from repro.runtime.device import VortexDevice
from repro.runtime.report import ExecutionReport

#: Problem sizes used by the harness.  They are intentionally small — the
#: substrate is a Python cycle-level simulator, not the authors' FPGA — and
#: are recorded in EXPERIMENTS.md.
KERNEL_SIZES: dict[str, int] = {
    "vecadd": 128,
    "saxpy": 128,
    "sgemm": 8 * 8,
    "sfilter": 8 * 8,
    "nearn": 128,
    "gaussian": 16,
    "bfs": 64,
}

#: Render-target size (pixels) for the texture benchmarks.
TEXTURE_SIZE = 16 * 16


def make_config(
    num_cores: int = 1,
    num_warps: int = 4,
    num_threads: int = 4,
    dcache_ports: int = 1,
    mem_latency: int = 100,
    mem_bandwidth: int = 1,
) -> VortexConfig:
    """Build a processor configuration for one experiment point."""
    return VortexConfig(
        num_cores=num_cores,
        dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=dcache_ports),
        memory=MemoryConfig(latency=mem_latency, bandwidth=mem_bandwidth),
    ).with_warps_threads(num_warps, num_threads)


@lru_cache(maxsize=None)
def run_kernel(
    kernel_name: str,
    num_cores: int = 1,
    num_warps: int = 4,
    num_threads: int = 4,
    dcache_ports: int = 1,
    mem_latency: int = 100,
    mem_bandwidth: int = 1,
    size: int | None = None,
) -> ExecutionReport:
    """Run one Rodinia-style kernel on SIMX and cache the report."""
    config = make_config(num_cores, num_warps, num_threads, dcache_ports, mem_latency, mem_bandwidth)
    device = VortexDevice(config, driver="simx")
    kernel = KERNELS[kernel_name]()
    run = kernel.run(device, size=size if size is not None else KERNEL_SIZES[kernel_name])
    if not run.passed:
        raise AssertionError(f"{kernel_name} failed verification during benchmarking")
    return run.report


@lru_cache(maxsize=None)
def run_texture(mode: str, use_hw: bool, num_cores: int = 1) -> ExecutionReport:
    """Run one texture benchmark (Figure 20 point) on SIMX and cache the report."""
    config = make_config(num_cores=num_cores)
    device = VortexDevice(config, driver="simx")
    kernel = hardware_texture_kernel(mode) if use_hw else software_texture_kernel(mode)
    run = kernel.run(device, size=TEXTURE_SIZE)
    if not run.passed:
        raise AssertionError(f"{kernel.name} failed verification during benchmarking")
    return run.report


#: File the regenerated tables are appended to (next to the benchmark run),
#: so the rows survive pytest's output capture of passing tests.
TABLES_PATH = "benchmark_tables.txt"


def print_table(title: str, headers: Iterable[str], rows: Iterable[Iterable]) -> None:
    """Print one regenerated table/figure and append it to ``benchmark_tables.txt``."""
    headers = list(headers)
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[column])), max((len(row[column]) for row in rows), default=0))
        for column in range(len(headers))
    ]
    lines = ["", f"=== {title} ==="]
    lines.append("  ".join(str(header).ljust(width) for header, width in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    text = "\n".join(lines)
    print(text)
    try:
        with open(TABLES_PATH, "a", encoding="utf-8") as handle:
            handle.write(text + "\n")
    except OSError:
        pass  # the on-disk copy is best-effort; stdout remains authoritative


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
