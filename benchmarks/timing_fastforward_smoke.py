"""Fast-forward/batched-path identity smoke: optimized vs ticked per-lane.

Runs the port-limited retry-wall scenarios (and one L2/L3 hierarchy
point) twice each — once on the default SIMX driver (batched per-bank
requests + event-driven cycle fast-forward) and once with both
optimizations disabled (``simx:fastforward=off,requests=perlane``, the
pre-optimization ticked path) — diffs **every** cycle/instruction/perf
counter, writes the payload as JSON, and exits non-zero on any mismatch.
CI consumes the payload with
``benchmarks/check_regression.py --require-identical``.

Run with::

    PYTHONPATH=src python benchmarks/timing_fastforward_smoke.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.common.config import CacheConfig, MemoryConfig, VortexConfig
from repro.engine.session import KernelJob, diff_execution_reports, execute_job

#: The ticked per-lane request path the optimizations must reproduce exactly.
BASELINE_DRIVER = "simx:fastforward=off,requests=perlane"


def _port_limited(warps: int, threads: int) -> VortexConfig:
    return VortexConfig(
        dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=1),
        memory=MemoryConfig(latency=400, bandwidth=4),
    ).with_warps_threads(warps, threads)


def smoke_scenarios() -> list:
    """(name, kernel, size, config) rows covering the fast-forward surface."""
    return [
        ("sgemm_1p32t", "sgemm", 12 * 12, _port_limited(8, 32)),
        ("sfilter_1p32t", "sfilter", 12 * 12, _port_limited(8, 32)),
        (
            "sgemm_1p32t_l2l3",
            "sgemm",
            8 * 8,
            _port_limited(4, 32).with_cache_hierarchy(enable_l2=True, enable_l3=True),
        ),
    ]


def main(argv: list[str] | None = None) -> int:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=root / "BENCH_timing_fastforward.json")
    args = parser.parse_args(argv)

    results = []
    for name, kernel, size, config in smoke_scenarios():
        baseline = execute_job(
            KernelJob(kernel=kernel, size=size, config=config, driver=BASELINE_DRIVER)
        )
        optimized = execute_job(KernelJob(kernel=kernel, size=size, config=config))
        errors = [job.error for job in (baseline, optimized) if job.error]
        mismatches = (
            diff_execution_reports(baseline.report, optimized.report) if not errors else []
        )
        row = {
            "scenario": name,
            "kernel": kernel,
            "size": size,
            "baseline_driver": BASELINE_DRIVER,
            "cycles": optimized.report.cycles if optimized.report else None,
            "baseline_seconds": round(baseline.wall_seconds, 4),
            "optimized_seconds": round(optimized.wall_seconds, 4),
            "identical_counters": not errors and not mismatches,
            "mismatches": mismatches,
            "errors": errors,
        }
        results.append(row)
        status = "identical" if row["identical_counters"] else "MISMATCH"
        print(
            f"  {name:20s} cycles={row['cycles']} "
            f"perlane={row['baseline_seconds']:.3f}s "
            f"batched+ff={row['optimized_seconds']:.3f}s {status}"
        )
        for mismatch in mismatches:
            print(f"    - {mismatch}")

    payload = {
        "benchmark": "SIMX fast-forward + batched request path counter identity",
        "generated_by": "benchmarks/timing_fastforward_smoke.py",
        "identical_counters": all(row["identical_counters"] for row in results),
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    if not payload["identical_counters"]:
        print("fast-forward smoke FAILED: paths diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
