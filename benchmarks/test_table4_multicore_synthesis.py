"""Table 4: hardware synthesis for all core configurations (1-32 cores)."""

from benchmarks.harness import print_table
from repro.synthesis.area_model import ARRIA10, STRATIX10, MulticoreSynthesisModel


def test_table4_multicore_synthesis(benchmark):
    model = MulticoreSynthesisModel()
    table = benchmark.pedantic(model.table4, rounds=1, iterations=1)

    rows = []
    for cores, estimate in sorted(table.items()):
        published = MulticoreSynthesisModel.published(cores)
        rows.append(
            [
                cores,
                f"{estimate['alm_pct']:.0f} / {published['alm_pct']}",
                f"{estimate['regs'] / 1000:.0f}K / {published['regs'] / 1000:.0f}K",
                f"{estimate['bram_pct']:.0f} / {published['bram_pct']}",
                f"{estimate['dsp_pct']:.0f} / {published['dsp_pct']}",
                f"{estimate['fmax']:.0f} / {published['fmax']}",
                estimate["device"],
            ]
        )
    print_table(
        "Table 4 — multi-core synthesis (model / paper)",
        ["Cores", "ALM %", "Regs", "BRAM %", "DSP %", "fmax", "Device"],
        rows,
    )

    # Shape: 16 cores fit on the Arria 10, 32 need the Stratix 10, and fmax
    # stays at or above ~200 MHz at 32 cores.
    assert model.fits(16, ARRIA10)
    assert not model.fits(32, ARRIA10)
    assert model.fits(32, STRATIX10)
    assert table[32]["fmax"] >= 190
    # Utilization grows monotonically with the core count on the A10.
    a10_cores = [c for c in sorted(table) if table[c]["device"] == "Arria 10"]
    alm = [table[c]["alm_pct"] for c in a10_cores]
    assert alm == sorted(alm)
