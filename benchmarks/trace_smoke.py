"""Trace-bus smoke: off-path overhead gate, sink parseability, reconciliation.

Re-runs the committed ``BENCH_timing.json`` scenario shapes three ways:

* ``simx`` — tracing off.  The instrumented hot paths must pay only the
  prebound ``trace is None`` guards (vxlint VX008), so this is the
  wall-clock the PR's ≤2%-overhead budget protects.
* ``simx:trace=mem`` — full tracing into an in-memory sink.  The reports
  of the off and traced runs must be **bit-identical** (tracing observes
  the simulation, never perturbs it) and the event stream must
  *reconcile*: every per-reason event total equals the corresponding
  aggregate performance counter exactly
  (:func:`repro.trace.attribution.reconcile`).
* ``simx:trace=csv`` / ``trace=vcd`` (one scenario) — the file sinks must
  produce parseable artifacts whose contents match the in-memory stream.

Each row's ``speedup`` is *traced-seconds / off-seconds* — how much faster
the tracing-off path is than full tracing.  CI gates it against the
committed ``BENCH_trace.json`` with ``check_regression.py --floor``: the
committed baseline encodes today's allocation-free off path, and a
VX008-class regression (unguarded emission work leaking into the off
path) shrinks the off/traced gap and trips the floor without any
cross-machine absolute-seconds comparison.

Run with::

    PYTHONPATH=src python benchmarks/trace_smoke.py [--reps N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.common.config import CacheConfig, MemoryConfig, VortexConfig
from repro.engine.session import diff_execution_reports
from repro.kernels import KERNELS
from repro.runtime.device import VortexDevice
from repro.trace.attribution import reconcile
from repro.trace.sinks import parse_csv, parse_vcd, vcd_changes

#: The committed ``BENCH_timing.json`` scenario shapes, re-run under tracing:
#: (name, kernel, size, warps, threads, port_limited).
SCENARIOS = (
    ("trace_sfilter_4w32t", "sfilter", 24 * 24, 4, 32, False),
    ("trace_sgemm_4w32t", "sgemm", 20 * 20, 4, 32, False),
    ("trace_sgemm_8w4t", "sgemm", 24 * 24, 8, 4, True),
)

#: The scenario whose traced stream is additionally written through the
#: file sinks and re-parsed.
ARTIFACT_SCENARIO = "trace_sgemm_8w4t"


def _config(warps: int, threads: int, port_limited: bool) -> VortexConfig:
    if port_limited:
        # The scheduler_policy_sweep / forensics shape: stall-heavy.
        return VortexConfig(
            dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=1),
            memory=MemoryConfig(latency=100, bandwidth=1),
        ).with_warps_threads(warps, threads)
    # The BENCH_timing hit-friendly shape (see benchmarks/perf_smoke.py).
    return VortexConfig(
        dcache=CacheConfig(size=64 * 1024, num_banks=8, num_ports=8),
        memory=MemoryConfig(latency=10, bandwidth=8),
    ).with_warps_threads(warps, threads)


def _run_once(driver: str, kernel: str, size: int, config: VortexConfig):
    device = VortexDevice(config, driver=driver)
    start = time.perf_counter()
    run = KERNELS[kernel]().run(device, size=size)
    wall = time.perf_counter() - start
    if not run.passed:
        raise AssertionError(f"{kernel} failed verification on {driver}")
    return wall, run.report, device.driver


def measure_scenario(
    name: str, kernel: str, size: int, warps: int, threads: int,
    port_limited: bool, reps: int,
) -> dict[str, Any]:
    """Best-of-N off vs traced, interleaved so machine noise hits both."""
    config = _config(warps, threads, port_limited)
    off_best = traced_best = float("inf")
    off_report = traced_report = None
    traced_driver = None
    for _ in range(reps):
        wall, off_report, _ = _run_once("simx", kernel, size, config)
        off_best = min(off_best, wall)
        wall, traced_report, traced_driver = _run_once(
            "simx:trace=mem", kernel, size, config
        )
        traced_best = min(traced_best, wall)

    mismatches = diff_execution_reports(off_report, traced_report)
    events = list(traced_driver.trace_sink.events)
    reconciliation = reconcile(events, traced_driver.processor)
    return {
        "scenario": name,
        "kernel": kernel,
        "size": size,
        "warps": warps,
        "threads": threads,
        "cycles": off_report.cycles,
        "events": len(events),
        "off_seconds": round(off_best, 4),
        "traced_seconds": round(traced_best, 4),
        "off_cycles_per_second": round(off_report.cycles / off_best, 1),
        "traced_cycles_per_second": round(traced_report.cycles / traced_best, 1),
        "speedup": round(traced_best / off_best, 2),
        "identical_counters": not mismatches and not reconciliation,
        "mismatches": mismatches + reconciliation,
    }


def check_artifacts(kernel: str, size: int, config: VortexConfig) -> dict[str, Any]:
    """The file sinks round-trip the deterministic traced stream."""
    _, _, mem_driver = _run_once("simx:trace=mem", kernel, size, config)
    events = list(mem_driver.trace_sink.events)
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "trace.csv"
        vcd_path = Path(tmp) / "trace.vcd"
        _run_once(f"simx:trace=csv,trace_file={csv_path}", kernel, size, config)
        _run_once(f"simx:trace=vcd,trace_file={vcd_path}", kernel, size, config)
        csv_ok = parse_csv(csv_path.read_text()) == events
        vcd_ok = parse_vcd(vcd_path.read_text()) == vcd_changes(events)
    return {
        "scenario": ARTIFACT_SCENARIO,
        "events": len(events),
        "csv_round_trips": bool(csv_ok),
        "vcd_round_trips": bool(vcd_ok),
    }


def main(argv: list[str] | None = None) -> int:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--out", type=Path, default=root / "BENCH_trace.json")
    args = parser.parse_args(argv)

    results = []
    artifacts = None
    for name, kernel, size, warps, threads, port_limited in SCENARIOS:
        row = measure_scenario(name, kernel, size, warps, threads, port_limited, args.reps)
        results.append(row)
        status = "identical" if row["identical_counters"] else "MISMATCH"
        print(
            f"  {name:20s} cycles={row['cycles']:7d} events={row['events']:7d} "
            f"off={row['off_seconds']:.3f}s traced={row['traced_seconds']:.3f}s "
            f"off-is-{row['speedup']:.2f}x-faster {status}"
        )
        for mismatch in row["mismatches"]:
            print(f"    - {mismatch}")
        if name == ARTIFACT_SCENARIO:
            artifacts = check_artifacts(kernel, size, _config(warps, threads, port_limited))
            print(
                f"  {name:20s} csv_round_trips={artifacts['csv_round_trips']} "
                f"vcd_round_trips={artifacts['vcd_round_trips']}"
            )

    payload = {
        "benchmark": "trace bus: off-path overhead + sink round-trips + reconciliation",
        "generated_by": "benchmarks/trace_smoke.py",
        "identical_counters": all(row["identical_counters"] for row in results),
        "results": results,
        "artifacts": artifacts,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    if not payload["identical_counters"]:
        print("trace smoke FAILED: tracing perturbed or mis-counted a run", file=sys.stderr)
        return 1
    if not (artifacts and artifacts["csv_round_trips"] and artifacts["vcd_round_trips"]):
        print("trace smoke FAILED: file sinks did not round-trip", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
