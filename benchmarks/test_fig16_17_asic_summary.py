"""Figures 16/17: ASIC design-flow summary (layout area score and power
density distribution).

The GDS layout itself cannot be regenerated in Python; the model reproduces
the published headline number (46.8 mW at 300 MHz for an 8W-4T core on the
15-nm educational library) and the per-component power distribution.
"""

from benchmarks.harness import print_table
from repro.synthesis.asic import PUBLISHED_CONFIG, estimate_asic


def test_fig16_17_asic_summary(benchmark):
    summary = benchmark.pedantic(
        lambda: estimate_asic(8, 4, 300.0), rounds=1, iterations=1
    )

    rows = [
        ["power (mW)", f"{summary.power_mw:.1f}", PUBLISHED_CONFIG["power_mw"]],
        ["frequency (MHz)", f"{summary.frequency_mhz:.0f}", PUBLISHED_CONFIG["frequency_mhz"]],
        ["configuration", f"{summary.num_warps}W-{summary.num_threads}T", "8W-4T"],
    ]
    print_table("Figures 16/17 — ASIC summary (model / paper)", ["Metric", "Model", "Paper"], rows)

    breakdown = summary.breakdown()
    print_table(
        "Figure 17 — power distribution",
        ["Component", "mW"],
        [[component, f"{mw:.1f}"] for component, mw in sorted(breakdown.items(), key=lambda i: -i[1])],
    )

    assert abs(summary.power_mw - PUBLISHED_CONFIG["power_mw"]) < 0.1
    assert abs(sum(breakdown.values()) - summary.power_mw) < 1e-6
    # Lower frequency scales power down.
    assert estimate_asic(8, 4, 150.0).power_mw < summary.power_mw
