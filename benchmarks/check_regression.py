"""Benchmark regression gate.

Compares a freshly measured ``perf_smoke`` payload against the committed
baseline (``BENCH_engine.json`` / ``BENCH_graphics.json`` /
``BENCH_timing.json``) and fails when

* any scenario's vector-over-scalar speedup drops below ``--floor`` times
  the baseline speedup (machine noise between CI runners is why the floor
  is a fraction, not an equality),
* any bit-identity flag (``identical_architectural_state`` /
  ``identical_framebuffers`` / ``identical_counters``) is false in the
  current payload, or
* a baseline scenario is missing from the current payload.

Run with::

    python benchmarks/check_regression.py BASELINE CURRENT [--floor 0.6]

Exit status 0 means the gate is green.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Keys whose falseness means the engines diverged bit-for-bit.
IDENTITY_KEYS = (
    "identical_architectural_state",
    "identical_framebuffers",
    "identical_counters",
)


def scenario_key(row: dict) -> str:
    """Stable identifier for one benchmark row across payloads."""
    if "scenario" in row:
        return str(row["scenario"])
    return "{}@{}:{}W-{}T".format(
        row.get("kernel", "?"),
        row.get("size", "?"),
        row.get("warps", "?"),
        row.get("threads", "?"),
    )


def load_results(path: Path) -> dict:
    """Load a ``perf_smoke`` payload into ``{scenario_key: row}``."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {scenario_key(row): row for row in payload["results"]}


def check(baseline_path: Path, current_path: Path, floor: float) -> list:
    """Return the list of human-readable gate failures (empty = green)."""
    baseline = load_results(baseline_path)
    current = load_results(current_path)
    failures = []
    for key, base_row in sorted(baseline.items()):
        row = current.get(key)
        if row is None:
            failures.append(f"{key}: missing from {current_path.name}")
            continue
        required = base_row["speedup"] * floor
        status = "ok"
        if row["speedup"] < required:
            status = "REGRESSION"
            failures.append(
                f"{key}: speedup {row['speedup']:.2f}x fell below the floor "
                f"{required:.2f}x ({floor:.0%} of the baseline {base_row['speedup']:.2f}x)"
            )
        for flag in IDENTITY_KEYS:
            if flag in row and not row[flag]:
                status = "MISMATCH"
                failures.append(f"{key}: {flag} is false — engines diverged")
        print(
            f"  {key:45s} baseline={base_row['speedup']:6.2f}x "
            f"current={row['speedup']:6.2f}x floor={required:5.2f}x  {status}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="committed BENCH_*.json")
    parser.add_argument("current", type=Path, help="freshly measured BENCH_*.json")
    parser.add_argument(
        "--floor",
        type=float,
        default=0.6,
        help="minimum acceptable fraction of the baseline speedup (default 0.6)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.floor <= 1.0:
        parser.error("--floor must be in (0, 1]")

    print(f"bench gate: {args.current} vs {args.baseline} (floor {args.floor:.0%})")
    failures = check(args.baseline, args.current, args.floor)
    if failures:
        print(f"\nbench gate FAILED ({len(failures)} problem(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
