"""Benchmark regression gate.

Compares a freshly measured ``perf_smoke`` payload against the committed
baseline (``BENCH_engine.json`` / ``BENCH_graphics.json`` /
``BENCH_timing.json``) and fails when

* any scenario's vector-over-scalar speedup drops below ``--floor`` times
  the baseline speedup (machine noise between CI runners is why the floor
  is a fraction, not an equality),
* any bit-identity flag (``identical_architectural_state`` /
  ``identical_framebuffers`` / ``identical_counters``) is false in the
  current payload, or
* a baseline scenario is missing from the current payload.

Run with::

    python benchmarks/check_regression.py BASELINE CURRENT [--floor 0.6]

``--require-identical PATH`` additionally (or instead) asserts the
bit-identity flags of a payload with no baseline comparison — the mode the
CI ``session_differential`` step uses on
``Session.run_differential().to_payload()`` output: the gate fails unless
the payload's top-level and per-row ``identical_counters`` flags are all
true.

Exit status 0 means the gate is green.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Keys whose falseness means the engines diverged bit-for-bit.
IDENTITY_KEYS = (
    "identical_architectural_state",
    "identical_framebuffers",
    "identical_counters",
)


def scenario_key(row: dict) -> str:
    """Stable identifier for one benchmark row across payloads."""
    if "scenario" in row:
        return str(row["scenario"])
    kernel = row.get("kernel", "?")
    size = row.get("size", "?")
    warps = row.get("warps", "?")
    threads = row.get("threads", "?")
    return f"{kernel}@{size}:{warps}W-{threads}T"


def load_results(path: Path) -> dict:
    """Load a ``perf_smoke`` payload into ``{scenario_key: row}``."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {scenario_key(row): row for row in payload["results"]}


def check(baseline_path: Path, current_path: Path, floor: float) -> list:
    """Return the list of human-readable gate failures (empty = green)."""
    baseline = load_results(baseline_path)
    current = load_results(current_path)
    failures = []
    for key, base_row in sorted(baseline.items()):
        row = current.get(key)
        if row is None:
            failures.append(f"{key}: missing from {current_path.name}")
            continue
        required = base_row["speedup"] * floor
        status = "ok"
        if row["speedup"] < required:
            status = "REGRESSION"
            failures.append(
                f"{key}: speedup {row['speedup']:.2f}x fell below the floor "
                f"{required:.2f}x ({floor:.0%} of the baseline {base_row['speedup']:.2f}x)"
            )
        for flag in IDENTITY_KEYS:
            if flag in row and not row[flag]:
                status = "MISMATCH"
                failures.append(f"{key}: {flag} is false — engines diverged")
        print(
            f"  {key:45s} baseline={base_row['speedup']:6.2f}x "
            f"current={row['speedup']:6.2f}x floor={required:5.2f}x  {status}"
        )
    return failures


def check_identity(path: Path) -> list:
    """Assert the bit-identity flags of one payload (no baseline needed).

    Used on ``Session.run_differential`` payloads: every row must carry a
    true ``identical_counters`` (or sibling identity) flag, the top-level
    ``identical_counters`` flag — when present — must be true, and rows
    that errored fail the gate.
    """
    payload = json.loads(path.read_text(encoding="utf-8"))
    failures = []
    if payload.get("identical_counters") is False:
        failures.append(f"{path.name}: top-level identical_counters is false")
    rows = payload.get("results", [])
    if not rows:
        # An empty sweep must not read as a green identity guarantee.
        failures.append(f"{path.name}: payload has no result rows to check")
    for row in rows:
        key = scenario_key(row)
        row_failures = []
        flags = [flag for flag in IDENTITY_KEYS if flag in row]
        if not flags:
            row_failures.append(f"{key}: carries no identity flag")
        for flag in flags:
            if not row[flag]:
                row_failures.append(f"{key}: {flag} is false — engines diverged")
                for mismatch in row.get("mismatches", []):
                    row_failures.append(f"{key}:   {mismatch}")
        for error in row.get("errors", []):
            row_failures.append(f"{key}: job errored: {error}")
        failures.extend(row_failures)
        print(f"  {key:45s} identity={'ok' if not row_failures else 'FAILED'}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, nargs="?", help="committed BENCH_*.json")
    parser.add_argument("current", type=Path, nargs="?", help="freshly measured BENCH_*.json")
    parser.add_argument(
        "--floor",
        type=float,
        default=0.6,
        help="minimum acceptable fraction of the baseline speedup (default 0.6)",
    )
    parser.add_argument(
        "--require-identical",
        type=Path,
        action="append",
        default=[],
        metavar="PAYLOAD",
        help="assert the bit-identity flags of PAYLOAD (repeatable; no baseline needed)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.floor <= 1.0:
        parser.error("--floor must be in (0, 1]")
    if (args.baseline is None) != (args.current is None):
        parser.error("baseline and current must be given together")
    if args.baseline is None and not args.require_identical:
        parser.error("nothing to check: give BASELINE CURRENT and/or --require-identical")

    failures = []
    if args.baseline is not None:
        print(f"bench gate: {args.current} vs {args.baseline} (floor {args.floor:.0%})")
        failures.extend(check(args.baseline, args.current, args.floor))
    for payload_path in args.require_identical:
        print(f"identity gate: {payload_path}")
        failures.extend(check_identity(payload_path))
    if failures:
        print(f"\nbench gate FAILED ({len(failures)} problem(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
