"""Figure 18: performance scaling of the Vortex processor with core count.

The paper reports aggregate IPC for the Rodinia kernels at increasing core
counts: compute-bounded kernels scale almost linearly, memory-bounded ones
scale less, and nearn behaves compute-bound because of its long-latency
square root.

The sweep — every kernel at every core count — goes through the batched
:class:`repro.engine.session.Session` layer: all (kernel, cores) jobs are
queued and executed concurrently on a worker pool.
"""

from benchmarks.harness import make_config, print_table
from repro.engine.session import KernelJob, Session
from repro.kernels import COMPUTE_BOUND, MEMORY_BOUND

CORE_COUNTS = (1, 2, 4, 8)
FIG18_KERNELS = tuple(COMPUTE_BOUND) + tuple(MEMORY_BOUND)

#: Problem sizes for the scaling study: large enough that every hardware
#: thread of the biggest configuration still has several tasks to execute.
FIG18_SIZES = {
    "sgemm": 12 * 12,
    "vecadd": 512,
    "sfilter": 16 * 16,
    "saxpy": 512,
    "nearn": 512,
    "gaussian": 40,
    "bfs": 256,
}


def _collect():
    session = Session()
    for kernel in FIG18_KERNELS:
        for cores in CORE_COUNTS:
            session.submit(
                KernelJob(
                    kernel=kernel,
                    config=make_config(num_cores=cores),
                    driver="simx",
                    size=FIG18_SIZES[kernel],
                    label=f"{kernel}x{cores}",
                )
            )
    batch = session.run_batch()
    print(batch.summary())
    results = {}
    for result in batch.results:
        assert result.ok, f"{result.job.describe()}: {result.error or 'failed verification'}"
        results[(result.job.kernel, result.job.config.num_cores)] = result.report.ipc
    return results


def test_fig18_performance_scaling(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for kernel in FIG18_KERNELS:
        group = "compute" if kernel in COMPUTE_BOUND else "memory"
        rows.append([kernel, group] + [results[(kernel, cores)] for cores in CORE_COUNTS])
    print_table(
        "Figure 18 — IPC vs core count",
        ["Kernel", "Group"] + [f"{cores} cores" for cores in CORE_COUNTS],
        rows,
    )

    # Shape: every kernel gains IPC from 1 to 8 cores...
    for kernel in FIG18_KERNELS:
        assert results[(kernel, CORE_COUNTS[-1])] > results[(kernel, 1)], kernel

    def scaling(kernel):
        return results[(kernel, CORE_COUNTS[-1])] / results[(kernel, 1)]

    # ... compute-bounded kernels scale close to linearly at 4 cores ...
    for kernel in COMPUTE_BOUND:
        assert results[(kernel, 4)] / results[(kernel, 1)] > 2.0, kernel
    # ... and the weakest-scaling kernel belongs to the memory-bounded group
    # (the paper singles out the memory-bounded kernels, with nearn as the
    # exception that still scales because of its long-latency square root).
    weakest = min(FIG18_KERNELS, key=scaling)
    assert weakest in MEMORY_BOUND
    assert scaling("nearn") > scaling(weakest)
