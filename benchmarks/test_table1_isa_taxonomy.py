"""Table 1: taxonomy of mainstream GPU ISAs vs the Vortex ISA."""

from benchmarks.harness import print_table
from repro.isa import taxonomy
from repro.isa.instructions import VORTEX_EXTENSION


def test_table1_isa_taxonomy(benchmark):
    coverage = benchmark.pedantic(taxonomy.category_coverage, rounds=1, iterations=1)

    rows = []
    for profile in taxonomy.TABLE1:
        entry = coverage[profile.name]
        rows.append(
            [
                profile.name,
                ", ".join(profile.threading_model),
                ", ".join(profile.synchronization),
                ", ".join(profile.flow_control),
                "yes" if entry["texture"] else "no",
            ]
        )
    print_table(
        "Table 1 — GPU ISA taxonomy (threading / synchronization / flow control / texture)",
        ["ISA", "Threading", "Synchronization", "Flow control", "Texture"],
        rows,
    )

    # Shape: every surveyed ISA covers the SIMT essentials, and Vortex covers
    # them too while adding only six instructions.
    assert all(all(entry.values()) for entry in coverage.values())
    assert len(VORTEX_EXTENSION) == 6
