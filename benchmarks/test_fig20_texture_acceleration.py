"""Figure 20: hardware texture acceleration vs the software sampling path.

The paper renders a source texture into an equally sized target with point,
bilinear and trilinear filtering, comparing the ``tex``-accelerated pipeline
(HW) against an all-software sampler (SW) at 1, 2, 4 and 8 cores.
"""

from benchmarks.harness import print_table, run_texture

MODES = ("point", "bilinear", "trilinear")
CORE_COUNTS = (1, 2, 4)


def _collect():
    results = {}
    for cores in CORE_COUNTS:
        for mode in MODES:
            for use_hw in (False, True):
                report = run_texture(mode, use_hw, num_cores=cores)
                results[(cores, mode, use_hw)] = report.cycles
    return results


def test_fig20_texture_acceleration(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for cores in CORE_COUNTS:
        for mode in MODES:
            sw = results[(cores, mode, False)]
            hw = results[(cores, mode, True)]
            rows.append([cores, mode, sw, hw, f"{sw / hw:.2f}x"])
    print_table(
        "Figure 20 — texture filtering execution time (cycles)",
        ["Cores", "Filter", "SW cycles", "HW cycles", "HW speed-up"],
        rows,
    )

    single_core_bilinear_gain = results[(1, "bilinear", False)] / results[(1, "bilinear", True)]
    for cores in CORE_COUNTS:
        point_gain = results[(cores, "point", False)] / results[(cores, "point", True)]
        bilinear_gain = results[(cores, "bilinear", False)] / results[(cores, "bilinear", True)]
        trilinear_gain = results[(cores, "trilinear", False)] / results[(cores, "trilinear", True)]
        # Shape: point sampling gains little from acceleration (the software
        # path degenerates into a copy); bilinear gains at least ~2x; the
        # filtered modes gain far more than point sampling.  (The paper sees
        # trilinear gain *less* than bilinear because its doubled memory
        # traffic saturates DRAM at 1080p; our reduced render target fits in
        # cache, so that saturation point is not reached — see EXPERIMENTS.md.)
        assert bilinear_gain > 1.5, cores
        assert bilinear_gain > point_gain, cores
        assert trilinear_gain > point_gain, cores
        assert point_gain < 1.6, cores
    # As in the paper, the acceleration advantage shrinks as the core count
    # grows and memory contention increases.
    final_bilinear_gain = results[(CORE_COUNTS[-1], "bilinear", False)] / results[
        (CORE_COUNTS[-1], "bilinear", True)
    ]
    assert final_bilinear_gain <= single_core_bilinear_gain
    # Adding cores reduces execution time for the accelerated path.
    assert results[(CORE_COUNTS[-1], "bilinear", True)] < results[(1, "bilinear", True)]
