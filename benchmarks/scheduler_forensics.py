"""Scheduler-policy stall forensics: *why* the policy sweep rows differ.

Runs the ``scheduler_policy_sweep`` scenario (sgemm, 8 wavefronts x 4
threads, one dcache port, 100-cycle memory) under every scheduler policy
with the trace bus recording the scheduler channel, folds each event
stream into a per-kind cycle breakdown
(:func:`repro.trace.attribution.attribute_stalls`), and writes the
committed forensics report (``FORENSICS_scheduler.md``).

The scheduler channel carries exactly one event per core per cycle, so
each policy's breakdown *partitions* its cycle count and the per-kind
deltas between two policies sum to their cycle gap exactly — the report's
gap-attribution table accounts for 100% of the greedy-then-oldest vs
round-robin gap by construction.  Every number is deterministic (vxlint
VX001), so the report is committed and regenerated, not measured in CI.

Run with::

    PYTHONPATH=src python benchmarks/scheduler_forensics.py [--out PATH]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

from repro.common.config import SCHEDULER_POLICIES, CacheConfig, MemoryConfig, VortexConfig
from repro.kernels import KERNELS
from repro.runtime.device import VortexDevice
from repro.trace.attribution import attribute_stalls
from repro.trace.events import expand_skips

#: The ``scheduler_policy_sweep`` scenario (see benchmarks/perf_smoke.py).
KERNEL, SIZE, WARPS, THREADS = "sgemm", 24 * 24, 8, 4

#: The two policies whose gap the report attributes.
BASELINE_POLICY = "round-robin"
SUBJECT_POLICY = "greedy-then-oldest"

#: Breakdown components in display order: (label, extractor).
COMPONENTS = (
    ("issue", lambda b: b["issues"]),
    ("stall:scoreboard", lambda b: b["stalls"].get("scoreboard", 0)),
    ("stall:ibuffer", lambda b: b["stalls"].get("ibuffer", 0)),
    ("masked (memory/barrier)", lambda b: b["masked"]),
    ("idle", lambda b: b["idle"]),
)


def _config(policy: str) -> VortexConfig:
    return (
        VortexConfig(
            dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=1),
            memory=MemoryConfig(latency=100, bandwidth=1),
        )
        .with_warps_threads(WARPS, THREADS)
        .with_scheduler_policy(policy)
    )


def run_policy(policy: str) -> dict[str, Any]:
    """One traced run; returns the core-0 scheduler breakdown + cycle count."""
    device = VortexDevice(
        _config(policy), driver="simx:trace=mem,trace_channels=scheduler"
    )
    run = KERNELS[KERNEL]().run(device, size=SIZE)
    if not run.passed:
        raise AssertionError(f"{KERNEL} failed verification under policy {policy}")
    events = expand_skips(list(device.driver.trace_sink.events))
    breakdown = attribute_stalls(events)[0]
    if breakdown["cycles"] != run.report.cycles:
        raise AssertionError(
            f"{policy}: scheduler events cover {breakdown['cycles']} cycles, "
            f"report says {run.report.cycles} — the channel must partition cycles"
        )
    parts = breakdown["issues"] + breakdown["idle"] + breakdown["masked"]
    parts += sum(breakdown["stalls"].values())
    if parts != breakdown["cycles"]:
        raise AssertionError(f"{policy}: breakdown does not partition the cycle count")
    breakdown["report_cycles"] = run.report.cycles
    breakdown["ipc"] = round(run.report.ipc, 4)
    return breakdown


def render_report(breakdowns: dict[str, dict[str, Any]]) -> str:
    base = breakdowns[BASELINE_POLICY]
    subject = breakdowns[SUBJECT_POLICY]
    gap = subject["cycles"] - base["cycles"]

    lines = [
        "# Scheduler-policy stall forensics",
        "",
        "Deterministic trace-bus attribution for the `scheduler_policy_sweep`",
        f"scenario in `BENCH_timing.json`: **{KERNEL}** size={SIZE}, "
        f"{WARPS} wavefronts x {THREADS} threads, 16KB/4-bank/1-port dcache, "
        "100-cycle single-word memory.",
        "",
        "Regenerate with "
        "`PYTHONPATH=src python benchmarks/scheduler_forensics.py` — every",
        "number is a deterministic event count (one scheduler event per core",
        "per cycle), not a wall-clock measurement.",
        "",
        "## Per-policy cycle breakdown",
        "",
        "| policy | cycles | IPC | issue | stall:scoreboard | stall:ibuffer"
        " | masked | idle | switches |",
        "|---|---:|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for policy, b in breakdowns.items():
        lines.append(
            f"| {policy} | {b['cycles']} | {b['ipc']} | {b['issues']}"
            f" | {b['stalls'].get('scoreboard', 0)} | {b['stalls'].get('ibuffer', 0)}"
            f" | {b['masked']} | {b['idle']} | {b['switches']} |"
        )

    lines += [
        "",
        f"## Gap attribution: `{SUBJECT_POLICY}` vs `{BASELINE_POLICY}`",
        "",
        f"Cycle gap: **{gap}** ({subject['cycles']} vs {base['cycles']}).  The",
        "scheduler channel partitions every cycle into exactly one of the",
        "kinds below, so the deltas sum to the gap — 100% accounted.",
        "",
        f"| component | {BASELINE_POLICY} | {SUBJECT_POLICY} | delta | share of gap |",
        "|---|---:|---:|---:|---:|",
    ]
    total_delta = 0
    for label, extract in COMPONENTS:
        delta = extract(subject) - extract(base)
        total_delta += delta
        share = f"{100 * delta / gap:.1f}%" if gap else "n/a"
        lines.append(
            f"| {label} | {extract(base)} | {extract(subject)} | {delta:+d} | {share} |"
        )
    if total_delta != gap:
        raise AssertionError(
            f"gap attribution lost cycles: deltas sum to {total_delta}, gap is {gap}"
        )
    lines.append(f"| **total** | {base['cycles']} | {subject['cycles']} | {gap:+d} | 100.0% |")

    scoreboard_delta = subject["stalls"].get("scoreboard", 0) - base["stalls"].get(
        "scoreboard", 0
    )
    locality = breakdowns["cache-locality"]
    lines += [
        "",
        "## Findings",
        "",
        f"* Greedy-then-oldest loses the scenario almost entirely to"
        f" **scoreboard stalls** ({scoreboard_delta:+d} cycles,"
        f" {100 * scoreboard_delta / gap:.1f}% of the gap): greedy re-selects"
        " the wavefront it just issued, which is exactly the one whose"
        " destination register is still in flight behind the 100-cycle"
        " memory, so the core burns the whole latency re-probing one blocked"
        " wavefront instead of rotating to a ready one.",
        f"* Its low switch count ({subject['switches']} vs"
        f" {base['switches']} under round-robin) is the same pathology from"
        " the other side: the policy is *too* sticky on this workload.",
        "* The `cache-locality` policy was derived from this table: it keeps"
        " greedy's line-affinity upside but skips wavefronts whose last issue"
        " attempt raised a scoreboard hazard (`note_hazard`), cutting the"
        f" stall burn to {locality['stalls'].get('scoreboard', 0)} cycles and"
        f" landing at {locality['cycles']} cycles —"
        f" {subject['cycles'] - locality['cycles']} cycles better than"
        " greedy-then-oldest, though still behind the round-robin family,"
        " which this memory-bound scenario rewards for maximum latency"
        " hiding.",
        "",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=root / "FORENSICS_scheduler.md")
    args = parser.parse_args(argv)

    breakdowns = {}
    for policy in SCHEDULER_POLICIES:
        breakdowns[policy] = run_policy(policy)
        b = breakdowns[policy]
        print(
            f"  {policy:20s} cycles={b['cycles']:7d} issue={b['issues']:6d} "
            f"sb-stall={b['stalls'].get('scoreboard', 0):6d} "
            f"masked={b['masked']:6d} idle={b['idle']:6d} switches={b['switches']:6d}"
        )

    report = render_report(breakdowns)
    args.out.write_text(report, encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
