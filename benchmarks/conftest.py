"""Benchmark-harness configuration.

The regenerated tables/figures are printed by each benchmark; capture is
disabled so the rows appear in the console (and in ``bench_output.txt``)
even when every check passes.
"""

import pytest


@pytest.fixture(autouse=True)
def _show_regenerated_tables(capsys):
    """Let the printed paper-vs-measured tables through pytest's capture."""
    with capsys.disabled():
        yield
