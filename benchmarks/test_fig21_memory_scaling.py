"""Figure 21: the effect of memory latency and bandwidth scaling on
performance, explored with the SIMX cycle-level driver.

The paper sweeps memory latency and bandwidth for a 16-core / 16-wavefront /
16-thread configuration; the reproduction uses a smaller 2-core 8W-4T
machine (documented in EXPERIMENTS.md) — the trend of interest is how IPC
falls with latency and recovers with added bandwidth on a memory-bounded
kernel.
"""

from benchmarks.harness import print_table, run_kernel

LATENCIES = (25, 100, 400)
BANDWIDTHS = (1, 4)
KERNEL = "saxpy"


def _collect():
    results = {}
    for latency in LATENCIES:
        for bandwidth in BANDWIDTHS:
            report = run_kernel(
                KERNEL,
                num_cores=2,
                num_warps=8,
                num_threads=4,
                mem_latency=latency,
                mem_bandwidth=bandwidth,
                size=256,
            )
            results[(latency, bandwidth)] = report.ipc
    return results


def test_fig21_memory_scaling(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for latency in LATENCIES:
        rows.append([latency] + [results[(latency, bandwidth)] for bandwidth in BANDWIDTHS])
    print_table(
        f"Figure 21 — IPC vs memory latency/bandwidth ({KERNEL}, 2 cores, 8W-4T)",
        ["Latency (cycles)"] + [f"BW x{bandwidth}" for bandwidth in BANDWIDTHS],
        rows,
    )

    # Shape: IPC decreases as latency grows (at fixed bandwidth) and higher
    # bandwidth never hurts and helps most at high latency.
    for bandwidth in BANDWIDTHS:
        series = [results[(latency, bandwidth)] for latency in LATENCIES]
        assert series[0] > series[-1]
    for latency in LATENCIES:
        assert results[(latency, BANDWIDTHS[-1])] >= 0.95 * results[(latency, BANDWIDTHS[0])]
    low_lat_gain = results[(LATENCIES[0], 4)] / results[(LATENCIES[0], 1)]
    high_lat_gain = results[(LATENCIES[-1], 4)] / results[(LATENCIES[-1], 1)]
    assert high_lat_gain >= low_lat_gain * 0.95
