"""Simulation-service smoke: cold vs cached replay, plus crash recovery.

Three phases:

1. **Cold** — a mixed (kernel, config) batch served by a fresh
   :class:`~repro.service.SimulationService` fleet (every job executes).
2. **Warm** — the *identical* batch resubmitted to the same service: every
   job must be served from the content-addressed result cache, at least
   ``--min-speedup`` times faster, with **bit-identical**
   ``ExecutionReport`` payloads (the ``identical`` / ``identical_counters``
   flags in the emitted JSON, gated by ``check_regression.py
   --require-identical``).
3. **Crash recovery** — a fresh fleet serves a longer batch while every
   worker is SIGKILLed mid-flight; the batch must still come back fully
   passed via respawn + retry, with the crash/retry counts recorded.

Writes the measurements to ``BENCH_service.json`` (committed baseline:
jobs/sec cold vs warm).  Run with::

    PYTHONPATH=src python benchmarks/service_smoke.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path

from repro.common.config import CacheConfig, MemoryConfig, VortexConfig
from repro.engine.session import KernelJob
from repro.service import ServiceClient, ServiceConfig


def smoke_jobs() -> list[KernelJob]:
    """A small mixed batch: kernels x configs the sweep clients generate."""
    base = VortexConfig(
        dcache=CacheConfig(size=16 * 1024, num_banks=4, num_ports=1),
        memory=MemoryConfig(latency=100, bandwidth=1),
    )
    return [
        KernelJob(kernel="vecadd", config=base, size=128, label="vecadd_base"),
        KernelJob(kernel="saxpy", config=base, size=128, label="saxpy_base"),
        KernelJob(kernel="sgemm", config=base, size=8 * 8, label="sgemm_base"),
        KernelJob(kernel="sfilter", config=base, size=8 * 8, label="sfilter_base"),
        KernelJob(
            kernel="vecadd",
            config=base.with_scheduler_policy("greedy-then-oldest"),
            size=128,
            label="vecadd_gto",
        ),
        KernelJob(
            kernel="sgemm",
            config=base.with_cache_hierarchy(enable_l2=True),
            size=8 * 8,
            label="sgemm_l2",
        ),
    ]


def crash_jobs() -> list[KernelJob]:
    """A longer batch (~seconds) so a mid-batch kill lands on pending work."""
    return [
        KernelJob(kernel="sgemm", size=size, label=f"sgemm_{size}")
        for size in range(64, 104, 4)
    ]


def run_cold_warm(client: ServiceClient, jobs: list[KernelJob]) -> dict:
    start = time.perf_counter()
    cold = client.run_jobs(jobs)
    cold_wall = time.perf_counter() - start
    start = time.perf_counter()
    warm = client.run_jobs(jobs)
    warm_wall = time.perf_counter() - start

    speedup = cold_wall / warm_wall if warm_wall > 0 else float("inf")
    rows = []
    all_identical = True
    for job, cold_result, warm_result in zip(jobs, cold, warm):
        cold_payload = cold_result.report.to_payload() if cold_result.report else None
        warm_payload = warm_result.report.to_payload() if warm_result.report else None
        identical = cold_payload is not None and cold_payload == warm_payload
        all_identical = all_identical and identical and warm_result.cached
        rows.append(
            {
                "scenario": job.label,
                "cycles": cold_payload["cycles"] if cold_payload else None,
                "cold_wall_seconds": cold_result.wall_seconds,
                "served_from_cache": warm_result.cached,
                "identical_counters": identical,
                "speedup": speedup,
                "errors": [
                    error
                    for error in (cold_result.error, warm_result.error)
                    if error is not None
                ],
            }
        )
    return {
        "cold": {"wall_seconds": cold_wall, "jobs_per_second": len(jobs) / cold_wall},
        "warm": {"wall_seconds": warm_wall, "jobs_per_second": len(jobs) / warm_wall},
        "speedup": speedup,
        "identical": all_identical,
        "results": rows,
        "cold_ok": all(r.ok for r in cold),
        "warm_ok": all(r.ok for r in warm),
    }


def run_crash_leg(config: ServiceConfig, kill_after: float) -> dict:
    """Serve a batch while killing every worker mid-flight; report recovery."""
    jobs = crash_jobs()
    with ServiceClient(config) as client:
        pids = [pid for pid in client.worker_pids() if pid is not None]
        if not pids:
            return {"skipped": "no process workers on this platform"}

        def kill_fleet() -> None:
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass

        timer = threading.Timer(kill_after, kill_fleet)
        timer.start()
        try:
            results = client.run_jobs(jobs)
        finally:
            timer.cancel()
        stats = client.stats()
    return {
        "jobs": len(jobs),
        "workers_killed": len(pids),
        "batch_ok": all(r.ok for r in results),
        "max_attempts_observed": max(r.attempts for r in results),
        "worker_crashes": stats["worker_crashes"],
        "respawns": stats["respawns"],
        "retries": stats["retries"],
    }


def main(argv: list[str] | None = None) -> int:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=root / "BENCH_service.json")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--mode", default="auto", choices=("auto", "process", "inline"), help="worker mode"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required cached-replay speedup (default 5x)",
    )
    parser.add_argument(
        "--kill-after",
        type=float,
        default=0.3,
        help="seconds into the crash-leg batch at which the fleet is killed",
    )
    parser.add_argument(
        "--skip-crash-leg", action="store_true", help="measure only cold/warm serving"
    )
    args = parser.parse_args(argv)

    config = ServiceConfig(num_shards=args.shards, worker_mode=args.mode)
    with ServiceClient(config) as client:
        measured = run_cold_warm(client, smoke_jobs())
        stats = client.stats()

    print(
        f"[service] cold: {measured['cold']['wall_seconds']:.3f}s "
        f"({measured['cold']['jobs_per_second']:.1f} jobs/s)  "
        f"warm: {measured['warm']['wall_seconds']:.3f}s "
        f"({measured['warm']['jobs_per_second']:.1f} jobs/s)  "
        f"speedup {measured['speedup']:.1f}x  "
        f"identical={measured['identical']}"
    )

    crash: dict = {"skipped": "--skip-crash-leg"}
    if not args.skip_crash_leg:
        crash = run_crash_leg(
            ServiceConfig(num_shards=2, worker_mode=args.mode, retry_backoff=0.05),
            kill_after=args.kill_after,
        )
        if "skipped" in crash:
            print(f"[service] crash leg skipped: {crash['skipped']}")
        else:
            print(
                f"[service] crash leg: {crash['workers_killed']} workers killed, "
                f"{crash['worker_crashes']} crash(es) observed, "
                f"{crash['respawns']} respawn(s), batch_ok={crash['batch_ok']}, "
                f"max attempts {crash['max_attempts_observed']}"
            )

    payload = {
        "benchmark": "simulation service: cold vs cached replay + crash recovery",
        "generated_by": "benchmarks/service_smoke.py",
        "num_shards": args.shards,
        "identical": measured["identical"],
        "identical_counters": measured["identical"],
        "cold": measured["cold"],
        "warm": measured["warm"],
        "speedup": measured["speedup"],
        "results": measured["results"],
        "cache": stats["cache"],
        "crash_recovery": crash,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    failures = []
    if not measured["cold_ok"]:
        failures.append("cold batch had failing jobs")
    if not measured["warm_ok"]:
        failures.append("warm batch had failing jobs")
    if not measured["identical"]:
        failures.append("cached replay was not bit-identical to the cold run")
    if measured["speedup"] < args.min_speedup:
        failures.append(
            f"cached replay speedup {measured['speedup']:.1f}x is below "
            f"the required {args.min_speedup:.1f}x"
        )
    if "skipped" not in crash:
        if not crash["batch_ok"]:
            failures.append("crash-leg batch did not fully pass after retries")
        if crash["worker_crashes"] < 1:
            failures.append("crash leg observed no worker crash (kill landed too late?)")
    for failure in failures:
        print(f"service smoke FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
