"""Table 3: synthesis results for the core design-space configurations."""

from benchmarks.harness import print_table
from repro.synthesis.area_model import CoreSynthesisModel, TABLE3_POINTS


def test_table3_core_config_synthesis(benchmark):
    model = CoreSynthesisModel()
    table = benchmark.pedantic(model.table3, rounds=1, iterations=1)

    rows = []
    for label, estimate in table.items():
        published = CoreSynthesisModel.published(label)
        rows.append(
            [
                label,
                f"{estimate['lut']:.0f} / {published['lut']}",
                f"{estimate['regs']:.0f} / {published['regs']}",
                f"{estimate['bram']:.0f} / {published['bram']}",
                f"{estimate['fmax']:.0f} / {published['fmax']}",
            ]
        )
    print_table(
        "Table 3 — core configurations (model / paper)",
        ["Config", "LUT", "Regs", "BRAM", "fmax (MHz)"],
        rows,
    )

    # Shape checks from section 6.2.1: maximizing threads (2W-8T) costs ~69%
    # more LUTs than 4W-4T, maximizing wavefronts (8W-2T) is ~27% cheaper.
    base = table["4W-4T"]["lut"]
    assert 1.5 < table["2W-8T"]["lut"] / base < 1.9
    assert 0.65 < table["8W-2T"]["lut"] / base < 0.9
    for label in TABLE3_POINTS:
        published = CoreSynthesisModel.published(label)
        assert abs(table[label]["lut"] - published["lut"]) / published["lut"] < 0.05
