"""Table 2: the proposed RISC-V Vortex ISA extension (six instructions)."""

from benchmarks.harness import print_table
from repro.isa import taxonomy
from repro.isa.builder import ProgramBuilder
from repro.isa.decoder import decode
from repro.isa.encoding import Opcode
from repro.isa.instructions import SPEC_BY_MNEMONIC, VORTEX_EXTENSION
from repro.isa.registers import Reg


def _roundtrip_extension():
    """Encode and decode every extension instruction; return the decoded list."""
    asm = ProgramBuilder(base=0)
    asm.wspawn(Reg.t0, Reg.t1)
    asm.tmc(Reg.t0)
    asm.split(Reg.t2)
    asm.join()
    asm.bar(Reg.t3, Reg.t4)
    asm.tex(Reg.a0, "fa0", "fa1", "fa2")
    return [decode(word) for word in asm.assemble().words]


def test_table2_isa_extension(benchmark):
    decoded = benchmark.pedantic(_roundtrip_extension, rounds=1, iterations=1)

    rows = []
    for (syntax, description), instr in zip(taxonomy.TABLE2.items(), decoded):
        spec = SPEC_BY_MNEMONIC[instr.mnemonic]
        rows.append([syntax, description, spec.fmt.value, hex(spec.opcode)])
    print_table(
        "Table 2 — Vortex ISA extension",
        ["Instruction", "Description", "Format", "Opcode"],
        rows,
    )

    # Shape: exactly six instructions, all R/R4-type, the five SIMT-control
    # ones sharing a single opcode as the paper requires.
    assert {instr.mnemonic for instr in decoded} == set(VORTEX_EXTENSION)
    control = [SPEC_BY_MNEMONIC[m].opcode for m in ("wspawn", "tmc", "split", "join", "bar")]
    assert set(control) == {Opcode.VX_EXT}
    assert all(SPEC_BY_MNEMONIC[m].fmt.value in ("R", "R4") for m in VORTEX_EXTENSION)
