"""Differential test: the vectorized engine vs the scalar reference.

Every kernel in ``repro/kernels`` runs on both FUNCSIM engines with the
same inputs and the final architectural state must be bit-identical:
integer and floating-point registers of every warp of every core, the
retired-instruction counts, and all of device memory.
"""

import numpy as np
import pytest

from repro.common.config import VortexConfig
from repro.kernels import KERNELS
from repro.runtime.device import VortexDevice


def _architectural_state(device):
    cores = device.driver.processor.cores
    warps = [
        (
            core.core_id,
            warp.warp_id,
            warp.regs._int_regs.copy(),
            warp.regs._fp_regs.copy(),
            warp.instructions,
        )
        for core in cores
        for warp in core.warps
    ]
    return warps, device.memory.page_snapshot()


def _run_kernel(kernel, driver, config, size):
    device = VortexDevice(config, driver=driver)
    run = kernel.run(device, size=size)
    assert run.passed, f"{kernel.name} failed verification on {driver}"
    return run.report, _architectural_state(device)


def _run(kernel_name, driver, config, size):
    return _run_kernel(KERNELS[kernel_name](), driver, config, size)


@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_vector_engine_matches_scalar_reference(kernel_name):
    config = VortexConfig()
    scalar_report, (scalar_warps, scalar_memory) = _run(
        kernel_name, "funcsim:engine=scalar", config, size=64
    )
    vector_report, (vector_warps, vector_memory) = _run(
        kernel_name, "funcsim", config, size=64
    )

    assert scalar_report.instructions == vector_report.instructions
    assert scalar_report.thread_instructions == vector_report.thread_instructions

    for scalar_warp, vector_warp in zip(scalar_warps, vector_warps):
        core_id, warp_id = scalar_warp[0], scalar_warp[1]
        assert np.array_equal(scalar_warp[2], vector_warp[2]), (
            f"{kernel_name}: integer registers differ on core {core_id} warp {warp_id}"
        )
        assert np.array_equal(scalar_warp[3], vector_warp[3]), (
            f"{kernel_name}: fp registers differ on core {core_id} warp {warp_id}"
        )
        assert scalar_warp[4] == vector_warp[4], (
            f"{kernel_name}: retired counts differ on core {core_id} warp {warp_id}"
        )

    assert scalar_memory == vector_memory, f"{kernel_name}: device memory differs"


@pytest.mark.parametrize("geometry", [(2, 8), (8, 2), (1, 1), (4, 16)])
def test_vector_engine_matches_scalar_across_geometries(geometry):
    warps, threads = geometry
    config = VortexConfig().with_warps_threads(warps, threads)
    _, (scalar_warps, scalar_memory) = _run("sgemm", "funcsim:engine=scalar", config, size=36)
    _, (vector_warps, vector_memory) = _run("sgemm", "funcsim", config, size=36)
    for scalar_warp, vector_warp in zip(scalar_warps, vector_warps):
        assert np.array_equal(scalar_warp[2], vector_warp[2])
        assert np.array_equal(scalar_warp[3], vector_warp[3])
    assert scalar_memory == vector_memory


def test_vector_engine_matches_scalar_multicore():
    config = VortexConfig(num_cores=2)
    _, (scalar_warps, scalar_memory) = _run("vecadd", "funcsim:engine=scalar", config, size=96)
    _, (vector_warps, vector_memory) = _run("vecadd", "funcsim", config, size=96)
    for scalar_warp, vector_warp in zip(scalar_warps, vector_warps):
        assert np.array_equal(scalar_warp[2], vector_warp[2])
        assert scalar_warp[4] == vector_warp[4]
    assert scalar_memory == vector_memory


@pytest.mark.parametrize("mode", ["point", "bilinear", "trilinear"])
@pytest.mark.parametrize("use_hw", [True, False])
def test_texture_kernels_match_scalar_reference(mode, use_hw):
    """The ``tex`` fast path (and the all-software sampling codegen) must be
    bit-identical between the engines: registers, memory, retired counts."""
    from repro.kernels.texture import TextureKernel

    config = VortexConfig()
    scalar_report, (scalar_warps, scalar_memory) = _run_kernel(
        TextureKernel(mode=mode, use_hw=use_hw), "funcsim:engine=scalar", config, size=64
    )
    vector_report, (vector_warps, vector_memory) = _run_kernel(
        TextureKernel(mode=mode, use_hw=use_hw), "funcsim", config, size=64
    )
    assert scalar_report.instructions == vector_report.instructions
    for scalar_warp, vector_warp in zip(scalar_warps, vector_warps):
        assert np.array_equal(scalar_warp[2], vector_warp[2])
        assert np.array_equal(scalar_warp[3], vector_warp[3])
        assert scalar_warp[4] == vector_warp[4]
    assert scalar_memory == vector_memory


def test_tex_executes_as_a_vector_plan_not_scalar_fallback():
    """The vector engine must compile ``tex`` into a whole-warp plan; the
    per-thread scalar fallback is only for genuinely rare instructions."""
    from repro.engine.vector_emulator import VectorWarpEmulator
    from repro.kernels.texture import TextureKernel

    fallen_back = []
    original = VectorWarpEmulator._plan_scalar

    def spy(self, warp, pc, instr):
        fallen_back.append(instr.mnemonic)
        return original(self, warp, pc, instr)

    VectorWarpEmulator._plan_scalar = spy
    try:
        device = VortexDevice(VortexConfig(), driver="funcsim")
        run = TextureKernel(mode="bilinear", use_hw=True).run(device, size=64)
    finally:
        VectorWarpEmulator._plan_scalar = original
    assert run.passed
    assert "tex" not in fallen_back


def test_vector_engine_agrees_with_simx_instruction_counts():
    config = VortexConfig()
    vector_report, _ = _run("saxpy", "funcsim", config, size=64)
    device = VortexDevice(config, driver="simx")
    run = KERNELS["saxpy"]().run(device, size=64)
    assert run.passed
    assert run.report.instructions == vector_report.instructions


def test_instret_csr_is_live_under_the_vector_engine():
    """A kernel reading INSTRET mid-run must see the same live count on
    both engines (the CSR is guest-visible; it cannot lag behind)."""
    from repro.isa.builder import ProgramBuilder
    from repro.isa.csr import CSR
    from repro.isa.registers import Reg
    from repro.runtime.funcsim import FuncSimDriver

    def build():
        asm = ProgramBuilder(base=0x8000_0000)
        asm.addi(Reg.t0, Reg.zero, 1)  # retire a few instructions first
        asm.addi(Reg.t0, Reg.t0, 1)
        asm.addi(Reg.t0, Reg.t0, 1)
        asm.csr_read(Reg.t1, CSR.INSTRET)
        asm.li(Reg.t2, 0x5000)
        asm.sw(Reg.t1, 0, Reg.t2)
        asm.li(Reg.t3, 0)
        asm.tmc(Reg.t3)
        return asm.assemble()

    observed = {}
    for engine in ("scalar", "vector"):
        driver = FuncSimDriver(VortexConfig(), engine=engine)
        program = build()
        driver.memory.load_words(program.base, program.words)
        driver.run(program.entry)
        observed[engine] = driver.memory.read_word(0x5000)
    assert observed["scalar"] == observed["vector"]
    assert observed["vector"] == 3  # three instructions retired before the read
