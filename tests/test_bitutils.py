"""Unit and property tests for the bit-manipulation helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.bitutils import (
    align_down,
    align_up,
    bit,
    bits,
    bits_to_float,
    float_to_bits,
    is_aligned,
    log2ceil,
    mask,
    popcount,
    sext,
    to_int32,
    to_uint32,
)

u32 = st.integers(min_value=0, max_value=2**32 - 1)
i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


def test_mask_values():
    assert mask(0) == 0
    assert mask(1) == 1
    assert mask(12) == 0xFFF
    assert mask(32) == 0xFFFFFFFF


def test_mask_rejects_negative():
    with pytest.raises(ValueError):
        mask(-1)


def test_bit_and_bits_extraction():
    value = 0b1011_0010
    assert bit(value, 1) == 1
    assert bit(value, 2) == 0
    assert bits(value, 7, 4) == 0b1011
    assert bits(value, 3, 0) == 0b0010


def test_bits_rejects_inverted_range():
    with pytest.raises(ValueError):
        bits(0xFF, 0, 4)


@given(i64)
def test_to_uint32_range(value):
    result = to_uint32(value)
    assert 0 <= result < 2**32


@given(u32)
def test_int32_uint32_roundtrip(value):
    assert to_uint32(to_int32(value)) == value


def test_to_int32_sign():
    assert to_int32(0xFFFFFFFF) == -1
    assert to_int32(0x80000000) == -(2**31)
    assert to_int32(0x7FFFFFFF) == 2**31 - 1


@given(st.integers(min_value=0, max_value=0xFFF))
def test_sext_12bit(value):
    result = sext(value, 12)
    assert -2048 <= result <= 2047
    assert (result & 0xFFF) == value


def test_popcount():
    assert popcount(0) == 0
    assert popcount(0xFF) == 8
    assert popcount(0x80000001) == 2


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_float_bits_roundtrip(value):
    assert bits_to_float(float_to_bits(value)) == pytest.approx(value, rel=0, abs=0)


def test_float_bits_known_values():
    assert float_to_bits(1.0) == 0x3F800000
    assert float_to_bits(-2.0) == 0xC0000000
    assert bits_to_float(0x3F800000) == 1.0
    assert math.isinf(bits_to_float(0x7F800000))


def test_alignment_helpers():
    assert align_down(0x1037, 16) == 0x1030
    assert align_up(0x1031, 16) == 0x1040
    assert align_up(0x1040, 16) == 0x1040
    assert is_aligned(0x1000, 64)
    assert not is_aligned(0x1004, 64)


def test_log2ceil():
    assert log2ceil(1) == 0
    assert log2ceil(2) == 1
    assert log2ceil(3) == 2
    assert log2ceil(1024) == 10
